//! One-step time-series predictors and the predictor pool.
//!
//! The paper's LARPredictor integrates a *pool* of simple one-step predictors
//! (§4: LAST, AR fitted by Yule–Walker, and the sliding-window average), and its
//! "future work" section calls for richer pools. This crate provides both:
//!
//! * [`pool::PredictorPool::standard`] — the paper's exact three-model pool,
//!   with class ordering matching the paper's figures (1 = LAST, 2 = AR,
//!   3 = SW_AVG);
//! * [`pool::PredictorPool::extended`] — the three paper models plus the
//!   NWS-inspired family (mean, EWMA, sliding median, trimmed mean, adaptive
//!   windows), the tendency model of Yang et al. and the polynomial-fit model
//!   of Zhang et al.
//!
//! # Model contract
//!
//! Every model implements [`Predictor`]: a *pure function* from a history
//! window (the most recent values, oldest first) to a forecast of the next
//! value. Statelessness is deliberate — the LARPredictor feeds each model the
//! same normalised window of size `m`, and the NWS baselines replay models over
//! arbitrary prefixes; a pure `predict(&[f64]) -> f64` serves both without
//! hidden coupling. Models that need fitting (AR/ARI) are fitted once at
//! construction from training data, exactly as the paper's training phase does.
//!
//! ```
//! use predictors::{Predictor, models::Last};
//!
//! let last = Last;
//! assert_eq!(last.predict(&[1.0, 2.0, 5.0]), 5.0);
//! ```
#![warn(missing_docs)]

pub mod models;
pub mod pool;
pub mod spec;

pub use pool::{PredictorId, PredictorPool};
pub use spec::ModelSpec;

/// Errors from model fitting and pool construction.
#[derive(Debug, Clone, PartialEq)]
pub enum PredictorError {
    /// The training series is too short to fit the model.
    InsufficientData {
        /// Model being fitted.
        model: &'static str,
        /// Points required.
        needed: usize,
        /// Points available.
        got: usize,
    },
    /// Invalid model parameter (zero order/window, bad smoothing factor, ...).
    InvalidParameter(String),
    /// Underlying numerical failure (propagated from `linalg`/`timeseries`).
    Numerical(String),
}

impl std::fmt::Display for PredictorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictorError::InsufficientData { model, needed, got } => {
                write!(f, "{model}: needs at least {needed} training points, got {got}")
            }
            PredictorError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            PredictorError::Numerical(m) => write!(f, "numerical failure: {m}"),
        }
    }
}

impl std::error::Error for PredictorError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, PredictorError>;

/// A one-step-ahead time-series predictor.
///
/// `history` is the most recent observations, **oldest first** — so
/// `history[history.len() - 1]` is the current value `x_t`, and the return
/// value is the forecast `x̂_{t+1}`.
pub trait Predictor: Send + Sync {
    /// Short stable name used in reports and figures (e.g. `"AR"`).
    fn name(&self) -> &'static str;

    /// Minimum number of history points `predict` needs.
    fn min_history(&self) -> usize;

    /// Forecasts the next value from `history`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `history.len() < self.min_history()`;
    /// callers go through [`PredictorPool`], which checks once per step.
    fn predict(&self, history: &[f64]) -> f64;

    /// Train-derived state as a flat `f64` vector, for serialization.
    ///
    /// Empty for the non-parametric models (their behaviour is fully
    /// described by their [`ModelSpec`]); the fitted models (AR/ARI) encode
    /// their coefficients here. [`ModelSpec::rebuild`] is the inverse: spec +
    /// fitted state reproduces the model without retraining.
    fn fitted_state(&self) -> Vec<f64> {
        Vec::new()
    }
}
