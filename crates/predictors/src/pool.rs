//! The predictor pool: a fitted set of models addressed by [`PredictorId`].

use crate::{ModelSpec, Predictor, PredictorError, Result};

/// Index of a model within its pool.
///
/// Display is 1-based to match the paper's figure legends
/// ("Predictor Class: 1 - LAST, 2 - AR, 3 - SW_AVG").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredictorId(pub usize);

impl std::fmt::Display for PredictorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0 + 1)
    }
}

/// A fitted pool of predictors sharing one training context.
pub struct PredictorPool {
    models: Vec<Box<dyn Predictor>>,
    specs: Vec<ModelSpec>,
}

impl PredictorPool {
    /// Builds a pool from specs, fitting each model against `train`.
    ///
    /// # Errors
    ///
    /// Returns the first build error, or
    /// [`PredictorError::InvalidParameter`] for an empty spec list.
    pub fn from_specs(specs: &[ModelSpec], train: &[f64]) -> Result<Self> {
        if specs.is_empty() {
            return Err(PredictorError::InvalidParameter("pool must contain a model".into()));
        }
        let models = specs.iter().map(|s| s.build(train)).collect::<Result<Vec<_>>>()?;
        Ok(Self { models, specs: specs.to_vec() })
    }

    /// The paper's pool {LAST, AR(order), SW_AVG(order)} fitted on `train`.
    ///
    /// # Errors
    ///
    /// Propagates AR fitting errors (e.g. training series shorter than
    /// `2 * order`).
    pub fn standard(train: &[f64], order: usize) -> Result<Self> {
        Self::from_specs(&ModelSpec::standard_pool(order), train)
    }

    /// The extended 11-model pool fitted on `train`.
    ///
    /// # Errors
    ///
    /// Propagates build errors from any member model.
    pub fn extended(train: &[f64], order: usize) -> Result<Self> {
        Self::from_specs(&ModelSpec::extended_pool(order), train)
    }

    /// Reconstructs a fitted pool from specs plus the per-member fitted state
    /// previously extracted with [`PredictorPool::fitted_states`] — no
    /// training data, no refitting.
    ///
    /// # Errors
    ///
    /// * [`PredictorError::InvalidParameter`] for an empty spec list or a
    ///   state list whose length differs from the spec list;
    /// * propagated [`ModelSpec::rebuild`] errors.
    pub fn from_fitted(specs: &[ModelSpec], states: &[Vec<f64>]) -> Result<Self> {
        if specs.is_empty() {
            return Err(PredictorError::InvalidParameter("pool must contain a model".into()));
        }
        if specs.len() != states.len() {
            return Err(PredictorError::InvalidParameter(format!(
                "{} specs vs {} fitted states",
                specs.len(),
                states.len()
            )));
        }
        let models =
            specs.iter().zip(states).map(|(s, st)| s.rebuild(st)).collect::<Result<Vec<_>>>()?;
        Ok(Self { models, specs: specs.to_vec() })
    }

    /// Every member's train-derived state, in pool order (empty vectors for
    /// the non-parametric models). Together with the specs this fully
    /// describes the fitted pool.
    pub fn fitted_states(&self) -> Vec<Vec<f64>> {
        self.models.iter().map(|m| m.fitted_state()).collect()
    }

    /// All specs in pool order.
    pub fn specs(&self) -> &[ModelSpec] {
        &self.specs
    }

    /// Approximate heap bytes held by the fitted pool: the boxed model list,
    /// the spec list, and every member's fitted state. Walks `fitted_state`
    /// (which allocates transiently), so this is for cold-path memory
    /// accounting only — never call it from the serving loop.
    pub fn heap_bytes(&self) -> usize {
        let state_doubles: usize = self.models.iter().map(|m| m.fitted_state().len()).sum();
        self.models.capacity() * std::mem::size_of::<Box<dyn Predictor>>()
            + self.specs.capacity() * std::mem::size_of::<ModelSpec>()
            + state_doubles * std::mem::size_of::<f64>()
    }

    /// Number of models in the pool.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the pool is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// All valid ids, in order.
    pub fn ids(&self) -> impl Iterator<Item = PredictorId> {
        (0..self.models.len()).map(PredictorId)
    }

    /// The display name of model `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this pool.
    pub fn name(&self, id: PredictorId) -> &'static str {
        self.models[id.0].name()
    }

    /// All model names in pool order.
    pub fn names(&self) -> Vec<&'static str> {
        self.models.iter().map(|m| m.name()).collect()
    }

    /// The spec that produced model `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this pool.
    pub fn spec(&self, id: PredictorId) -> &ModelSpec {
        &self.specs[id.0]
    }

    /// The largest `min_history` over the pool — the number of warm-up points
    /// a driver must supply before every model can predict.
    pub fn min_history(&self) -> usize {
        self.models.iter().map(|m| m.min_history()).max().unwrap_or(1)
    }

    /// Runs a single model.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or `history` is shorter than the pool's
    /// [`min_history`](Self::min_history) for that model.
    pub fn predict_one(&self, id: PredictorId, history: &[f64]) -> f64 {
        let m = &self.models[id.0];
        assert!(
            history.len() >= m.min_history(),
            "{} needs {} points, got {}",
            m.name(),
            m.min_history(),
            history.len()
        );
        m.predict(history)
    }

    /// Runs every model on the same history (the mix-of-expert step of the
    /// training phase), returning forecasts in pool order.
    ///
    /// # Panics
    ///
    /// Panics if `history` is shorter than the pool's
    /// [`min_history`](Self::min_history).
    pub fn predict_all(&self, history: &[f64]) -> Vec<f64> {
        assert!(
            history.len() >= self.min_history(),
            "pool needs {} points, got {}",
            self.min_history(),
            history.len()
        );
        self.models.iter().map(|m| m.predict(history)).collect()
    }

    /// Identifies the best predictor for one step: the model whose forecast has
    /// the smallest absolute error against `actual` (the paper's §7.2.1
    /// labelling rule). Ties break toward the lower id, making labels
    /// deterministic. A non-finite error (NaN forecast or actual) ranks after
    /// every finite one, so corrupted inputs degrade the label rather than
    /// aborting the whole training pass.
    ///
    /// # Panics
    ///
    /// Panics if `history` is shorter than the pool's
    /// [`min_history`](Self::min_history).
    pub fn best_for(&self, history: &[f64], actual: f64) -> (PredictorId, Vec<f64>) {
        let forecasts = self.predict_all(history);
        let best = forecasts
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| (*a - actual).abs().total_cmp(&(*b - actual).abs()))
            .map(|(i, _)| PredictorId(i))
            .expect("pool is non-empty");
        (best, forecasts)
    }

    /// [`PredictorPool::best_for`] without materialising the forecast vector:
    /// a streaming argmin over the same per-model forecasts, in the same
    /// order, under the same total order on absolute error — so the returned
    /// id always equals `best_for(history, actual).0`. This is the
    /// allocation-free labelling step the retrain path runs once per training
    /// window.
    ///
    /// # Panics
    ///
    /// Panics if `history` is shorter than the pool's
    /// [`min_history`](Self::min_history).
    pub fn best_id(&self, history: &[f64], actual: f64) -> PredictorId {
        assert!(
            history.len() >= self.min_history(),
            "pool needs {} points, got {}",
            self.min_history(),
            history.len()
        );
        let mut best = PredictorId(0);
        let mut best_err = f64::INFINITY;
        for (i, m) in self.models.iter().enumerate() {
            let err = (m.predict(history) - actual).abs();
            // Strict `Less` keeps the first minimum — `min_by`'s tie rule.
            if i == 0 || err.total_cmp(&best_err) == std::cmp::Ordering::Less {
                best = PredictorId(i);
                best_err = err;
            }
        }
        best
    }
}

impl std::fmt::Debug for PredictorPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredictorPool").field("models", &self.names()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train() -> Vec<f64> {
        (0..100).map(|i| (i as f64 * 0.2).sin()).collect()
    }

    #[test]
    fn standard_pool_has_paper_ordering() {
        let pool = PredictorPool::standard(&train(), 5).unwrap();
        assert_eq!(pool.names(), vec!["LAST", "AR", "SW_AVG"]);
        assert_eq!(pool.len(), 3);
    }

    #[test]
    fn predictor_id_displays_one_based() {
        assert_eq!(PredictorId(0).to_string(), "1");
        assert_eq!(PredictorId(2).to_string(), "3");
    }

    #[test]
    fn predict_all_matches_predict_one() {
        let pool = PredictorPool::standard(&train(), 5).unwrap();
        let h: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let all = pool.predict_all(&h);
        for id in pool.ids() {
            assert_eq!(all[id.0], pool.predict_one(id, &h));
        }
    }

    #[test]
    fn best_for_picks_minimal_absolute_error() {
        let pool = PredictorPool::standard(&train(), 3).unwrap();
        // Ramp history: LAST says 9, SW_AVG says 8, AR says something else.
        let h = [7.0, 8.0, 9.0];
        let (best, forecasts) = pool.best_for(&h, 9.0);
        let err_best = (forecasts[best.0] - 9.0).abs();
        for f in &forecasts {
            assert!(err_best <= (f - 9.0).abs() + 1e-15);
        }
    }

    #[test]
    fn best_id_matches_best_for() {
        let t = train();
        let pool = PredictorPool::standard(&t, 5).unwrap();
        for end in 10..60 {
            let h = &t[..end];
            let actual = t[end];
            assert_eq!(pool.best_id(h, actual), pool.best_for(h, actual).0);
        }
        // Non-finite actual exercises the total_cmp ordering (NaN errors rank
        // after every finite one in both implementations).
        let h = &t[..20];
        assert_eq!(pool.best_id(h, f64::NAN), pool.best_for(h, f64::NAN).0);
    }

    #[test]
    fn best_for_tie_breaks_to_lower_id() {
        // A constant history makes LAST and SW_AVG produce identical
        // forecasts; the tie must resolve to LAST (id 0).
        let t = [1.0; 50];
        let pool = PredictorPool::standard(&t, 3).unwrap();
        let (best, _) = pool.best_for(&[1.0, 1.0, 1.0], 1.0);
        assert_eq!(best, PredictorId(0));
    }

    #[test]
    fn min_history_is_pool_maximum() {
        let pool = PredictorPool::standard(&train(), 7).unwrap();
        assert_eq!(pool.min_history(), 7); // AR(7) dominates
    }

    #[test]
    #[should_panic(expected = "pool needs")]
    fn predict_all_panics_on_short_history() {
        let pool = PredictorPool::standard(&train(), 5).unwrap();
        pool.predict_all(&[1.0, 2.0]);
    }

    #[test]
    fn empty_spec_list_rejected() {
        assert!(matches!(
            PredictorPool::from_specs(&[], &train()),
            Err(PredictorError::InvalidParameter(_))
        ));
    }

    #[test]
    fn extended_pool_builds_with_eleven_models() {
        let pool = PredictorPool::extended(&train(), 5).unwrap();
        assert_eq!(pool.len(), 11);
        let h: Vec<f64> = (0..20).map(|i| (i as f64 * 0.3).cos()).collect();
        for p in pool.predict_all(&h) {
            assert!(p.is_finite());
        }
    }

    #[test]
    fn spec_accessor_round_trips() {
        let pool = PredictorPool::standard(&train(), 4).unwrap();
        assert_eq!(pool.spec(PredictorId(1)), &ModelSpec::Ar { order: 4 });
    }
}
