//! Trend-following models: the tendency predictor and polynomial extrapolation.

use linalg::{gauss, Matrix};

use crate::{Predictor, PredictorError, Result};

/// Tendency-based model (Yang, Schopf & Foster, SC'03 "conservative
/// scheduling"): the forecast follows the *direction* of the last change,
/// moving from the current value by the average recent step magnitude.
///
/// `x̂_{t+1} = x_t + sign(x_t − x_{t−1}) · mean(|Δx|)` over the last `window`
/// increments; if the last two values are equal, the forecast is `x_t`.
#[derive(Debug, Clone, Copy)]
pub struct Tendency {
    window: usize,
}

impl Tendency {
    /// Creates a tendency model that averages step magnitudes over the last
    /// `window` increments.
    ///
    /// # Errors
    ///
    /// Returns [`PredictorError::InvalidParameter`] if `window == 0`.
    pub fn new(window: usize) -> Result<Self> {
        if window == 0 {
            return Err(PredictorError::InvalidParameter(
                "TENDENCY window must be positive".into(),
            ));
        }
        Ok(Self { window })
    }
}

impl Predictor for Tendency {
    fn name(&self) -> &'static str {
        "TENDENCY"
    }

    fn min_history(&self) -> usize {
        2
    }

    fn predict(&self, history: &[f64]) -> f64 {
        let n = history.len();
        let cur = history[n - 1];
        let prev = history[n - 2];
        let direction = (cur - prev).signum();
        if direction == 0.0 {
            return cur;
        }
        let start = n.saturating_sub(self.window + 1);
        let recent = &history[start..];
        let mean_step =
            recent.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (recent.len() - 1) as f64;
        cur + direction * mean_step
    }
}

/// Polynomial extrapolation (Zhang, Sun & Inoguchi, CCGRID'06): least-squares
/// fit of a degree-`degree` polynomial to the last `window` points, evaluated
/// one step past the end.
///
/// The abscissae are `0..window` (the forecast point is `window`), which keeps
/// the Vandermonde system well-conditioned for the small windows used here.
#[derive(Debug, Clone, Copy)]
pub struct PolyFit {
    window: usize,
    degree: usize,
}

impl PolyFit {
    /// Creates a polynomial extrapolator.
    ///
    /// # Errors
    ///
    /// Returns [`PredictorError::InvalidParameter`] unless
    /// `window > degree >= 1` (a degree-d fit needs d+1 points; degree 0 is
    /// just [`super::simple::SwAvg`]).
    pub fn new(window: usize, degree: usize) -> Result<Self> {
        if degree == 0 {
            return Err(PredictorError::InvalidParameter(
                "POLY degree 0 is the window mean; use SW_AVG".into(),
            ));
        }
        if window <= degree {
            return Err(PredictorError::InvalidParameter(format!(
                "POLY needs window > degree, got window {window} degree {degree}"
            )));
        }
        Ok(Self { window, degree })
    }
}

impl Predictor for PolyFit {
    fn name(&self) -> &'static str {
        "POLY"
    }

    fn min_history(&self) -> usize {
        self.degree + 1
    }

    fn predict(&self, history: &[f64]) -> f64 {
        let start = history.len().saturating_sub(self.window);
        let pts = &history[start..];
        let n = pts.len();
        // Degenerate: fewer points than degree+1 cannot happen (min_history),
        // but a constant slice makes the normal equations singular for
        // degree >= 1 only via collinearity of *values*, which is fine — the
        // design matrix depends on abscissae alone and is always full rank
        // for n > degree.
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let x = i as f64;
            let mut row = Vec::with_capacity(self.degree + 1);
            let mut p = 1.0;
            for _ in 0..=self.degree {
                row.push(p);
                p *= x;
            }
            rows.push(row);
        }
        let design = Matrix::from_rows(&rows).expect("window >= degree+1 > 0");
        match gauss::lstsq(&design, pts) {
            Ok(coef) => {
                let x = n as f64;
                let mut p = 1.0;
                let mut y = 0.0;
                for &c in &coef {
                    y += c * p;
                    p *= x;
                }
                y
            }
            // Numerically rank-deficient (should not occur for these
            // abscissae): fall back to persistence rather than poisoning the
            // pipeline with NaN.
            Err(_) => pts[n - 1],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tendency_follows_up_trend() {
        let m = Tendency::new(4).unwrap();
        let p = m.predict(&[1.0, 2.0, 3.0, 4.0]);
        assert!((p - 5.0).abs() < 1e-12, "{p}");
    }

    #[test]
    fn tendency_follows_down_trend() {
        let m = Tendency::new(4).unwrap();
        let p = m.predict(&[4.0, 3.0, 2.0, 1.0]);
        assert!((p - 0.0).abs() < 1e-12, "{p}");
    }

    #[test]
    fn tendency_flat_predicts_last() {
        let m = Tendency::new(4).unwrap();
        assert_eq!(m.predict(&[3.0, 3.0]), 3.0);
    }

    #[test]
    fn tendency_step_magnitude_is_averaged() {
        let m = Tendency::new(2).unwrap();
        // Last two increments: +1, +3 -> mean 2; direction up from 4->7.
        let p = m.predict(&[3.0, 4.0, 7.0]);
        assert!((p - 9.0).abs() < 1e-12, "{p}");
    }

    #[test]
    fn tendency_validation() {
        assert!(Tendency::new(0).is_err());
    }

    #[test]
    fn poly_line_is_exact() {
        let m = PolyFit::new(4, 1).unwrap();
        let p = m.predict(&[2.0, 4.0, 6.0, 8.0]);
        assert!((p - 10.0).abs() < 1e-9, "{p}");
    }

    #[test]
    fn poly_quadratic_is_exact_with_degree_two() {
        let m = PolyFit::new(5, 2).unwrap();
        let h: Vec<f64> = (0..5).map(|i| (i * i) as f64).collect();
        let p = m.predict(&h);
        assert!((p - 25.0).abs() < 1e-6, "{p}");
    }

    #[test]
    fn poly_constant_series_predicts_constant() {
        let m = PolyFit::new(4, 1).unwrap();
        let p = m.predict(&[5.0; 6]);
        assert!((p - 5.0).abs() < 1e-9, "{p}");
    }

    #[test]
    fn poly_uses_only_window() {
        let m = PolyFit::new(3, 1).unwrap();
        // Window sees [1, 2, 3] regardless of the ancient 100.
        let p = m.predict(&[100.0, 1.0, 2.0, 3.0]);
        assert!((p - 4.0).abs() < 1e-9, "{p}");
    }

    #[test]
    fn poly_validation() {
        assert!(PolyFit::new(2, 2).is_err());
        assert!(PolyFit::new(3, 0).is_err());
        assert!(PolyFit::new(3, 2).is_ok());
    }

    #[test]
    fn poly_short_history_still_finite() {
        let m = PolyFit::new(8, 2).unwrap();
        // Only 3 points (= degree + 1): exact quadratic through them.
        let p = m.predict(&[0.0, 1.0, 4.0]);
        assert!(p.is_finite());
        assert!((p - 9.0).abs() < 1e-6, "{p}");
    }
}
