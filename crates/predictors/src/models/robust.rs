//! Robust and adaptive-window summary models.
//!
//! These generalise the NWS forecaster family: medians and trimmed means resist
//! the bursty outliers typical of network/disk traces, and the adaptive-window
//! variants re-select their window length on every call by minimising in-sample
//! one-step error over the provided history — a stateless rendering of NWS's
//! ADJ_MEAN / ADJ_MEDIAN "adjusting" forecasters.

use timeseries::stats;

use crate::{Predictor, PredictorError, Result};

fn positive_window(model: &'static str, window: usize) -> Result<usize> {
    if window == 0 {
        return Err(PredictorError::InvalidParameter(format!("{model} window must be positive")));
    }
    Ok(window)
}

/// Median of the last `window` values.
#[derive(Debug, Clone, Copy)]
pub struct SlidingMedian {
    window: usize,
}

impl SlidingMedian {
    /// Creates a sliding median over the last `window` points.
    ///
    /// # Errors
    ///
    /// Returns [`PredictorError::InvalidParameter`] if `window == 0`.
    pub fn new(window: usize) -> Result<Self> {
        Ok(Self { window: positive_window("MEDIAN", window)? })
    }
}

impl Predictor for SlidingMedian {
    fn name(&self) -> &'static str {
        "MEDIAN"
    }

    fn min_history(&self) -> usize {
        1
    }

    fn predict(&self, history: &[f64]) -> f64 {
        let start = history.len().saturating_sub(self.window);
        stats::median(&history[start..]).expect("window is non-empty")
    }
}

/// α-trimmed mean of the last `window` values.
#[derive(Debug, Clone, Copy)]
pub struct TrimmedMean {
    window: usize,
    alpha: f64,
}

impl TrimmedMean {
    /// Creates a trimmed mean over the last `window` points, dropping the
    /// `alpha` fraction from each tail (`alpha` in `[0, 0.5)`).
    ///
    /// # Errors
    ///
    /// Returns [`PredictorError::InvalidParameter`] for a zero window or an
    /// out-of-range trim fraction.
    pub fn new(window: usize, alpha: f64) -> Result<Self> {
        positive_window("TRIM_MEAN", window)?;
        if !alpha.is_finite() || !(0.0..0.5).contains(&alpha) {
            return Err(PredictorError::InvalidParameter(format!(
                "trim fraction must be in [0, 0.5), got {alpha}"
            )));
        }
        Ok(Self { window, alpha })
    }
}

impl Predictor for TrimmedMean {
    fn name(&self) -> &'static str {
        "TRIM_MEAN"
    }

    fn min_history(&self) -> usize {
        1
    }

    fn predict(&self, history: &[f64]) -> f64 {
        let start = history.len().saturating_sub(self.window);
        stats::trimmed_mean(&history[start..], self.alpha).expect("validated at construction")
    }
}

/// Shared machinery for the adaptive-window models: evaluate each candidate
/// window by replaying one-step forecasts over the history and keep the window
/// with the lowest squared error, then forecast with it.
fn adaptive_predict(history: &[f64], candidates: &[usize], summary: impl Fn(&[f64]) -> f64) -> f64 {
    debug_assert!(!candidates.is_empty());
    let mut best_w = candidates[0];
    let mut best_err = f64::INFINITY;
    for &w in candidates {
        // Replay: forecast history[t] from the w values before it.
        let mut err = 0.0;
        let mut n = 0usize;
        for t in 1..history.len() {
            let start = t.saturating_sub(w);
            let f = summary(&history[start..t]);
            err += (f - history[t]).powi(2);
            n += 1;
        }
        if n > 0 && err < best_err {
            best_err = err;
            best_w = w;
        }
    }
    let start = history.len().saturating_sub(best_w);
    summary(&history[start..])
}

/// Mean with a per-call adaptive window (NWS ADJ_MEAN analogue).
#[derive(Debug, Clone)]
pub struct AdaptiveMean {
    candidates: Vec<usize>,
}

impl AdaptiveMean {
    /// Creates an adaptive mean choosing among the given window lengths.
    ///
    /// # Errors
    ///
    /// Returns [`PredictorError::InvalidParameter`] if `candidates` is empty or
    /// contains a zero window.
    pub fn new(candidates: Vec<usize>) -> Result<Self> {
        if candidates.is_empty() || candidates.contains(&0) {
            return Err(PredictorError::InvalidParameter(
                "ADJ_MEAN needs a non-empty list of positive windows".into(),
            ));
        }
        Ok(Self { candidates })
    }

    /// Default candidate set `{1, 2, 4, 8, 16}`.
    pub fn default_candidates() -> Self {
        Self { candidates: vec![1, 2, 4, 8, 16] }
    }
}

impl Predictor for AdaptiveMean {
    fn name(&self) -> &'static str {
        "ADJ_MEAN"
    }

    fn min_history(&self) -> usize {
        2
    }

    fn predict(&self, history: &[f64]) -> f64 {
        adaptive_predict(history, &self.candidates, |w| linalg::kernels::sum(w) / w.len() as f64)
    }
}

/// Median with a per-call adaptive window (NWS ADJ_MEDIAN analogue).
#[derive(Debug, Clone)]
pub struct AdaptiveMedian {
    candidates: Vec<usize>,
}

impl AdaptiveMedian {
    /// Creates an adaptive median choosing among the given window lengths.
    ///
    /// # Errors
    ///
    /// Returns [`PredictorError::InvalidParameter`] if `candidates` is empty or
    /// contains a zero window.
    pub fn new(candidates: Vec<usize>) -> Result<Self> {
        if candidates.is_empty() || candidates.contains(&0) {
            return Err(PredictorError::InvalidParameter(
                "ADJ_MEDIAN needs a non-empty list of positive windows".into(),
            ));
        }
        Ok(Self { candidates })
    }

    /// Default candidate set `{1, 3, 5, 9, 15}` (odd windows give exact medians).
    pub fn default_candidates() -> Self {
        Self { candidates: vec![1, 3, 5, 9, 15] }
    }
}

impl Predictor for AdaptiveMedian {
    fn name(&self) -> &'static str {
        "ADJ_MEDIAN"
    }

    fn min_history(&self) -> usize {
        2
    }

    fn predict(&self, history: &[f64]) -> f64 {
        adaptive_predict(history, &self.candidates, |w| {
            stats::median(w).expect("window is non-empty")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sliding_median_resists_outliers() {
        let m = SlidingMedian::new(5).unwrap();
        assert_eq!(m.predict(&[1.0, 1.0, 100.0, 1.0, 1.0]), 1.0);
    }

    #[test]
    fn sliding_median_uses_only_window() {
        let m = SlidingMedian::new(3).unwrap();
        // Last three values are 5, 7, 9 -> median 7.
        assert_eq!(m.predict(&[1000.0, 5.0, 7.0, 9.0]), 7.0);
    }

    #[test]
    fn trimmed_mean_between_mean_and_median() {
        let m = TrimmedMean::new(5, 0.2).unwrap();
        let h = [1.0, 2.0, 3.0, 4.0, 100.0];
        let got = m.predict(&h);
        // Drops 1 and 100; mean of [2, 3, 4] = 3.
        assert_eq!(got, 3.0);
    }

    #[test]
    fn trimmed_mean_validation() {
        assert!(TrimmedMean::new(0, 0.1).is_err());
        assert!(TrimmedMean::new(5, 0.5).is_err());
        assert!(TrimmedMean::new(5, -0.1).is_err());
    }

    #[test]
    fn adaptive_mean_picks_short_window_on_step_change() {
        // Series jumps from 0 to 10 and stays: a short window tracks the new
        // level, a long window averages the stale zeros in.
        let mut h = vec![0.0; 10];
        h.extend(vec![10.0; 10]);
        let m = AdaptiveMean::new(vec![1, 16]).unwrap();
        let p = m.predict(&h);
        assert!((p - 10.0).abs() < 1e-9, "prediction {p} should track the new level");
    }

    #[test]
    fn adaptive_mean_picks_long_window_on_noise() {
        // Alternating +1/-1 noise around 0: window 1 predicts the previous
        // (wrong) extreme, long windows predict ~0 which is much better.
        let h: Vec<f64> = (0..40).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let m = AdaptiveMean::new(vec![1, 2]).unwrap();
        let p = m.predict(&h);
        assert!(p.abs() < 0.5, "prediction {p} should average the noise");
    }

    #[test]
    fn adaptive_median_tracks_regime_change() {
        let mut h = vec![1.0; 8];
        h.extend(vec![9.0; 8]);
        let m = AdaptiveMedian::new(vec![1, 15]).unwrap();
        assert!((m.predict(&h) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn adaptive_validation() {
        assert!(AdaptiveMean::new(vec![]).is_err());
        assert!(AdaptiveMean::new(vec![0, 2]).is_err());
        assert!(AdaptiveMedian::new(vec![]).is_err());
        assert!(AdaptiveMedian::new(vec![3, 0]).is_err());
    }

    #[test]
    fn default_candidates_work() {
        let h: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let mean = AdaptiveMean::default_candidates().predict(&h);
        let med = AdaptiveMedian::default_candidates().predict(&h);
        assert!(mean.is_finite());
        assert!(med.is_finite());
        // On a ramp the shortest window (most recent values) must win.
        assert!(mean > 17.0, "mean {mean}");
        assert!(med > 17.0, "median {med}");
    }
}
