//! Simple history-summary models: LAST, means, EWMA.

use crate::{Predictor, PredictorError, Result};

/// The LAST model (paper Eq. 2): the forecast is the most recent value.
///
/// Best on smooth traces where consecutive samples are strongly correlated.
#[derive(Debug, Clone, Copy, Default)]
pub struct Last;

impl Predictor for Last {
    fn name(&self) -> &'static str {
        "LAST"
    }

    fn min_history(&self) -> usize {
        1
    }

    fn predict(&self, history: &[f64]) -> f64 {
        *history.last().expect("LAST requires at least one point")
    }
}

/// The sliding-window average (paper Eq. 3): mean of the last `window` values.
///
/// Best on noisy but stationary traces, where averaging cancels measurement
/// noise. If the provided history is shorter than the window (but at least one
/// point), the available prefix is averaged.
#[derive(Debug, Clone, Copy)]
pub struct SwAvg {
    window: usize,
}

impl SwAvg {
    /// Creates a sliding-window average over the last `window` points.
    ///
    /// # Errors
    ///
    /// Returns [`PredictorError::InvalidParameter`] if `window == 0`.
    pub fn new(window: usize) -> Result<Self> {
        if window == 0 {
            return Err(PredictorError::InvalidParameter("SW_AVG window must be positive".into()));
        }
        Ok(Self { window })
    }

    /// The configured window length.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Predictor for SwAvg {
    fn name(&self) -> &'static str {
        "SW_AVG"
    }

    fn min_history(&self) -> usize {
        1
    }

    fn predict(&self, history: &[f64]) -> f64 {
        let start = history.len().saturating_sub(self.window);
        let tail = &history[start..];
        linalg::kernels::sum(tail) / tail.len() as f64
    }
}

/// The full-history mean (NWS's RUN_AVG): averages every provided point.
///
/// Differs from [`SwAvg`] only when the caller supplies more history than the
/// sliding window — the NWS baseline selectors do.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mean;

impl Predictor for Mean {
    fn name(&self) -> &'static str {
        "MEAN"
    }

    fn min_history(&self) -> usize {
        1
    }

    fn predict(&self, history: &[f64]) -> f64 {
        linalg::kernels::sum(history) / history.len() as f64
    }
}

/// Exponentially weighted moving average: `s ← α·x + (1-α)·s`, seeded with the
/// oldest provided value; the forecast is the final smoothed state.
///
/// `alpha` near 1 behaves like LAST; near 0 like the full mean.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`PredictorError::InvalidParameter`] if `alpha` is outside
    /// `(0, 1]` or non-finite.
    pub fn new(alpha: f64) -> Result<Self> {
        if !alpha.is_finite() || !(0.0..=1.0).contains(&alpha) || alpha == 0.0 {
            return Err(PredictorError::InvalidParameter(format!(
                "EWMA smoothing factor must be in (0, 1], got {alpha}"
            )));
        }
        Ok(Self { alpha })
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Predictor for Ewma {
    fn name(&self) -> &'static str {
        "EWMA"
    }

    fn min_history(&self) -> usize {
        1
    }

    fn predict(&self, history: &[f64]) -> f64 {
        let mut s = history[0];
        for &x in &history[1..] {
            s = self.alpha * x + (1.0 - self.alpha) * s;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_returns_most_recent() {
        assert_eq!(Last.predict(&[1.0, 2.0, 3.0]), 3.0);
        assert_eq!(Last.predict(&[7.0]), 7.0);
    }

    #[test]
    fn last_is_exact_on_constant_series() {
        assert_eq!(Last.predict(&[5.0, 5.0, 5.0]), 5.0);
    }

    #[test]
    fn sw_avg_uses_only_the_window() {
        let m = SwAvg::new(2).unwrap();
        assert_eq!(m.predict(&[100.0, 2.0, 4.0]), 3.0);
    }

    #[test]
    fn sw_avg_short_history_averages_what_exists() {
        let m = SwAvg::new(10).unwrap();
        assert_eq!(m.predict(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn sw_avg_rejects_zero_window() {
        assert!(SwAvg::new(0).is_err());
    }

    #[test]
    fn mean_averages_everything() {
        assert_eq!(Mean.predict(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn ewma_alpha_one_is_last() {
        let m = Ewma::new(1.0).unwrap();
        let h = [1.0, 9.0, 4.0];
        assert_eq!(m.predict(&h), Last.predict(&h));
    }

    #[test]
    fn ewma_small_alpha_stays_near_start() {
        let m = Ewma::new(0.01).unwrap();
        let h = [10.0, 0.0, 0.0, 0.0];
        assert!(m.predict(&h) > 9.0);
    }

    #[test]
    fn ewma_constant_series_is_fixed_point() {
        let m = Ewma::new(0.3).unwrap();
        assert!((m.predict(&[4.0; 20]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_validates_alpha() {
        assert!(Ewma::new(0.0).is_err());
        assert!(Ewma::new(1.5).is_err());
        assert!(Ewma::new(f64::NAN).is_err());
        assert!(Ewma::new(0.5).is_ok());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Last.name(), "LAST");
        assert_eq!(SwAvg::new(3).unwrap().name(), "SW_AVG");
        assert_eq!(Mean.name(), "MEAN");
        assert_eq!(Ewma::new(0.5).unwrap().name(), "EWMA");
    }
}
