//! Autoregressive models fitted with Yule–Walker (the paper's parametric model).
//!
//! Dinda's host-load study — cited by the paper as the reason AR is in the
//! pool — found AR(16) the best accuracy/overhead trade-off, and the paper fits
//! AR with "the Yule-Walker technique". [`Ar::fit`] follows that recipe exactly:
//! sample autocovariances with `1/n` normalisation, solved by Levinson–Durbin.
//! [`Ari`] adds a differenced variant (the "I" of ARIMA) as the pool extension
//! the paper's future-work section anticipates.

use linalg::toeplitz::levinson_durbin;
use timeseries::stats;

use crate::{Predictor, PredictorError, Result};

/// A fitted AR(p) model: `x̂_{t+1} = μ + Σ φ_i (x_{t+1-i} − μ)`.
///
/// The mean `μ` is the training mean; on the z-normalised series of the paper's
/// pipeline it is ≈ 0, but keeping it makes the model correct on raw series too.
#[derive(Debug, Clone, PartialEq)]
pub struct Ar {
    order: usize,
    coefficients: Vec<f64>,
    mean: f64,
    innovation_variance: f64,
    degenerate: bool,
}

impl Ar {
    /// Fits an AR(`order`) model to `train` via Yule–Walker.
    ///
    /// A (near-)constant training series has no autocovariance structure; the
    /// paper's traces include long flat stretches (e.g. memory size), so rather
    /// than failing, the fit degrades to the persistence model
    /// (`φ = [1, 0, …]`) and marks itself [`Ar::is_degenerate`].
    ///
    /// # Errors
    ///
    /// * [`PredictorError::InvalidParameter`] if `order == 0`;
    /// * [`PredictorError::InsufficientData`] if `train.len() < 2 * order`
    ///   (too few points for meaningful autocovariance estimates).
    pub fn fit(train: &[f64], order: usize) -> Result<Self> {
        if order == 0 {
            return Err(PredictorError::InvalidParameter("AR order must be >= 1".into()));
        }
        if train.len() < 2 * order {
            return Err(PredictorError::InsufficientData {
                model: "AR",
                needed: 2 * order,
                got: train.len(),
            });
        }
        let mean = stats::mean(train);
        let acov = stats::autocovariance(train, order)
            .map_err(|e| PredictorError::Numerical(e.to_string()))?;

        // Degenerate series (constant, or numerically so): fall back to
        // persistence instead of failing the whole pool.
        let rel_floor = 1e-12 * linalg::kernels::dot(train, train).max(1e-300);
        if acov[0] <= rel_floor {
            let mut coefficients = vec![0.0; order];
            coefficients[0] = 1.0;
            return Ok(Self {
                order,
                coefficients,
                mean,
                innovation_variance: 0.0,
                degenerate: true,
            });
        }

        match levinson_durbin(&acov, order) {
            Ok(sol) => Ok(Self {
                order,
                coefficients: sol.coefficients,
                mean,
                innovation_variance: sol.innovation_variance,
                degenerate: false,
            }),
            // Perfectly predictable input mid-recursion: also persistence.
            Err(_) => {
                let mut coefficients = vec![0.0; order];
                coefficients[0] = 1.0;
                Ok(Self { order, coefficients, mean, innovation_variance: 0.0, degenerate: true })
            }
        }
    }

    /// Reconstructs a fitted model from previously extracted parameters
    /// (the inverse of [`Ar::fitted_state`] via `Predictor`), without
    /// touching training data.
    ///
    /// # Errors
    ///
    /// * [`PredictorError::InvalidParameter`] for an empty coefficient
    ///   vector or non-finite `mean`/`innovation_variance`/coefficients.
    pub fn from_parts(
        coefficients: Vec<f64>,
        mean: f64,
        innovation_variance: f64,
        degenerate: bool,
    ) -> Result<Self> {
        if coefficients.is_empty() {
            return Err(PredictorError::InvalidParameter(
                "AR restore needs at least one coefficient".into(),
            ));
        }
        if coefficients.iter().any(|c| !c.is_finite())
            || !mean.is_finite()
            || !innovation_variance.is_finite()
        {
            return Err(PredictorError::InvalidParameter(
                "AR restore parameters must be finite".into(),
            ));
        }
        Ok(Self { order: coefficients.len(), coefficients, mean, innovation_variance, degenerate })
    }

    /// The model order `p`.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Fitted coefficients `φ₁..φ_p` (lag-1 first).
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Training-sample mean used for centering.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// One-step prediction-error variance from the Levinson recursion.
    pub fn innovation_variance(&self) -> f64 {
        self.innovation_variance
    }

    /// Whether the fit degraded to persistence on degenerate training data.
    pub fn is_degenerate(&self) -> bool {
        self.degenerate
    }
}

impl Predictor for Ar {
    fn name(&self) -> &'static str {
        "AR"
    }

    fn min_history(&self) -> usize {
        self.order
    }

    fn predict(&self, history: &[f64]) -> f64 {
        let n = history.len();
        debug_assert!(n >= self.order, "AR({}) fed {} points", self.order, n);
        let mut acc = self.mean;
        for (i, &phi) in self.coefficients.iter().enumerate() {
            // φ_{i+1} pairs with x_{t-i}: the (i+1)-th most recent value.
            acc += phi * (history[n - 1 - i] - self.mean);
        }
        acc
    }

    fn fitted_state(&self) -> Vec<f64> {
        // Layout: [mean, innovation_variance, degenerate, φ₁..φ_p].
        let mut out = Vec::with_capacity(3 + self.coefficients.len());
        out.push(self.mean);
        out.push(self.innovation_variance);
        out.push(if self.degenerate { 1.0 } else { 0.0 });
        out.extend_from_slice(&self.coefficients);
        out
    }
}

/// ARI(p, d): AR fitted on the `d`-times differenced series, with forecasts
/// integrated back to the original scale.
#[derive(Debug, Clone, PartialEq)]
pub struct Ari {
    ar: Ar,
    diff_order: usize,
}

impl Ari {
    /// Fits an ARI(`order`, `diff_order`) model.
    ///
    /// # Errors
    ///
    /// * [`PredictorError::InvalidParameter`] if `diff_order == 0` (use [`Ar`])
    ///   or `order == 0`;
    /// * [`PredictorError::InsufficientData`] if differencing exhausts the
    ///   series or leaves too few points for the AR fit.
    pub fn fit(train: &[f64], order: usize, diff_order: usize) -> Result<Self> {
        if diff_order == 0 {
            return Err(PredictorError::InvalidParameter(
                "ARI with d = 0 is plain AR; use Ar::fit".into(),
            ));
        }
        let diffed = timeseries::diff::difference_n(train, diff_order).map_err(|_| {
            PredictorError::InsufficientData {
                model: "ARI",
                needed: diff_order + 1,
                got: train.len(),
            }
        })?;
        Ok(Self { ar: Ar::fit(&diffed, order)?, diff_order })
    }

    /// Reconstructs a fitted ARI from an [`Ar`] restored via
    /// [`Ar::from_parts`] and the differencing order.
    ///
    /// # Errors
    ///
    /// Returns [`PredictorError::InvalidParameter`] if `diff_order == 0`.
    pub fn from_parts(ar: Ar, diff_order: usize) -> Result<Self> {
        if diff_order == 0 {
            return Err(PredictorError::InvalidParameter(
                "ARI with d = 0 is plain AR; use Ar::from_parts".into(),
            ));
        }
        Ok(Self { ar, diff_order })
    }

    /// The differencing order `d`.
    pub fn diff_order(&self) -> usize {
        self.diff_order
    }

    /// The underlying AR model over the differenced series.
    pub fn inner(&self) -> &Ar {
        &self.ar
    }
}

impl Predictor for Ari {
    fn name(&self) -> &'static str {
        "ARI"
    }

    fn min_history(&self) -> usize {
        self.ar.min_history() + self.diff_order
    }

    fn predict(&self, history: &[f64]) -> f64 {
        // Difference the history d times, forecast the next difference at each
        // level from innermost out, then integrate back up.
        let mut levels: Vec<Vec<f64>> = Vec::with_capacity(self.diff_order + 1);
        levels.push(history.to_vec());
        for _ in 0..self.diff_order {
            let prev = levels.last().expect("non-empty by construction");
            let next = timeseries::diff::difference(prev).expect("min_history guarantees length");
            levels.push(next);
        }
        // Forecast the innermost differenced series with AR.
        let mut forecast = self.ar.predict(levels.last().expect("non-empty"));
        // Integrate: next value at level k = last(level k) + forecast(level k+1).
        for level in levels[..self.diff_order].iter().rev() {
            let last = *level.last().expect("non-empty");
            forecast = timeseries::diff::integrate_next(last, forecast);
        }
        forecast
    }

    fn fitted_state(&self) -> Vec<f64> {
        // The inner AR's layout; diff_order lives in the spec.
        self.ar.fitted_state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{dist::Normal, Xoshiro256pp};

    /// Generates an AR(2) series with known coefficients.
    fn ar2_series(phi1: f64, phi2: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let noise = Normal::new(0.0, 1.0).unwrap();
        let mut xs = vec![0.0; n + 200];
        for t in 2..xs.len() {
            xs[t] = phi1 * xs[t - 1] + phi2 * xs[t - 2] + noise.sample(&mut rng);
        }
        xs.split_off(200) // drop burn-in
    }

    #[test]
    fn recovers_ar2_coefficients() {
        let xs = ar2_series(0.5, 0.3, 20_000, 1);
        let ar = Ar::fit(&xs, 2).unwrap();
        assert!(!ar.is_degenerate());
        assert!((ar.coefficients()[0] - 0.5).abs() < 0.05, "{:?}", ar.coefficients());
        assert!((ar.coefficients()[1] - 0.3).abs() < 0.05, "{:?}", ar.coefficients());
    }

    #[test]
    fn higher_order_fit_has_near_zero_extra_coefficients() {
        let xs = ar2_series(0.6, 0.2, 20_000, 2);
        let ar = Ar::fit(&xs, 5).unwrap();
        for &c in &ar.coefficients()[2..] {
            assert!(c.abs() < 0.1, "{:?}", ar.coefficients());
        }
    }

    #[test]
    fn ar_beats_last_on_its_own_process() {
        // On a strongly mean-reverting AR(1) with negative coefficient,
        // persistence is the wrong model and AR must win.
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let noise = Normal::new(0.0, 1.0).unwrap();
        let mut xs = vec![0.0; 5000];
        for t in 1..xs.len() {
            xs[t] = -0.7 * xs[t - 1] + noise.sample(&mut rng);
        }
        let (train, test) = xs.split_at(2500);
        let ar = Ar::fit(train, 1).unwrap();
        let mut ar_err = 0.0;
        let mut last_err = 0.0;
        for t in 1..test.len() {
            let h = &test[..t];
            ar_err += (ar.predict(h) - test[t]).powi(2);
            last_err += (h[h.len() - 1] - test[t]).powi(2);
        }
        assert!(ar_err < last_err * 0.6, "AR {ar_err} vs LAST {last_err}");
    }

    #[test]
    fn constant_series_degrades_to_persistence() {
        let xs = [4.2; 100];
        let ar = Ar::fit(&xs, 3).unwrap();
        assert!(ar.is_degenerate());
        assert_eq!(ar.predict(&[4.2, 4.2, 4.2]), 4.2);
        // And it behaves like LAST on any input.
        assert_eq!(ar.predict(&[0.0, 1.0, 9.0]), 9.0);
    }

    #[test]
    fn mean_centering_matters_on_shifted_series() {
        // White noise around 100: AR should predict ~100, not ~0.
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let noise = Normal::new(100.0, 1.0).unwrap();
        let xs: Vec<f64> = (0..5000).map(|_| noise.sample(&mut rng)).collect();
        let ar = Ar::fit(&xs, 2).unwrap();
        let p = ar.predict(&[100.5, 99.5]);
        assert!((p - 100.0).abs() < 1.0, "{p}");
    }

    #[test]
    fn fit_validation() {
        assert!(Ar::fit(&[1.0, 2.0, 3.0], 0).is_err());
        assert!(matches!(
            Ar::fit(&[1.0, 2.0, 3.0], 2),
            Err(PredictorError::InsufficientData { .. })
        ));
    }

    #[test]
    fn accessors_report_fit() {
        let xs = ar2_series(0.5, 0.2, 5000, 5);
        let ar = Ar::fit(&xs, 2).unwrap();
        assert_eq!(ar.order(), 2);
        assert_eq!(ar.min_history(), 2);
        assert!(ar.innovation_variance() > 0.0);
        assert_eq!(ar.name(), "AR");
    }

    #[test]
    fn ari_handles_linear_trend_exactly_better_than_ar() {
        // x_t = t + small noise: differencing makes it stationary.
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let noise = Normal::new(0.0, 0.01).unwrap();
        let xs: Vec<f64> = (0..2000).map(|t| t as f64 + noise.sample(&mut rng)).collect();
        let (train, test) = xs.split_at(1000);
        let ari = Ari::fit(train, 2, 1).unwrap();
        let mut err = 0.0;
        let mut n = 0;
        for t in ari.min_history()..test.len() {
            let h = &test[..t];
            err += (ari.predict(h) - test[t]).powi(2);
            n += 1;
        }
        let mse = err / n as f64;
        // AR without differencing pulls towards the training mean (~500) and
        // does terribly out at 1000+; ARI must stay near-perfect.
        assert!(mse < 0.1, "ARI mse {mse}");
    }

    #[test]
    fn ari_validation() {
        assert!(Ari::fit(&[1.0; 50], 2, 0).is_err());
        assert!(Ari::fit(&[1.0, 2.0], 1, 3).is_err());
        let ari = Ari::fit(&(0..100).map(|i| i as f64).collect::<Vec<_>>(), 1, 1).unwrap();
        assert_eq!(ari.diff_order(), 1);
        assert_eq!(ari.min_history(), 2);
        assert_eq!(ari.name(), "ARI");
    }

    #[test]
    fn ari_constant_series_predicts_constant() {
        let xs = vec![3.0; 100];
        let ari = Ari::fit(&xs, 1, 1).unwrap();
        assert!(ari.inner().is_degenerate());
        assert_eq!(ari.predict(&[3.0, 3.0, 3.0]), 3.0);
    }
}
