//! The individual prediction models.
//!
//! Grouped by family:
//!
//! * [`simple`] — LAST, window/full means, EWMA (the paper's non-parametric
//!   models and the NWS running-average family);
//! * [`robust`] — sliding median, trimmed mean, and the adaptive-window
//!   variants inspired by NWS's ADJ_* forecasters;
//! * [`trend`] — the tendency model (Yang et al., SC'03) and polynomial
//!   extrapolation (Zhang et al., CCGRID'06);
//! * [`ar`] — the autoregressive model fitted with Yule–Walker (the paper's
//!   parametric model, recommended by Dinda's host-load study) and its
//!   differenced ARI extension.

pub mod ar;
pub mod robust;
pub mod simple;
pub mod trend;

pub use ar::{Ar, Ari};
pub use robust::{AdaptiveMean, AdaptiveMedian, SlidingMedian, TrimmedMean};
pub use simple::{Ewma, Last, Mean, SwAvg};
pub use trend::{PolyFit, Tendency};
