//! Declarative model specifications.
//!
//! A [`ModelSpec`] names a model plus its hyper-parameters without fitting it;
//! [`ModelSpec::build`] fits it against training data (a no-op for the
//! non-parametric models). Pools are declared as spec lists so experiment
//! configurations are plain data — the ablation benches sweep specs.

use crate::models::{
    AdaptiveMean, AdaptiveMedian, Ar, Ari, Ewma, Last, Mean, PolyFit, SlidingMedian, SwAvg,
    Tendency, TrimmedMean,
};
use crate::{Predictor, Result};

/// A model name plus hyper-parameters, buildable against training data.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    /// Persistence: forecast = last value (paper Eq. 2).
    Last,
    /// Sliding-window mean over `window` points (paper Eq. 3).
    SwAvg {
        /// Window length.
        window: usize,
    },
    /// Mean of all provided history (NWS RUN_AVG).
    Mean,
    /// Exponentially weighted moving average with smoothing `alpha`.
    Ewma {
        /// Smoothing factor in `(0, 1]`.
        alpha: f64,
    },
    /// Median of the last `window` points.
    Median {
        /// Window length.
        window: usize,
    },
    /// α-trimmed mean of the last `window` points.
    TrimmedMean {
        /// Window length.
        window: usize,
        /// Trim fraction in `[0, 0.5)`.
        alpha: f64,
    },
    /// Mean with per-call adaptive window (NWS ADJ_MEAN analogue).
    AdaptiveMean,
    /// Median with per-call adaptive window (NWS ADJ_MEDIAN analogue).
    AdaptiveMedian,
    /// Tendency model (Yang et al.) averaging step sizes over `window`.
    Tendency {
        /// Increment-averaging window.
        window: usize,
    },
    /// Polynomial extrapolation (Zhang et al.).
    PolyFit {
        /// Fit window.
        window: usize,
        /// Polynomial degree (`>= 1`, `< window`).
        degree: usize,
    },
    /// AR(p) fitted by Yule–Walker (paper Eq. 4).
    Ar {
        /// Model order `p`.
        order: usize,
    },
    /// ARI(p, d): AR over the d-times differenced series.
    Ari {
        /// AR order `p`.
        order: usize,
        /// Differencing order `d >= 1`.
        diff: usize,
    },
}

impl ModelSpec {
    /// Fits/instantiates the model against `train`.
    ///
    /// # Errors
    ///
    /// Propagates parameter-validation and fitting errors from the model
    /// constructors.
    pub fn build(&self, train: &[f64]) -> Result<Box<dyn Predictor>> {
        Ok(match self {
            ModelSpec::Last => Box::new(Last),
            ModelSpec::SwAvg { window } => Box::new(SwAvg::new(*window)?),
            ModelSpec::Mean => Box::new(Mean),
            ModelSpec::Ewma { alpha } => Box::new(Ewma::new(*alpha)?),
            ModelSpec::Median { window } => Box::new(SlidingMedian::new(*window)?),
            ModelSpec::TrimmedMean { window, alpha } => {
                Box::new(TrimmedMean::new(*window, *alpha)?)
            }
            ModelSpec::AdaptiveMean => Box::new(AdaptiveMean::default_candidates()),
            ModelSpec::AdaptiveMedian => Box::new(AdaptiveMedian::default_candidates()),
            ModelSpec::Tendency { window } => Box::new(Tendency::new(*window)?),
            ModelSpec::PolyFit { window, degree } => Box::new(PolyFit::new(*window, *degree)?),
            ModelSpec::Ar { order } => Box::new(Ar::fit(train, *order)?),
            ModelSpec::Ari { order, diff } => Box::new(Ari::fit(train, *order, *diff)?),
        })
    }

    /// Reinstantiates the model from a previously extracted
    /// [`Predictor::fitted_state`](crate::Predictor::fitted_state) vector,
    /// without training data — the restore half of model serialization.
    ///
    /// Non-parametric models ignore `state` (their spec is their identity);
    /// AR/ARI decode `[mean, innovation_variance, degenerate, φ₁..φ_p]`.
    ///
    /// # Errors
    ///
    /// Propagates parameter-validation errors, plus
    /// [`crate::PredictorError::InvalidParameter`] for an AR/ARI state vector
    /// whose coefficient count disagrees with the spec's order.
    pub fn rebuild(&self, state: &[f64]) -> Result<Box<dyn Predictor>> {
        let decode_ar = |state: &[f64], order: usize, model: &'static str| -> Result<Ar> {
            if state.len() != 3 + order {
                return Err(crate::PredictorError::InvalidParameter(format!(
                    "{model}({order}) state needs {} values, got {}",
                    3 + order,
                    state.len()
                )));
            }
            Ar::from_parts(state[3..].to_vec(), state[0], state[1], state[2] != 0.0)
        };
        Ok(match self {
            ModelSpec::Ar { order } => Box::new(decode_ar(state, *order, "AR")?),
            ModelSpec::Ari { order, diff } => {
                Box::new(Ari::from_parts(decode_ar(state, *order, "ARI")?, *diff)?)
            }
            // Everything else carries no fitted state: rebuild from the spec.
            _ => self.build(&[])?,
        })
    }

    /// The paper's three-model pool in figure order: 1 = LAST, 2 = AR,
    /// 3 = SW_AVG. `order` is both the AR order and the SW_AVG window (the
    /// paper uses the prediction window `m` for both).
    pub fn standard_pool(order: usize) -> Vec<ModelSpec> {
        vec![ModelSpec::Last, ModelSpec::Ar { order }, ModelSpec::SwAvg { window: order }]
    }

    /// The extended pool: the standard three plus the NWS-style family and the
    /// trend models — the richer pool the paper's future work anticipates.
    pub fn extended_pool(order: usize) -> Vec<ModelSpec> {
        let mut specs = Self::standard_pool(order);
        specs.extend([
            ModelSpec::Ewma { alpha: 0.5 },
            ModelSpec::Median { window: order.max(3) },
            ModelSpec::TrimmedMean { window: order.max(5), alpha: 0.2 },
            ModelSpec::AdaptiveMean,
            ModelSpec::AdaptiveMedian,
            ModelSpec::Tendency { window: order.clamp(2, 4) },
            ModelSpec::PolyFit { window: order.max(4), degree: 1 },
            ModelSpec::Ari { order: order.max(2) - 1, diff: 1 },
        ]);
        specs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train() -> Vec<f64> {
        (0..200).map(|i| ((i as f64) * 0.37).sin() + 0.01 * i as f64).collect()
    }

    #[test]
    fn standard_pool_order_matches_paper_classes() {
        let specs = ModelSpec::standard_pool(16);
        assert_eq!(specs.len(), 3);
        assert!(matches!(specs[0], ModelSpec::Last));
        assert!(matches!(specs[1], ModelSpec::Ar { order: 16 }));
        assert!(matches!(specs[2], ModelSpec::SwAvg { window: 16 }));
    }

    #[test]
    fn every_standard_spec_builds() {
        let t = train();
        for spec in ModelSpec::standard_pool(5) {
            let model = spec.build(&t).unwrap();
            let h = &t[..20];
            assert!(model.predict(h).is_finite());
        }
    }

    #[test]
    fn every_extended_spec_builds_and_predicts() {
        let t = train();
        let specs = ModelSpec::extended_pool(5);
        assert!(specs.len() >= 10);
        for spec in specs {
            let model = spec.build(&t).unwrap();
            let h = &t[..30];
            assert!(h.len() >= model.min_history(), "{}", model.name());
            assert!(model.predict(h).is_finite(), "{}", model.name());
        }
    }

    #[test]
    fn build_propagates_parameter_errors() {
        assert!(ModelSpec::SwAvg { window: 0 }.build(&train()).is_err());
        assert!(ModelSpec::Ewma { alpha: 2.0 }.build(&train()).is_err());
        assert!(ModelSpec::Ar { order: 0 }.build(&train()).is_err());
    }

    #[test]
    fn build_propagates_insufficient_data() {
        let tiny = [1.0, 2.0];
        assert!(ModelSpec::Ar { order: 8 }.build(&tiny).is_err());
    }

    #[test]
    fn extended_pool_keeps_standard_prefix() {
        let ext = ModelSpec::extended_pool(16);
        let std = ModelSpec::standard_pool(16);
        assert_eq!(&ext[..3], &std[..]);
    }
}
