//! Randomized property tests for the predictor pool.
//!
//! Seeded `simrng` loops replace the original proptest strategies so the
//! suite runs without external crates; every case is deterministic per seed.

use simrng::{Rng64, Xoshiro256pp};

use predictors::models::{Ar, Ewma, Last, SlidingMedian, SwAvg, TrimmedMean};
use predictors::{ModelSpec, Predictor, PredictorPool};

fn random_vec(rng: &mut Xoshiro256pp, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.uniform(lo, hi)).collect()
}

fn history(rng: &mut Xoshiro256pp) -> Vec<f64> {
    let n = 5 + rng.next_below(55) as usize;
    random_vec(rng, n, -1e3, 1e3)
}

/// Summary models stay within the history's range (they interpolate,
/// never extrapolate).
#[test]
fn summary_models_stay_in_range() {
    let mut rng = Xoshiro256pp::seed_from_u64(401);
    for _ in 0..96 {
        let h = history(&mut rng);
        let lo = h.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = h.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for model in [
            Box::new(Last) as Box<dyn Predictor>,
            Box::new(SwAvg::new(4).unwrap()),
            Box::new(SlidingMedian::new(5).unwrap()),
            Box::new(TrimmedMean::new(5, 0.2).unwrap()),
            Box::new(Ewma::new(0.4).unwrap()),
        ] {
            let p = model.predict(&h);
            assert!(
                p >= lo - 1e-9 && p <= hi + 1e-9,
                "{} gave {p} outside [{lo}, {hi}]",
                model.name()
            );
        }
    }
}

/// Translation equivariance: predicting shifted history shifts summary
/// model forecasts by the same amount.
#[test]
fn summary_models_are_translation_equivariant() {
    let mut rng = Xoshiro256pp::seed_from_u64(402);
    for _ in 0..96 {
        let h = history(&mut rng);
        let shift = rng.uniform(-100.0, 100.0);
        let shifted: Vec<f64> = h.iter().map(|x| x + shift).collect();
        for model in [
            Box::new(Last) as Box<dyn Predictor>,
            Box::new(SwAvg::new(4).unwrap()),
            Box::new(SlidingMedian::new(5).unwrap()),
            Box::new(Ewma::new(0.4).unwrap()),
        ] {
            let a = model.predict(&h);
            let b = model.predict(&shifted);
            assert!((b - (a + shift)).abs() < 1e-6, "{}", model.name());
        }
    }
}

/// AR forecasts are finite and the fit is deterministic.
#[test]
fn ar_fit_finite_and_deterministic() {
    let mut rng = Xoshiro256pp::seed_from_u64(403);
    for _ in 0..96 {
        let n = 20 + rng.next_below(130) as usize;
        let train = random_vec(&mut rng, n, -100.0, 100.0);
        let Ok(a) = Ar::fit(&train, 4) else { continue };
        let b = Ar::fit(&train, 4).unwrap();
        assert_eq!(a.coefficients(), b.coefficients());
        let p = a.predict(&train[train.len() - 4..]);
        assert!(p.is_finite());
        assert!(a.innovation_variance() >= 0.0);
    }
}

/// The pool's best_for really is the argmin of absolute errors.
#[test]
fn best_for_is_argmin() {
    let mut rng = Xoshiro256pp::seed_from_u64(404);
    for _ in 0..96 {
        let n = 30 + rng.next_below(70) as usize;
        let train = random_vec(&mut rng, n, -100.0, 100.0);
        let actual = rng.uniform(-100.0, 100.0);
        let Ok(pool) = PredictorPool::standard(&train, 5) else { continue };
        let h = &train[..10];
        let (best, forecasts) = pool.best_for(h, actual);
        let best_err = (forecasts[best.0] - actual).abs();
        for f in &forecasts {
            assert!(best_err <= (f - actual).abs() + 1e-12);
        }
    }
}

/// Every extended-pool model respects min_history and returns finite
/// forecasts on any sufficient history.
#[test]
fn extended_pool_total_on_valid_inputs() {
    let mut rng = Xoshiro256pp::seed_from_u64(405);
    for _ in 0..96 {
        let n = 40 + rng.next_below(80) as usize;
        let train = random_vec(&mut rng, n, -100.0, 100.0);
        let specs = ModelSpec::extended_pool(5);
        let Ok(pool) = PredictorPool::from_specs(&specs, &train) else { continue };
        let h = &train[..pool.min_history() + 3];
        for (id, f) in pool.ids().zip(pool.predict_all(h)) {
            assert!(f.is_finite(), "{}", pool.name(id));
        }
    }
}
