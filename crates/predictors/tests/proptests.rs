//! Property-based tests for the predictor pool.

use proptest::prelude::*;

use predictors::models::{Ar, Ewma, Last, SlidingMedian, SwAvg, TrimmedMean};
use predictors::{ModelSpec, Predictor, PredictorPool};

fn history() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e3f64..1e3, 5..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Summary models stay within the history's range (they interpolate,
    /// never extrapolate).
    #[test]
    fn summary_models_stay_in_range(h in history()) {
        let lo = h.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = h.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for model in [
            Box::new(Last) as Box<dyn Predictor>,
            Box::new(SwAvg::new(4).unwrap()),
            Box::new(SlidingMedian::new(5).unwrap()),
            Box::new(TrimmedMean::new(5, 0.2).unwrap()),
            Box::new(Ewma::new(0.4).unwrap()),
        ] {
            let p = model.predict(&h);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{} gave {p} outside [{lo}, {hi}]", model.name());
        }
    }

    /// Translation equivariance: predicting shifted history shifts summary
    /// model forecasts by the same amount.
    #[test]
    fn summary_models_are_translation_equivariant(h in history(), shift in -100.0f64..100.0) {
        let shifted: Vec<f64> = h.iter().map(|x| x + shift).collect();
        for model in [
            Box::new(Last) as Box<dyn Predictor>,
            Box::new(SwAvg::new(4).unwrap()),
            Box::new(SlidingMedian::new(5).unwrap()),
            Box::new(Ewma::new(0.4).unwrap()),
        ] {
            let a = model.predict(&h);
            let b = model.predict(&shifted);
            prop_assert!((b - (a + shift)).abs() < 1e-6, "{}", model.name());
        }
    }

    /// AR forecasts are finite and the fit is deterministic.
    #[test]
    fn ar_fit_finite_and_deterministic(train in proptest::collection::vec(-100f64..100.0, 20..150)) {
        let Ok(a) = Ar::fit(&train, 4) else { return Ok(()); };
        let b = Ar::fit(&train, 4).unwrap();
        prop_assert_eq!(a.coefficients(), b.coefficients());
        let p = a.predict(&train[train.len() - 4..]);
        prop_assert!(p.is_finite());
        prop_assert!(a.innovation_variance() >= 0.0);
    }

    /// The pool's best_for really is the argmin of absolute errors.
    #[test]
    fn best_for_is_argmin(train in proptest::collection::vec(-100f64..100.0, 30..100), actual in -100f64..100.0) {
        let Ok(pool) = PredictorPool::standard(&train, 5) else { return Ok(()); };
        let h = &train[..10];
        let (best, forecasts) = pool.best_for(h, actual);
        let best_err = (forecasts[best.0] - actual).abs();
        for f in &forecasts {
            prop_assert!(best_err <= (f - actual).abs() + 1e-12);
        }
    }

    /// Every extended-pool model respects min_history and returns finite
    /// forecasts on any sufficient history.
    #[test]
    fn extended_pool_total_on_valid_inputs(train in proptest::collection::vec(-100f64..100.0, 40..120)) {
        let specs = ModelSpec::extended_pool(5);
        let Ok(pool) = PredictorPool::from_specs(&specs, &train) else { return Ok(()); };
        let h = &train[..pool.min_history() + 3];
        for (id, f) in pool.ids().zip(pool.predict_all(h)) {
            prop_assert!(f.is_finite(), "{}", pool.name(id));
        }
    }
}
