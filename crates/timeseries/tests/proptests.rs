//! Property-based tests for the time-series substrate.

use proptest::prelude::*;

use timeseries::{diff, metrics, stats, Frames, Series, ZScore};

fn values() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e4f64..1e4, 2..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Fitting and applying z-score yields zero mean / unit variance (or pure
    /// centering for constant data), and inverts exactly.
    #[test]
    fn zscore_normalises_and_inverts(xs in values()) {
        let z = ZScore::fit(&xs).unwrap();
        let t = z.apply_slice(&xs);
        let scale = xs.iter().map(|v| v.abs()).fold(1.0, f64::max);
        prop_assert!(stats::mean(&t).abs() < 1e-9);
        if z.std() > 1e-9 * scale {
            prop_assert!((stats::variance(&t) - 1.0).abs() < 1e-6);
        }
        let back = z.invert_slice(&t);
        for (a, b) in back.iter().zip(&xs) {
            prop_assert!((a - b).abs() < 1e-9 * scale);
        }
    }

    /// difference / integrate round-trips.
    #[test]
    fn difference_integrate_round_trip(xs in values()) {
        let d = diff::difference(&xs).unwrap();
        let back = diff::integrate(xs[0], &d);
        let scale = xs.iter().map(|v| v.abs()).fold(1.0, f64::max);
        prop_assert_eq!(back.len(), xs.len());
        for (a, b) in back.iter().zip(&xs) {
            prop_assert!((a - b).abs() < 1e-8 * scale);
        }
    }

    /// Frames cover the series exactly once per offset and targets align.
    #[test]
    fn frames_cover_and_align(xs in values(), m in 1usize..10) {
        prop_assume!(xs.len() > m);
        let frames = Frames::new(&xs, m).unwrap();
        prop_assert_eq!(frames.count(), xs.len() - m + 1);
        for (i, (w, target)) in frames.with_targets().enumerate() {
            prop_assert_eq!(w, &xs[i..i + m]);
            prop_assert_eq!(target, xs[i + m]);
        }
    }

    /// MSE >= MAE² (Jensen) and RMSE² == MSE.
    #[test]
    fn metric_inequalities(
        a in proptest::collection::vec(-100.0f64..100.0, 1..50),
        shift in proptest::collection::vec(-10.0f64..10.0, 50),
    ) {
        let b: Vec<f64> = a.iter().zip(&shift).map(|(x, s)| x + s).collect();
        let mse = metrics::mse(&a, &b).unwrap();
        let mae = metrics::mae(&a, &b).unwrap();
        let rmse = metrics::rmse(&a, &b).unwrap();
        prop_assert!(mse + 1e-12 >= mae * mae);
        prop_assert!((rmse * rmse - mse).abs() < 1e-9 * mse.max(1.0));
    }

    /// Autocovariance is maximal at lag zero.
    #[test]
    fn autocovariance_peak_at_zero(xs in proptest::collection::vec(-50f64..50.0, 10..120)) {
        let max_lag = 5.min(xs.len() - 1);
        let acov = stats::autocovariance(&xs, max_lag).unwrap();
        for &c in &acov[1..] {
            prop_assert!(c.abs() <= acov[0] + 1e-9);
        }
    }

    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantiles_monotone(xs in proptest::collection::vec(-50f64..50.0, 1..60)) {
        let q25 = stats::quantile(&xs, 0.25).unwrap();
        let q50 = stats::quantile(&xs, 0.5).unwrap();
        let q75 = stats::quantile(&xs, 0.75).unwrap();
        prop_assert!(q25 <= q50 && q50 <= q75);
        prop_assert!(q25 >= stats::min(&xs).unwrap() - 1e-12);
        prop_assert!(q75 <= stats::max(&xs).unwrap() + 1e-12);
    }

    /// Trimmed mean lies between min and max and equals mean at alpha = 0.
    #[test]
    fn trimmed_mean_bounds(xs in proptest::collection::vec(-50f64..50.0, 1..60), alpha in 0.0f64..0.49) {
        let t = stats::trimmed_mean(&xs, alpha).unwrap();
        prop_assert!(t >= stats::min(&xs).unwrap() - 1e-12);
        prop_assert!(t <= stats::max(&xs).unwrap() + 1e-12);
        let plain = stats::trimmed_mean(&xs, 0.0).unwrap();
        prop_assert!((plain - stats::mean(&xs)).abs() < 1e-9);
    }

    /// Series slicing preserves values and timestamps.
    #[test]
    fn series_slice_consistency(xs in values(), start in 0usize..20, len in 1usize..20) {
        let series = Series::new(xs.clone(), 1000, 60).unwrap();
        prop_assume!(start + len <= series.len());
        let sub = series.slice(start..start + len).unwrap();
        prop_assert_eq!(sub.values(), &xs[start..start + len]);
        prop_assert_eq!(sub.timestamp(0), series.timestamp(start));
    }
}
