//! Randomized property tests for the time-series substrate.
//!
//! Seeded `simrng` loops replace the original proptest strategies so the
//! suite runs without external crates; every case is deterministic per seed.

use simrng::{Rng64, Xoshiro256pp};

use timeseries::{diff, metrics, stats, Frames, Series, ZScore};

fn random_vec(rng: &mut Xoshiro256pp, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.uniform(lo, hi)).collect()
}

fn values(rng: &mut Xoshiro256pp) -> Vec<f64> {
    let n = 2 + rng.next_below(198) as usize;
    random_vec(rng, n, -1e4, 1e4)
}

/// Fitting and applying z-score yields zero mean / unit variance (or pure
/// centering for constant data), and inverts exactly.
#[test]
fn zscore_normalises_and_inverts() {
    let mut rng = Xoshiro256pp::seed_from_u64(301);
    for _ in 0..96 {
        let xs = values(&mut rng);
        let z = ZScore::fit(&xs).unwrap();
        let t = z.apply_slice(&xs);
        let scale = xs.iter().map(|v| v.abs()).fold(1.0, f64::max);
        assert!(stats::mean(&t).abs() < 1e-9);
        if z.std() > 1e-9 * scale {
            assert!((stats::variance(&t) - 1.0).abs() < 1e-6);
        }
        let back = z.invert_slice(&t);
        for (a, b) in back.iter().zip(&xs) {
            assert!((a - b).abs() < 1e-9 * scale);
        }
    }
}

/// difference / integrate round-trips.
#[test]
fn difference_integrate_round_trip() {
    let mut rng = Xoshiro256pp::seed_from_u64(302);
    for _ in 0..96 {
        let xs = values(&mut rng);
        let d = diff::difference(&xs).unwrap();
        let back = diff::integrate(xs[0], &d);
        let scale = xs.iter().map(|v| v.abs()).fold(1.0, f64::max);
        assert_eq!(back.len(), xs.len());
        for (a, b) in back.iter().zip(&xs) {
            assert!((a - b).abs() < 1e-8 * scale);
        }
    }
}

/// Frames cover the series exactly once per offset and targets align.
#[test]
fn frames_cover_and_align() {
    let mut rng = Xoshiro256pp::seed_from_u64(303);
    for _ in 0..96 {
        let xs = values(&mut rng);
        let m = 1 + rng.next_below(9) as usize;
        if xs.len() <= m {
            continue;
        }
        let frames = Frames::new(&xs, m).unwrap();
        assert_eq!(frames.count(), xs.len() - m + 1);
        for (i, (w, target)) in frames.with_targets().enumerate() {
            assert_eq!(w, &xs[i..i + m]);
            assert_eq!(target, xs[i + m]);
        }
    }
}

/// MSE >= MAE² (Jensen) and RMSE² == MSE.
#[test]
fn metric_inequalities() {
    let mut rng = Xoshiro256pp::seed_from_u64(304);
    for _ in 0..96 {
        let n = 1 + rng.next_below(49) as usize;
        let a = random_vec(&mut rng, n, -100.0, 100.0);
        let b: Vec<f64> = a.iter().map(|x| x + rng.uniform(-10.0, 10.0)).collect();
        let mse = metrics::mse(&a, &b).unwrap();
        let mae = metrics::mae(&a, &b).unwrap();
        let rmse = metrics::rmse(&a, &b).unwrap();
        assert!(mse + 1e-12 >= mae * mae);
        assert!((rmse * rmse - mse).abs() < 1e-9 * mse.max(1.0));
    }
}

/// Autocovariance is maximal at lag zero.
#[test]
fn autocovariance_peak_at_zero() {
    let mut rng = Xoshiro256pp::seed_from_u64(305);
    for _ in 0..96 {
        let n = 10 + rng.next_below(110) as usize;
        let xs = random_vec(&mut rng, n, -50.0, 50.0);
        let max_lag = 5.min(xs.len() - 1);
        let acov = stats::autocovariance(&xs, max_lag).unwrap();
        for &c in &acov[1..] {
            assert!(c.abs() <= acov[0] + 1e-9);
        }
    }
}

/// Quantiles are monotone in q and bounded by min/max.
#[test]
fn quantiles_monotone() {
    let mut rng = Xoshiro256pp::seed_from_u64(306);
    for _ in 0..96 {
        let n = 1 + rng.next_below(59) as usize;
        let xs = random_vec(&mut rng, n, -50.0, 50.0);
        let q25 = stats::quantile(&xs, 0.25).unwrap();
        let q50 = stats::quantile(&xs, 0.5).unwrap();
        let q75 = stats::quantile(&xs, 0.75).unwrap();
        assert!(q25 <= q50 && q50 <= q75);
        assert!(q25 >= stats::min(&xs).unwrap() - 1e-12);
        assert!(q75 <= stats::max(&xs).unwrap() + 1e-12);
    }
}

/// Trimmed mean lies between min and max and equals mean at alpha = 0.
#[test]
fn trimmed_mean_bounds() {
    let mut rng = Xoshiro256pp::seed_from_u64(307);
    for _ in 0..96 {
        let n = 1 + rng.next_below(59) as usize;
        let xs = random_vec(&mut rng, n, -50.0, 50.0);
        let alpha = rng.uniform(0.0, 0.49);
        let t = stats::trimmed_mean(&xs, alpha).unwrap();
        assert!(t >= stats::min(&xs).unwrap() - 1e-12);
        assert!(t <= stats::max(&xs).unwrap() + 1e-12);
        let plain = stats::trimmed_mean(&xs, 0.0).unwrap();
        assert!((plain - stats::mean(&xs)).abs() < 1e-9);
    }
}

/// Series slicing preserves values and timestamps.
#[test]
fn series_slice_consistency() {
    let mut rng = Xoshiro256pp::seed_from_u64(308);
    for _ in 0..96 {
        let xs = values(&mut rng);
        let start = rng.next_below(20) as usize;
        let len = 1 + rng.next_below(19) as usize;
        let series = Series::new(xs.clone(), 1000, 60).unwrap();
        if start + len > series.len() {
            continue;
        }
        let sub = series.slice(start..start + len).unwrap();
        assert_eq!(sub.values(), &xs[start..start + len]);
        assert_eq!(sub.timestamp(0), series.timestamp(start));
    }
}
