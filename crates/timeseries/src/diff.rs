//! Differencing and integration.
//!
//! The paper's pool uses AR on the raw (normalised) series, but cites Dinda's
//! ARIMA family as related work; the `predictors` crate implements an ARI(p, d)
//! extension model on top of these primitives. Differencing turns a trending
//! series into a (closer to) stationary one; integration reverses it for
//! producing forecasts on the original scale.

use crate::{Result, TsError};

/// First differences: `y[i] = x[i+1] - x[i]` (length `n - 1`).
///
/// # Errors
///
/// Returns [`TsError::TooShort`] for fewer than 2 points.
pub fn difference(xs: &[f64]) -> Result<Vec<f64>> {
    if xs.len() < 2 {
        return Err(TsError::TooShort { what: "difference", needed: 2, got: xs.len() });
    }
    Ok(xs.windows(2).map(|w| w[1] - w[0]).collect())
}

/// Applies [`difference`] `order` times.
///
/// # Errors
///
/// Returns [`TsError::TooShort`] if the series runs out of points, or
/// [`TsError::InvalidArgument`] for `order == 0`.
pub fn difference_n(xs: &[f64], order: usize) -> Result<Vec<f64>> {
    if order == 0 {
        return Err(TsError::InvalidArgument("difference order must be >= 1".into()));
    }
    let mut cur = xs.to_vec();
    for _ in 0..order {
        cur = difference(&cur)?;
    }
    Ok(cur)
}

/// Reconstructs the next value of the original series from a forecast of the
/// differenced series: given the last original value and the predicted
/// difference, returns `last + predicted_diff`.
///
/// For higher orders, chain: reconstruct order `d-1`'s next difference first.
#[inline]
pub fn integrate_next(last_value: f64, predicted_diff: f64) -> f64 {
    last_value + predicted_diff
}

/// Fully inverts `difference`: given the first original value and the
/// differences, rebuilds the original series (length `diffs.len() + 1`).
pub fn integrate(first: f64, diffs: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(diffs.len() + 1);
    out.push(first);
    let mut acc = first;
    for &d in diffs {
        acc += d;
        out.push(acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn difference_known() {
        assert_eq!(difference(&[1.0, 3.0, 6.0, 10.0]).unwrap(), vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn difference_removes_linear_trend() {
        let xs: Vec<f64> = (0..10).map(|i| 2.0 * i as f64 + 5.0).collect();
        let d = difference(&xs).unwrap();
        assert!(d.iter().all(|&x| (x - 2.0).abs() < 1e-12));
    }

    #[test]
    fn second_difference_removes_quadratic_trend() {
        let xs: Vec<f64> = (0..10).map(|i| (i * i) as f64).collect();
        let d2 = difference_n(&xs, 2).unwrap();
        assert!(d2.iter().all(|&x| (x - 2.0).abs() < 1e-12));
    }

    #[test]
    fn integrate_round_trips() {
        let xs = [5.0, 4.0, 7.0, 7.0, 2.0];
        let d = difference(&xs).unwrap();
        let back = integrate(xs[0], &d);
        for (a, b) in back.iter().zip(&xs) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn integrate_next_is_one_step() {
        assert_eq!(integrate_next(10.0, -3.0), 7.0);
    }

    #[test]
    fn length_and_order_validation() {
        assert!(difference(&[1.0]).is_err());
        assert!(difference_n(&[1.0, 2.0, 3.0], 0).is_err());
        assert!(difference_n(&[1.0, 2.0], 2).is_err());
        assert!(difference_n(&[1.0, 2.0, 3.0], 2).is_ok());
    }
}
