//! Framing a series into overlapping prediction windows.
//!
//! The paper's dataflow (Figure 3) turns `u` normalised observations into a
//! `(u - m + 1) × m` matrix of sliding windows of size `m` (the *prediction
//! order*). For supervised labelling we usually want each window paired with
//! the *next* observation as the prediction target, which is what
//! [`Frames::with_targets`] produces: `u - m` rows, each `(window, target)`.

use crate::{Result, TsError};

/// A view of a series as overlapping windows of fixed size.
#[derive(Debug, Clone)]
pub struct Frames<'a> {
    data: &'a [f64],
    window: usize,
}

impl<'a> Frames<'a> {
    /// Frames `data` with window size `window`.
    ///
    /// # Errors
    ///
    /// * [`TsError::InvalidArgument`] if `window == 0`;
    /// * [`TsError::TooShort`] if `data.len() < window`.
    pub fn new(data: &'a [f64], window: usize) -> Result<Self> {
        if window == 0 {
            return Err(TsError::InvalidArgument("window size must be positive".into()));
        }
        if data.len() < window {
            return Err(TsError::TooShort { what: "Frames::new", needed: window, got: data.len() });
        }
        Ok(Self { data, window })
    }

    /// The window size `m`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of complete windows: `len - m + 1`.
    pub fn count(&self) -> usize {
        self.data.len() - self.window + 1
    }

    /// Number of (window, target) pairs: `len - m`.
    pub fn count_with_targets(&self) -> usize {
        self.data.len() - self.window
    }

    /// The `i`-th window, as a borrowed slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.count()`.
    pub fn get(&self, i: usize) -> &'a [f64] {
        &self.data[i..i + self.window]
    }

    /// Iterates over all complete windows.
    pub fn iter(&self) -> impl Iterator<Item = &'a [f64]> + '_ {
        self.data.windows(self.window)
    }

    /// Iterates over `(window, next_value)` supervised pairs.
    ///
    /// Window `i` covers samples `[i, i+m)` and its target is sample `i+m` —
    /// the value the predictors must forecast.
    pub fn with_targets(&self) -> impl Iterator<Item = (&'a [f64], f64)> + '_ {
        (0..self.count_with_targets()).map(move |i| (self.get(i), self.data[i + self.window]))
    }

    /// Copies all windows into a row-major flat buffer (`count × m`), the
    /// `X'_{(u-m+1) × m}` matrix of the paper's Figure 3.
    pub fn to_flat_matrix(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.count() * self.window);
        for w in self.iter() {
            out.extend_from_slice(w);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_paper_formulas() {
        let data: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let frames = Frames::new(&data, 4).unwrap();
        assert_eq!(frames.count(), 7); // u - m + 1
        assert_eq!(frames.count_with_targets(), 6); // u - m
    }

    #[test]
    fn windows_are_contiguous_and_overlapping() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let frames = Frames::new(&data, 3).unwrap();
        assert_eq!(frames.get(0), &[1.0, 2.0, 3.0]);
        assert_eq!(frames.get(1), &[2.0, 3.0, 4.0]);
        assert_eq!(frames.get(2), &[3.0, 4.0, 5.0]);
        assert_eq!(frames.iter().count(), 3);
    }

    #[test]
    fn targets_are_the_next_value() {
        let data = [1.0, 2.0, 3.0, 4.0];
        let frames = Frames::new(&data, 2).unwrap();
        let pairs: Vec<_> = frames.with_targets().collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0], (&data[0..2], 3.0));
        assert_eq!(pairs[1], (&data[1..3], 4.0));
    }

    #[test]
    fn window_equal_to_length_has_one_frame_no_targets() {
        let data = [1.0, 2.0, 3.0];
        let frames = Frames::new(&data, 3).unwrap();
        assert_eq!(frames.count(), 1);
        assert_eq!(frames.count_with_targets(), 0);
        assert_eq!(frames.with_targets().count(), 0);
    }

    #[test]
    fn validation() {
        let data = [1.0, 2.0];
        assert!(matches!(Frames::new(&data, 0), Err(TsError::InvalidArgument(_))));
        assert!(matches!(Frames::new(&data, 3), Err(TsError::TooShort { .. })));
    }

    #[test]
    fn flat_matrix_layout() {
        let data = [1.0, 2.0, 3.0, 4.0];
        let frames = Frames::new(&data, 2).unwrap();
        assert_eq!(frames.to_flat_matrix(), vec![1.0, 2.0, 2.0, 3.0, 3.0, 4.0]);
    }
}
