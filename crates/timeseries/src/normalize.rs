//! Zero-mean / unit-variance normalisation with train-derived coefficients.
//!
//! The paper normalises every trace "to have zero mean and unit variance" and,
//! critically, applies the *training* phase's coefficients to the test data
//! (§6.2). [`ZScore`] is therefore an explicit fitted object rather than a
//! stateless function: fit once on training data, apply everywhere.

use crate::{stats, Result, TsError};

/// A fitted z-score transform: `z = (x - mean) / std`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZScore {
    mean: f64,
    std: f64,
}

impl ZScore {
    /// Fits the transform to data.
    ///
    /// A constant series has zero variance; the paper's pipeline still needs to
    /// pass such traces through (several VM metrics are flat for long
    /// stretches), so the transform degrades to pure mean-centering by using a
    /// unit divisor. The fitted `std()` reports the true value (possibly 0).
    ///
    /// # Errors
    ///
    /// Returns [`TsError::TooShort`] for an empty slice.
    pub fn fit(xs: &[f64]) -> Result<Self> {
        if xs.is_empty() {
            return Err(TsError::TooShort { what: "ZScore::fit", needed: 1, got: 0 });
        }
        Ok(Self { mean: stats::mean(xs), std: stats::std_dev(xs) })
    }

    /// Creates a transform from explicit coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::InvalidArgument`] if either coefficient is non-finite
    /// or `std` is negative.
    pub fn from_coefficients(mean: f64, std: f64) -> Result<Self> {
        if !mean.is_finite() || !std.is_finite() || std < 0.0 {
            return Err(TsError::InvalidArgument(format!(
                "invalid z-score coefficients (mean {mean}, std {std})"
            )));
        }
        Ok(Self { mean, std })
    }

    /// Fitted mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Fitted standard deviation (0.0 for constant training data).
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Effective divisor: the fitted std, or 1.0 when it is (near) zero.
    fn divisor(&self) -> f64 {
        if self.std > f64::EPSILON {
            self.std
        } else {
            1.0
        }
    }

    /// Transforms one value.
    #[inline]
    pub fn apply(&self, x: f64) -> f64 {
        (x - self.mean) / self.divisor()
    }

    /// Inverse-transforms one value back to the original scale.
    #[inline]
    pub fn invert(&self, z: f64) -> f64 {
        z * self.divisor() + self.mean
    }

    /// Transforms a slice into a new vector.
    pub fn apply_slice(&self, xs: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.apply_slice_into(xs, &mut out);
        out
    }

    /// [`ZScore::apply_slice`] into a reusable buffer (cleared and resized
    /// first) — the allocation-free training-path variant. Bit-identical to
    /// per-element [`ZScore::apply`]: the kernel keeps the same
    /// subtract-then-divide operation sequence.
    pub fn apply_slice_into(&self, xs: &[f64], out: &mut Vec<f64>) {
        linalg::kernels::znorm_apply_into(xs, self.mean, self.divisor(), out);
    }

    /// Inverse-transforms a slice into a new vector.
    pub fn invert_slice(&self, zs: &[f64]) -> Vec<f64> {
        zs.iter().map(|&z| self.invert(z)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_produces_zero_mean_unit_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let z = ZScore::fit(&xs).unwrap();
        let t = z.apply_slice(&xs);
        assert!(stats::mean(&t).abs() < 1e-12);
        assert!((stats::variance(&t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invert_round_trips() {
        let xs = [10.0, 20.0, 15.0, 30.0];
        let z = ZScore::fit(&xs).unwrap();
        let back = z.invert_slice(&z.apply_slice(&xs));
        for (a, b) in back.iter().zip(&xs) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_series_degrades_to_centering() {
        let xs = [7.0; 10];
        let z = ZScore::fit(&xs).unwrap();
        assert_eq!(z.std(), 0.0);
        assert!(z.apply_slice(&xs).iter().all(|&v| v == 0.0));
        assert_eq!(z.invert(0.0), 7.0);
    }

    #[test]
    fn train_coefficients_apply_to_test_data() {
        // Mirrors the paper's workflow: coefficients come from training data
        // only, then normalise unseen test values.
        let train = [0.0, 2.0, 4.0, 6.0]; // mean 3, std sqrt(5)
        let z = ZScore::fit(&train).unwrap();
        let test_val = 8.0;
        assert!((z.apply(test_val) - (8.0 - 3.0) / 5.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn explicit_coefficients_validated() {
        assert!(ZScore::from_coefficients(f64::NAN, 1.0).is_err());
        assert!(ZScore::from_coefficients(0.0, -1.0).is_err());
        let z = ZScore::from_coefficients(1.0, 2.0).unwrap();
        assert_eq!(z.apply(5.0), 2.0);
    }

    #[test]
    fn fit_empty_errors() {
        assert!(matches!(ZScore::fit(&[]), Err(TsError::TooShort { .. })));
    }
}
