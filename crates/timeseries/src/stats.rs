//! Descriptive statistics over `&[f64]` slices.
//!
//! These are the numerical inputs to normalisation (mean/std), AR fitting
//! (autocovariance), and several predictors (median, trimmed mean). All
//! functions take plain slices so they compose with both [`crate::Series`] and
//! raw window views.

use crate::{Result, TsError};

/// Arithmetic mean. Returns 0.0 for an empty slice (documented convention:
/// callers that care should check emptiness first).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    linalg::kernels::sum(xs) / xs.len() as f64
}

/// Population variance (`1/n` normalisation), 0.0 for fewer than 2 points.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    linalg::kernels::centered_sum_sq(xs, mean(xs)) / xs.len() as f64
}

/// Sample variance (`1/(n-1)` normalisation), 0.0 for fewer than 2 points.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    linalg::kernels::centered_sum_sq(xs, mean(xs)) / (xs.len() - 1) as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum value; `None` for an empty slice.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::min)
}

/// Maximum value; `None` for an empty slice.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::max)
}

/// Median (average of the two central order statistics for even lengths).
///
/// # Errors
///
/// Returns [`TsError::TooShort`] for an empty slice.
pub fn median(xs: &[f64]) -> Result<f64> {
    quantile(xs, 0.5)
}

/// Linear-interpolation quantile, `q` in `[0, 1]`.
///
/// # Errors
///
/// * [`TsError::TooShort`] for an empty slice;
/// * [`TsError::InvalidArgument`] if `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(TsError::TooShort { what: "quantile", needed: 1, got: 0 });
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(TsError::InvalidArgument(format!("quantile {q} outside [0, 1]")));
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    quantile_sorted(&sorted, q)
}

/// [`quantile`] over a slice already sorted ascending by [`f64::total_cmp`] —
/// the allocation-free entry point for callers that keep their own sorted
/// scratch buffer.
///
/// # Errors
///
/// Same conditions as [`quantile`].
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Result<f64> {
    if sorted.is_empty() {
        return Err(TsError::TooShort { what: "quantile", needed: 1, got: 0 });
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(TsError::InvalidArgument(format!("quantile {q} outside [0, 1]")));
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// [`quantile`] via in-place selection instead of a full sort — `O(n)` and
/// bit-identical to [`quantile_sorted`] over the sorted input: selection
/// surfaces exactly the order statistics the interpolation reads. Reorders
/// `xs`; for callers whose buffer is already sorted, use [`quantile_sorted`].
///
/// # Errors
///
/// Same conditions as [`quantile`].
pub fn quantile_select(xs: &mut [f64], q: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(TsError::TooShort { what: "quantile", needed: 1, got: 0 });
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(TsError::InvalidArgument(format!("quantile {q} outside [0, 1]")));
    }
    let pos = q * (xs.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    let (_, &mut lo_v, rest) = xs.select_nth_unstable_by(lo, |a, b| a.total_cmp(b));
    let hi_v = if hi == lo {
        lo_v
    } else {
        // hi == lo + 1: the next order statistic is the minimum of the
        // partition right of the pivot.
        rest.iter().copied().min_by(f64::total_cmp).expect("hi < len: right partition non-empty")
    };
    Ok(lo_v * (1.0 - frac) + hi_v * frac)
}

/// α-trimmed mean: drops the `floor(alpha * n)` smallest and largest values
/// before averaging. `alpha` in `[0, 0.5)`.
///
/// # Errors
///
/// * [`TsError::TooShort`] for an empty slice;
/// * [`TsError::InvalidArgument`] if `alpha` is outside `[0, 0.5)`.
pub fn trimmed_mean(xs: &[f64], alpha: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(TsError::TooShort { what: "trimmed_mean", needed: 1, got: 0 });
    }
    if !(0.0..0.5).contains(&alpha) {
        return Err(TsError::InvalidArgument(format!("trim fraction {alpha} outside [0, 0.5)")));
    }
    let k = (alpha * xs.len() as f64).floor() as usize;
    if 2 * k >= xs.len() {
        // Trimming would remove everything; fall back to the median.
        return median(xs);
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    Ok(mean(&sorted[k..xs.len() - k]))
}

/// Autocovariance at lags `0..=max_lag` with the biased `1/n` normalisation
/// (the standard choice for Yule–Walker: it guarantees a positive-semidefinite
/// autocovariance sequence).
///
/// # Errors
///
/// Returns [`TsError::TooShort`] unless `xs.len() > max_lag`.
pub fn autocovariance(xs: &[f64], max_lag: usize) -> Result<Vec<f64>> {
    if xs.len() <= max_lag {
        return Err(TsError::TooShort {
            what: "autocovariance",
            needed: max_lag + 1,
            got: xs.len(),
        });
    }
    let n = xs.len();
    let m = mean(xs);
    let mut acov = Vec::with_capacity(max_lag + 1);
    for lag in 0..=max_lag {
        // Lag-`lag` autocovariance is the centered dot of the series against
        // its own `lag`-shifted view.
        let s = linalg::kernels::centered_dot(&xs[lag..], &xs[..n - lag], m);
        acov.push(s / n as f64);
    }
    Ok(acov)
}

/// Autocorrelation at lags `0..=max_lag` (autocovariance scaled by `r(0)`).
///
/// # Errors
///
/// * [`TsError::TooShort`] unless `xs.len() > max_lag`;
/// * [`TsError::Degenerate`] for a constant series (zero variance).
pub fn autocorrelation(xs: &[f64], max_lag: usize) -> Result<Vec<f64>> {
    let acov = autocovariance(xs, max_lag)?;
    let r0 = acov[0];
    if r0 <= 0.0 {
        return Err(TsError::Degenerate("autocorrelation of a constant series".into()));
    }
    Ok(acov.iter().map(|&c| c / r0).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
        assert!((sample_variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_conventions() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(sample_variance(&[1.0]), 0.0);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[3.0]), Some(3.0));
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
        assert!(median(&[]).is_err());
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert!((quantile(&xs, 1.0 / 3.0).unwrap() - 2.0).abs() < 1e-12);
        assert!(quantile(&xs, 1.5).is_err());
        assert!(quantile(&xs, -0.1).is_err());
    }

    #[test]
    fn quantile_select_is_bit_identical_to_sorting_quantile() {
        // Pseudo-random slices of every parity and size, every interpolation
        // regime: selection must reproduce the sort-based result exactly.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * 200.0 - 100.0
        };
        for len in 1..40usize {
            let xs: Vec<f64> = (0..len).map(|_| next()).collect();
            for q in [0.0, 0.25, 1.0 / 3.0, 0.5, 0.77, 0.99, 1.0] {
                let expect = quantile(&xs, q).unwrap();
                let mut scratch = xs.clone();
                let got = quantile_select(&mut scratch, q).unwrap();
                assert_eq!(got.to_bits(), expect.to_bits(), "len {len}, q {q}");
            }
        }
        assert!(quantile_select(&mut [], 0.5).is_err());
        assert!(quantile_select(&mut [1.0], 1.5).is_err());
    }

    #[test]
    fn trimmed_mean_drops_outliers() {
        let xs = [1.0, 2.0, 3.0, 4.0, 100.0];
        // 20% trim drops one value from each end: mean of [2, 3, 4] = 3.
        assert_eq!(trimmed_mean(&xs, 0.2).unwrap(), 3.0);
        // Zero trim is the plain mean.
        assert_eq!(trimmed_mean(&xs, 0.0).unwrap(), 22.0);
        assert!(trimmed_mean(&xs, 0.5).is_err());
        assert!(trimmed_mean(&[], 0.1).is_err());
    }

    #[test]
    fn trimmed_mean_tiny_slice_falls_back_to_median() {
        // n = 2, alpha = 0.49 -> k = 0 -> plain mean; n = 3, alpha = 0.4 -> k = 1,
        // 2k < 3 so trim keeps the middle element.
        assert_eq!(trimmed_mean(&[1.0, 5.0], 0.49).unwrap(), 3.0);
        assert_eq!(trimmed_mean(&[1.0, 2.0, 9.0], 0.4).unwrap(), 2.0);
    }

    #[test]
    fn autocovariance_lag0_is_population_variance() {
        let xs = [1.0, 3.0, 2.0, 5.0, 4.0, 6.0];
        let acov = autocovariance(&xs, 2).unwrap();
        assert!((acov[0] - variance(&xs)).abs() < 1e-12);
    }

    #[test]
    fn autocovariance_alternating_series() {
        // x = [+1, -1, +1, -1, ...]: r(1) should be strongly negative.
        let xs: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let acf = autocorrelation(&xs, 2).unwrap();
        assert_eq!(acf[0], 1.0);
        assert!(acf[1] < -0.9);
        assert!(acf[2] > 0.9);
    }

    #[test]
    fn autocorrelation_constant_is_degenerate() {
        let xs = [2.0; 10];
        assert!(matches!(autocorrelation(&xs, 1), Err(TsError::Degenerate(_))));
    }

    #[test]
    fn autocovariance_length_check() {
        assert!(matches!(autocovariance(&[1.0, 2.0], 2), Err(TsError::TooShort { .. })));
    }

    #[test]
    fn autocorrelation_bounded_by_one() {
        let xs: Vec<f64> = (0..200).map(|i| ((i * 37) % 17) as f64).collect();
        let acf = autocorrelation(&xs, 10).unwrap();
        for &r in &acf {
            assert!(r.abs() <= 1.0 + 1e-12, "acf {r}");
        }
    }
}
