//! Incremental rolling moments for streaming z-normalization.
//!
//! The paper's pipeline normalizes every window to zero mean / unit variance.
//! Recomputing mean and variance over the full history on every sample makes
//! the steady-state step `O(window)`; [`RollingMoments`] maintains both in
//! `O(1)` per step using running sums with two stability guards:
//!
//! * moments are accumulated *relative to a shift* (re-anchored to the current
//!   mean at each resummation), so a drifting series never suffers the
//!   catastrophic cancellation of the naive `E[x²] − E[x]²` form;
//! * the running sums are rebuilt exactly from the retained values every
//!   [`RollingMoments::RESUM_PERIOD`] evictions — the same recipe as
//!   `WindowedMse` — so add-then-subtract rounding residue (a spike passing
//!   through the window) cannot accumulate.

use std::collections::VecDeque;

use crate::normalize::ZScore;
use crate::{Result, TsError};

/// O(1)-per-step rolling mean/variance over the last `window` values.
#[derive(Debug, Clone)]
pub struct RollingMoments {
    window: usize,
    values: VecDeque<f64>,
    /// Anchor subtracted from every value before accumulation.
    shift: f64,
    /// Σ (x − shift) over the retained values.
    sum: f64,
    /// Σ (x − shift)² over the retained values.
    sum_sq: f64,
    /// Evictions since the sums were last rebuilt exactly.
    since_resum: usize,
}

impl RollingMoments {
    /// Evictions between exact recomputations of the running sums.
    pub const RESUM_PERIOD: usize = 1024;

    /// Creates a rolling accumulator over the last `window` values.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::InvalidArgument`] if `window == 0`.
    pub fn new(window: usize) -> Result<Self> {
        if window == 0 {
            return Err(TsError::InvalidArgument("RollingMoments: window must be positive".into()));
        }
        Ok(Self {
            window,
            values: VecDeque::with_capacity(window + 1),
            shift: 0.0,
            sum: 0.0,
            sum_sq: 0.0,
            since_resum: 0,
        })
    }

    /// Records one value, evicting the oldest once the window is full.
    pub fn push(&mut self, x: f64) {
        if self.values.is_empty() {
            // Anchor at the first observation so early sums are tiny.
            self.shift = x;
            self.sum = 0.0;
            self.sum_sq = 0.0;
        }
        let d = x - self.shift;
        self.values.push_back(x);
        self.sum += d;
        self.sum_sq += d * d;
        if self.values.len() > self.window {
            let old = self.values.pop_front().expect("non-empty after push");
            let od = old - self.shift;
            self.sum -= od;
            self.sum_sq -= od * od;
            self.since_resum += 1;
            // A value whose square dominated the running sum leaving the
            // window means everything else was accumulated in its rounding
            // shadow; rebuild immediately instead of waiting out the period.
            if self.since_resum >= Self::RESUM_PERIOD || od * od > self.sum_sq.max(0.0) {
                self.resum();
            }
        }
    }

    /// Rebuilds the running sums exactly, re-anchoring the shift to the
    /// current mean so subsequent accumulation stays well-conditioned even
    /// when the series drifts far from its starting level.
    fn resum(&mut self) {
        let n = self.values.len() as f64;
        self.shift += self.sum / n;
        // The deque is at most two contiguous runs; kernel-sum each and
        // combine (dispatch-deterministic: each run uses the fixed 4-lane
        // reduction, then the two run totals add in order).
        let (front, back) = self.values.as_slices();
        let (sf, qf) = linalg::kernels::centered_sums(front, self.shift);
        let (sb, qb) = linalg::kernels::centered_sums(back, self.shift);
        self.sum = sf + sb;
        self.sum_sq = qf + qb;
        self.since_resum = 0;
    }

    /// Number of retained values (≤ window).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no value has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The configured window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Rolling mean (0.0 when empty, matching [`crate::stats::mean`]).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.shift + self.sum / self.values.len() as f64
    }

    /// Rolling population variance (0.0 with fewer than 2 values, matching
    /// [`crate::stats::variance`]); clamped at zero against rounding.
    pub fn variance(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return 0.0;
        }
        let n = n as f64;
        let m = self.sum / n;
        (self.sum_sq / n - m * m).max(0.0)
    }

    /// Rolling standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// A z-score transform fitted to the current window contents — the
    /// incremental equivalent of `ZScore::fit(&window)`.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::TooShort`] when the window is empty.
    pub fn zscore(&self) -> Result<ZScore> {
        if self.values.is_empty() {
            return Err(TsError::TooShort { what: "RollingMoments::zscore", needed: 1, got: 0 });
        }
        ZScore::from_coefficients(self.mean(), self.std_dev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn rejects_zero_window() {
        assert!(RollingMoments::new(0).is_err());
    }

    #[test]
    fn matches_batch_on_short_sequences() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut rm = RollingMoments::new(4).unwrap();
        assert_eq!(rm.mean(), 0.0);
        assert_eq!(rm.variance(), 0.0);
        let mut kept: Vec<f64> = Vec::new();
        for &x in &xs {
            rm.push(x);
            kept.push(x);
            if kept.len() > 4 {
                kept.remove(0);
            }
            assert!((rm.mean() - stats::mean(&kept)).abs() < 1e-12);
            assert!((rm.variance() - stats::variance(&kept)).abs() < 1e-12);
        }
        assert_eq!(rm.len(), 4);
    }

    #[test]
    fn single_value_has_zero_variance() {
        let mut rm = RollingMoments::new(8).unwrap();
        rm.push(42.0);
        assert_eq!(rm.mean(), 42.0);
        assert_eq!(rm.variance(), 0.0);
        let z = rm.zscore().unwrap();
        assert_eq!(z.apply(42.0), 0.0);
    }

    #[test]
    fn zscore_on_empty_window_errors() {
        let rm = RollingMoments::new(4).unwrap();
        assert!(rm.zscore().is_err());
    }

    /// Satellite property test: the O(1) incremental moments must match batch
    /// recomputation within 1e-9 (relative, for the spike regimes where the
    /// variance itself is ~1e10) across a 1M-step spiky *and* drifting trace,
    /// including the exact eviction counts where resummation fires.
    #[test]
    fn incremental_znorm_matches_batch_over_spiky_drifting_million_step_trace() {
        let window = 100usize;
        let mut rm = RollingMoments::new(window).unwrap();
        let mut last = VecDeque::with_capacity(window + 1);
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let tol = |v: f64| 1e-9 * v.abs().max(1.0);
        for i in 0..1_000_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let noise = (state >> 11) as f64 / (1u64 << 53) as f64;
            // Drift carries the level from 0 to 2000; spikes of 1e6 pass
            // through the window periodically (catastrophic absorption bait).
            let drift = i as f64 * 0.002;
            let spike = i > 0 && i < 900_000 && i % 10_000 == 0;
            let x = if spike { 1e6 } else { drift + noise * 10.0 };
            rm.push(x);
            last.push_back(x);
            if last.len() > window {
                last.pop_front();
            }
            // Check cheaply but densely: every 64th step, plus the steps
            // straddling each resummation boundary (evictions are i - 99, so
            // the rebuild fires when that count crosses a RESUM_PERIOD
            // multiple).
            let evictions = (i + 1).saturating_sub(window as u64);
            let near_resum = evictions % RollingMoments::RESUM_PERIOD as u64 <= 1;
            if i % 64 == 0 || near_resum {
                let kept: Vec<f64> = last.iter().copied().collect();
                let bm = stats::mean(&kept);
                let bv = stats::variance(&kept);
                assert!((rm.mean() - bm).abs() <= tol(bm), "step {i}: mean {} vs {bm}", rm.mean());
                assert!(
                    (rm.variance() - bv).abs() <= tol(bv),
                    "step {i}: var {} vs {bv}",
                    rm.variance()
                );
                // The z-normalization the moments exist to feed must agree on
                // a probe value too.
                let probe = bm + 3.0;
                let zi = rm.zscore().unwrap().apply(probe);
                let zb = ZScore::fit(&kept).unwrap().apply(probe);
                assert!((zi - zb).abs() <= tol(zb), "step {i}: z {zi} vs {zb}");
            }
        }
        assert_eq!(rm.len(), window);
    }
}
