//! The [`Series`] container: equally-spaced observations plus timing metadata.

use crate::{Result, TsError};

/// An equally-spaced time series.
///
/// `start_secs` is the epoch-relative timestamp (seconds) of the first sample,
/// and `interval_secs` the fixed spacing between samples. Timing metadata rides
/// along so the `vmsim` profiler can reconstruct the paper's
/// `[vmID, deviceID, timeStamp, metricName]` keying, but all numerical code
/// operates on the raw `values` slice.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    values: Vec<f64>,
    start_secs: u64,
    interval_secs: u64,
}

impl Series {
    /// Creates a series from values with explicit timing metadata.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::InvalidArgument`] if `interval_secs == 0`, `values`
    /// is empty, or any value is non-finite.
    pub fn new(values: Vec<f64>, start_secs: u64, interval_secs: u64) -> Result<Self> {
        if interval_secs == 0 {
            return Err(TsError::InvalidArgument("interval must be positive".into()));
        }
        if values.is_empty() {
            return Err(TsError::InvalidArgument("series must be non-empty".into()));
        }
        if let Some(i) = values.iter().position(|v| !v.is_finite()) {
            return Err(TsError::InvalidArgument(format!(
                "non-finite value {} at index {i}",
                values[i]
            )));
        }
        Ok(Self { values, start_secs, interval_secs })
    }

    /// Creates a series starting at time zero with a 1-second interval —
    /// convenient for purely numerical tests.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Series::new`].
    pub fn from_values(values: Vec<f64>) -> Result<Self> {
        Self::new(values, 0, 1)
    }

    /// The observations.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of observations.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series is empty (never true for a constructed `Series`,
    /// kept for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Timestamp of the first sample, in seconds.
    #[inline]
    pub fn start_secs(&self) -> u64 {
        self.start_secs
    }

    /// Spacing between samples, in seconds.
    #[inline]
    pub fn interval_secs(&self) -> u64 {
        self.interval_secs
    }

    /// Timestamp of sample `i`, in seconds.
    #[inline]
    pub fn timestamp(&self, i: usize) -> u64 {
        self.start_secs + (i as u64) * self.interval_secs
    }

    /// Total covered duration in seconds (from first to last sample).
    pub fn duration_secs(&self) -> u64 {
        (self.len() as u64 - 1) * self.interval_secs
    }

    /// A sub-series of samples `range` (same interval, shifted start).
    ///
    /// # Errors
    ///
    /// Returns [`TsError::InvalidArgument`] for an empty or out-of-bounds range.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Result<Series> {
        if range.start >= range.end || range.end > self.len() {
            return Err(TsError::InvalidArgument(format!(
                "slice {range:?} out of bounds for series of length {}",
                self.len()
            )));
        }
        Series::new(
            self.values[range.clone()].to_vec(),
            self.timestamp(range.start),
            self.interval_secs,
        )
    }

    /// Splits at sample index `at` into (head `[0, at)`, tail `[at, len)`).
    ///
    /// # Errors
    ///
    /// Returns [`TsError::InvalidArgument`] unless `0 < at < len` (both halves
    /// must be non-empty).
    pub fn split_at(&self, at: usize) -> Result<(Series, Series)> {
        if at == 0 || at >= self.len() {
            return Err(TsError::InvalidArgument(format!(
                "split point {at} must be inside (0, {})",
                self.len()
            )));
        }
        Ok((self.slice(0..at)?, self.slice(at..self.len())?))
    }

    /// Applies `f` to every value, returning a new series with the same timing.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::InvalidArgument`] if `f` produces a non-finite value.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Result<Series> {
        Series::new(
            self.values.iter().map(|&v| f(v)).collect(),
            self.start_secs,
            self.interval_secs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(values: &[f64]) -> Series {
        Series::from_values(values.to_vec()).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Series::new(vec![1.0], 0, 0).is_err());
        assert!(Series::new(vec![], 0, 1).is_err());
        assert!(Series::new(vec![f64::NAN], 0, 1).is_err());
        assert!(Series::new(vec![f64::INFINITY], 0, 1).is_err());
        assert!(Series::new(vec![1.0, 2.0], 100, 60).is_ok());
    }

    #[test]
    fn timestamps_and_duration() {
        let series = Series::new(vec![1.0, 2.0, 3.0], 1000, 300).unwrap();
        assert_eq!(series.timestamp(0), 1000);
        assert_eq!(series.timestamp(2), 1600);
        assert_eq!(series.duration_secs(), 600);
    }

    #[test]
    fn slice_preserves_timing() {
        let series = Series::new(vec![1.0, 2.0, 3.0, 4.0], 1000, 300).unwrap();
        let sub = series.slice(1..3).unwrap();
        assert_eq!(sub.values(), &[2.0, 3.0]);
        assert_eq!(sub.start_secs(), 1300);
        assert_eq!(sub.interval_secs(), 300);
    }

    #[test]
    fn slice_rejects_bad_ranges() {
        let series = s(&[1.0, 2.0, 3.0]);
        assert!(series.slice(2..2).is_err());
        assert!(series.slice(1..4).is_err());
    }

    #[test]
    fn split_at_halves() {
        let series = s(&[1.0, 2.0, 3.0, 4.0]);
        let (head, tail) = series.split_at(2).unwrap();
        assert_eq!(head.values(), &[1.0, 2.0]);
        assert_eq!(tail.values(), &[3.0, 4.0]);
        assert_eq!(tail.start_secs(), 2);
    }

    #[test]
    fn split_rejects_edges() {
        let series = s(&[1.0, 2.0]);
        assert!(series.split_at(0).is_err());
        assert!(series.split_at(2).is_err());
        assert!(series.split_at(1).is_ok());
    }

    #[test]
    fn map_transforms_values() {
        let series = s(&[1.0, 2.0]);
        let doubled = series.map(|v| v * 2.0).unwrap();
        assert_eq!(doubled.values(), &[2.0, 4.0]);
        assert!(series.map(|_| f64::NAN).is_err());
    }

    #[test]
    fn clone_and_equality() {
        let series = Series::new(vec![1.5, -2.5], 42, 60).unwrap();
        assert_eq!(series.clone(), series);
    }
}
