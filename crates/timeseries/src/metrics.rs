//! Prediction-error metrics.
//!
//! The paper's headline measure is the mean squared error (Eq. 5) computed on
//! *normalized* series — hence "normalized MSE" in Table 2: an MSE of ~1.0
//! means the predictor is no better than always guessing the series mean.

use crate::{Result, TsError};

/// Mean squared error between predictions and observations.
///
/// # Errors
///
/// Returns [`TsError::InvalidArgument`] if the slices are empty or differ in
/// length.
pub fn mse(predicted: &[f64], observed: &[f64]) -> Result<f64> {
    check_pair("mse", predicted, observed)?;
    let n = predicted.len() as f64;
    Ok(predicted.iter().zip(observed).map(|(p, o)| (p - o).powi(2)).sum::<f64>() / n)
}

/// Root mean squared error.
///
/// # Errors
///
/// Same conditions as [`mse`].
pub fn rmse(predicted: &[f64], observed: &[f64]) -> Result<f64> {
    Ok(mse(predicted, observed)?.sqrt())
}

/// Mean absolute error.
///
/// # Errors
///
/// Same conditions as [`mse`].
pub fn mae(predicted: &[f64], observed: &[f64]) -> Result<f64> {
    check_pair("mae", predicted, observed)?;
    let n = predicted.len() as f64;
    Ok(predicted.iter().zip(observed).map(|(p, o)| (p - o).abs()).sum::<f64>() / n)
}

/// Mean absolute percentage error, skipping observations that are exactly zero
/// (undefined there). Returns `None` when *all* observations are zero.
///
/// # Errors
///
/// Same shape conditions as [`mse`].
pub fn mape(predicted: &[f64], observed: &[f64]) -> Result<Option<f64>> {
    check_pair("mape", predicted, observed)?;
    let mut total = 0.0;
    let mut count = 0usize;
    for (p, o) in predicted.iter().zip(observed) {
        if *o != 0.0 {
            total += ((p - o) / o).abs();
            count += 1;
        }
    }
    Ok(if count == 0 { None } else { Some(100.0 * total / count as f64) })
}

/// MSE normalised by the variance of the observations.
///
/// Equals 1.0 for a predictor that always outputs the observation mean; below
/// 1.0 means the predictor extracts signal. Returns the raw MSE when the
/// observations have zero variance (constant series: any nonzero error is
/// meaningful on its own).
///
/// # Errors
///
/// Same conditions as [`mse`].
pub fn nmse(predicted: &[f64], observed: &[f64]) -> Result<f64> {
    let e = mse(predicted, observed)?;
    let var = crate::stats::variance(observed);
    Ok(if var > 0.0 { e / var } else { e })
}

fn check_pair(what: &'static str, a: &[f64], b: &[f64]) -> Result<()> {
    if a.is_empty() {
        return Err(TsError::InvalidArgument(format!("{what}: empty input")));
    }
    if a.len() != b.len() {
        return Err(TsError::InvalidArgument(format!(
            "{what}: length mismatch {} vs {}",
            a.len(),
            b.len()
        )));
    }
    Ok(())
}

/// Online (streaming) accumulator for squared error — used by the NWS-style
/// cumulative-MSE selectors, which must track a running MSE per predictor.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CumulativeMse {
    sum_sq: f64,
    count: usize,
}

impl CumulativeMse {
    /// A fresh accumulator with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one (prediction, observation) pair.
    pub fn record(&mut self, predicted: f64, observed: f64) {
        let d = predicted - observed;
        self.sum_sq += d * d;
        self.count += 1;
    }

    /// Current mean squared error; `None` before any observation.
    pub fn mse(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum_sq / self.count as f64)
        }
    }

    /// Number of recorded pairs.
    pub fn count(&self) -> usize {
        self.count
    }
}

/// Sliding-window squared-error accumulator (the NWS "windowed cumulative MSE"
/// variant benchmarked in the paper's Figure 6 with window 2).
#[derive(Debug, Clone)]
pub struct WindowedMse {
    window: usize,
    errors: std::collections::VecDeque<f64>,
    sum_sq: f64,
    /// Evictions since the running sum was last recomputed exactly. Add-then-
    /// subtract leaks rounding residue (catastrophic absorption when a huge
    /// error passes through the window), so the sum is rebuilt from the
    /// retained errors every [`Self::RESUM_PERIOD`] evictions.
    since_resum: usize,
}

impl WindowedMse {
    /// Evictions between exact recomputations of the running sum.
    const RESUM_PERIOD: usize = 1024;

    /// Creates an accumulator that remembers the last `window` squared errors.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::InvalidArgument`] if `window == 0`.
    pub fn new(window: usize) -> Result<Self> {
        if window == 0 {
            return Err(TsError::InvalidArgument("WindowedMse: window must be positive".into()));
        }
        Ok(Self { window, errors: std::collections::VecDeque::new(), sum_sq: 0.0, since_resum: 0 })
    }

    /// Records one (prediction, observation) pair, evicting the oldest error
    /// once the window is full.
    pub fn record(&mut self, predicted: f64, observed: f64) {
        let d = predicted - observed;
        let sq = d * d;
        self.errors.push_back(sq);
        self.sum_sq += sq;
        if self.errors.len() > self.window {
            self.sum_sq -= self.errors.pop_front().expect("non-empty after push");
            self.since_resum += 1;
            if self.since_resum >= Self::RESUM_PERIOD {
                self.sum_sq = self.errors.iter().sum();
                self.since_resum = 0;
            }
        }
    }

    /// Current windowed MSE; `None` before any observation.
    pub fn mse(&self) -> Option<f64> {
        if self.errors.is_empty() {
            None
        } else {
            Some(self.sum_sq / self.errors.len() as f64)
        }
    }

    /// Heap bytes held by the error window, for memory accounting.
    pub fn heap_bytes(&self) -> usize {
        self.errors.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_known() {
        let e = mse(&[1.0, 2.0, 3.0], &[1.0, 3.0, 5.0]).unwrap();
        assert!((e - (0.0 + 1.0 + 4.0) / 3.0).abs() < 1e-15);
    }

    #[test]
    fn perfect_prediction_is_zero_everywhere() {
        let xs = [1.5, -2.0, 0.0];
        assert_eq!(mse(&xs, &xs).unwrap(), 0.0);
        assert_eq!(rmse(&xs, &xs).unwrap(), 0.0);
        assert_eq!(mae(&xs, &xs).unwrap(), 0.0);
        assert_eq!(nmse(&xs, &xs).unwrap(), 0.0);
    }

    #[test]
    fn shape_validation() {
        assert!(mse(&[], &[]).is_err());
        assert!(mse(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn mae_vs_mse_outlier_sensitivity() {
        let obs = [0.0, 0.0, 0.0, 0.0];
        let pred = [0.0, 0.0, 0.0, 4.0];
        assert_eq!(mae(&pred, &obs).unwrap(), 1.0);
        assert_eq!(mse(&pred, &obs).unwrap(), 4.0);
    }

    #[test]
    fn mape_skips_zero_observations() {
        let got = mape(&[1.1, 5.0], &[1.0, 0.0]).unwrap().unwrap();
        assert!((got - 10.0).abs() < 1e-9);
        assert_eq!(mape(&[1.0], &[0.0]).unwrap(), None);
    }

    #[test]
    fn nmse_of_mean_predictor_is_one() {
        let obs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mean = [3.0; 5];
        assert!((nmse(&mean, &obs).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmse_constant_observed_falls_back_to_mse() {
        let obs = [2.0; 4];
        let pred = [3.0; 4];
        assert_eq!(nmse(&pred, &obs).unwrap(), 1.0); // raw MSE = 1.0
    }

    #[test]
    fn cumulative_mse_matches_batch() {
        let pred = [1.0, 2.0, 3.0, 4.0];
        let obs = [1.5, 1.5, 3.5, 3.0];
        let mut acc = CumulativeMse::new();
        assert_eq!(acc.mse(), None);
        for (p, o) in pred.iter().zip(&obs) {
            acc.record(*p, *o);
        }
        assert!((acc.mse().unwrap() - mse(&pred, &obs).unwrap()).abs() < 1e-15);
        assert_eq!(acc.count(), 4);
    }

    #[test]
    fn cumulative_mse_streaming_matches_batch_over_long_runs() {
        // Property check: the streaming accumulator must agree with the batch
        // formula after arbitrarily long runs, across magnitudes from 1e-4 to
        // 1e4 (seeded LCG keeps the data deterministic).
        for seed in 0..5u64 {
            let mut state = 0x243F_6A88_85A3_08D3 ^ seed.wrapping_mul(0x9E37_79B9);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let scale = 10f64.powi(seed as i32 * 2 - 4);
            let n = 100_000;
            let mut acc = CumulativeMse::new();
            let mut pred = Vec::with_capacity(n);
            let mut obs = Vec::with_capacity(n);
            for _ in 0..n {
                let p = next() * scale;
                let o = next() * scale;
                acc.record(p, o);
                pred.push(p);
                obs.push(o);
            }
            let batch = mse(&pred, &obs).unwrap();
            let streaming = acc.mse().unwrap();
            let rel = (streaming - batch).abs() / batch;
            assert!(rel < 1e-12, "seed {seed}: streaming {streaming} vs batch {batch}");
            assert_eq!(acc.count(), n);
        }
    }

    #[test]
    fn windowed_mse_tracks_only_recent_errors() {
        let mut acc = WindowedMse::new(2).unwrap();
        assert_eq!(acc.mse(), None);
        acc.record(0.0, 10.0); // sq = 100
        acc.record(0.0, 0.0); // sq = 0
        acc.record(0.0, 2.0); // sq = 4; the 100 falls out of the window
        assert!((acc.mse().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn windowed_mse_rejects_zero_window() {
        assert!(WindowedMse::new(0).is_err());
    }

    #[test]
    fn windowed_mse_no_drift_over_long_runs() {
        let mut acc = WindowedMse::new(3).unwrap();
        for i in 0..10_000 {
            acc.record(0.0, (i % 7) as f64);
        }
        // Last three squared errors: i = 9997, 9998, 9999 -> i%7 = 1, 2, 3.
        let expect = (1.0 + 4.0 + 9.0) / 3.0;
        assert!((acc.mse().unwrap() - expect).abs() < 1e-9);
    }

    #[test]
    fn windowed_mse_survives_spiky_million_record_stream() {
        // Catastrophic-absorption stress: periodic 1e6-magnitude errors pass
        // through the window, and each O(1) addition made while the huge
        // squared error dominates the running sum loses its low bits. Without
        // periodic exact resummation the residue accumulates far past 1e-9.
        let window = 100;
        let mut acc = WindowedMse::new(window).unwrap();
        let mut last = std::collections::VecDeque::with_capacity(window + 1);
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        for i in 0..1_000_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let noise = (state >> 11) as f64 / (1u64 << 53) as f64;
            let spike = i > 0 && i < 900_000 && i % 10_000 == 0;
            let observed = if spike { 1e6 } else { noise };
            acc.record(0.0, observed);
            last.push_back(observed);
            if last.len() > window {
                last.pop_front();
            }
        }
        let obs: Vec<f64> = last.iter().copied().collect();
        let batch = mse(&vec![0.0; window], &obs).unwrap();
        let got = acc.mse().unwrap();
        assert!((got - batch).abs() < 1e-9, "windowed {got} vs batch {batch}");
    }
}
