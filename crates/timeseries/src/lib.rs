//! Time-series substrate for the LARPredictor workspace.
//!
//! This crate owns the data model that every other crate consumes:
//!
//! * [`Series`] — an equally-spaced sequence of observations with timing
//!   metadata (matches the paper's definition of a time series: "an ordered
//!   sequence of values of a variable at equally spaced time intervals");
//! * [`normalize::ZScore`] — zero-mean/unit-variance normalisation with
//!   *train-derived* coefficients, exactly as §6.2 prescribes ("the testing data
//!   are normalized using the normalization coefficient derived from the
//!   training phase");
//! * [`window`] — framing a series into overlapping prediction windows of size
//!   `m` (the paper's Figure 3 dataflow step);
//! * [`stats`] — descriptive statistics incl. autocovariance/autocorrelation
//!   (inputs to Yule–Walker AR fitting);
//! * [`metrics`] — MSE and friends, the paper's §4 evaluation measure;
//! * [`diff`] — differencing/integration for the ARI extension models.
#![warn(missing_docs)]

pub mod diff;
pub mod metrics;
pub mod normalize;
pub mod rolling;
pub mod series;
pub mod stats;
pub mod window;

pub use normalize::ZScore;
pub use rolling::RollingMoments;
pub use series::Series;
pub use window::Frames;

/// Errors produced by time-series operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TsError {
    /// The series (or window) is too short for the requested operation.
    TooShort {
        /// What was being computed.
        what: &'static str,
        /// Points required.
        needed: usize,
        /// Points available.
        got: usize,
    },
    /// An invalid parameter (zero window, negative interval, ...).
    InvalidArgument(String),
    /// The data is degenerate for the operation (e.g. zero variance).
    Degenerate(String),
}

impl std::fmt::Display for TsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsError::TooShort { what, needed, got } => {
                write!(f, "{what}: needs at least {needed} points, got {got}")
            }
            TsError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            TsError::Degenerate(m) => write!(f, "degenerate data: {m}"),
        }
    }
}

impl std::error::Error for TsError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, TsError>;
