//! PERF — microbenchmarks of the learning substrate (paper §7.3): PCA cost,
//! k-NN query cost (brute force O(N) vs kd-tree), and training indexing.

use std::hint::black_box;

use larp_bench::microbench::BenchGroup;
use learn::{KnnBackend, KnnClassifier, Pca};
use linalg::Matrix;
use simrng::{Rng64, Xoshiro256pp};

fn window_matrix(rows: usize, dim: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let data: Vec<f64> = (0..rows * dim).map(|_| rng.uniform(-2.0, 2.0)).collect();
    Matrix::from_vec(rows, dim, data).unwrap()
}

fn bench_pca() {
    let g = BenchGroup::new("pca");
    for dim in [5usize, 16] {
        let data = window_matrix(512, dim, 1);
        g.bench(&format!("fit_{dim}"), || Pca::fit(black_box(&data), 2).unwrap());
        let pca = Pca::fit(&data, 2).unwrap();
        let query: Vec<f64> = (0..dim).map(|i| i as f64 * 0.1).collect();
        g.bench(&format!("transform_{dim}"), || pca.transform(black_box(&query)).unwrap());
    }
}

fn bench_knn_backends() {
    let g = BenchGroup::new("knn_query");
    let mut rng = Xoshiro256pp::seed_from_u64(2);
    for n in [256usize, 1024, 4096, 16384] {
        let points: Vec<Vec<f64>> =
            (0..n).map(|_| vec![rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0)]).collect();
        let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let query = vec![0.3, -0.7];
        let brute =
            KnnClassifier::fit(points.clone(), labels.clone(), 3, KnnBackend::BruteForce).unwrap();
        g.bench(&format!("brute_{n}"), || brute.classify(black_box(&query)).unwrap());
        let tree = KnnClassifier::fit(points, labels, 3, KnnBackend::KdTree).unwrap();
        g.bench(&format!("kdtree_{n}"), || tree.classify(black_box(&query)).unwrap());
    }
}

fn bench_knn_index_build() {
    let g = BenchGroup::new("knn_index");
    let mut rng = Xoshiro256pp::seed_from_u64(3);
    let n = 4096;
    let points: Vec<Vec<f64>> =
        (0..n).map(|_| vec![rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0)]).collect();
    let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
    g.bench("brute_fit_4096", || {
        KnnClassifier::fit(points.clone(), labels.clone(), 3, KnnBackend::BruteForce).unwrap()
    });
    g.bench("kdtree_fit_4096", || {
        KnnClassifier::fit(points.clone(), labels.clone(), 3, KnnBackend::KdTree).unwrap()
    });
}

fn main() {
    bench_pca();
    bench_knn_backends();
    bench_knn_index_build();
}
