//! PERF — microbenchmarks of the learning substrate (paper §7.3): PCA cost,
//! k-NN query cost (brute force O(N) vs kd-tree), and training indexing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use learn::{KnnBackend, KnnClassifier, Pca};
use linalg::Matrix;
use simrng::{Rng64, Xoshiro256pp};

fn window_matrix(rows: usize, dim: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let data: Vec<f64> = (0..rows * dim).map(|_| rng.uniform(-2.0, 2.0)).collect();
    Matrix::from_vec(rows, dim, data).unwrap()
}

fn bench_pca(c: &mut Criterion) {
    let mut g = c.benchmark_group("pca");
    for dim in [5usize, 16] {
        let data = window_matrix(512, dim, 1);
        g.bench_with_input(BenchmarkId::new("fit", dim), &data, |b, data| {
            b.iter(|| black_box(Pca::fit(black_box(data), 2).unwrap()))
        });
        let pca = Pca::fit(&data, 2).unwrap();
        let query: Vec<f64> = (0..dim).map(|i| i as f64 * 0.1).collect();
        g.bench_with_input(BenchmarkId::new("transform", dim), &query, |b, q| {
            b.iter(|| black_box(pca.transform(black_box(q)).unwrap()))
        });
    }
    g.finish();
}

fn bench_knn_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("knn_query");
    let mut rng = Xoshiro256pp::seed_from_u64(2);
    for n in [256usize, 1024, 4096, 16384] {
        let points: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0)])
            .collect();
        let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let query = vec![0.3, -0.7];
        let brute =
            KnnClassifier::fit(points.clone(), labels.clone(), 3, KnnBackend::BruteForce).unwrap();
        g.bench_with_input(BenchmarkId::new("brute", n), &query, |b, q| {
            b.iter(|| black_box(brute.classify(black_box(q)).unwrap()))
        });
        let tree = KnnClassifier::fit(points, labels, 3, KnnBackend::KdTree).unwrap();
        g.bench_with_input(BenchmarkId::new("kdtree", n), &query, |b, q| {
            b.iter(|| black_box(tree.classify(black_box(q)).unwrap()))
        });
    }
    g.finish();
}

fn bench_knn_index_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("knn_index");
    let mut rng = Xoshiro256pp::seed_from_u64(3);
    let n = 4096;
    let points: Vec<Vec<f64>> = (0..n)
        .map(|_| vec![rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0)])
        .collect();
    let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
    g.bench_function("brute_fit_4096", |b| {
        b.iter(|| {
            black_box(
                KnnClassifier::fit(points.clone(), labels.clone(), 3, KnnBackend::BruteForce)
                    .unwrap(),
            )
        })
    });
    g.bench_function("kdtree_fit_4096", |b| {
        b.iter(|| {
            black_box(
                KnnClassifier::fit(points.clone(), labels.clone(), 3, KnnBackend::KdTree).unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_pca, bench_knn_backends, bench_knn_index_build);
criterion_main!(benches);
