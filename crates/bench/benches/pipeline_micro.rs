//! PERF — end-to-end pipeline benchmarks: training (sequential vs parallel
//! labelling), the per-step selection cost of LAR vs the NWS baselines, and
//! full trace evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use larp::eval::run_selector_normalized;
use larp::selector::{NwsCumMse, Selector};
use larp::{LarpConfig, TrainedLarp};
use vmsim::metric::MetricKind;
use vmsim::profiles::VmProfile;

fn vm2_cpu() -> Vec<f64> {
    vmsim::traceset::vm_traces(VmProfile::Vm2, 7)
        .into_iter()
        .find(|(k, _)| k.metric == MetricKind::CpuUsedSec)
        .map(|(_, s)| s.values().to_vec())
        .unwrap()
}

fn bench_training(c: &mut Criterion) {
    let trace = vm2_cpu();
    let (train, _) = trace.split_at(trace.len() / 2);
    let config = LarpConfig::paper(5);
    let mut g = c.benchmark_group("training");
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| black_box(TrainedLarp::train_with_threads(train, &config, t).unwrap()))
        });
    }
    g.finish();
}

fn bench_selection_step(c: &mut Criterion) {
    let trace = vm2_cpu();
    let (train, test) = trace.split_at(trace.len() / 2);
    let config = LarpConfig::paper(5);
    let model = TrainedLarp::train(train, &config).unwrap();
    let norm = model.zscore().apply_slice(test);
    let mut g = c.benchmark_group("selection_step");
    g.bench_function("knn_select", |b| {
        b.iter(|| black_box(model.select(black_box(&norm[..60])).unwrap()))
    });
    g.bench_function("knn_select_and_predict", |b| {
        b.iter(|| black_box(model.predict_next(black_box(&norm[..60])).unwrap()))
    });
    g.bench_function("nws_full_pool_step", |b| {
        // What NWS pays every step: run every model and update accounting.
        let pool = model.pool();
        b.iter(|| {
            let mut sel = NwsCumMse::new(pool);
            sel.observe(black_box(&norm[..60]), black_box(norm[60]));
        })
    });
    g.finish();
}

fn bench_full_runs(c: &mut Criterion) {
    let trace = vm2_cpu();
    let (train, test) = trace.split_at(trace.len() / 2);
    let config = LarpConfig::paper(5);
    let model = TrainedLarp::train(train, &config).unwrap();
    let norm = model.zscore().apply_slice(test);
    let mut g = c.benchmark_group("full_run");
    g.sample_size(20);
    g.bench_function("lar_over_144_steps", |b| {
        b.iter(|| {
            let mut sel = model.selector();
            black_box(run_selector_normalized(&mut sel, model.pool(), 5, &norm).unwrap())
        })
    });
    g.bench_function("nws_over_144_steps", |b| {
        b.iter(|| {
            let mut sel = NwsCumMse::new(model.pool());
            black_box(run_selector_normalized(&mut sel, model.pool(), 5, &norm).unwrap())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_training, bench_selection_step, bench_full_runs);
criterion_main!(benches);
