//! PERF — end-to-end pipeline benchmarks: training (sequential vs parallel
//! labelling), the per-step selection cost of LAR vs the NWS baselines, and
//! full trace evaluation.

use std::hint::black_box;

use larp::eval::run_selector_normalized;
use larp::selector::{NwsCumMse, Selector};
use larp::{LarpConfig, TrainedLarp};
use larp_bench::microbench::BenchGroup;
use vmsim::metric::MetricKind;
use vmsim::profiles::VmProfile;

fn vm2_cpu() -> Vec<f64> {
    vmsim::traceset::vm_traces(VmProfile::Vm2, 7)
        .into_iter()
        .find(|(k, _)| k.metric == MetricKind::CpuUsedSec)
        .map(|(_, s)| s.values().to_vec())
        .unwrap()
}

fn bench_training() {
    let trace = vm2_cpu();
    let (train, _) = trace.split_at(trace.len() / 2);
    let config = LarpConfig::paper(5);
    let g = BenchGroup::new("training");
    for threads in [1usize, 2, 4, 8] {
        g.bench(&format!("threads_{threads}"), || {
            TrainedLarp::train_with_threads(black_box(train), &config, threads).unwrap()
        });
    }
}

fn bench_selection_step() {
    let trace = vm2_cpu();
    let (train, test) = trace.split_at(trace.len() / 2);
    let config = LarpConfig::paper(5);
    let model = TrainedLarp::train(train, &config).unwrap();
    let norm = model.zscore().apply_slice(test);
    let g = BenchGroup::new("selection_step");
    g.bench("knn_select", || model.select(black_box(&norm[..60])).unwrap());
    g.bench("knn_select_and_predict", || model.predict_next(black_box(&norm[..60])).unwrap());
    g.bench("nws_full_pool_step", || {
        // What NWS pays every step: run every model and update accounting.
        let pool = model.pool();
        let mut sel = NwsCumMse::new(pool);
        sel.observe(black_box(&norm[..60]), black_box(norm[60]));
    });
}

fn bench_full_runs() {
    let trace = vm2_cpu();
    let (train, test) = trace.split_at(trace.len() / 2);
    let config = LarpConfig::paper(5);
    let model = TrainedLarp::train(train, &config).unwrap();
    let norm = model.zscore().apply_slice(test);
    let g = BenchGroup::new("full_run");
    g.bench("lar_over_144_steps", || {
        let mut sel = model.selector();
        run_selector_normalized(&mut sel, model.pool(), 5, &norm).unwrap()
    });
    g.bench("nws_over_144_steps", || {
        let mut sel = NwsCumMse::new(model.pool());
        run_selector_normalized(&mut sel, model.pool(), 5, &norm).unwrap()
    });
}

fn main() {
    bench_training();
    bench_selection_step();
    bench_full_runs();
}
