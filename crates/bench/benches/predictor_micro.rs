//! PERF — microbenchmarks of the predictor pool (paper §7.3 cost model).
//!
//! Measures per-call prediction cost of each model, AR fitting cost as a
//! function of order, and the full-pool step the NWS baselines pay.

use std::hint::black_box;

use larp_bench::microbench::BenchGroup;
use predictors::models::{Ar, Ewma, Last, PolyFit, SlidingMedian, SwAvg, Tendency};
use predictors::{Predictor, PredictorPool};

fn series(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * 0.17).sin() * 2.0 + (i % 13) as f64 * 0.05).collect()
}

fn bench_single_models() {
    let data = series(4096);
    let window = &data[4000..4016]; // 16-point window, the paper's largest
    let g = BenchGroup::new("predict_one");
    let m = Last;
    g.bench("LAST", || m.predict(black_box(window)));
    let m = SwAvg::new(16).unwrap();
    g.bench("SW_AVG_16", || m.predict(black_box(window)));
    let m = Ewma::new(0.5).unwrap();
    g.bench("EWMA", || m.predict(black_box(window)));
    let m = SlidingMedian::new(16).unwrap();
    g.bench("MEDIAN_16", || m.predict(black_box(window)));
    let m = Tendency::new(4).unwrap();
    g.bench("TENDENCY", || m.predict(black_box(window)));
    let m = PolyFit::new(8, 1).unwrap();
    g.bench("POLY_8_1", || m.predict(black_box(window)));
    let m = Ar::fit(&data, 16).unwrap();
    g.bench("AR_16", || m.predict(black_box(window)));
}

fn bench_ar_fit() {
    let data = series(2048);
    let g = BenchGroup::new("ar_fit");
    for order in [2usize, 4, 8, 16, 32] {
        g.bench(&order.to_string(), || Ar::fit(black_box(&data), order).unwrap());
    }
}

fn bench_pool_step() {
    // The cost asymmetry the paper exploits: one model per step (LAR) versus
    // the whole pool per step (NWS).
    let data = series(1024);
    let window = &data[1000..1016];
    let g = BenchGroup::new("pool_step");
    let pool = PredictorPool::standard(&data, 16).unwrap();
    g.bench("standard_single_model", || {
        pool.predict_one(predictors::PredictorId(1), black_box(window))
    });
    g.bench("standard_full_pool", || pool.predict_all(black_box(window)));
    let extended = PredictorPool::extended(&data, 16).unwrap();
    g.bench("extended_full_pool", || extended.predict_all(black_box(window)));
}

fn main() {
    bench_single_models();
    bench_ar_fit();
    bench_pool_step();
}
