//! PERF — microbenchmarks of the predictor pool (paper §7.3 cost model).
//!
//! Measures per-call prediction cost of each model, AR fitting cost as a
//! function of order, and the full-pool step the NWS baselines pay.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use predictors::models::{Ar, Ewma, Last, PolyFit, SlidingMedian, SwAvg, Tendency};
use predictors::{Predictor, PredictorPool};

fn series(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * 0.17).sin() * 2.0 + (i % 13) as f64 * 0.05).collect()
}

fn bench_single_models(c: &mut Criterion) {
    let data = series(4096);
    let window = &data[4000..4016]; // 16-point window, the paper's largest
    let mut g = c.benchmark_group("predict_one");
    g.bench_function("LAST", |b| {
        let m = Last;
        b.iter(|| black_box(m.predict(black_box(window))))
    });
    g.bench_function("SW_AVG_16", |b| {
        let m = SwAvg::new(16).unwrap();
        b.iter(|| black_box(m.predict(black_box(window))))
    });
    g.bench_function("EWMA", |b| {
        let m = Ewma::new(0.5).unwrap();
        b.iter(|| black_box(m.predict(black_box(window))))
    });
    g.bench_function("MEDIAN_16", |b| {
        let m = SlidingMedian::new(16).unwrap();
        b.iter(|| black_box(m.predict(black_box(window))))
    });
    g.bench_function("TENDENCY", |b| {
        let m = Tendency::new(4).unwrap();
        b.iter(|| black_box(m.predict(black_box(window))))
    });
    g.bench_function("POLY_8_1", |b| {
        let m = PolyFit::new(8, 1).unwrap();
        b.iter(|| black_box(m.predict(black_box(window))))
    });
    g.bench_function("AR_16", |b| {
        let m = Ar::fit(&data, 16).unwrap();
        b.iter(|| black_box(m.predict(black_box(window))))
    });
    g.finish();
}

fn bench_ar_fit(c: &mut Criterion) {
    let data = series(2048);
    let mut g = c.benchmark_group("ar_fit");
    for order in [2usize, 4, 8, 16, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(order), &order, |b, &order| {
            b.iter(|| black_box(Ar::fit(black_box(&data), order).unwrap()))
        });
    }
    g.finish();
}

fn bench_pool_step(c: &mut Criterion) {
    // The cost asymmetry the paper exploits: one model per step (LAR) versus
    // the whole pool per step (NWS).
    let data = series(1024);
    let window = &data[1000..1016];
    let mut g = c.benchmark_group("pool_step");
    {
        let (name, order) = ("standard", 16usize);
        let pool = PredictorPool::standard(&data, order).unwrap();
        g.bench_function(format!("{name}_single_model"), |b| {
            b.iter(|| black_box(pool.predict_one(predictors::PredictorId(1), black_box(window))))
        });
        g.bench_function(format!("{name}_full_pool"), |b| {
            b.iter(|| black_box(pool.predict_all(black_box(window))))
        });
    }
    let extended = PredictorPool::extended(&data, 16).unwrap();
    g.bench_function("extended_full_pool", |b| {
        b.iter(|| black_box(extended.predict_all(black_box(window))))
    });
    g.finish();
}

criterion_group!(benches, bench_single_models, bench_ar_fit, bench_pool_step);
criterion_main!(benches);
