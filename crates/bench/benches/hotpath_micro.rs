//! PERF — the zero-allocation hot path, allocating vs scratch-reuse variants
//! side by side: k-NN query, PCA projection, and the full online serving step
//! (sanitize → normalize → classify → predict). The `_into` rows are what the
//! fleet workers actually run; the allocating rows are the pre-optimization
//! baseline kept for comparison.
//!
//! With `--json` the run additionally prints one JSON object mapping every
//! `group/name` row to its median ns/iter — the machine-readable artifact the
//! CI regression gate compares against `results/BENCH_hotpath.json`. Kernel
//! dispatch follows `LARP_KERNELS` as everywhere else, so the same run works
//! for both the AVX2 and forced-scalar profiles.

use std::hint::black_box;

use larp::{GuardedLarp, IngestConfig, LarpConfig, OnlineLarp, QualityAssuror, Scratch};
use larp_bench::microbench::BenchGroup;
use learn::{KnnBackend, KnnClassifier, Pca};
use linalg::Matrix;
use simrng::{Rng64, Xoshiro256pp};

/// A [`BenchGroup`] that also records every `group/name → median ns` row for
/// the `--json` artifact.
struct Rec<'a> {
    group: &'static str,
    g: BenchGroup,
    rows: &'a mut Vec<(String, f64)>,
}

impl<'a> Rec<'a> {
    fn new(group: &'static str, rows: &'a mut Vec<(String, f64)>) -> Self {
        Self { group, g: BenchGroup::new(group), rows }
    }

    fn bench<T, F: FnMut() -> T>(&mut self, name: &str, f: F) {
        let ns = self.g.bench(name, f);
        self.rows.push((format!("{}/{name}", self.group), ns));
    }
}

fn bench_knn_query(rows: &mut Vec<(String, f64)>) {
    let mut g = Rec::new("hot_knn", rows);
    let mut rng = Xoshiro256pp::seed_from_u64(7);
    // 35 points ≈ the training set a 40-sample online retrain produces.
    for n in [35usize, 1024] {
        let points: Vec<Vec<f64>> =
            (0..n).map(|_| vec![rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0)]).collect();
        let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let knn = KnnClassifier::fit(points, labels, 3, KnnBackend::BruteForce).unwrap();
        let query = vec![0.3, -0.7];
        g.bench(&format!("classify_alloc_{n}"), || knn.classify(black_box(&query)).unwrap());
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        g.bench(&format!("classify_into_{n}"), || {
            knn.classify_into(black_box(&query), &mut scratch).unwrap()
        });
    }
}

fn bench_pca_project(rows: &mut Vec<(String, f64)>) {
    let mut g = Rec::new("hot_pca", rows);
    let mut rng = Xoshiro256pp::seed_from_u64(8);
    let data: Vec<f64> = (0..512 * 5).map(|_| rng.uniform(-2.0, 2.0)).collect();
    let pca = Pca::fit(&Matrix::from_vec(512, 5, data).unwrap(), 2).unwrap();
    let window = [0.1, -0.4, 0.9, 0.2, -0.6];
    g.bench("project_alloc", || pca.transform(black_box(&window)).unwrap());
    let mut out = Vec::new();
    g.bench("project_into", || pca.transform_into(black_box(&window), &mut out).unwrap());
}

fn signal(minute: u64) -> f64 {
    40.0 + (minute as f64 * 0.17).sin() * 6.0 + (minute as f64 * 0.031).cos() * 2.5
}

fn warm_online() -> OnlineLarp {
    let qa = QualityAssuror::new(1e12, 8, 4).unwrap();
    let mut online = OnlineLarp::new(LarpConfig::default(), 40, qa).unwrap();
    for minute in 0..512u64 {
        online.push(signal(minute));
    }
    online
}

fn bench_online_step(rows: &mut Vec<(String, f64)>) {
    let mut g = Rec::new("hot_online_step", rows);
    let mut online = warm_online();
    let mut minute = 512u64;
    g.bench("push_internal_scratch", || {
        minute += 1;
        online.push(black_box(signal(minute)))
    });
    let mut online = warm_online();
    let mut scratch = Scratch::new();
    let mut minute = 512u64;
    g.bench("push_with_scratch", || {
        minute += 1;
        online.push_with(black_box(signal(minute)), &mut scratch)
    });

    let qa = QualityAssuror::new(1e12, 8, 4).unwrap();
    let mut guarded = GuardedLarp::new(IngestConfig::default(), LarpConfig::default(), 40, qa)
        .expect("valid guarded stack");
    let mut steps = Vec::new();
    let mut scratch = Scratch::new();
    for minute in 0..512u64 {
        guarded.ingest_into(minute, signal(minute), &mut scratch, &mut steps);
    }
    let mut minute = 512u64;
    g.bench("guarded_ingest_alloc", || {
        minute += 1;
        guarded.ingest(black_box(minute), black_box(signal(minute)))
    });
    let mut minute = 512u64;
    g.bench("guarded_ingest_into", || {
        minute += 1;
        guarded.ingest_into(black_box(minute), black_box(signal(minute)), &mut scratch, &mut steps)
    });
}

fn bench_retrain(rows: &mut Vec<(String, f64)>) {
    // The online serving layer retrains on a train_size (40) tail; on busy
    // fleets this happens every few steps per stream, so its cost is as much
    // part of the hot path as the per-sample step.
    let mut g = Rec::new("hot_retrain", rows);
    let tail: Vec<f64> = (0..40).map(signal).collect();
    let config = LarpConfig::default();
    g.bench("train_40_tail", || larp::TrainedLarp::train(black_box(&tail), &config).unwrap());

    let zscore = timeseries::ZScore::fit(&tail).unwrap();
    let normalized = zscore.apply_slice(&tail);
    g.bench("pool_fit_40", || {
        predictors::PredictorPool::from_specs(black_box(&config.pool), &normalized).unwrap()
    });
    let pool = predictors::PredictorPool::from_specs(&config.pool, &normalized).unwrap();
    g.bench("label_35_windows", || {
        larp::labeler::label_windows(black_box(&pool), &normalized, 5).unwrap()
    });
    let labeled = larp::labeler::label_windows(&pool, &normalized, 5).unwrap();
    let rows_: Vec<Vec<f64>> = labeled.iter().map(|lw| lw.window.clone()).collect();
    let matrix = Matrix::from_rows(&rows_).unwrap();
    g.bench("pca_fit_35x5", || Pca::fit(black_box(&matrix), 2).unwrap());
    g.bench("cov_35x5", || black_box(&matrix).covariance());
    let cov = matrix.covariance();
    g.bench("sym_eigen_5x5", || linalg::SymEigen::decompose(black_box(&cov)).unwrap());
}

fn bench_producer_signal(rows: &mut Vec<(String, f64)>) {
    // What the fleet_throughput producer pays per sample before the engine
    // ever sees it.
    let mut g = Rec::new("hot_producer", rows);
    let mut sig = vmsim::fleet_signal(2007, 17);
    let mut minute = 0u64;
    g.bench("fleet_signal_sample", || {
        minute += 1;
        sig.sample(black_box(minute))
    });
}

fn main() {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    let mut rows: Vec<(String, f64)> = Vec::new();
    bench_knn_query(&mut rows);
    bench_pca_project(&mut rows);
    bench_online_step(&mut rows);
    bench_retrain(&mut rows);
    bench_producer_signal(&mut rows);
    if json {
        println!("{{");
        println!("  \"bench\": \"hotpath_micro\",");
        println!("  \"unit\": \"ns_per_iter_median\",");
        println!("  \"rows\": {{");
        for (i, (name, ns)) in rows.iter().enumerate() {
            let comma = if i + 1 == rows.len() { "" } else { "," };
            println!("    \"{name}\": {ns:.1}{comma}");
        }
        println!("  }}");
        println!("}}");
    }
}
