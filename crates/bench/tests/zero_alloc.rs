//! The perf gate behind the zero-allocation hot path: once a stream is warm
//! (trained, scratch sized, rolling state primed), the steady-state
//! sanitize → normalize → classify → predict step must not touch the heap.
//!
//! A counting `#[global_allocator]` wraps the system allocator for this test
//! binary; the test warms a guarded stack past training, then asserts that
//! thousands of further steps perform zero allocations. Regressions here are
//! invisible to correctness tests but show up directly as fleet throughput
//! loss, so this pins the property rather than the symptom.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use larp::{GuardedLarp, IngestConfig, LarpConfig, QualityAssuror, Scratch};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// A smooth but non-trivial signal: no gaps, no outliers, so the sanitizer
/// passes every value through and the predictor stays healthy.
fn signal(minute: u64) -> f64 {
    40.0 + (minute as f64 * 0.17).sin() * 6.0 + (minute as f64 * 0.031).cos() * 2.5
}

#[test]
fn steady_state_online_step_does_not_allocate() {
    // A QA threshold this high never signals a retrain, so the measured
    // window exercises exactly the steady-state serving path.
    let qa = QualityAssuror::new(1e12, 8, 4).expect("valid QA config");
    let mut guarded = GuardedLarp::new(IngestConfig::default(), LarpConfig::default(), 40, qa)
        .expect("valid guarded stack");
    let mut scratch = Scratch::new();
    let mut steps = Vec::new();

    // Warm-up: initial training, scratch sizing, QA window growth, first
    // ring compactions and rolling resummations all happen here.
    for minute in 0..2048u64 {
        guarded.ingest_into(minute, signal(minute), &mut scratch, &mut steps);
    }
    let retrains_before = guarded.online().retrain_count();
    assert!(retrains_before >= 1, "stream must be trained before measurement");

    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let mut forecasts = 0u64;
    for minute in 2048..6144u64 {
        guarded.ingest_into(minute, signal(minute), &mut scratch, &mut steps);
        forecasts += steps.iter().filter(|s| s.forecast.is_some()).count() as u64;
    }
    let allocations = ALLOC_CALLS.load(Ordering::Relaxed) - before;

    // The measured window must have done real serving work, entirely on the
    // steady-state path.
    assert_eq!(forecasts, 4096, "every measured step should forecast");
    assert_eq!(
        guarded.online().retrain_count(),
        retrains_before,
        "a retrain inside the measured window would invalidate the steady-state claim"
    );
    assert_eq!(allocations, 0, "steady-state online step allocated {allocations} times");
}
