//! Shared harness for the reproduction binaries and benches.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index); this library holds the plumbing they
//! share: per-VM paper configurations, corpus-wide evaluation, degenerate
//! (NaN) trace detection, and plain-text table formatting.

pub mod microbench;

use larp::{eval::Aggregate, LarpConfig, TraceReport};
use vmsim::{profiles::VmProfile, traceset, TraceKey};

/// The default corpus seed; every binary accepts `--seed N` to override.
pub const DEFAULT_SEED: u64 = 2007;

/// The paper's fold count ("ten-fold cross validation").
pub const DEFAULT_FOLDS: usize = 10;

/// The paper's configuration for a given VM (window 16 for VM1, 5 otherwise).
pub fn paper_config(profile: VmProfile) -> LarpConfig {
    LarpConfig::paper(profile.prediction_window())
}

/// A trace whose variance is (numerically) zero — a dead device. The paper
/// reports these rows as `NaN`; the evaluation skips them the same way.
pub fn is_degenerate(values: &[f64]) -> bool {
    timeseries::stats::variance(values) < 1e-9
}

/// One evaluated corpus entry.
pub struct CorpusResult {
    /// Which trace.
    pub key: TraceKey,
    /// `None` for degenerate (NaN) traces.
    pub report: Option<TraceReport>,
}

/// Evaluates the full 60-trace paper corpus: per-VM paper configs, `folds`
/// random splits per trace, parallel across traces. Degenerate traces are
/// carried with `report: None`.
pub fn evaluate_corpus(seed: u64, folds: usize) -> Vec<CorpusResult> {
    let corpus = traceset::paper_traces(seed);
    let mut out = Vec::with_capacity(corpus.len());
    // Group by profile so each group shares a config; evaluate each group in
    // parallel across its traces.
    for profile in VmProfile::ALL {
        let config = paper_config(profile);
        let group: Vec<(TraceKey, Vec<f64>)> = corpus
            .iter()
            .filter(|(k, _)| k.profile == profile)
            .map(|(k, s)| (k.clone(), s.values().to_vec()))
            .collect();
        let named: Vec<(String, Vec<f64>)> = group
            .iter()
            .filter(|(_, v)| !is_degenerate(v))
            .map(|(k, v)| (k.label(), v.clone()))
            .collect();
        let reports = larp::parallel::evaluate_traces(&named, &config, folds, seed);
        let mut report_iter = reports.into_iter();
        for (key, values) in group {
            if is_degenerate(&values) {
                out.push(CorpusResult { key, report: None });
            } else {
                let report = report_iter
                    .next()
                    .expect("one report per non-degenerate trace")
                    .unwrap_or_else(|e| panic!("evaluating {key}: {e}"));
                out.push(CorpusResult { key, report: Some(report) });
            }
        }
    }
    out
}

/// Aggregates the corpus results over non-degenerate traces.
pub fn aggregate(results: &[CorpusResult]) -> Aggregate {
    let reports: Vec<TraceReport> = results.iter().filter_map(|r| r.report.clone()).collect();
    Aggregate::from_reports(&reports).expect("corpus contains live traces")
}

/// Parses `--seed N` and `--folds N` from argv (tiny, dependency-free).
pub fn cli_args() -> (u64, usize) {
    let mut seed = DEFAULT_SEED;
    let mut folds = DEFAULT_FOLDS;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < args.len() {
        match args[i].as_str() {
            "--seed" => seed = args[i + 1].parse().expect("--seed takes an integer"),
            "--folds" => folds = args[i + 1].parse().expect("--folds takes an integer"),
            _ => {}
        }
        i += 1;
    }
    (seed, folds)
}

/// Formats an MSE cell; 4 decimals, the paper's table style.
pub fn cell(v: f64) -> String {
    format!("{v:.4}")
}

/// Prints one table row with fixed column widths.
pub fn row(label: &str, cells: &[String]) {
    print!("{label:<18}");
    for c in cells {
        print!(" {c:>9}");
    }
    println!();
}

/// Prints a table header.
pub fn header(label: &str, cols: &[&str]) {
    row(label, &cols.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    println!("{}", "-".repeat(18 + cols.len() * 10));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_detection() {
        assert!(is_degenerate(&[1.0; 50]));
        assert!(!is_degenerate(&(0..50).map(|i| i as f64).collect::<Vec<_>>()));
    }

    #[test]
    fn paper_configs_follow_table2_footnote() {
        assert_eq!(paper_config(VmProfile::Vm1).window, 16);
        assert_eq!(paper_config(VmProfile::Vm4).window, 5);
    }

    #[test]
    fn corpus_evaluation_small_smoke() {
        // 1 fold to keep the suite fast; full runs live in the binaries.
        let results = evaluate_corpus(1, 1);
        assert_eq!(results.len(), 60);
        let live = results.iter().filter(|r| r.report.is_some()).count();
        let dead = results.len() - live;
        // VM3 has 4 dead streams, VM5 has 3 by construction.
        assert!(dead >= 5, "dead {dead}");
        assert!(live >= 50, "live {live}");
        let agg = aggregate(&results);
        assert!(agg.mean_acc_lar > 0.0 && agg.mean_acc_lar <= 1.0);
    }
}
