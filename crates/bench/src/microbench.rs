//! Minimal wall-clock timing harness for the PERF benches.
//!
//! Replaces the external criterion dependency with the subset these benches
//! actually use: named benchmark groups, automatic iteration calibration, and
//! a median-of-samples ns/iter report on stdout. Deliberately tiny — no
//! statistics beyond the median, no HTML, no baselines.

use std::time::{Duration, Instant};

/// Number of timed samples per benchmark.
const SAMPLES: usize = 7;

/// Minimum measured wall time per sample; iteration count is doubled during
/// calibration until one batch takes at least this long.
const MIN_SAMPLE_TIME: Duration = Duration::from_millis(10);

/// A named group of benchmarks, printed as `group/name`.
pub struct BenchGroup {
    name: String,
}

impl BenchGroup {
    /// Starts a group; prints its heading.
    pub fn new(name: &str) -> Self {
        println!("\n== {name} ==");
        Self { name: name.to_string() }
    }

    /// Times `f`, printing the per-iteration median of [`SAMPLES`] batches.
    /// Returns that median (ns/iter) so callers can also emit it as a
    /// machine-readable artifact (the hotpath regression gate does).
    pub fn bench<T, F: FnMut() -> T>(&self, name: &str, mut f: F) -> f64 {
        // Calibrate: double the batch size until one batch is long enough to
        // dominate timer overhead.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            if start.elapsed() >= MIN_SAMPLE_TIME || iters >= 1 << 30 {
                break;
            }
            iters *= 2;
        }
        let mut per_iter: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let median = per_iter[SAMPLES / 2];
        println!("{}/{name:<32} {median:>14.1} ns/iter  ({iters} iters/sample)", self.name);
        median
    }
}
