//! TAB3 — Table 3: the observed best single predictor per (metric × VM), with
//! `*` marking traces where the LARPredictor matched or beat it and `NaN`
//! marking dead devices.
//!
//! Run with: `cargo run --release -p larp-bench --bin table3_best_predictors`

use std::collections::HashMap;

use vmsim::metric::MetricKind;
use vmsim::profiles::VmProfile;

fn main() {
    let (seed, folds) = larp_bench::cli_args();
    eprintln!("evaluating 60-trace corpus (seed {seed}, {folds} folds per trace)...");
    let results = larp_bench::evaluate_corpus(seed, folds);
    let by_key: HashMap<String, &larp_bench::CorpusResult> =
        results.iter().map(|r| (r.key.label(), r)).collect();

    println!("=== Table 3: Best Predictors of All the Trace Data ===");
    println!("('*' = LARPredictor matched or beat the best single predictor)");
    larp_bench::header("Perform.Metrics", &["VM1", "VM2", "VM3", "VM4", "VM5"]);
    let mut stars = 0usize;
    let mut live = 0usize;
    for metric in MetricKind::ALL {
        let mut cells = Vec::new();
        for profile in VmProfile::ALL {
            let label = format!("{}/{}", profile.vm_id(), metric);
            let r = by_key.get(&label).expect("corpus covers all 60 traces");
            match &r.report {
                None => cells.push("NaN".to_string()),
                Some(rep) => {
                    live += 1;
                    let star = if rep.lar_beats_best_single() {
                        stars += 1;
                        "*"
                    } else {
                        ""
                    };
                    cells.push(format!("{}{star}", rep.best_single_name()));
                }
            }
        }
        larp_bench::row(metric.label(), &cells);
    }
    println!();
    println!(
        "LAR matched/beat the best single predictor on {stars}/{live} live traces ({:.2}%; paper: 44.23%)",
        100.0 * stars as f64 / live as f64
    );
}
