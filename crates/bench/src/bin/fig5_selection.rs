//! FIG5 — Figure 5: best-predictor selection over time for trace VM2_PktIn
//! (the proxy VM's inbound packet rate), 12 hours at 5-minute sampling.
//!
//! Same format as Figure 4; the bursty network trace exercises different
//! selection dynamics than the smooth CPU trace.
//!
//! Run with: `cargo run --release -p larp-bench --bin fig5_selection`

use larp::eval::{forecasting_accuracy, observed_best, run_selector_normalized};
use larp::selector::NwsCumMse;
use larp::TrainedLarp;
use vmsim::metric::MetricKind;
use vmsim::profiles::VmProfile;

fn main() {
    let (seed, _) = larp_bench::cli_args();
    let traces = vmsim::traceset::vm_traces(VmProfile::Vm2, seed);
    let (_, series) = traces
        .iter()
        .find(|(k, _)| k.metric == MetricKind::Nic1Rx)
        .expect("corpus covers all metrics");

    let config = larp_bench::paper_config(VmProfile::Vm2);
    let half = series.len() / 2;
    let (train, test) = series.values().split_at(half);
    let model = TrainedLarp::train(train, &config).expect("12h of 5-min samples");
    let norm = model.zscore().apply_slice(test);
    let pool = model.pool();

    let oracle = observed_best(pool, config.window, &norm).unwrap();
    let lar = run_selector_normalized(&mut model.selector(), pool, config.window, &norm).unwrap();
    let mut nws_sel = NwsCumMse::new(pool);
    let nws = run_selector_normalized(&mut nws_sel, pool, config.window, &norm).unwrap();

    println!("=== Figure 5: Best Predictor Selection, VM2_PktIn ===");
    println!("Predictor Class: 1 - LAST, 2 - AR, 3 - SW_AVG");
    println!("{:>6} {:>14} {:>14} {:>14}", "step", "observed_best", "Knn-LARP", "NWS Cum.MSE");
    for i in 0..oracle.best.len() {
        println!(
            "{:>6} {:>14} {:>14} {:>14}",
            i,
            oracle.best[i].to_string(),
            lar.chosen[i].to_string(),
            nws.chosen[i].to_string()
        );
    }
    println!();
    println!(
        "forecasting accuracy: Knn-LARP {:.2}%, NWS {:.2}%",
        forecasting_accuracy(&lar, &oracle).unwrap() * 100.0,
        forecasting_accuracy(&nws, &oracle).unwrap() * 100.0
    );
    let switches = |v: &[predictors::PredictorId]| v.windows(2).filter(|w| w[0] != w[1]).count();
    println!(
        "selection changes: observed {}, Knn-LARP {}, NWS {}",
        switches(&oracle.best),
        switches(&lar.chosen),
        switches(&nws.chosen)
    );
}
