//! ABL3 — ablation of the predictor pool: the paper's 3-model pool vs the
//! extended 11-model family (the paper's "more predictors in the pool"
//! future-work direction).
//!
//! A bigger pool lowers the oracle (P-LAR) MSE but makes the selection
//! problem harder; this bench quantifies both sides, plus the per-step cost
//! advantage over NWS (which must run the whole pool).
//!
//! Run with: `cargo run --release -p larp-bench --bin ablation_pool`

use larp::TraceReport;
use predictors::ModelSpec;
use vmsim::profiles::VmProfile;

fn main() {
    let (seed, folds) = larp_bench::cli_args();
    let mut traces = vmsim::traceset::vm_traces(VmProfile::Vm2, seed);
    traces.extend(vmsim::traceset::vm_traces(VmProfile::Vm4, seed));
    let live: Vec<_> =
        traces.iter().filter(|(_, s)| !larp_bench::is_degenerate(s.values())).collect();

    let window = 5;
    let arms: Vec<(&str, Vec<ModelSpec>)> = vec![
        ("standard (3)", ModelSpec::standard_pool(window)),
        ("extended (11)", ModelSpec::extended_pool(window)),
    ];

    println!("=== Ablation: pool size (VM2 + VM4, {} traces) ===", live.len());
    larp_bench::header("pool", &["acc", "mse_plar", "mse_lar", "mse_nws"]);
    for (name, pool) in arms {
        let mut config = larp_bench::paper_config(VmProfile::Vm2);
        config.pool = pool;
        let mut acc = 0.0;
        let mut plar = 0.0;
        let mut lar = 0.0;
        let mut nws = 0.0;
        for (key, series) in &live {
            let r = TraceReport::evaluate(key.label(), series.values(), &config, folds, seed)
                .expect("traces are long enough");
            acc += r.acc_lar;
            plar += r.mse_plar;
            lar += r.mse_lar;
            nws += r.mse_nws;
        }
        let n = live.len() as f64;
        larp_bench::row(
            name,
            &[
                format!("{:.2}%", 100.0 * acc / n),
                larp_bench::cell(plar / n),
                larp_bench::cell(lar / n),
                larp_bench::cell(nws / n),
            ],
        );
    }
    println!();
    println!("note: a larger pool lowers the oracle bound (mse_plar) but dilutes selection");
    println!("accuracy; NWS pays pool-size executions per step, the LARPredictor pays one.");
}
