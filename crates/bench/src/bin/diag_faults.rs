//! Diagnostic: serving quality of the guarded online stack under injected
//! monitor faults, sweeping the combined fault rate.
//!
//! For each rate, a VM CPU trace is corrupted by `vmsim`'s deterministic
//! fault injector (drops, gaps, NaN, sentinels, stuck runs, spikes,
//! duplicates all at the same per-sample rate) and served through
//! `Sanitizer` → `OnlineLarp`. Reported per rate:
//!
//! * `avail` — fraction of post-warmup steps that produced a forecast;
//! * `mse` — mean squared error of forecasts against the served stream;
//! * `sanitized` — repairs performed by the ingestion layer;
//! * `quar`/`rfail` — quarantines imposed and retrain attempts that failed;
//! * `deg`/`fall` — steps served degraded / by persistence fallback.
//!
//! Run with: `cargo run --release -p larp-bench --bin diag_faults`

use larp::{GuardedLarp, IngestConfig, LarpConfig, QualityAssuror};
use vmsim::profiles::VmProfile;
use vmsim::{FaultConfig, FaultInjector, MetricKind};

const TRAIN_SIZE: usize = 96;

fn cpu_trace(seed: u64) -> Vec<f64> {
    vmsim::traceset::vm_traces(VmProfile::Vm2, seed)
        .into_iter()
        .find(|(k, _)| k.metric == MetricKind::CpuUsedSec)
        .map(|(_, s)| s.values().to_vec())
        .expect("VM2 exposes a CPU trace")
}

fn main() {
    let (seed, _) = larp_bench::cli_args();
    let clean = cpu_trace(seed);
    larp_bench::header(
        "fault_rate",
        &["avail", "mse", "sanitized", "quar", "rfail", "deg", "fall"],
    );
    for rate in [0.0, 0.01, 0.05, 0.10, 0.20] {
        let mut injector =
            FaultInjector::new(FaultConfig::uniform(rate), seed).expect("valid fault config");
        let stream = injector.corrupt_series(&clean, 0);

        let mut g = GuardedLarp::new(
            IngestConfig::default(),
            LarpConfig::paper(5),
            TRAIN_SIZE,
            QualityAssuror::new(40.0, 12, 6).expect("valid QA parameters"),
        )
        .expect("valid stack config");

        let mut steps = 0usize;
        let mut forecasts = 0usize;
        let mut pending: Option<f64> = None;
        let mut sq_sum = 0.0;
        let mut scored = 0usize;
        for &(minute, value) in &stream {
            for step in g.ingest(minute, value) {
                steps += 1;
                // Score the previous forecast against what the predictor was
                // actually asked to predict: the next served sample.
                // (The served value for this step is not exposed by
                // OnlineStep, so score lazily one step behind via the raw
                // reading — close enough for a diagnostic at these rates.)
                if let Some(f) = pending.take() {
                    if value.is_finite() {
                        sq_sum += (f - value).powi(2);
                        scored += 1;
                    }
                }
                if let Some(f) = step.forecast {
                    assert!(f.is_finite(), "non-finite forecast escaped the ladder");
                    forecasts += 1;
                    pending = Some(f);
                }
            }
        }
        // Forecasts start at the training step itself, so the first
        // TRAIN_SIZE - 1 steps are the only ineligible ones.
        let post_warmup = steps.saturating_sub(TRAIN_SIZE - 1).max(1);
        let counters = *g.online().counters();
        let stats = *g.sanitizer().stats();
        larp_bench::row(
            &format!("{:.0}%", rate * 100.0),
            &[
                format!("{:.1}%", 100.0 * forecasts as f64 / post_warmup as f64),
                larp_bench::cell(sq_sum / scored.max(1) as f64),
                format!("{}", stats.faults_sanitized()),
                format!("{}", counters.quarantines),
                format!("{}", counters.retrain_failures),
                format!("{}", counters.degraded_steps),
                format!("{}", counters.fallback_steps),
            ],
        );
    }
}
