//! ABL2 — ablation of the neighbour count: k sweep for the k-NN selector.
//!
//! The paper fixes k = 3. Sweeps k ∈ {1, 3, 5, 7, 9} over VM2's and VM4's
//! live traces.
//!
//! Run with: `cargo run --release -p larp-bench --bin ablation_k`

use larp::TraceReport;
use vmsim::profiles::VmProfile;

fn main() {
    let (seed, folds) = larp_bench::cli_args();
    let mut traces = vmsim::traceset::vm_traces(VmProfile::Vm2, seed);
    traces.extend(vmsim::traceset::vm_traces(VmProfile::Vm4, seed));
    let live: Vec<_> =
        traces.iter().filter(|(_, s)| !larp_bench::is_degenerate(s.values())).collect();

    println!("=== Ablation: k-NN neighbour count (VM2 + VM4, {} traces) ===", live.len());
    larp_bench::header("k", &["acc", "mse_lar", "vs_plar"]);
    for k in [1usize, 3, 5, 7, 9] {
        let mut config = larp_bench::paper_config(VmProfile::Vm2);
        config.k = k;
        let mut acc = 0.0;
        let mut mse = 0.0;
        let mut gap = 0.0;
        for (key, series) in &live {
            let r = TraceReport::evaluate(key.label(), series.values(), &config, folds, seed)
                .expect("traces are long enough");
            acc += r.acc_lar;
            mse += r.mse_lar;
            gap += if r.mse_plar > 1e-12 { r.mse_lar / r.mse_plar } else { 1.0 };
        }
        let n = live.len() as f64;
        let label = if k == 3 { "3 (paper)".to_string() } else { k.to_string() };
        larp_bench::row(
            &label,
            &[
                format!("{:.2}%", 100.0 * acc / n),
                larp_bench::cell(mse / n),
                format!("{:.2}x", gap / n),
            ],
        );
    }
}
