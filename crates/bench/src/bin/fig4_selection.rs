//! FIG4 — Figure 4: best-predictor selection over time for trace VM2_load15
//! (the proxy VM's CPU load), 12 hours at 5-minute sampling.
//!
//! Three aligned series of class labels (1 = LAST, 2 = AR, 3 = SW_AVG):
//! the observed best predictor, the k-NN LARPredictor's forecasted best, and
//! the NWS cumulative-MSE selection.
//!
//! Run with: `cargo run --release -p larp-bench --bin fig4_selection`

use larp::eval::{forecasting_accuracy, observed_best, run_selector_normalized};
use larp::selector::NwsCumMse;
use larp::TrainedLarp;
use vmsim::metric::MetricKind;
use vmsim::profiles::VmProfile;

fn main() {
    selection_figure(MetricKind::CpuUsedSec, "Figure 4: Best Predictor Selection, VM2_load15");
}

/// Shared driver for Figures 4 and 5.
pub fn selection_figure(metric: MetricKind, title: &str) {
    let (seed, _) = larp_bench::cli_args();
    let traces = vmsim::traceset::vm_traces(VmProfile::Vm2, seed);
    let (_, series) =
        traces.iter().find(|(k, _)| k.metric == metric).expect("corpus covers all metrics");

    // Train on the first 12 hours, plot selection over the second 12 hours.
    let config = larp_bench::paper_config(VmProfile::Vm2);
    let half = series.len() / 2;
    let (train, test) = series.values().split_at(half);
    let model = TrainedLarp::train(train, &config).expect("12h of 5-min samples");
    let norm = model.zscore().apply_slice(test);
    let pool = model.pool();

    let oracle = observed_best(pool, config.window, &norm).unwrap();
    let lar = run_selector_normalized(&mut model.selector(), pool, config.window, &norm).unwrap();
    let mut nws_sel = NwsCumMse::new(pool);
    let nws = run_selector_normalized(&mut nws_sel, pool, config.window, &norm).unwrap();

    println!("=== {title} ===");
    println!("Predictor Class: 1 - LAST, 2 - AR, 3 - SW_AVG");
    println!("{:>6} {:>14} {:>14} {:>14}", "step", "observed_best", "Knn-LARP", "NWS Cum.MSE");
    for i in 0..oracle.best.len() {
        println!(
            "{:>6} {:>14} {:>14} {:>14}",
            i,
            oracle.best[i].to_string(),
            lar.chosen[i].to_string(),
            nws.chosen[i].to_string()
        );
    }
    println!();
    println!(
        "forecasting accuracy: Knn-LARP {:.2}%, NWS {:.2}%",
        forecasting_accuracy(&lar, &oracle).unwrap() * 100.0,
        forecasting_accuracy(&nws, &oracle).unwrap() * 100.0
    );
    // Selection-change counts show who adapts: the oracle switches often, the
    // NWS selection is sticky.
    let switches = |v: &[predictors::PredictorId]| v.windows(2).filter(|w| w[0] != w[1]).count();
    println!(
        "selection changes: observed {}, Knn-LARP {}, NWS {}",
        switches(&oracle.best),
        switches(&lar.chosen),
        switches(&nws.chosen)
    );
}
