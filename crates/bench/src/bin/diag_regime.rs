//! Diagnostic: LARPredictor behaviour on pure two-regime traces, sweeping the
//! regime parameters.
//!
//! Confirms the reproduction machinery end to end: when a trace alternates
//! between a drift regime (persistence-friendly) and a busy noisy regime
//! (averaging-friendly), and the regime is identifiable from the window, the
//! k-NN selector should beat the NWS baseline and approach/beat the best
//! single model. Used to calibrate `vmsim`'s `volatility_switch`.
//!
//! Run with: `cargo run --release -p larp-bench --bin diag_regime`

use larp::TraceReport;
use simrng::{dist::Normal, Rng64, Xoshiro256pp};
use vmsim::profiles::VmProfile;

struct Params {
    name: &'static str,
    /// Busy-regime mean level.
    level: f64,
    /// Busy-regime alternating amplitude (sign flips per step).
    alt: f64,
    /// Busy-regime white-noise deviation.
    noise: f64,
    /// Quiet-regime per-step drift deviation.
    drift: f64,
    /// Quiet-regime walk range.
    range: f64,
    /// Mean regime dwell in steps.
    dwell: usize,
}

fn trace(p: &Params, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let unit = Normal::new(0.0, 1.0).unwrap();
    let mut out = Vec::with_capacity(n);
    let mut level: f64 = 0.0;
    let mut busy = false;
    let mut remaining = p.dwell;
    for t in 0..n {
        if remaining == 0 {
            busy = !busy;
            remaining = p.dwell + rng.next_below(p.dwell as u64 / 2 + 1) as usize;
        }
        remaining -= 1;
        let v = if busy {
            let alt = if t % 2 == 0 { p.alt } else { -p.alt };
            p.level + alt + p.noise * unit.sample(&mut rng)
        } else {
            level += p.drift * unit.sample(&mut rng);
            level = level.clamp(-p.range, p.range);
            level
        };
        out.push(v);
    }
    out
}

fn main() {
    let (seed, folds) = larp_bench::cli_args();
    let config = larp_bench::paper_config(VmProfile::Vm2); // m=5, n=2, k=3
    let arms = [
        Params {
            name: "alt-dominant",
            level: 3.0,
            alt: 1.4,
            noise: 0.6,
            drift: 0.15,
            range: 1.5,
            dwell: 30,
        },
        Params {
            name: "white-busy",
            level: 3.0,
            alt: 0.0,
            noise: 1.5,
            drift: 0.15,
            range: 1.5,
            dwell: 30,
        },
        Params {
            name: "drifty-quiet",
            level: 3.5,
            alt: 1.2,
            noise: 0.8,
            drift: 0.45,
            range: 2.0,
            dwell: 30,
        },
        Params {
            name: "balanced",
            level: 4.0,
            alt: 1.0,
            noise: 1.0,
            drift: 0.5,
            range: 2.5,
            dwell: 25,
        },
        Params {
            name: "big-sep",
            level: 6.0,
            alt: 1.2,
            noise: 1.2,
            drift: 0.6,
            range: 3.0,
            dwell: 25,
        },
    ];
    larp_bench::header(
        "params",
        &["acc_lar", "acc_nws", "P-LAR", "LAR", "NWS", "LAST", "AR", "SW"],
    );
    for p in &arms {
        let values = trace(p, 600, seed);
        let r = TraceReport::evaluate(p.name, &values, &config, folds, seed).unwrap();
        larp_bench::row(
            p.name,
            &[
                format!("{:.1}%", r.acc_lar * 100.0),
                format!("{:.1}%", r.acc_nws * 100.0),
                larp_bench::cell(r.mse_plar),
                larp_bench::cell(r.mse_lar),
                larp_bench::cell(r.mse_nws),
                larp_bench::cell(r.mse_models[0]),
                larp_bench::cell(r.mse_models[1]),
                larp_bench::cell(r.mse_models[2]),
            ],
        );
    }
}
