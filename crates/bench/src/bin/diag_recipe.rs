//! Diagnostic: calibrate per-metric signal recipes against the paper's
//! normalized-MSE profile (LAST ≈ 1.1–1.8, AR ≈ 0.55–0.95, SW ≈ 0.6–1.05,
//! LAR within a few percent of AR).
//!
//! Builds candidate signals from `vmsim::signal` components, consolidates
//! them at 5-minute resolution exactly like the profiler, and prints each
//! model's normalized MSE plus the LARPredictor's.

use larp::TraceReport;
use vmsim::profiles::VmProfile;
use vmsim::signal::*;

fn consolidate(signal: &mut dyn Signal, minutes: u64, interval: u64) -> Vec<f64> {
    let raw: Vec<f64> = (0..minutes).map(|m| signal.sample(m)).collect();
    raw.chunks(interval as usize)
        .filter(|c| c.len() == interval as usize)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

fn eval(name: &str, signal: Box<dyn Signal>, seed: u64, folds: usize) {
    let mut signal = signal;
    // Two simulated days at 5-minute consolidation = 576 points; the paper's
    // 24 h / 288-point geometry is the second half.
    let values = consolidate(signal.as_mut(), 2880, 5);
    let config = larp_bench::paper_config(VmProfile::Vm2);
    let r = TraceReport::evaluate(name, &values, &config, folds, seed).unwrap();
    larp_bench::row(
        name,
        &[
            format!("{:.1}%", r.acc_lar * 100.0),
            larp_bench::cell(r.mse_plar),
            larp_bench::cell(r.mse_lar),
            larp_bench::cell(r.mse_nws),
            larp_bench::cell(r.mse_models[0]),
            larp_bench::cell(r.mse_models[1]),
            larp_bench::cell(r.mse_models[2]),
            if r.lar_beats_best_single() { "*".into() } else { "".into() },
            if r.lar_beats_nws() { "+".into() } else { "".into() },
        ],
    );
}

fn main() {
    let (seed, folds) = larp_bench::cli_args();
    larp_bench::header("recipe", &["acc", "P-LAR", "LAR", "NWS", "LAST", "AR", "SW", "*", "+"]);
    // A: pure correlated noise (phi tuned for consolidated lag-1 ~ 0.5).
    for phi in [0.8, 0.85, 0.9, 0.95] {
        eval(
            &format!("ar-{phi}"),
            Box::new(ArNoise::new(phi, 1.0, seed + (phi * 100.0) as u64)),
            seed,
            folds,
        );
    }
    // B: correlated noise + volatility regime switching at various strengths.
    for (i, vol) in [0.5f64, 1.0, 2.0].iter().enumerate() {
        let sig = Sum(vec![
            Box::new(ArNoise::new(0.85, 1.0, seed + 11)) as Box<dyn Signal>,
            vmsim_switch(*vol, seed + 20 + i as u64 * 3),
        ]);
        eval(&format!("ar+vol-{vol}"), Box::new(sig), seed, folds);
    }
    // D: drifting (non-stationary) AR dynamics — alone and with regimes.
    for step in [0.01f64, 0.03, 0.06] {
        eval(
            &format!("drift-{step}"),
            Box::new(DriftingAr::new(-0.5, 0.97, 1.0, step, seed + 41)),
            seed,
            folds,
        );
    }
    for (i, vol) in [0.5f64, 1.0].iter().enumerate() {
        let sig = Sum(vec![
            Box::new(DriftingAr::new(-0.5, 0.97, 1.0, 0.03, seed + 51 + i as u64))
                as Box<dyn Signal>,
            vmsim_switch(*vol, seed + 60 + i as u64 * 3),
        ]);
        eval(&format!("drift+vol-{vol}"), Box::new(sig), seed, folds);
    }
    // Q: quantized non-stationary mixes (flat quiet stretches).
    for grain in [0.25f64, 0.5, 1.0] {
        let sig = Quantized {
            inner: Box::new(Sum(vec![
                Box::new(DriftingAr::new(-0.5, 0.97, 1.0, 0.03, seed + 71)) as Box<dyn Signal>,
                vmsim_switch(1.0, seed + 74),
            ])),
            grain,
        };
        eval(&format!("quant-{grain}"), Box::new(sig), seed, folds);
    }
    // QB: quantized bursty idle metric (exact zero floors between bursts).
    let sig = Quantized {
        inner: Box::new(Sum(vec![
            Box::new(OnOffBurst::new(40.0, 120.0, 3.0, 2.0, seed + 81)) as Box<dyn Signal>,
            Box::new(ArNoise::new(0.3, 0.4, seed + 82)),
        ])),
        grain: 0.5,
    };
    eval("quant-burst", Box::new(sig), seed, folds);
    // S: step-hold quiet regime switched with a noisy busy regime.
    for (i, dwell) in [120.0f64, 240.0].iter().enumerate() {
        let sig = RegimeSwitch::new(
            vec![
                Box::new(StepLevel::new(0.0, 1.0, 60.0, -2.0, 2.0, seed + 91 + i as u64))
                    as Box<dyn Signal>,
                Box::new(Sum(vec![
                    Box::new(Constant(3.0)) as Box<dyn Signal>,
                    Box::new(Diurnal { amplitude: 1.9, period_minutes: 10.0, phase_minutes: 0.0 }),
                    Box::new(ArNoise::new(0.0, 1.3, seed + 93 + i as u64)),
                ])),
            ],
            *dwell,
            seed + 95 + i as u64,
        );
        eval(&format!("step+busy-{dwell}"), Box::new(sig), seed, folds);
    }
    // S2: step-hold with occasional spikes only (memory-like).
    let sig = Sum(vec![
        Box::new(StepLevel::new(0.0, 1.0, 90.0, -3.0, 3.0, seed + 96)) as Box<dyn Signal>,
        Box::new(Spikes::new(0.01, 1.0, 2.5, seed + 97)),
    ]);
    eval("step+spikes", Box::new(sig), seed, folds);
    // C: with diurnal structure and spikes on top.
    let sig = Sum(vec![
        Box::new(ArNoise::new(0.85, 1.0, seed + 31)) as Box<dyn Signal>,
        Box::new(Diurnal { amplitude: 0.8, period_minutes: 1440.0, phase_minutes: 0.0 }),
        Box::new(Spikes::new(0.02, 2.0, 2.2, seed + 32)),
        vmsim_switch(1.0, seed + 33),
    ]);
    eval("full-mix", Box::new(sig), seed, folds);
}

/// Mirror of vmsim's volatility_switch with explicit seeds (the real one is
/// private to the profiles module).
fn vmsim_switch(scale: f64, seed: u64) -> Box<dyn Signal> {
    Box::new(RegimeSwitch::new(
        vec![
            Box::new(RandomWalk::new(
                0.0,
                0.35 * scale / 5f64.sqrt(),
                -1.5 * scale,
                1.5 * scale,
                seed,
            )) as Box<dyn Signal>,
            Box::new(Sum(vec![
                Box::new(Constant(2.5 * scale)) as Box<dyn Signal>,
                Box::new(Diurnal {
                    amplitude: 1.9 * scale,
                    period_minutes: 10.0,
                    phase_minutes: 0.0,
                }),
                Box::new(ArNoise::new(0.0, 0.6 * scale * 5f64.sqrt(), seed + 1)),
            ])),
        ],
        180.0,
        seed + 2,
    ))
}
