//! Diagnostic: inspect the k-NN feature space and per-regime selection on a
//! pure two-regime trace.

use larp::eval::observed_best;
use larp::{LarpConfig, TrainedLarp};
use simrng::{dist::Normal, Xoshiro256pp};

fn pure_regime_trace(n: usize, dwell: usize, seed: u64) -> (Vec<f64>, Vec<bool>) {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let noise = Normal::new(0.0, 0.15).unwrap();
    let mut out = Vec::with_capacity(n);
    let mut regime = Vec::with_capacity(n);
    let mut level: f64 = 0.0;
    let mut oscillating = false;
    let mut remaining = dwell;
    for t in 0..n {
        if remaining == 0 {
            oscillating = !oscillating;
            remaining = dwell;
        }
        remaining -= 1;
        let v = if oscillating {
            3.0 + if t % 2 == 0 { 1.4 } else { -1.4 } + 4.0 * noise.sample(&mut rng)
        } else {
            level += noise.sample(&mut rng);
            level = level.clamp(-1.5, 1.5);
            level
        };
        out.push(v + noise.sample(&mut rng));
        regime.push(oscillating);
    }
    (out, regime)
}

fn main() {
    let (trace, regime) = pure_regime_trace(600, 40, 1);
    let config = LarpConfig::paper(5);
    let (train, test) = trace.split_at(300);
    let model = TrainedLarp::train(train, &config).unwrap();
    let norm = model.zscore().apply_slice(test);
    let pool = model.pool();
    let oracle = observed_best(pool, 5, &norm).unwrap();

    // Per-regime label distribution (observed best) and LAR choice.
    let mut counts = [[0usize; 3]; 2]; // [regime][class] observed
    let mut chosen = [[0usize; 3]; 2];
    let mut correct = [0usize; 2];
    let mut total = [0usize; 2];
    for (i, t) in (5..norm.len()).enumerate() {
        let r = regime[300 + t] as usize;
        let best = oracle.best[i].0;
        let c = model.select(&norm[..t]).unwrap().0;
        counts[r][best] += 1;
        chosen[r][c] += 1;
        if c == best {
            correct[r] += 1;
        }
        total[r] += 1;
    }
    println!("pool: {:?}", pool.names());
    for r in 0..2 {
        let name = if r == 0 { "smooth" } else { "oscillating" };
        println!(
            "{name:>12}: observed best {:?}, LAR chose {:?}, acc {:.1}%",
            counts[r],
            chosen[r],
            100.0 * correct[r] as f64 / total[r].max(1) as f64
        );
    }
    // Show the PCA features of a few windows from each regime.
    println!("\nsample features (PCA-2):");
    for t in [40usize, 41, 42, 260, 261, 262] {
        if t + 5 < norm.len() {
            let w = &norm[t..t + 5];
            let f = model.features_for(w).unwrap();
            println!(
                "t={t:>3} regime={} window={:?} feat=[{:.2},{:.2}]",
                if regime[300 + t + 5] { "osc" } else { "smo" },
                w.iter().map(|x| (x * 100.0).round() / 100.0).collect::<Vec<_>>(),
                f[0],
                f[1]
            );
        }
    }
    // AR coefficients learnt on the mixed series.
    if let predictors::ModelSpec::Ar { .. } = pool.spec(predictors::PredictorId(1)) {
        println!("\n(AR model fitted on mixed regimes; see coefficients in debug output)");
    }
}
