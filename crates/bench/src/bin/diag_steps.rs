//! Diagnostic: step-level decomposition of LAR-vs-NWS MSE on one trace.

use larp::eval::{observed_best_scored, run_selector_scored};
use larp::selector::NwsCumMse;
use larp::TrainedLarp;
use vmsim::metric::MetricKind;
use vmsim::profiles::VmProfile;

fn main() {
    let (seed, _) = larp_bench::cli_args();
    let traces = vmsim::traceset::vm_traces(VmProfile::Vm4, seed);
    let (_, series) = traces.iter().find(|(k, _)| k.metric == MetricKind::CpuReady).unwrap();
    let values = series.values();
    let config = larp_bench::paper_config(VmProfile::Vm4);
    let split = values.len() / 2;
    let model = TrainedLarp::train(&values[..split], &config).unwrap();
    let norm = model.zscore().apply_slice(values);
    let pool = model.pool();

    let oracle = observed_best_scored(pool, 5, &norm, split).unwrap();
    let lar = run_selector_scored(&mut model.selector(), pool, 5, &norm, split).unwrap();
    let mut nws_sel = NwsCumMse::new(pool);
    let nws = run_selector_scored(&mut nws_sel, pool, 5, &norm, split).unwrap();

    println!("LAR mse {:.4}, NWS mse {:.4}", lar.mse, nws.mse);
    // Cumulative excess squared error of LAR over NWS, by step.
    let mut rows: Vec<(usize, f64)> = (0..lar.forecasts.len())
        .map(|i| {
            let le = (lar.forecasts[i] - lar.actuals[i]).powi(2);
            let ne = (nws.forecasts[i] - nws.actuals[i]).powi(2);
            (i, le - ne)
        })
        .collect();
    let total: f64 = rows.iter().map(|(_, d)| d).sum();
    println!("total excess (LAR - NWS): {total:.3} over {} steps", rows.len());
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\nworst 12 steps for LAR:");
    println!(
        "{:>5} {:>9} {:>6} {:>6} {:>6} {:>9} {:>9}  window(last 5)",
        "step", "excess", "LARpick", "NWSpick", "best", "forecast", "actual"
    );
    for &(i, d) in rows.iter().take(12) {
        let t = split + i;
        let w: Vec<String> = norm[t - 5..t].iter().map(|x| format!("{x:.2}")).collect();
        println!(
            "{:>5} {:>9.3} {:>6} {:>6} {:>6} {:>9.2} {:>9.2}  [{}]",
            i,
            d,
            lar.chosen[i].to_string(),
            nws.chosen[i].to_string(),
            oracle.best[i].to_string(),
            lar.forecasts[i],
            lar.actuals[i],
            w.join(", ")
        );
    }
    // Share of excess from steps where LAR picked LAST (1), AR (2), SW (3).
    let mut by_pick = [0.0f64; 3];
    for &(i, d) in &rows {
        by_pick[lar.chosen[i].0] += d;
    }
    println!(
        "\nexcess by LAR pick: LAST {:.3}, AR {:.3}, SW {:.3}",
        by_pick[0], by_pick[1], by_pick[2]
    );
    let acc = larp::eval::forecasting_accuracy(&lar, &oracle).unwrap();
    println!("LAR accuracy: {:.1}%", acc * 100.0);
}
