//! Diagnostic: per-trace LAR vs NWS vs best-single breakdown over the corpus.

fn main() {
    let (seed, folds) = larp_bench::cli_args();
    let results = larp_bench::evaluate_corpus(seed, folds);
    larp_bench::header("trace", &["acc", "P-LAR", "LAR", "NWS", "best1", "who", "L<N", "L<=B"]);
    for r in &results {
        let Some(rep) = &r.report else { continue };
        larp_bench::row(
            &r.key.label(),
            &[
                format!("{:.0}%", rep.acc_lar * 100.0),
                larp_bench::cell(rep.mse_plar),
                larp_bench::cell(rep.mse_lar),
                larp_bench::cell(rep.mse_nws),
                larp_bench::cell(rep.best_single_mse()),
                rep.best_single_name().into(),
                if rep.lar_beats_nws() { "+".into() } else { "".into() },
                if rep.lar_beats_best_single() { "*".into() } else { "".into() },
            ],
        );
    }
}
