//! ABL1 — ablation of the feature-space reduction: PCA dimension sweep.
//!
//! The paper fixes PCA at n = 2 ("the minimal fraction variance was set to
//! extract exactly two principal components"). This sweep asks whether that
//! choice matters: n ∈ {1, 2, 3, window} plus no reduction at all, scored by
//! forecasting accuracy and MSE over VM2's and VM4's live traces.
//!
//! Run with: `cargo run --release -p larp-bench --bin ablation_pca`

use larp::config::FeatureReduction;
use larp::TraceReport;
use vmsim::profiles::VmProfile;

fn main() {
    let (seed, folds) = larp_bench::cli_args();
    let arms: Vec<(&str, FeatureReduction)> = vec![
        ("pca-1", FeatureReduction::Pca { dims: 1 }),
        ("pca-2 (paper)", FeatureReduction::Pca { dims: 2 }),
        ("pca-3", FeatureReduction::Pca { dims: 3 }),
        ("pca-m (full)", FeatureReduction::Pca { dims: 5 }),
        ("none", FeatureReduction::None),
        ("frac-90%", FeatureReduction::PcaFraction { min_fraction: 0.9 }),
    ];

    let mut traces = vmsim::traceset::vm_traces(VmProfile::Vm2, seed);
    traces.extend(vmsim::traceset::vm_traces(VmProfile::Vm4, seed));
    let live: Vec<_> =
        traces.iter().filter(|(_, s)| !larp_bench::is_degenerate(s.values())).collect();

    println!("=== Ablation: feature reduction (VM2 + VM4, {} traces) ===", live.len());
    larp_bench::header("reduction", &["acc", "mse_lar", "vs_plar"]);
    for (name, reduction) in arms {
        let mut config = larp_bench::paper_config(VmProfile::Vm2);
        config.reduction = reduction;
        let mut acc = 0.0;
        let mut mse = 0.0;
        let mut gap = 0.0;
        for (key, series) in &live {
            let r = TraceReport::evaluate(key.label(), series.values(), &config, folds, seed)
                .expect("traces are long enough");
            acc += r.acc_lar;
            mse += r.mse_lar;
            gap += if r.mse_plar > 1e-12 { r.mse_lar / r.mse_plar } else { 1.0 };
        }
        let n = live.len() as f64;
        larp_bench::row(
            name,
            &[
                format!("{:.2}%", 100.0 * acc / n),
                larp_bench::cell(mse / n),
                format!("{:.2}x", gap / n),
            ],
        );
    }
}
