//! HEAD — the paper's §7 headline scalars over the full 60-trace corpus.
//!
//! Paper values: LAR forecasting accuracy 55.98% (+20.18 points over NWS);
//! LAR ≥ best single predictor on 44.23% of traces; LAR beats NWS on 66.67%;
//! P-LAR would cut 18.6% of the NWS MSE.
//!
//! Run with: `cargo run --release -p larp-bench --bin headline_stats`

fn main() {
    let (seed, folds) = larp_bench::cli_args();
    eprintln!("evaluating 60-trace corpus (seed {seed}, {folds} folds per trace)...");
    let results = larp_bench::evaluate_corpus(seed, folds);
    let live = results.iter().filter(|r| r.report.is_some()).count();
    let agg = larp_bench::aggregate(&results);

    println!("=== Headline statistics (paper §7) ===");
    println!(
        "traces evaluated: {live} live / {} total (dead devices excluded as NaN)",
        results.len()
    );
    println!();
    println!("{:<52} {:>8} {:>8}", "metric", "paper", "ours");
    println!("{}", "-".repeat(70));
    println!(
        "{:<52} {:>7.2}% {:>7.2}%",
        "LAR best-predictor forecasting accuracy (mean)",
        55.98,
        agg.mean_acc_lar * 100.0
    );
    println!(
        "{:<52} {:>7.2}% {:>7.2}%",
        "NWS cum-MSE forecasting accuracy (mean)",
        35.80,
        agg.mean_acc_nws * 100.0
    );
    println!(
        "{:<52} {:>7.2}% {:>7.2}%",
        "LAR accuracy advantage over NWS (points)",
        20.18,
        (agg.mean_acc_lar - agg.mean_acc_nws) * 100.0
    );
    println!(
        "{:<52} {:>7.2}% {:>7.2}%",
        "traces where LAR >= best single predictor",
        44.23,
        agg.frac_lar_beats_best_single * 100.0
    );
    println!(
        "{:<52} {:>7.2}% {:>7.2}%",
        "traces where LAR beats NWS cum-MSE",
        66.67,
        agg.frac_lar_beats_nws * 100.0
    );
    println!(
        "{:<52} {:>7.2}% {:>7.2}%",
        "P-LAR MSE reduction vs NWS (mean)",
        -18.60,
        agg.plar_mse_reduction_vs_nws * 100.0
    );
    println!(
        "{:<52} {:>8} {:>7.2}%",
        "LAR MSE change vs NWS (mean)",
        "-",
        agg.lar_mse_reduction_vs_nws * 100.0
    );
}
