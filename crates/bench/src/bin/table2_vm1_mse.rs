//! TAB2 — Table 2: normalized prediction MSE for every resource of one VM.
//!
//! Columns: P-LAR (perfect selector), LAR (k-NN), LAST, AR, SW_AVG.
//! Defaults to the paper's published sample (VM1: duration 168 h, interval
//! 30 min, prediction order 16, ten random 50/50 splits); `--vm N` selects
//! any of the five VMs — the paper computed the same table for all of them.
//!
//! Run with: `cargo run --release -p larp-bench --bin table2_vm1_mse [-- --vm N]`

use larp::TraceReport;
use vmsim::profiles::VmProfile;

fn main() {
    let (seed, folds) = larp_bench::cli_args();
    let vm = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--vm")
        .map(|w| w[1].parse::<usize>().expect("--vm takes 1..=5"))
        .unwrap_or(1);
    let profile = VmProfile::ALL[vm.checked_sub(1).filter(|i| *i < 5).expect("--vm takes 1..=5")];
    let config = larp_bench::paper_config(profile);
    let traces = vmsim::traceset::vm_traces(profile, seed);

    println!("=== Table 2: Normalized Prediction MSE, {} ===", profile.vm_id());
    println!(
        "duration = {} hours, interval = {} minutes, prediction order = {}",
        profile.horizon_minutes() / 60,
        profile.profile_interval_secs() / 60,
        profile.prediction_window()
    );
    larp_bench::header("Perf.Metrics", &["P-LAR", "LAR", "LAST", "AR", "SW"]);
    for (key, series) in &traces {
        if larp_bench::is_degenerate(series.values()) {
            larp_bench::row(key.metric.label(), &vec!["NaN".to_string(); 5]);
            continue;
        }
        let r = TraceReport::evaluate(key.label(), series.values(), &config, folds, seed)
            .expect("corpus traces are long enough");
        let cells: Vec<String> =
            [r.mse_plar, r.mse_lar, r.mse_models[0], r.mse_models[1], r.mse_models[2]]
                .iter()
                .map(|&v| larp_bench::cell(v))
                .collect();
        larp_bench::row(key.metric.label(), &cells);
    }
}
