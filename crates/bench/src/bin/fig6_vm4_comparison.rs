//! FIG6 — Figure 6: predictor performance comparison on VM4.
//!
//! Per metric (x-axis 1–12 in the paper), the normalized MSE of:
//! P-LARP (perfect selection), Knn-LARP, Cum.MSE (NWS) and W-Cum.MSE
//! (NWS with error window 2).
//!
//! Run with: `cargo run --release -p larp-bench --bin fig6_vm4_comparison`

use larp::TraceReport;
use vmsim::profiles::VmProfile;

fn main() {
    let (seed, folds) = larp_bench::cli_args();
    let config = larp_bench::paper_config(VmProfile::Vm4);
    let traces = vmsim::traceset::vm_traces(VmProfile::Vm4, seed);

    println!("=== Figure 6: Predictor Performance Comparison (VM4) ===");
    println!("series: P-LARP, Knn-LARP, Cum.MSE, W-Cum.MSE (window 2)");
    larp_bench::header("metric", &["P-LARP", "Knn-LARP", "Cum.MSE", "W-Cum.MSE"]);
    let mut lar_wins = 0usize;
    let mut live = 0usize;
    for (i, (key, series)) in traces.iter().enumerate() {
        let label = format!("{} {}", i + 1, key.metric.label());
        if larp_bench::is_degenerate(series.values()) {
            larp_bench::row(&label, &vec!["NaN".to_string(); 4]);
            continue;
        }
        let r = TraceReport::evaluate(key.label(), series.values(), &config, folds, seed)
            .expect("VM4 traces are long enough");
        live += 1;
        if r.lar_beats_nws() {
            lar_wins += 1;
        }
        let cells: Vec<String> = [r.mse_plar, r.mse_lar, r.mse_nws, r.mse_wnws]
            .iter()
            .map(|&v| larp_bench::cell(v))
            .collect();
        larp_bench::row(&label, &cells);
    }
    println!();
    println!("Knn-LARP beat Cum.MSE on {lar_wins}/{live} VM4 traces");
}
