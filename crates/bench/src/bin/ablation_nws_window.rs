//! ABL4 — ablation of the NWS windowed selector's error window.
//!
//! The paper's Figure 6 fixes the W-Cum.MSE window at 2 without justification;
//! this sweep shows the window's effect — small windows adapt fast but select
//! on noise, large windows converge to the all-history Cum.MSE behaviour.
//!
//! Run with: `cargo run --release -p larp-bench --bin ablation_nws_window`

use larp::eval::{forecasting_accuracy, observed_best_scored, run_selector_scored};
use larp::selector::{NwsCumMse, WindowedCumMse};
use larp::TrainedLarp;
use vmsim::profiles::VmProfile;

fn main() {
    let (seed, _) = larp_bench::cli_args();
    let mut traces = vmsim::traceset::vm_traces(VmProfile::Vm2, seed);
    traces.extend(vmsim::traceset::vm_traces(VmProfile::Vm4, seed));
    let live: Vec<_> =
        traces.iter().filter(|(_, s)| !larp_bench::is_degenerate(s.values())).collect();
    let config = larp_bench::paper_config(VmProfile::Vm2);

    println!("=== Ablation: W-Cum.MSE error window (VM2 + VM4, {} traces) ===", live.len());
    larp_bench::header("window", &["acc", "mse"]);
    for window in [1usize, 2, 4, 8, 16, 32] {
        let mut acc = 0.0;
        let mut mse = 0.0;
        for (_, series) in &live {
            let values = series.values();
            let split = values.len() / 2;
            let model = TrainedLarp::train(&values[..split], &config).unwrap();
            let norm = model.zscore().apply_slice(values);
            let pool = model.pool();
            let oracle = observed_best_scored(pool, config.window, &norm, split).unwrap();
            let mut sel = WindowedCumMse::new(pool, window).unwrap();
            let run = run_selector_scored(&mut sel, pool, config.window, &norm, split).unwrap();
            acc += forecasting_accuracy(&run, &oracle).unwrap();
            mse += run.mse;
        }
        let n = live.len() as f64;
        let label = if window == 2 { "2 (paper)".to_string() } else { window.to_string() };
        larp_bench::row(&label, &[format!("{:.2}%", 100.0 * acc / n), larp_bench::cell(mse / n)]);
    }
    // Reference: the all-history selector.
    let mut acc = 0.0;
    let mut mse = 0.0;
    for (_, series) in &live {
        let values = series.values();
        let split = values.len() / 2;
        let model = TrainedLarp::train(&values[..split], &config).unwrap();
        let norm = model.zscore().apply_slice(values);
        let pool = model.pool();
        let oracle = observed_best_scored(pool, config.window, &norm, split).unwrap();
        let mut sel = NwsCumMse::new(pool);
        let run = run_selector_scored(&mut sel, pool, config.window, &norm, split).unwrap();
        acc += forecasting_accuracy(&run, &oracle).unwrap();
        mse += run.mse;
    }
    let n = live.len() as f64;
    larp_bench::row(
        "all-history",
        &[format!("{:.2}%", 100.0 * acc / n), larp_bench::cell(mse / n)],
    );
}
