//! At-least-once retries made exactly-once: the sequenced push path
//! (`PushSeq`) dedups retried samples server-side, and wire migration
//! (`MigrateOut`/`MigrateIn`) fences the losing node and arms the gaining
//! node's dedup floor so handoffs neither lose nor double-apply samples.

use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fleet::{BackpressurePolicy, FleetConfig, FleetEngine, StreamConfig};
use larp::ResilienceConfig;
use netserve::msg::{OpCode, Request};
use netserve::{wire, Client, ClientConfig, ErrorCode, NetError, Server, ServerConfig};
use vmsim::fleet_signal;

const SEED: u64 = 2031;
const STREAMS: u64 = 6;
/// Streams running f32 history rings — migration must carry the mode.
const F32_STREAMS: [u64; 2] = [2, 5];

fn fleet_config() -> FleetConfig {
    FleetConfig {
        shards: 2,
        fleet_seed: SEED,
        // Lossless ingestion: sequenced dedup only commits fully-applied
        // batches, so the tests run free of backpressure rejections.
        backpressure: BackpressurePolicy::Block,
        ..FleetConfig::default()
    }
}

fn start_server() -> (Arc<FleetEngine>, Server) {
    let engine = Arc::new(FleetEngine::new(fleet_config()).expect("fleet config"));
    let server = Server::start(
        Arc::clone(&engine),
        ServerConfig { http_addr: None, ..ServerConfig::default() },
    )
    .expect("server starts");
    (engine, server)
}

fn client_for(server: &Server) -> Client {
    let config = ClientConfig {
        connect_timeout: Duration::from_secs(2),
        request_timeout: Duration::from_secs(10),
        ..ClientConfig::default()
    };
    Client::connect(server.addr(), config).expect("client connects")
}

fn register_all(engine: &FleetEngine) {
    for id in 0..STREAMS {
        if F32_STREAMS.contains(&id) {
            let cfg = StreamConfig {
                resilience: ResilienceConfig { f32_history: true, ..ResilienceConfig::default() },
                ..StreamConfig::default()
            };
            engine.register_with(id, &cfg).expect("register f32 stream");
        } else {
            engine.register(id).expect("register");
        }
    }
}

/// Sequenced samples for minutes `[from, to)` of every stream: the k-th
/// sample of a stream carries seq k+1, the invariant the dedup floor
/// (`floor = next_minute`) relies on.
fn seq_window(from: u64, to: u64) -> Vec<(u64, u64, f64)> {
    let mut batch = Vec::new();
    for minute in from..to {
        for id in 0..STREAMS {
            let mut signal = fleet_signal(SEED, id);
            batch.push((id, minute + 1, signal.sample(minute)));
        }
    }
    batch
}

/// Strips the seqs off for a control engine's plain batch push.
fn unsequenced(batch: &[(u64, u64, f64)]) -> Vec<(u64, f64)> {
    batch.iter().map(|&(id, _, value)| (id, value)).collect()
}

/// What must stay bit-identical across retries and migrations.
fn fingerprint(engine: &FleetEngine, id: u64) -> (u64, usize, Option<u64>) {
    let info = engine.stream_info(id).expect("stream info");
    (info.next_minute, info.retrains, info.last_forecast.map(f64::to_bits))
}

#[test]
fn resent_batch_after_lost_response_is_deduped() {
    let (engine, mut server) = start_server();
    let control = FleetEngine::new(fleet_config()).expect("control");
    register_all(&engine);
    register_all(&control);

    let mut client = client_for(&server);
    let warm = seq_window(0, 40);
    let outcome = client.push_seq(&warm).expect("warmup");
    assert_eq!(outcome.outcome.accepted, warm.len() as u64);
    assert_eq!(outcome.deduped, 0);
    control.push_batch(&unsequenced(&warm));

    // The lost-ack scenario: a raw connection sends one sequenced batch
    // and dies before reading the response. The server applies it; the
    // client never learns.
    let killed = seq_window(40, 44);
    let frame = wire::encode(&wire::Frame {
        opcode: OpCode::PushSeq as u8,
        request_id: 99,
        payload: Request::PushSeq { client: "netserve-client".into(), samples: killed.clone() }
            .encode_payload(),
    });
    let mut raw = std::net::TcpStream::connect(server.addr()).expect("raw connect");
    raw.write_all(&frame).expect("send frame");
    raw.flush().expect("flush");
    // Wait until the engine absorbed the batch, then kill the connection
    // with the response unread.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        engine.flush();
        if (0..STREAMS).all(|id| fingerprint(&engine, id).0 >= 44) {
            break;
        }
        assert!(Instant::now() < deadline, "server never applied the killed batch");
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(raw);
    control.push_batch(&unsequenced(&killed));

    // The retry (same client name, same seqs) must be dropped wholesale —
    // and the echo tells the client where its send cursor really is.
    let retry = client.push_seq(&killed).expect("retry");
    assert_eq!(retry.outcome.accepted, 0, "duplicates reached the engine");
    assert_eq!(retry.deduped, killed.len() as u64);
    let mut echo = retry.last_seqs.clone();
    echo.sort_unstable();
    assert_eq!(echo, (0..STREAMS).map(|id| (id, 44)).collect::<Vec<_>>());

    // A half-overlapping resend admits only the fresh tail.
    let tail = seq_window(42, 48);
    let outcome = client.push_seq(&tail).expect("tail");
    assert_eq!(outcome.deduped, 2 * STREAMS);
    assert_eq!(outcome.outcome.accepted, 4 * STREAMS);
    control.push_batch(&unsequenced(&seq_window(44, 48)));

    engine.flush();
    control.flush();
    for id in 0..STREAMS {
        assert_eq!(
            fingerprint(&engine, id),
            fingerprint(&control, id),
            "stream {id} diverged from the exactly-once reference"
        );
    }
    server.shutdown();
}

#[test]
fn wire_migration_fences_the_loser_and_dedups_on_the_gainer() {
    let (engine_a, mut server_a) = start_server();
    let (engine_b, mut server_b) = start_server();
    let control = FleetEngine::new(fleet_config()).expect("control");
    register_all(&engine_a);
    register_all(&control);

    let mut client_a = client_for(&server_a);
    let mut client_b = client_for(&server_b);
    let warm = seq_window(0, 80);
    client_a.push_seq(&warm).expect("warmup");
    control.push_batch(&unsequenced(&warm));

    // Migrate every stream A → B through the coordinator path.
    let b_addr = server_b.addr().to_string();
    for id in 0..STREAMS {
        let (next_minute, floor, snapshot) =
            client_a.migrate_out(id, &b_addr).expect("migrate out");
        assert_eq!(next_minute, 80);
        assert_eq!(floor, 80, "floor is the count of applied samples");
        client_b.migrate_in(id, next_minute, floor, snapshot).expect("migrate in");
        client_a.evict(id).expect("evict on the loser");
    }

    // The loser's fence redirects pushes at the gaining node's address.
    match client_a.push_seq(&[(0, 81, 1.0)]) {
        Err(NetError::Server { code: ErrorCode::NotOwner, detail }) => {
            assert_eq!(detail, b_addr, "redirect carries the owner address");
        }
        other => panic!("expected NotOwner redirect, got {other:?}"),
    }

    // A client that never heard the migration's acks resends acked
    // samples to the gainer: the armed floor drops them, fresh minutes
    // land — exactly once, even from a client B has never seen.
    let resend = seq_window(70, 90);
    let outcome = client_b.push_seq(&resend).expect("resend to gainer");
    assert_eq!(outcome.deduped, 10 * STREAMS, "seqs at or under the floor drop");
    assert_eq!(outcome.outcome.accepted, 10 * STREAMS);
    control.push_batch(&unsequenced(&seq_window(80, 90)));

    // Post-migration traffic on the gainer stays bit-identical to the
    // never-migrated reference, f32 streams included.
    let cont = seq_window(90, 140);
    client_b.push_seq(&cont).expect("continuation");
    control.push_batch(&unsequenced(&cont));
    engine_b.flush();
    control.flush();
    for id in 0..STREAMS {
        assert_eq!(
            fingerprint(&engine_b, id),
            fingerprint(&control, id),
            "stream {id} diverged across migration"
        );
    }

    server_a.shutdown();
    server_b.shutdown();
}
