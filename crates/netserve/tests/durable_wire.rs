//! The durable serving path over the wire: a server fronting a
//! durability-enabled engine logs every acked push, drains to disk on
//! graceful shutdown, and a recovered engine reproduces the serving state
//! bit-identically.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use fleet::{BackpressurePolicy, DurabilityConfig, FleetConfig, FleetEngine, StreamConfig};
use netserve::{Client, ClientConfig, Server, ServerConfig};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("netserve-durable-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &Path, shards: usize) -> FleetConfig {
    FleetConfig {
        shards,
        fleet_seed: 7,
        backpressure: BackpressurePolicy::Block,
        durability: Some(DurabilityConfig::new(dir.to_path_buf())),
        ..FleetConfig::default()
    }
}

fn quick_client(server: &Server) -> Client {
    let config = ClientConfig {
        connect_timeout: Duration::from_secs(2),
        request_timeout: Duration::from_secs(5),
        ..ClientConfig::default()
    };
    Client::connect(server.addr(), config).expect("client connects")
}

#[test]
fn graceful_shutdown_drains_to_durable_state_and_recovers() {
    let dir = temp_dir("drain");
    let engine =
        Arc::new(FleetEngine::new(durable_config(&dir, 2)).expect("durable engine starts"));
    let mut server = Server::start(
        Arc::clone(&engine),
        ServerConfig { http_addr: None, ..ServerConfig::default() },
    )
    .expect("server starts");

    let mut client = quick_client(&server);
    for id in 0..6u64 {
        client.register(id).expect("register");
    }
    for round in 0..120u64 {
        let batch: Vec<(u64, f64)> =
            (0..6).map(|id| (id, 40.0 + ((round * 6 + id) as f64 * 0.1).sin() * 5.0)).collect();
        let outcome = client.push_batch(&batch).expect("push_batch ack");
        assert_eq!(outcome.accepted, 6);
    }
    let before: Vec<_> = (0..6u64)
        .map(|id| {
            // The drain has not happened yet, so read through the engine
            // (the server still owns the socket-facing side).
            engine.flush();
            engine.stream_info(id).expect("live stream")
        })
        .collect();

    // The wire Shutdown opcode starts the drain; Server::shutdown joins it
    // and calls the engine's flush_durable (queues → slots → store → fsync).
    client.shutdown_server().expect("wire shutdown acked");
    server.shutdown();
    drop(server);
    drop(engine);

    let (recovered, summary) =
        FleetEngine::recover(durable_config(&dir, 2), StreamConfig::default())
            .expect("recovery succeeds");
    assert!(summary.clean(), "graceful shutdown must leave a clean log: {summary:?}");
    assert_eq!(recovered.stream_count(), 6);
    assert_eq!(summary.replayed_samples, 120 * 6);
    for info in before {
        let after = recovered.stream_info(info.id).expect("recovered stream");
        assert_eq!(after.next_minute, info.next_minute);
        assert_eq!(
            after.last_forecast.map(f64::to_bits),
            info.last_forecast.map(f64::to_bits),
            "stream {} forecast must survive the restart bit-identically",
            info.id
        );
        assert_eq!(after.retrains, info.retrains);
        assert_eq!(after.health, info.health);
    }

    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn durable_server_keeps_logging_after_restart() {
    let dir = temp_dir("restart");
    {
        let engine =
            Arc::new(FleetEngine::new(durable_config(&dir, 2)).expect("durable engine starts"));
        let mut server = Server::start(
            Arc::clone(&engine),
            ServerConfig { http_addr: None, ..ServerConfig::default() },
        )
        .expect("server starts");
        let mut client = quick_client(&server);
        client.register(9).expect("register");
        for i in 0..50 {
            client.push(9, 10.0 + i as f64).expect("push ack");
        }
        client.shutdown_server().expect("wire shutdown acked");
        server.shutdown();
    }

    // Restart: recover, serve over a fresh socket, push more, recover again.
    let (engine, summary) = FleetEngine::recover(durable_config(&dir, 2), StreamConfig::default())
        .expect("first recovery");
    assert!(summary.clean());
    assert_eq!(summary.replayed_records, 51, "1 register + 50 pushes: {summary:?}");
    let mut server = Server::start(
        Arc::new(engine),
        ServerConfig { http_addr: None, ..ServerConfig::default() },
    )
    .expect("recovered server starts");
    let mut client = quick_client(&server);
    for i in 50..80 {
        client.push(9, 10.0 + i as f64).expect("push ack after restart");
    }
    // The clock advances at worker feed time, so give the queue a moment.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let info = client.stream_info(9).expect("stream_info");
        if info.next_minute == 80 {
            break; // the recovered clock continued from 50, not from 0
        }
        assert!(info.next_minute < 80, "clock overshot: {}", info.next_minute);
        assert!(std::time::Instant::now() < deadline, "queued pushes never served");
        std::thread::sleep(Duration::from_millis(5));
    }
    client.shutdown_server().expect("wire shutdown acked");
    server.shutdown();
    drop(server);

    let (recovered, summary) =
        FleetEngine::recover(durable_config(&dir, 2), StreamConfig::default())
            .expect("second recovery");
    assert!(summary.clean());
    let again = recovered.stream_info(9).expect("stream survives two restarts");
    assert_eq!(again.next_minute, 80);

    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
}
