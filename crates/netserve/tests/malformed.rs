//! Hostile-input hardening: corrupt CRCs, truncated frames, oversized
//! declared lengths, unknown opcodes, and seeded random/mutated byte
//! streams. The server must answer with a typed error or close cleanly —
//! never panic, never allocate what a forged length field declares.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use fleet::{FleetConfig, FleetEngine};
use netserve::wire::{self, Frame};
use netserve::{Client, ClientConfig, ErrorCode, OpCode, Response, Server, ServerConfig};
use simrng::{Rng64, Xoshiro256pp};

fn start_server() -> Server {
    let engine = Arc::new(
        FleetEngine::new(FleetConfig { shards: 1, fleet_seed: 13, ..FleetConfig::default() })
            .expect("valid fleet config"),
    );
    Server::start(engine, ServerConfig { http_addr: None, ..ServerConfig::default() })
        .expect("server starts")
}

fn raw_conn(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.addr()).expect("raw connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stream
}

/// Reads the typed error the server answers with before closing.
fn read_error(stream: &mut TcpStream) -> ErrorCode {
    let reply = wire::read_frame(stream, 1 << 20).expect("server answers before closing");
    assert_eq!(reply.request_id, 0, "framing errors are connection-level (request_id 0)");
    match Response::decode(reply.opcode, &reply.payload).expect("decodable error frame") {
        Response::Error { code, .. } => code,
        other => panic!("expected an error frame, got {other:?}"),
    }
}

/// After the error the connection must be closed (framing state is lost).
fn assert_closed(stream: &mut TcpStream) {
    match wire::read_frame(stream, 1 << 20) {
        Err(wire::WireError::Closed) => {}
        other => panic!("connection must close after a framing error, got {other:?}"),
    }
}

/// The server survives whatever the test threw at it.
fn assert_still_serving(server: &Server) {
    let config = ClientConfig {
        connect_timeout: Duration::from_secs(2),
        request_timeout: Duration::from_secs(5),
        max_attempts: 2,
        reconnect_base: Duration::from_millis(5),
        ..ClientConfig::default()
    };
    let mut client = Client::connect(server.addr(), config).expect("server still accepts");
    client.health().expect("server still answers");
}

#[test]
fn corrupt_crc_gets_bad_frame_then_close() {
    let server = start_server();
    let mut stream = raw_conn(&server);
    let frame = Frame { opcode: OpCode::Health as u8, request_id: 9, payload: Vec::new() };
    let mut bytes = wire::encode(&frame);
    let last = bytes.len() - 1;
    bytes[last] ^= 0xA5; // corrupt the CRC trailer
    stream.write_all(&bytes).expect("send");
    assert_eq!(read_error(&mut stream), ErrorCode::BadFrame);
    assert_closed(&mut stream);
    assert_still_serving(&server);
    assert!(server.engine().registry().counter("net_malformed_frames_total").get() >= 1);
}

#[test]
fn truncated_frame_is_a_clean_disconnect() {
    let server = start_server();
    let mut stream = raw_conn(&server);
    let frame = Frame { opcode: OpCode::Health as u8, request_id: 1, payload: vec![0; 64] };
    let bytes = wire::encode(&frame);
    stream.write_all(&bytes[..bytes.len() / 2]).expect("send half a frame");
    stream.shutdown(std::net::Shutdown::Write).expect("half-close");
    // No decodable frame ever arrived: no reply, just a close.
    assert_closed(&mut stream);
    assert_still_serving(&server);
}

#[test]
fn oversized_declared_length_is_rejected_before_allocation() {
    let server = start_server();
    let mut stream = raw_conn(&server);
    // A forged prefix declaring ~4 GiB. The server must reject from the
    // 4-byte declaration alone — were it to allocate, this test would OOM
    // long before the assertion fails.
    stream.write_all(&u32::MAX.to_le_bytes()).expect("send forged length");
    assert_eq!(read_error(&mut stream), ErrorCode::PayloadTooLarge);
    assert_closed(&mut stream);
    assert_still_serving(&server);
}

#[test]
fn unknown_opcode_keeps_the_connection_usable() {
    let server = start_server();
    let mut stream = raw_conn(&server);
    // Valid framing, nonsense opcode: a *request* error, not a framing
    // error — the byte stream is still in sync, so the connection lives.
    let bogus = Frame { opcode: 0x77, request_id: 3, payload: vec![1, 2, 3] };
    stream.write_all(&wire::encode(&bogus)).expect("send");
    let reply = wire::read_frame(&mut stream, 1 << 20).expect("typed answer");
    assert_eq!(reply.request_id, 3, "request-level errors keep their correlation id");
    match Response::decode(reply.opcode, &reply.payload).expect("decodable") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownOpcode),
        other => panic!("expected error, got {other:?}"),
    }
    // Same connection, valid request: still served.
    let health = Frame { opcode: OpCode::Health as u8, request_id: 4, payload: Vec::new() };
    stream.write_all(&wire::encode(&health)).expect("send");
    let reply = wire::read_frame(&mut stream, 1 << 20).expect("health reply");
    assert_eq!(reply.request_id, 4);
    assert!(matches!(
        Response::decode(reply.opcode, &reply.payload).expect("decodable"),
        Response::Health(_)
    ));
}

#[test]
fn malformed_payload_keeps_the_connection_usable() {
    let server = start_server();
    let mut stream = raw_conn(&server);
    // Push opcode with a garbage payload: framing is fine, decoding isn't.
    let bogus = Frame { opcode: OpCode::Push as u8, request_id: 5, payload: vec![0xFF; 3] };
    stream.write_all(&wire::encode(&bogus)).expect("send");
    let reply = wire::read_frame(&mut stream, 1 << 20).expect("typed answer");
    assert_eq!(reply.request_id, 5);
    match Response::decode(reply.opcode, &reply.payload).expect("decodable") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::MalformedPayload),
        other => panic!("expected error, got {other:?}"),
    }
    let health = Frame { opcode: OpCode::Health as u8, request_id: 6, payload: Vec::new() };
    stream.write_all(&wire::encode(&health)).expect("send");
    assert_eq!(wire::read_frame(&mut stream, 1 << 20).expect("still served").request_id, 6);
}

/// Property test: seeded random byte blasts and bit-mutated valid frames.
/// Whatever arrives, the server answers with a typed error or closes — and
/// keeps serving fresh connections afterwards.
#[test]
fn fuzzed_byte_streams_never_take_the_server_down() {
    let server = start_server();
    let mut rng = Xoshiro256pp::seed_from_u64(0xF417);

    for round in 0..60 {
        let mut stream = raw_conn(&server);
        let garbage: Vec<u8> = if round % 2 == 0 {
            // Pure noise, 1..=256 bytes.
            let len = 1 + (rng.next_u64() % 256) as usize;
            (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect()
        } else {
            // A valid frame with 1..=4 mutated bytes — the harder case,
            // because most of the frame still looks plausible.
            let payload: Vec<u8> = (0..(rng.next_u64() % 48) as usize)
                .map(|_| (rng.next_u64() & 0xFF) as u8)
                .collect();
            let frame = Frame {
                opcode: OpCode::ALL[(rng.next_u64() % OpCode::ALL.len() as u64) as usize] as u8,
                request_id: rng.next_u64(),
                payload,
            };
            let mut bytes = wire::encode(&frame);
            for _ in 0..=(rng.next_u64() % 4) {
                let at = (rng.next_u64() % bytes.len() as u64) as usize;
                bytes[at] ^= (1 << (rng.next_u64() % 8)) as u8;
            }
            bytes
        };
        let _ = stream.write_all(&garbage);
        let _ = stream.shutdown(std::net::Shutdown::Write);
        // Drain whatever the server says until it closes; must never hang.
        while wire::read_frame(&mut stream, 1 << 20).is_ok() {}
    }
    assert_still_serving(&server);
}
