//! Reactor-specific connection lifecycle guarantees: idle and slow-reader
//! reaping, partial-frame delivery at every byte boundary through the
//! streaming decode path, and drain-to-durable on shutdown.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fleet::{BackpressurePolicy, DurabilityConfig, FleetConfig, FleetEngine, StreamConfig};
use netserve::wire::{self, Frame};
use netserve::{Client, ClientConfig, Request, Response, Server, ServerConfig, StreamTuning};

fn start_server(shards: usize, config: ServerConfig) -> Server {
    let engine = Arc::new(
        FleetEngine::new(FleetConfig {
            shards,
            fleet_seed: 7,
            backpressure: BackpressurePolicy::Block,
            ..FleetConfig::default()
        })
        .expect("valid fleet config"),
    );
    Server::start(engine, config).expect("server starts")
}

fn quick_client(server: &Server) -> Client {
    let config = ClientConfig {
        connect_timeout: Duration::from_secs(2),
        request_timeout: Duration::from_secs(5),
        reconnect_base: Duration::from_millis(5),
        max_attempts: 2,
        ..ClientConfig::default()
    };
    Client::connect(server.addr(), config).expect("client connects")
}

fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn encode_request(req: &Request, request_id: u64) -> Vec<u8> {
    wire::encode(&Frame { opcode: req.opcode() as u8, request_id, payload: req.encode_payload() })
}

/// The server hung up on `stream`: a read sees EOF (graceful FIN) or a
/// reset, never payload bytes.
fn assert_hung_up(stream: &mut TcpStream, who: &str) {
    let mut buf = [0u8; 64];
    match stream.read(&mut buf) {
        Ok(0) => {}
        Ok(n) => panic!("{who}: unexpected {n} bytes instead of a hangup"),
        Err(e) => assert!(
            matches!(e.kind(), ErrorKind::ConnectionReset | ErrorKind::BrokenPipe),
            "{who}: unexpected error kind: {e}"
        ),
    }
}

#[test]
fn idle_connections_are_reaped_and_active_ones_survive() {
    let server = start_server(
        1,
        ServerConfig {
            idle_timeout: Some(Duration::from_millis(250)),
            http_addr: None,
            ..ServerConfig::default()
        },
    );
    let mut idle = TcpStream::connect(server.addr()).expect("raw connect");
    idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut active = quick_client(&server);
    wait_for("both connections open", || server.open_connections() == 2);

    // Keep one connection chatty across several idle windows; the silent
    // one must be reaped while the chatty one is left alone.
    for _ in 0..10 {
        active.health().expect("active connection keeps working");
        std::thread::sleep(Duration::from_millis(60));
    }
    assert_hung_up(&mut idle, "idle connection");
    wait_for("reap releases the slot", || server.open_connections() == 1);
    let reaped = server.engine().registry().counter("net_idle_reaped_total");
    assert!(reaped.get() >= 1, "the reap is counted");
    active.health().expect("active connection survives the reap");
}

#[test]
fn one_byte_per_second_peer_is_reaped_without_stalling_others() {
    let server = start_server(
        1,
        ServerConfig {
            idle_timeout: Some(Duration::from_millis(300)),
            http_addr: None,
            ..ServerConfig::default()
        },
    );

    // A peer trickling a valid frame at ~1 byte/s: the gap between bytes
    // dwarfs the idle window, so its half-received frame must not pin a
    // read buffer or a connection slot forever.
    let frame = encode_request(&Request::Push { id: 1, minute: None, value: 0.5 }, 77);
    let mut slow = TcpStream::connect(server.addr()).expect("raw connect");
    slow.set_nodelay(true).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    slow.write_all(&frame[..frame.len() / 2]).expect("half a frame");

    // Meanwhile a well-behaved client is served at full speed.
    let mut busy = quick_client(&server);
    busy.register(1).expect("register");
    let t0 = Instant::now();
    let mut served = 0u32;
    while t0.elapsed() < Duration::from_millis(900) {
        busy.push(1, 1.0).expect("requests served while the slow peer stalls");
        served += 1;
    }
    assert!(served > 10, "the stalled peer throttled everyone: {served} round trips in 900ms");

    assert_hung_up(&mut slow, "slow peer");
    wait_for("slow peer's slot released", || server.open_connections() == 1);
    busy.health().expect("busy connection unaffected by the reap");
}

#[test]
fn every_opcode_survives_arbitrary_frame_splits() {
    let server = start_server(1, ServerConfig { http_addr: None, ..ServerConfig::default() });
    let mut stream = TcpStream::connect(server.addr()).expect("raw connect");
    stream.set_nodelay(true).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    // Every opcode except Shutdown (covered separately — it kills the
    // server). Re-sent frames may earn typed errors (DuplicateStream,
    // UnknownStream); what matters is that a frame delivered in two
    // arbitrary pieces always yields exactly one correlated, decodable
    // response.
    let tuning = StreamTuning { train_size: 30, qa_window: 6, qa_period: 3, qa_threshold: 1.5 };
    let requests = [
        Request::Hello { client: "split".into() },
        Request::Register { id: 1 },
        Request::RegisterWith { id: 2, tuning },
        Request::Push { id: 1, minute: None, value: 0.5 },
        Request::Push { id: 1, minute: Some(500), value: 0.25 },
        Request::PushBatch { samples: vec![(1, 0.1), (2, 0.2)] },
        Request::Predict { id: 1 },
        Request::StreamInfo { id: 1 },
        Request::Health,
        Request::Checkpoint,
        Request::Evict { id: 2 },
    ];
    let mut request_id = 100u64;
    for req in &requests {
        let len = encode_request(req, 0).len();
        for cut in 1..len {
            request_id += 1;
            let bytes = encode_request(req, request_id);
            stream.write_all(&bytes[..cut]).expect("first fragment");
            stream.flush().unwrap();
            // Give the fragment its own TCP segment so the server really
            // decodes from a partial buffer.
            std::thread::sleep(Duration::from_millis(1));
            stream.write_all(&bytes[cut..]).expect("second fragment");
            let reply = wire::read_frame(&mut stream, 1 << 20).expect("one reply per frame");
            assert_eq!(reply.request_id, request_id, "correlation survives the split");
            Response::decode(reply.opcode, &reply.payload).expect("decodable response");
        }
    }
}

#[test]
fn shutdown_frames_split_at_any_boundary_still_drain() {
    let bytes = encode_request(&Request::Shutdown, 9);
    for cut in 1..bytes.len() {
        let mut server =
            start_server(1, ServerConfig { http_addr: None, ..ServerConfig::default() });
        let mut stream = TcpStream::connect(server.addr()).expect("raw connect");
        stream.set_nodelay(true).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

        stream.write_all(&bytes[..cut]).expect("first fragment");
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
        stream.write_all(&bytes[cut..]).expect("second fragment");

        let reply = wire::read_frame(&mut stream, 1 << 20).expect("ack before drain");
        assert_eq!(reply.request_id, 9);
        let resp = Response::decode(reply.opcode, &reply.payload).expect("decodable");
        assert!(matches!(resp, Response::Shutdown), "split at {cut}: got {resp:?}");

        server.shutdown();
        assert_eq!(server.open_connections(), 0, "split at {cut}: drain left a connection");
    }
}

#[test]
fn reactor_drain_flushes_queued_batches_to_durable_state() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("netserve-reactor-drain-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let durable = |dir: &Path| FleetConfig {
        shards: 2,
        fleet_seed: 7,
        backpressure: BackpressurePolicy::Block,
        durability: Some(DurabilityConfig::new(dir.to_path_buf())),
        ..FleetConfig::default()
    };

    let engine = Arc::new(FleetEngine::new(durable(&dir)).expect("durable engine starts"));
    let mut server = Server::start(
        Arc::clone(&engine),
        ServerConfig { http_addr: None, ..ServerConfig::default() },
    )
    .expect("server starts");
    let mut client = quick_client(&server);
    for id in 0..4u64 {
        client.register(id).expect("register");
    }
    // Queue a lot of work and shut down immediately: the reactor drain
    // must flush every queued response, and Server::shutdown must push
    // every accepted sample through flush_durable before the store closes.
    let batch: Vec<(u64, f64)> = (0..2000).map(|i| (i % 4, (i as f64 * 0.004).sin())).collect();
    let outcome = client.push_batch(&batch).expect("push_batch acked");
    assert_eq!(outcome.accepted, 2000);
    client.shutdown_server().expect("wire shutdown acked");
    server.shutdown();
    drop(server);
    drop(engine);

    let (recovered, summary) =
        FleetEngine::recover(durable(&dir), StreamConfig::default()).expect("recovery succeeds");
    assert!(summary.clean(), "drain must leave a clean log: {summary:?}");
    assert_eq!(summary.replayed_samples, 2000, "no accepted sample lost in the drain");
    for id in 0..4u64 {
        let info = recovered.stream_info(id).expect("stream recovered");
        assert_eq!(info.next_minute, 500, "stream {id} replayed every sample");
    }

    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
}
