//! Disaster recovery over the wire: a checkpoint downloaded through the
//! `Checkpoint` opcode, restored via `FleetEngine::restore` onto a fresh
//! server with a *different* shard count, must reproduce bit-identical
//! predictions for identical subsequent input.

use std::sync::Arc;
use std::time::Duration;

use fleet::{BackpressurePolicy, FleetConfig, FleetEngine, StreamConfig};
use larp::ResilienceConfig;
use netserve::{Client, ClientConfig, Server, ServerConfig};
use vmsim::fleet_signal;

const SEED: u64 = 2026;
const STREAMS: u64 = 12;
/// Streams running f32 history rings (LARPSNAP v2 f32 mode): the wire
/// checkpoint must carry the mode, not silently widen back to f64.
const F32_STREAMS: [u64; 2] = [3, 7];
const WARMUP: u64 = 300;
const CONTINUATION: u64 = 120;

fn client_for(server: &Server) -> Client {
    let config = ClientConfig {
        connect_timeout: Duration::from_secs(2),
        request_timeout: Duration::from_secs(10),
        ..ClientConfig::default()
    };
    Client::connect(server.addr(), config).expect("client connects")
}

/// Pushes `[from, to)` minutes of every stream's deterministic signal.
fn push_window(client: &mut Client, from: u64, to: u64) {
    for id in 0..STREAMS {
        let mut signal = fleet_signal(SEED, id);
        let batch: Vec<(u64, f64)> = (from..to).map(|m| (id, signal.sample(m))).collect();
        let outcome = client.push_batch(&batch).expect("push batch");
        assert_eq!(outcome.accepted, to - from);
    }
}

#[test]
fn wire_checkpoint_restores_bit_identical_predictions() {
    // Server A: 2 shards, trained on the warmup window.
    let engine_a = Arc::new(
        FleetEngine::new(FleetConfig {
            shards: 2,
            fleet_seed: SEED,
            // Lossless ingestion: the test accounts for every sample.
            backpressure: BackpressurePolicy::Block,
            ..FleetConfig::default()
        })
        .expect("valid fleet config"),
    );
    let mut server_a = Server::start(
        Arc::clone(&engine_a),
        ServerConfig { http_addr: None, ..ServerConfig::default() },
    )
    .expect("server A starts");
    let mut client_a = client_for(&server_a);
    for id in 0..STREAMS {
        if F32_STREAMS.contains(&id) {
            // Resilience knobs are server-side configuration, not wire
            // tuning: f32 streams register through the engine handle.
            let cfg = StreamConfig {
                resilience: ResilienceConfig { f32_history: true, ..ResilienceConfig::default() },
                ..StreamConfig::default()
            };
            engine_a.register_with(id, &cfg).expect("register f32 stream");
        } else {
            client_a.register(id).expect("register");
        }
    }
    push_window(&mut client_a, 0, WARMUP);

    // The snapshot travels over the wire (the engine flushes before
    // snapshotting, so it covers every accepted sample).
    let snapshot = client_a.checkpoint().expect("checkpoint download");
    assert!(snapshot.starts_with(b"FLEETCKP"));

    // Server B: restored from the wire bytes onto a *different* shard
    // count, behind a fresh listener.
    let engine_b = Arc::new(
        FleetEngine::restore(
            FleetConfig {
                shards: 5,
                fleet_seed: SEED,
                backpressure: BackpressurePolicy::Block,
                ..FleetConfig::default()
            },
            &snapshot,
        )
        .expect("restore from wire bytes"),
    );
    let mut server_b = Server::start(
        Arc::clone(&engine_b),
        ServerConfig { http_addr: None, ..ServerConfig::default() },
    )
    .expect("server B starts");
    let mut client_b = client_for(&server_b);
    assert_eq!(
        client_b.server_info().expect("handshake").streams,
        STREAMS,
        "restored server knows every stream"
    );

    // Identical continuation traffic into both servers...
    push_window(&mut client_a, WARMUP, WARMUP + CONTINUATION);
    push_window(&mut client_b, WARMUP, WARMUP + CONTINUATION);
    engine_a.flush();
    engine_b.flush();

    // ...must produce bit-identical forecasts, stream by stream.
    for id in 0..STREAMS {
        let a = client_a.predict(id).expect("predict on A");
        let b = client_b.predict(id).expect("predict on B");
        // Serving counters restart on a fresh engine; predictor state must
        // not. B's steps are exactly the continuation window.
        assert_eq!(b.steps, CONTINUATION, "stream {id}: restored server missed samples");
        assert_eq!(a.health, b.health, "stream {id}: health diverged");
        match (a.forecast, b.forecast) {
            (Some(fa), Some(fb)) => assert_eq!(
                fa.to_bits(),
                fb.to_bits(),
                "stream {id}: forecasts diverged ({fa} vs {fb})"
            ),
            (None, None) => panic!("stream {id}: no forecast after {WARMUP} warmup samples"),
            (a, b) => panic!("stream {id}: forecast presence diverged ({a:?} vs {b:?})"),
        }
        let ia = client_a.stream_info(id).expect("info on A");
        let ib = client_b.stream_info(id).expect("info on B");
        assert_eq!(ia.next_minute, ib.next_minute, "stream {id}: clocks diverged");
    }

    server_a.shutdown();
    server_b.shutdown();
}
