//! End-to-end round trips for every opcode, plus the connection-lifecycle
//! guarantees: pipelining, the connection gauge, the connection cap, and
//! graceful shutdown via the wire `Shutdown` opcode.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fleet::{BackpressurePolicy, FleetConfig, FleetEngine};
use netserve::wire::{self, Frame};
use netserve::{
    Client, ClientConfig, ErrorCode, NetError, OpCode, Response, Server, ServerConfig, StreamTuning,
};

fn start_server(shards: usize, config: ServerConfig) -> Server {
    let engine = Arc::new(
        FleetEngine::new(FleetConfig {
            shards,
            fleet_seed: 7,
            // Lossless ingestion: these tests account for every sample.
            backpressure: BackpressurePolicy::Block,
            ..FleetConfig::default()
        })
        .expect("valid fleet config"),
    );
    Server::start(engine, config).expect("server starts")
}

fn quick_client(server: &Server) -> Client {
    let config = ClientConfig {
        connect_timeout: Duration::from_secs(2),
        request_timeout: Duration::from_secs(5),
        reconnect_base: Duration::from_millis(5),
        max_attempts: 2,
        ..ClientConfig::default()
    };
    Client::connect(server.addr(), config).expect("client connects")
}

/// Spin-waits for `cond` — connection teardown is asynchronous with the
/// client-side socket close.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn every_opcode_round_trips() {
    let mut server = start_server(2, ServerConfig::default());
    let mut client = quick_client(&server);

    // Hello already happened inside connect.
    let info = client.server_info().expect("handshake recorded");
    assert_eq!(info.version, netserve::PROTOCOL_VERSION);
    assert_eq!(info.shards, 2);
    assert_eq!(info.streams, 0);

    client.register(1).expect("register");
    client
        .register_with(
            2,
            StreamTuning { train_size: 30, qa_window: 6, qa_period: 3, qa_threshold: 1.5 },
        )
        .expect("register_with");

    let one = client.push(1, 0.25).expect("push");
    assert_eq!(one.accepted, 1);
    let at = client.push_at(2, 10, 0.5).expect("push_at");
    assert_eq!(at.accepted, 1);

    let batch: Vec<(u64, f64)> =
        (0..200).map(|i| (1 + (i % 2), (i as f64 * 0.01).sin().abs())).collect();
    let outcome = client.push_batch(&batch).expect("push_batch");
    assert_eq!(outcome.accepted, 200);
    assert_eq!(outcome.rejected + outcome.dropped, 0);

    server.engine().flush();
    let p = client.predict(1).expect("predict");
    assert!(p.steps > 0, "predict sees served steps after flush");
    let si = client.stream_info(2).expect("stream_info");
    assert!(si.shard < 2);
    assert!(si.next_minute > 10, "push_at advanced the stream clock");

    let health = client.health().expect("health");
    assert_eq!(health.streams, 2);
    assert_eq!(health.shards, 2);
    assert_eq!(health.pushes.accepted, 202);
    assert_eq!(health.nonfinite_forecasts, 0);

    let ckpt = client.checkpoint().expect("checkpoint");
    assert!(ckpt.starts_with(b"FLEETCKP"), "checkpoint bytes carry the magic");

    client.evict(2).expect("evict");
    let gone = client.predict(2).expect_err("evicted stream is unknown");
    assert_eq!(gone.server_code(), Some(ErrorCode::UnknownStream));

    // Typed addressing errors.
    let dup = client.register(1).expect_err("duplicate register");
    assert_eq!(dup.server_code(), Some(ErrorCode::DuplicateStream));
    // Pushes are validated at feed time, not enqueue time (the engine's
    // sharded-queue design): an unknown-stream push is accepted on the wire
    // and surfaces in the health rollup as a dropped-unknown instead.
    let unknown = client.push(999, 1.0).expect("unknown push is enqueued");
    assert_eq!(unknown.accepted, 1);
    server.engine().flush();
    assert_eq!(client.health().expect("health").unknown_dropped, 1);

    client.shutdown_server().expect("shutdown acked");
    server.shutdown();
    assert!(server.is_shutting_down());
}

#[test]
fn pipelined_requests_answer_in_order() {
    let server = start_server(1, ServerConfig::default());
    let mut stream = TcpStream::connect(server.addr()).expect("raw connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    // Three requests written back-to-back before reading anything.
    for (id, op) in [(10u64, OpCode::Hello), (11, OpCode::Health), (12, OpCode::Health)] {
        let payload = match op {
            OpCode::Hello => {
                let mut p = vec![4, 0]; // u16 string length prefix
                p.extend_from_slice(b"pipe");
                p
            }
            _ => Vec::new(),
        };
        let frame = Frame { opcode: op as u8, request_id: id, payload };
        stream.write_all(&wire::encode(&frame)).expect("write");
    }
    for expect_id in [10u64, 11, 12] {
        let reply = wire::read_frame(&mut stream, 1 << 20).expect("read reply");
        assert_eq!(reply.request_id, expect_id, "responses come back in request order");
        let resp = Response::decode(reply.opcode, &reply.payload).expect("decodable");
        assert!(!matches!(resp, Response::Error { .. }), "pipelined request failed: {resp:?}");
    }
}

#[test]
fn killed_client_decrements_connection_gauge() {
    let server = start_server(1, ServerConfig::default());
    let gauge = server.engine().registry().gauge("net_connections");

    let mut a = quick_client(&server);
    let _b = quick_client(&server);
    wait_for("two open connections", || server.open_connections() == 2);
    assert_eq!(gauge.get(), 2.0);

    a.register(5).expect("register");
    a.push(5, 1.0).expect("push");
    drop(a); // hard client kill mid-session: socket closes without goodbye
    wait_for("server reaps the dead connection", || server.open_connections() == 1);
    assert_eq!(gauge.get(), 1.0, "gauge follows the reaped connection");

    // The surviving connection — and new ones — still work.
    let mut c = quick_client(&server);
    c.health().expect("server still serves after a client kill");
}

#[test]
fn connection_cap_refuses_with_typed_error() {
    let server = start_server(1, ServerConfig { max_connections: 2, ..ServerConfig::default() });
    let _a = quick_client(&server);
    let _b = quick_client(&server);
    wait_for("cap reached", || server.open_connections() == 2);

    let config = ClientConfig {
        connect_timeout: Duration::from_secs(2),
        request_timeout: Duration::from_secs(2),
        max_attempts: 1,
        ..ClientConfig::default()
    };
    match Client::connect(server.addr(), config) {
        Err(e) => assert_eq!(
            e.server_code(),
            Some(ErrorCode::TooManyConnections),
            "refusal carries the typed code, got {e}"
        ),
        Ok(_) => panic!("third connection must be refused"),
    }
    let rejected = server.engine().registry().counter("net_conn_rejected_total");
    assert!(rejected.get() >= 1);

    // Freeing a slot lets the next client in.
    drop(_a);
    wait_for("slot freed", || server.open_connections() == 1);
    let mut c = quick_client(&server);
    c.health().expect("slot reuse works");
}

#[test]
fn wire_shutdown_drains_queued_batches() {
    let mut server = start_server(3, ServerConfig::default());
    let mut client = quick_client(&server);
    for id in 0..9 {
        client.register(id).expect("register");
    }
    // Queue a lot of work, then shut down immediately — nothing may be lost.
    let batch: Vec<(u64, f64)> = (0..3000).map(|i| (i % 9, (i as f64 * 0.003).cos())).collect();
    let outcome = client.push_batch(&batch).expect("push_batch");
    assert_eq!(outcome.accepted, 3000);
    client.shutdown_server().expect("wire shutdown acked");

    // Further requests on a fresh connection are refused or fail to connect.
    let config = ClientConfig { max_attempts: 1, ..ClientConfig::default() };
    // connection refused / reset are equally acceptable
    if let Err(NetError::Server { code, .. }) = Client::connect(server.addr(), config) {
        assert_eq!(code, ErrorCode::ShuttingDown);
    }

    server.shutdown(); // joins threads and flushes the engine
    let health = server.engine().health();
    assert_eq!(health.queue_depth(), 0, "shutdown flushed the shard queues");
    assert_eq!(health.steps, 3000, "every queued sample was processed before exit");
    assert_eq!(server.open_connections(), 0, "all connections joined");
}

#[test]
fn shutdown_is_idempotent_and_drop_safe() {
    let mut server = start_server(1, ServerConfig { http_addr: None, ..ServerConfig::default() });
    server.shutdown();
    server.shutdown();
    drop(server); // Drop runs shutdown() a third time
}
