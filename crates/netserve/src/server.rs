//! The TCP server: bounded-connection acceptor, per-connection reader
//! threads, engine dispatch, and graceful shutdown.
//!
//! One [`Server`] fronts one shared [`FleetEngine`]. The acceptor thread
//! hands each connection to its own reader thread, which decodes frames,
//! dispatches them against the engine, and writes responses in request
//! order — so clients may pipeline requests freely. Engine backpressure
//! surfaces as data, not as stalls: a rejected single-sample push becomes a
//! typed [`ErrorCode::Backpressure`] error, a partially-accepted batch
//! returns its accept/reject/drop counts.
//!
//! Shutdown (via [`Server::shutdown`] or the wire `Shutdown` opcode) stops
//! the acceptor, lets every connection finish the request it is serving,
//! unblocks idle readers by shutting their sockets' read side, joins all
//! threads, and flushes the engine so every accepted sample is processed.

use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown as SockShutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fleet::{FleetEngine, FleetError, StreamConfig};
use obs::{Counter, EventKind, EventRing, Gauge, Histogram};

use crate::msg::{
    ErrorCode, HealthReply, OpCode, PredictReply, Request, Response, StreamInfoReply,
};
use crate::wire::{self, Frame, WireError, MAX_REQUEST_PAYLOAD, PROTOCOL_VERSION};
use crate::{http, NetError};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address for the binary protocol; port 0 picks an ephemeral port
    /// (read it back from [`Server::addr`]).
    pub addr: String,
    /// Bind address for the HTTP observability shim (`/metrics`,
    /// `/healthz`); `None` disables it.
    pub http_addr: Option<String>,
    /// Maximum concurrently-open protocol connections; further clients get
    /// a [`ErrorCode::TooManyConnections`] error and are closed.
    pub max_connections: usize,
    /// Cap on one request frame's payload, in bytes. Frames declaring more
    /// are rejected before allocation and the connection is closed.
    pub max_frame_payload: usize,
    /// Stream configuration used by `Register` and as the base that
    /// `RegisterWith` tuning is applied onto.
    pub stream_defaults: StreamConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            http_addr: Some("127.0.0.1:0".into()),
            max_connections: 64,
            max_frame_payload: MAX_REQUEST_PAYLOAD,
            stream_defaults: StreamConfig::default(),
        }
    }
}

/// Per-opcode and connection-level instrumentation, registered on the
/// engine's registry so one scrape covers engine and network.
pub(crate) struct NetObs {
    pub(crate) op_total: [Counter; OpCode::ALL.len()],
    pub(crate) request_us: Histogram,
    pub(crate) connections: Gauge,
    pub(crate) connections_total: Counter,
    pub(crate) conn_rejected: Counter,
    pub(crate) errors: Counter,
    pub(crate) malformed: Counter,
    pub(crate) disconnects: Counter,
    pub(crate) http_requests: Counter,
}

impl NetObs {
    fn new(registry: &obs::Registry) -> Self {
        Self {
            op_total: OpCode::ALL
                .map(|op| registry.counter(&format!("net_op_{}_total", op.name()))),
            request_us: registry.histogram("net_request_us"),
            connections: registry.gauge("net_connections"),
            connections_total: registry.counter("net_connections_total"),
            conn_rejected: registry.counter("net_conn_rejected_total"),
            errors: registry.counter("net_errors_total"),
            malformed: registry.counter("net_malformed_frames_total"),
            disconnects: registry.counter("net_disconnects_total"),
            http_requests: registry.counter("net_http_requests_total"),
        }
    }
}

/// State shared by the acceptor, connection threads, and the HTTP shim.
pub(crate) struct Shared {
    pub(crate) engine: Arc<FleetEngine>,
    pub(crate) config: ServerConfig,
    pub(crate) obs: NetObs,
    pub(crate) events: EventRing,
    pub(crate) shutdown: AtomicBool,
    /// Open protocol connections, by connection id: the stored stream clone
    /// is what shutdown uses to unblock a reader parked in `read`.
    conns: Mutex<HashMap<u64, TcpStream>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    next_conn_id: AtomicU64,
    open_conns: AtomicU64,
    addr: SocketAddr,
    pub(crate) http_addr: Option<SocketAddr>,
}

impl Shared {
    pub(crate) fn open_connections(&self) -> u64 {
        self.open_conns.load(Ordering::Relaxed)
    }

    /// Flips the shutdown flag and unblocks everything that could be parked
    /// in a blocking syscall: idle readers (socket read-shutdown) and the
    /// two accept loops (a throwaway self-connection each). Idempotent;
    /// joining is [`Server::shutdown`]'s job.
    pub(crate) fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        for stream in self.conns.lock().expect("conns map poisoned").values() {
            let _ = stream.shutdown(SockShutdown::Read);
        }
        let wake = |addr: SocketAddr| {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
        };
        wake(self.addr);
        if let Some(addr) = self.http_addr {
            wake(addr);
        }
    }
}

/// A running network server over one [`FleetEngine`].
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    http: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds both listeners and starts the acceptor (and, if configured,
    /// the HTTP shim) threads.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if a bind fails.
    pub fn start(engine: Arc<FleetEngine>, config: ServerConfig) -> Result<Server, NetError> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| NetError::Io(format!("bind {}: {e}", config.addr)))?;
        let addr = listener.local_addr().map_err(|e| NetError::Io(e.to_string()))?;
        let http_listener = match &config.http_addr {
            Some(a) => Some(
                TcpListener::bind(a).map_err(|e| NetError::Io(format!("bind http {a}: {e}")))?,
            ),
            None => None,
        };
        let http_addr = match &http_listener {
            Some(l) => Some(l.local_addr().map_err(|e| NetError::Io(e.to_string()))?),
            None => None,
        };

        let obs = NetObs::new(engine.registry());
        let events = engine.events().clone();
        let shared = Arc::new(Shared {
            engine,
            config,
            obs,
            events,
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            conn_threads: Mutex::new(Vec::new()),
            next_conn_id: AtomicU64::new(1),
            open_conns: AtomicU64::new(0),
            addr,
            http_addr,
        });

        let acceptor = {
            let s = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("netserve-accept".into())
                .spawn(move || accept_loop(&s, &listener))
                .map_err(|e| NetError::Io(format!("spawn acceptor: {e}")))?
        };
        let http = match http_listener {
            Some(l) => {
                let s = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("netserve-http".into())
                        .spawn(move || http::serve(&s, &l))
                        .map_err(|e| NetError::Io(format!("spawn http: {e}")))?,
                )
            }
            None => None,
        };
        Ok(Server { shared, acceptor: Some(acceptor), http })
    }

    /// The bound protocol address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The bound HTTP shim address, if enabled.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.shared.http_addr
    }

    /// The engine this server fronts.
    pub fn engine(&self) -> &Arc<FleetEngine> {
        &self.shared.engine
    }

    /// Currently open protocol connections.
    pub fn open_connections(&self) -> u64 {
        self.shared.open_connections()
    }

    /// Whether shutdown has begun (via [`Server::shutdown`] or the wire
    /// `Shutdown` opcode).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Gracefully stops the server: stops accepting, lets every connection
    /// finish its in-flight request, joins all threads, and flushes the
    /// engine so every accepted sample is fully processed. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.begin_shutdown();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.http.take() {
            let _ = h.join();
        }
        let threads: Vec<_> =
            self.shared.conn_threads.lock().expect("conn threads poisoned").drain(..).collect();
        for h in threads {
            let _ = h.join();
        }
        // Drain to durable state: flush_durable pushes every queued sample
        // through the serving slots and the trace store, then fsyncs the WAL
        // (a plain flush on engines without durability). A failed fsync here
        // has no client left to tell, so it surfaces on `net_errors_total`.
        if self.shared.engine.flush_durable().is_err() {
            self.shared.obs.errors.inc();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        // Reap finished connection threads so the handle list tracks open
        // connections, not historical ones.
        shared.conn_threads.lock().expect("conn threads poisoned").retain(|h| !h.is_finished());

        if shared.open_conns.load(Ordering::Relaxed) >= shared.config.max_connections as u64 {
            shared.obs.conn_rejected.inc();
            refuse_connection(stream);
            continue;
        }
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let Ok(clone) = stream.try_clone() else { continue };
        shared.conns.lock().expect("conns map poisoned").insert(conn_id, clone);
        let n = shared.open_conns.fetch_add(1, Ordering::Relaxed) + 1;
        shared.obs.connections.set(n as f64);
        shared.obs.connections_total.inc();
        shared.events.push(None, EventKind::NetConnOpened { conn: conn_id });

        let s = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name(format!("netserve-conn-{conn_id}"))
            .spawn(move || connection_loop(&s, stream, conn_id));
        match handle {
            Ok(h) => shared.conn_threads.lock().expect("conn threads poisoned").push(h),
            Err(_) => close_connection(shared, conn_id, 0),
        }
    }
}

/// Tells an over-limit client why it is being dropped, best-effort.
fn refuse_connection(mut stream: TcpStream) {
    let resp = Response::Error {
        code: ErrorCode::TooManyConnections,
        detail: "connection limit reached".into(),
    };
    let frame = Frame { opcode: resp.opcode(), request_id: 0, payload: resp.encode_payload() };
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = stream.write_all(&wire::encode(&frame));
}

/// Removes a connection from the shared map and updates gauge + events.
fn close_connection(shared: &Arc<Shared>, conn_id: u64, requests: u64) {
    shared.conns.lock().expect("conns map poisoned").remove(&conn_id);
    let n = shared.open_conns.fetch_sub(1, Ordering::Relaxed) - 1;
    shared.obs.connections.set(n as f64);
    shared.events.push(None, EventKind::NetConnClosed { conn: conn_id, requests });
}

fn connection_loop(shared: &Arc<Shared>, mut stream: TcpStream, conn_id: u64) {
    let _ = stream.set_nodelay(true);
    let mut requests = 0u64;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match wire::read_frame(&mut stream, shared.config.max_frame_payload) {
            Ok(frame) => {
                requests += 1;
                let started = Instant::now();
                let (response, after) = dispatch(shared, &frame);
                let out = Frame {
                    opcode: response.opcode(),
                    request_id: frame.request_id,
                    payload: response.encode_payload(),
                };
                if matches!(response, Response::Error { .. }) {
                    shared.obs.errors.inc();
                }
                let write_ok = wire::write_frame(&mut stream, &out).is_ok();
                shared.obs.request_us.record(started.elapsed().as_micros() as f64);
                match after {
                    AfterReply::Continue if write_ok => {}
                    AfterReply::Continue => {
                        shared.obs.disconnects.inc();
                        break;
                    }
                    AfterReply::Close => break,
                    AfterReply::ShutdownServer => {
                        shared.begin_shutdown();
                        break;
                    }
                }
            }
            Err(WireError::Closed) => break,
            Err(WireError::Io(_)) => {
                // Mid-frame EOF or reset: the peer vanished (or shutdown
                // unparked us). Not malformed — nothing decodable arrived.
                if !shared.shutdown.load(Ordering::SeqCst) {
                    shared.obs.disconnects.inc();
                }
                break;
            }
            Err(e) => {
                // Undecodable frame: answer with a typed error, then close —
                // after a framing error the byte stream cannot be trusted.
                let code = match e {
                    WireError::TooLarge { .. } => ErrorCode::PayloadTooLarge,
                    WireError::BadVersion(_) => ErrorCode::UnsupportedVersion,
                    WireError::TooShort(_)
                    | WireError::BadCrc { .. }
                    | WireError::BadReserved(_) => ErrorCode::BadFrame,
                    WireError::Closed | WireError::Io(_) => unreachable!("handled above"),
                };
                shared.obs.malformed.inc();
                shared
                    .events
                    .push(None, EventKind::NetMalformedFrame { conn: conn_id, code: code as u64 });
                let resp = Response::Error { code, detail: e.to_string() };
                let frame =
                    Frame { opcode: resp.opcode(), request_id: 0, payload: resp.encode_payload() };
                let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
                let _ = wire::write_frame(&mut stream, &frame);
                break;
            }
        }
    }
    close_connection(shared, conn_id, requests);
}

/// What the connection loop does after writing the response.
enum AfterReply {
    Continue,
    Close,
    ShutdownServer,
}

/// Decodes and serves one request against the engine.
fn dispatch(shared: &Arc<Shared>, frame: &Frame) -> (Response, AfterReply) {
    if shared.shutdown.load(Ordering::SeqCst) {
        let resp = Response::Error {
            code: ErrorCode::ShuttingDown,
            detail: "server is shutting down".into(),
        };
        return (resp, AfterReply::Close);
    }
    let request = match Request::decode(frame.opcode, &frame.payload) {
        Ok(r) => r,
        Err((code, detail)) => {
            if code == ErrorCode::MalformedPayload {
                shared.obs.malformed.inc();
            }
            return (Response::Error { code, detail }, AfterReply::Continue);
        }
    };
    shared.obs.op_total
        [OpCode::ALL.iter().position(|op| *op == request.opcode()).expect("opcode is in table")]
    .inc();

    let engine = &shared.engine;
    let fleet_err = |e: FleetError| {
        let code = match &e {
            FleetError::UnknownStream(_) => ErrorCode::UnknownStream,
            FleetError::DuplicateStream(_) => ErrorCode::DuplicateStream,
            FleetError::InvalidConfig(_) => ErrorCode::InvalidConfig,
            FleetError::Checkpoint(_) => ErrorCode::Checkpoint,
            FleetError::Serving(_) => ErrorCode::Internal,
            FleetError::Durability(_) => ErrorCode::Durability,
        };
        Response::Error { code, detail: e.to_string() }
    };

    let response = match request {
        Request::Hello { .. } => Response::Hello {
            version: PROTOCOL_VERSION,
            shards: engine.config().shards as u16,
            streams: engine.stream_count() as u64,
        },
        Request::Register { id } => {
            match engine.register_with(id, &shared.config.stream_defaults) {
                Ok(()) => Response::Register,
                Err(e) => fleet_err(e),
            }
        }
        Request::RegisterWith { id, tuning } => {
            let config = StreamConfig {
                train_size: tuning.train_size as usize,
                qa_window: tuning.qa_window as usize,
                qa_period: tuning.qa_period as usize,
                qa_threshold: tuning.qa_threshold,
                ..shared.config.stream_defaults.clone()
            };
            match engine.register_with(id, &config) {
                Ok(()) => Response::RegisterWith,
                Err(e) => fleet_err(e),
            }
        }
        Request::Push { id, minute, value } => {
            let report = match minute {
                Some(m) => engine.push_at(id, m, value),
                None => engine.push(id, value),
            };
            if report.rejected > 0 {
                Response::Error {
                    code: ErrorCode::Backpressure,
                    detail: format!("stream {id}: queue full, sample rejected"),
                }
            } else if report.wal_failed {
                // The sample is being served from memory but its WAL append
                // failed: the ack must say so, or the client would treat a
                // non-durable write as crash-safe.
                Response::Error {
                    code: ErrorCode::Durability,
                    detail: format!("stream {id}: accepted but WAL append failed (not durable)"),
                }
            } else {
                Response::Push(report.into())
            }
        }
        Request::PushBatch { samples } => {
            let report = engine.push_batch(&samples);
            if report.wal_failed {
                Response::Error {
                    code: ErrorCode::Durability,
                    detail: format!(
                        "{} samples accepted but WAL append failed (not durable)",
                        report.accepted
                    ),
                }
            } else {
                Response::PushBatch(report.into())
            }
        }
        Request::Predict { id } => match engine.stream_info(id) {
            Ok(info) => Response::Predict(PredictReply {
                forecast: info.last_forecast,
                health: info.health,
                steps: info.steps,
                forecasts: info.forecasts,
            }),
            Err(e) => fleet_err(e),
        },
        Request::StreamInfo { id } => match engine.stream_info(id) {
            Ok(info) => Response::StreamInfo(StreamInfoReply {
                shard: info.shard as u32,
                steps: info.steps,
                forecasts: info.forecasts,
                next_minute: info.next_minute,
                health: info.health,
                last_forecast: info.last_forecast,
                retrains: info.retrains as u64,
            }),
            Err(e) => fleet_err(e),
        },
        Request::Health => {
            let h = engine.health();
            Response::Health(HealthReply {
                streams: h.streams as u64,
                shards: engine.config().shards as u16,
                pushes: h.pushes.into(),
                steps: h.steps,
                forecasts: h.forecasts,
                nonfinite_forecasts: h.nonfinite_forecasts,
                retrains: h.retrains,
                degraded_streams: h.degraded_streams() as u64,
                quarantined_streams: h.quarantined_streams() as u64,
                queue_depth: h.shards.iter().map(|s| s.queue_depth as u64).sum(),
                unknown_dropped: h.unknown_dropped(),
            })
        }
        Request::Checkpoint => Response::Checkpoint(engine.checkpoint()),
        Request::Evict { id } => match engine.evict(id) {
            Ok(()) => Response::Evict,
            Err(e) => fleet_err(e),
        },
        Request::Shutdown => return (Response::Shutdown, AfterReply::ShutdownServer),
    };
    (response, AfterReply::Continue)
}
