//! The TCP server: a reactor-backed, event-driven serving path.
//!
//! One [`Server`] fronts one shared [`FleetEngine`]. Instead of a thread
//! per connection, a [`reactor::Reactor`] multiplexes every connection
//! across a small set of per-core event loops: the listener is registered
//! in every loop with `EPOLLEXCLUSIVE` (sharded accept), connections are
//! placed round-robin, and each one runs an edge-triggered state machine —
//! read buffer → streaming zero-copy frame decode ([`wire::decode_ref`]) →
//! engine dispatch → response queue flushed with vectored writes. Write
//! backpressure parks output and re-registers interest; idle connections
//! are reaped off a timer wheel; pipelining works because responses are
//! queued in request order.
//!
//! Engine backpressure surfaces as data, not stalls: a rejected push
//! becomes a typed [`ErrorCode::Backpressure`] error, a partially-accepted
//! batch returns its accept/reject/drop counts.
//!
//! Shutdown (via [`Server::shutdown`] or the wire `Shutdown` opcode) is a
//! reactor drain: listeners deregister, every connection's queued
//! responses are flushed before its close, loops join, and the engine's
//! `flush_durable` runs so every accepted sample is processed and fsynced.

use std::collections::{HashMap, HashSet};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use fleet::{FleetEngine, FleetError, StreamConfig};
use obs::{Counter, EventKind, EventRing, Gauge, Histogram};
use reactor::{
    AcceptDecision, CloseReason, ConnCtx, Handler, Reactor, ReactorBuilder, ReactorConfig, Verdict,
};

use crate::cluster::{ClusterHooks, PushDedup};
use crate::msg::{
    ErrorCode, HealthReply, OpCode, PredictReply, PushSeqOutcome, Request, Response,
    StreamInfoReply,
};
use crate::wire::{self, WireError, MAX_REQUEST_PAYLOAD, PROTOCOL_VERSION};
use crate::{http, NetError};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address for the binary protocol; port 0 picks an ephemeral port
    /// (read it back from [`Server::addr`]).
    pub addr: String,
    /// Bind address for the HTTP observability shim (`/metrics`,
    /// `/healthz`); `None` disables it.
    pub http_addr: Option<String>,
    /// Maximum concurrently-open protocol connections; further clients get
    /// a [`ErrorCode::TooManyConnections`] error and are closed.
    pub max_connections: usize,
    /// Cap on one request frame's payload, in bytes. Frames declaring more
    /// are rejected before allocation and the connection is closed.
    pub max_frame_payload: usize,
    /// Stream configuration used by `Register` and as the base that
    /// `RegisterWith` tuning is applied onto.
    pub stream_defaults: StreamConfig,
    /// Event-loop threads; `0` sizes to the machine (one per core, capped
    /// at 8).
    pub event_loops: usize,
    /// Reap protocol connections that send nothing for this long. A peer
    /// that trickle-reads a response without ever draining it counts as
    /// idle too — slow readers cannot pin buffers forever. `None` disables
    /// reaping.
    pub idle_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            http_addr: Some("127.0.0.1:0".into()),
            max_connections: 64,
            max_frame_payload: MAX_REQUEST_PAYLOAD,
            stream_defaults: StreamConfig::default(),
            event_loops: 0,
            idle_timeout: Some(Duration::from_secs(60)),
        }
    }
}

/// Per-opcode, connection-level, and reactor instrumentation, registered
/// on the engine's registry so one scrape covers engine and network.
pub(crate) struct NetObs {
    pub(crate) op_total: [Counter; OpCode::ALL.len()],
    pub(crate) request_us: Histogram,
    pub(crate) connections: Gauge,
    pub(crate) connections_total: Counter,
    pub(crate) conn_rejected: Counter,
    pub(crate) errors: Counter,
    pub(crate) malformed: Counter,
    pub(crate) disconnects: Counter,
    pub(crate) idle_reaped: Counter,
    pub(crate) http_requests: Counter,
    /// Time spent in `epoll_wait` when it returned work.
    pub(crate) poll_us: Histogram,
    /// Per-flush socket write latency.
    pub(crate) flush_us: Histogram,
    pub(crate) flush_bytes: Counter,
    pub(crate) readiness_events: Counter,
    pub(crate) backpressure: Counter,
    /// Open connections per event loop (accept-shard balance).
    pub(crate) loop_connections: Vec<Gauge>,
}

impl NetObs {
    fn new(registry: &obs::Registry, loops: usize) -> Self {
        Self {
            op_total: OpCode::ALL
                .map(|op| registry.counter(&format!("net_op_{}_total", op.name()))),
            request_us: registry.histogram("net_request_us"),
            connections: registry.gauge("net_connections"),
            connections_total: registry.counter("net_connections_total"),
            conn_rejected: registry.counter("net_conn_rejected_total"),
            errors: registry.counter("net_errors_total"),
            malformed: registry.counter("net_malformed_frames_total"),
            disconnects: registry.counter("net_disconnects_total"),
            idle_reaped: registry.counter("net_idle_reaped_total"),
            http_requests: registry.counter("net_http_requests_total"),
            poll_us: registry.histogram("reactor_poll_us"),
            flush_us: registry.histogram("reactor_flush_us"),
            flush_bytes: registry.counter("reactor_flush_bytes_total"),
            readiness_events: registry.counter("reactor_events_total"),
            backpressure: registry.counter("reactor_backpressure_total"),
            loop_connections: (0..loops)
                .map(|i| registry.gauge(&format!("reactor_loop{i}_connections")))
                .collect(),
        }
    }
}

/// State shared by the protocol handlers, the HTTP shim, and the server
/// handle.
pub(crate) struct Shared {
    pub(crate) engine: Arc<FleetEngine>,
    pub(crate) config: ServerConfig,
    pub(crate) obs: NetObs,
    pub(crate) events: EventRing,
    pub(crate) shutdown: AtomicBool,
    open_conns: AtomicU64,
    addr: SocketAddr,
    pub(crate) http_addr: Option<SocketAddr>,
    /// Cluster-mode hooks (`None` on a plain server: no redirects, no ring).
    pub(crate) cluster: Option<Arc<dyn ClusterHooks>>,
    /// Migration fences: streams mid-`MigrateOut`, mapped to the gaining
    /// node's address. Stream-addressed requests hold `read()` across the
    /// engine call so `MigrateOut`'s `write()` + flush drains everything
    /// admitted before the fence; cleared on `RingUpdate`.
    pub(crate) fences: RwLock<HashMap<u64, String>>,
    /// Adopted streams: arrived via `MigrateIn` ahead of the ring update
    /// that will confirm this node as owner. Served here even while the
    /// installed ring still names the loser (otherwise a redirected
    /// client would ping-pong between the loser's fence and this node's
    /// stale ring); cleared on `RingUpdate`.
    pub(crate) adopted: RwLock<HashSet<u64>>,
    /// Sequenced-push dedup state (shared with the cluster node so
    /// failover can arm floors).
    pub(crate) dedup: Arc<PushDedup>,
}

impl Shared {
    pub(crate) fn open_connections(&self) -> u64 {
        self.open_conns.load(Ordering::Relaxed)
    }
}

/// Routes the reactor's loop instrumentation into the `obs` registry.
struct ReactorObs {
    shared: Arc<Shared>,
}

impl reactor::Observer for ReactorObs {
    fn on_poll(&self, _loop_idx: usize, events: usize, wait_us: u64) {
        if events > 0 {
            self.shared.obs.poll_us.record(wait_us as f64);
            self.shared.obs.readiness_events.add(events as u64);
        }
    }
    fn on_flush(&self, _loop_idx: usize, bytes: usize, flush_us: u64) {
        self.shared.obs.flush_us.record(flush_us as f64);
        self.shared.obs.flush_bytes.add(bytes as u64);
    }
    fn on_conn_count(&self, loop_idx: usize, open: usize) {
        if let Some(g) = self.shared.obs.loop_connections.get(loop_idx) {
            g.set(open as f64);
        }
    }
    fn on_write_backpressure(&self, _loop_idx: usize) {
        self.shared.obs.backpressure.inc();
    }
}

/// Encodes a standalone typed-error frame.
fn error_frame(code: ErrorCode, detail: &str, request_id: u64) -> Vec<u8> {
    let resp = Response::Error { code, detail: detail.into() };
    wire::encode(&wire::Frame { opcode: resp.opcode(), request_id, payload: resp.encode_payload() })
}

/// The binary protocol's accept policy: connection cap and shutdown
/// refusals, gauge and event bookkeeping.
struct ProtoService {
    shared: Arc<Shared>,
}

impl reactor::Service for ProtoService {
    fn on_accept(&self, conn_id: u64, _peer: SocketAddr) -> AcceptDecision {
        let shared = &self.shared;
        if shared.shutdown.load(Ordering::SeqCst) {
            return AcceptDecision::Reject(error_frame(
                ErrorCode::ShuttingDown,
                "server is shutting down",
                0,
            ));
        }
        if shared.open_conns.load(Ordering::Relaxed) >= shared.config.max_connections as u64 {
            shared.obs.conn_rejected.inc();
            return AcceptDecision::Reject(error_frame(
                ErrorCode::TooManyConnections,
                "connection limit reached",
                0,
            ));
        }
        let n = shared.open_conns.fetch_add(1, Ordering::Relaxed) + 1;
        shared.obs.connections.set(n as f64);
        shared.obs.connections_total.inc();
        shared.events.push(None, EventKind::NetConnOpened { conn: conn_id });
        AcceptDecision::Accept(Box::new(ProtoConn {
            shared: Arc::clone(shared),
            conn_id,
            requests: 0,
            mid_frame: false,
        }))
    }

    fn idle_timeout(&self) -> Option<Duration> {
        self.shared.config.idle_timeout
    }
}

/// One protocol connection's state machine: streaming decode off the
/// reactor's read buffer, dispatch, responses queued in request order.
struct ProtoConn {
    shared: Arc<Shared>,
    conn_id: u64,
    requests: u64,
    /// The buffer currently ends inside a frame — an EOF now is a
    /// mid-frame disconnect, not a clean close.
    mid_frame: bool,
}

impl Handler for ProtoConn {
    fn on_readable(&mut self, conn: &mut ConnCtx<'_>) -> Verdict {
        loop {
            let started = Instant::now();
            // The decode borrows the input buffer; everything that
            // outlives the borrow (response, consumed count) is owned.
            let step = match wire::decode_ref(conn.input(), self.shared.config.max_frame_payload) {
                Ok(None) => {
                    self.mid_frame = !conn.input().is_empty();
                    return Verdict::Continue;
                }
                Ok(Some((frame, used))) => {
                    let request_id = frame.request_id;
                    let (response, after) = dispatch(&self.shared, frame.opcode, frame.payload);
                    Ok((request_id, response, after, used))
                }
                Err(e) => Err(e),
            };
            match step {
                Ok((request_id, response, after, used)) => {
                    self.requests += 1;
                    self.mid_frame = false;
                    conn.consume(used);
                    if matches!(response, Response::Error { .. }) {
                        self.shared.obs.errors.inc();
                    }
                    conn.write(wire::encode(&wire::Frame {
                        opcode: response.opcode(),
                        request_id,
                        payload: response.encode_payload(),
                    }));
                    self.shared.obs.request_us.record(started.elapsed().as_micros() as f64);
                    match after {
                        AfterReply::Continue => {}
                        AfterReply::Close => return Verdict::Close,
                        AfterReply::ShutdownServer => {
                            // Mirror the flag before the reactor drain so
                            // `is_shutting_down` and `/healthz` agree.
                            self.shared.shutdown.store(true, Ordering::SeqCst);
                            return Verdict::Shutdown;
                        }
                    }
                }
                Err(e) => {
                    // Undecodable frame: answer with a typed error on the
                    // connection-level id 0, then close — after a framing
                    // error the byte stream cannot be trusted.
                    let code = match e {
                        WireError::TooLarge { .. } => ErrorCode::PayloadTooLarge,
                        WireError::BadVersion(_) => ErrorCode::UnsupportedVersion,
                        _ => ErrorCode::BadFrame,
                    };
                    self.shared.obs.malformed.inc();
                    self.shared.events.push(
                        None,
                        EventKind::NetMalformedFrame { conn: self.conn_id, code: code as u64 },
                    );
                    conn.write(error_frame(code, &e.to_string(), 0));
                    return Verdict::Close;
                }
            }
        }
    }

    fn on_close(&mut self, reason: CloseReason) {
        match reason {
            CloseReason::Error => self.shared.obs.disconnects.inc(),
            CloseReason::PeerClosed if self.mid_frame => self.shared.obs.disconnects.inc(),
            CloseReason::IdleTimeout => self.shared.obs.idle_reaped.inc(),
            _ => {}
        }
        let n = self.shared.open_conns.fetch_sub(1, Ordering::Relaxed) - 1;
        self.shared.obs.connections.set(n as f64);
        self.shared
            .events
            .push(None, EventKind::NetConnClosed { conn: self.conn_id, requests: self.requests });
    }
}

/// A running network server over one [`FleetEngine`].
pub struct Server {
    shared: Arc<Shared>,
    reactor: Option<Reactor>,
}

impl Server {
    /// Binds both listeners and starts the reactor's event loops (the HTTP
    /// shim, if configured, rides the same loops as a second listener).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if a bind or the reactor start fails.
    pub fn start(engine: Arc<FleetEngine>, config: ServerConfig) -> Result<Server, NetError> {
        Server::start_inner(engine, config, None, Arc::new(PushDedup::new()))
    }

    /// Starts a cluster-mode server: stream-addressed requests are checked
    /// against `hooks`' ring (answering [`ErrorCode::NotOwner`] with the
    /// owner's address), `RingInfo`/`RingUpdate`/`StandbyFeed` are served
    /// through the hooks, and `dedup` — shared with the caller so failover
    /// can arm floors — screens sequenced pushes.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if a bind or the reactor start fails.
    pub fn start_clustered(
        engine: Arc<FleetEngine>,
        config: ServerConfig,
        hooks: Arc<dyn ClusterHooks>,
        dedup: Arc<PushDedup>,
    ) -> Result<Server, NetError> {
        Server::start_inner(engine, config, Some(hooks), dedup)
    }

    fn start_inner(
        engine: Arc<FleetEngine>,
        config: ServerConfig,
        cluster: Option<Arc<dyn ClusterHooks>>,
        dedup: Arc<PushDedup>,
    ) -> Result<Server, NetError> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| NetError::Io(format!("bind {}: {e}", config.addr)))?;
        let addr = listener.local_addr().map_err(|e| NetError::Io(e.to_string()))?;
        let http_listener = match &config.http_addr {
            Some(a) => Some(
                TcpListener::bind(a).map_err(|e| NetError::Io(format!("bind http {a}: {e}")))?,
            ),
            None => None,
        };
        let http_addr = match &http_listener {
            Some(l) => Some(l.local_addr().map_err(|e| NetError::Io(e.to_string()))?),
            None => None,
        };

        let reactor_config =
            ReactorConfig { loops: config.event_loops, ..ReactorConfig::default() };
        let nloops = resolved_loops(config.event_loops);
        let obs = NetObs::new(engine.registry(), nloops);
        let events = engine.events().clone();
        let shared = Arc::new(Shared {
            engine,
            config,
            obs,
            events,
            shutdown: AtomicBool::new(false),
            open_conns: AtomicU64::new(0),
            addr,
            http_addr,
            cluster,
            fences: RwLock::new(HashMap::new()),
            adopted: RwLock::new(HashSet::new()),
            dedup,
        });

        let io_err = |e: std::io::Error| NetError::Io(format!("reactor: {e}"));
        let mut builder = ReactorBuilder::new(reactor_config)
            .listen(listener, Arc::new(ProtoService { shared: Arc::clone(&shared) }))
            .map_err(io_err)?;
        if let Some(l) = http_listener {
            builder = builder
                .listen(l, Arc::new(http::HttpService { shared: Arc::clone(&shared) }))
                .map_err(io_err)?;
        }
        let reactor = builder
            .observer(Arc::new(ReactorObs { shared: Arc::clone(&shared) }))
            .start()
            .map_err(io_err)?;
        Ok(Server { shared, reactor: Some(reactor) })
    }

    /// The bound protocol address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The bound HTTP shim address, if enabled.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.shared.http_addr
    }

    /// The engine this server fronts.
    pub fn engine(&self) -> &Arc<FleetEngine> {
        &self.shared.engine
    }

    /// Currently open protocol connections.
    pub fn open_connections(&self) -> u64 {
        self.shared.open_connections()
    }

    /// Whether shutdown has begun (via [`Server::shutdown`] or the wire
    /// `Shutdown` opcode).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Gracefully stops the server: the reactor deregisters its listeners,
    /// flushes every connection's queued responses, closes them, and its
    /// loops join; then the engine drains to durable state. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(mut reactor) = self.reactor.take() {
            reactor.shutdown();
        }
        // Drain to durable state: flush_durable pushes every queued sample
        // through the serving slots and the trace store, then fsyncs the WAL
        // (a plain flush on engines without durability). A failed fsync here
        // has no client left to tell, so it surfaces on `net_errors_total`.
        if self.shared.engine.flush_durable().is_err() {
            self.shared.obs.errors.inc();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Mirrors the reactor's auto-sizing so per-loop gauges can be registered
/// up front.
fn resolved_loops(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}

/// What the connection state machine does after queueing the response.
enum AfterReply {
    Continue,
    Close,
    ShutdownServer,
}

/// `Some(owner_addr)` when this node must not serve `id`: a migration
/// fence wins over the ring (the handoff runs ahead of the ring update).
fn not_owner(shared: &Shared, fences: &HashMap<u64, String>, id: u64) -> Option<String> {
    if let Some(dest) = fences.get(&id) {
        return Some(dest.clone());
    }
    if shared.adopted.read().expect("adopted").contains(&id) {
        return None;
    }
    shared.cluster.as_ref().and_then(|h| h.redirect(id))
}

fn not_clustered() -> Response {
    Response::Error {
        code: ErrorCode::InvalidConfig,
        detail: "server is not running in cluster mode".into(),
    }
}

/// Decodes and serves one request against the engine.
fn dispatch(shared: &Shared, opcode: u8, payload: &[u8]) -> (Response, AfterReply) {
    if shared.shutdown.load(Ordering::SeqCst) {
        let resp = Response::Error {
            code: ErrorCode::ShuttingDown,
            detail: "server is shutting down".into(),
        };
        return (resp, AfterReply::Close);
    }
    let request = match Request::decode(opcode, payload) {
        Ok(r) => r,
        Err((code, detail)) => {
            if code == ErrorCode::MalformedPayload {
                shared.obs.malformed.inc();
            }
            return (Response::Error { code, detail }, AfterReply::Continue);
        }
    };
    shared.obs.op_total
        [OpCode::ALL.iter().position(|op| *op == request.opcode()).expect("opcode is in table")]
    .inc();

    let engine = &shared.engine;
    let fleet_err = |e: FleetError| {
        let code = match &e {
            FleetError::UnknownStream(_) => ErrorCode::UnknownStream,
            FleetError::DuplicateStream(_) => ErrorCode::DuplicateStream,
            FleetError::InvalidConfig(_) => ErrorCode::InvalidConfig,
            FleetError::Checkpoint(_) => ErrorCode::Checkpoint,
            FleetError::Serving(_) => ErrorCode::Internal,
            FleetError::Durability(_) => ErrorCode::Durability,
        };
        Response::Error { code, detail: e.to_string() }
    };

    let response = match request {
        Request::Hello { .. } => Response::Hello {
            version: PROTOCOL_VERSION,
            shards: engine.config().shards as u16,
            streams: engine.stream_count() as u64,
        },
        Request::Register { id } => {
            let fences = shared.fences.read().expect("fences");
            if let Some(owner) = not_owner(shared, &fences, id) {
                Response::Error { code: ErrorCode::NotOwner, detail: owner }
            } else {
                match engine.register_with(id, &shared.config.stream_defaults) {
                    Ok(()) => Response::Register,
                    Err(e) => fleet_err(e),
                }
            }
        }
        Request::RegisterWith { id, tuning } => {
            let fences = shared.fences.read().expect("fences");
            if let Some(owner) = not_owner(shared, &fences, id) {
                Response::Error { code: ErrorCode::NotOwner, detail: owner }
            } else {
                let config = StreamConfig {
                    train_size: tuning.train_size as usize,
                    qa_window: tuning.qa_window as usize,
                    qa_period: tuning.qa_period as usize,
                    qa_threshold: tuning.qa_threshold,
                    ..shared.config.stream_defaults.clone()
                };
                match engine.register_with(id, &config) {
                    Ok(()) => Response::RegisterWith,
                    Err(e) => fleet_err(e),
                }
            }
        }
        Request::Push { id, minute, value } => {
            // The fence guard is held across the engine call: a concurrent
            // MigrateOut cannot cut its snapshot between our check and our
            // enqueue.
            let fences = shared.fences.read().expect("fences");
            if let Some(owner) = not_owner(shared, &fences, id) {
                Response::Error { code: ErrorCode::NotOwner, detail: owner }
            } else {
                let report = match minute {
                    Some(m) => engine.push_at(id, m, value),
                    None => engine.push(id, value),
                };
                if report.rejected > 0 {
                    Response::Error {
                        code: ErrorCode::Backpressure,
                        detail: format!("stream {id}: queue full, sample rejected"),
                    }
                } else if report.wal_failed {
                    // The sample is being served from memory but its WAL
                    // append failed: the ack must say so, or the client would
                    // treat a non-durable write as crash-safe.
                    Response::Error {
                        code: ErrorCode::Durability,
                        detail: format!(
                            "stream {id}: accepted but WAL append failed (not durable)"
                        ),
                    }
                } else {
                    Response::Push(report.into())
                }
            }
        }
        Request::PushBatch { samples } => {
            let fences = shared.fences.read().expect("fences");
            let mut ids: Vec<u64> = samples.iter().map(|s| s.0).collect();
            ids.sort_unstable();
            ids.dedup();
            if let Some(owner) = ids.iter().find_map(|id| not_owner(shared, &fences, *id)) {
                Response::Error { code: ErrorCode::NotOwner, detail: owner }
            } else {
                let report = engine.push_batch(&samples);
                if report.wal_failed {
                    Response::Error {
                        code: ErrorCode::Durability,
                        detail: format!(
                            "{} samples accepted but WAL append failed (not durable)",
                            report.accepted
                        ),
                    }
                } else {
                    Response::PushBatch(report.into())
                }
            }
        }
        Request::PushSeq { client, samples } => {
            let fences = shared.fences.read().expect("fences");
            // Any fenced or unowned stream fails the whole batch: the
            // cluster client groups batches by owner, so a hit means its
            // ring is stale and the batch must be re-routed wholesale.
            let mut ids: Vec<u64> = samples.iter().map(|s| s.0).collect();
            ids.sort_unstable();
            ids.dedup();
            if let Some(owner) = ids.iter().find_map(|id| not_owner(shared, &fences, *id)) {
                Response::Error { code: ErrorCode::NotOwner, detail: owner }
            } else {
                let admission = shared.dedup.screen(&client, &samples);
                let report = engine.push_batch(&admission.admitted);
                // Advance the dedup cursor only when the engine applied the
                // whole admitted batch; a partial application leaves it
                // untouched so the retry is re-screened from scratch.
                if report.rejected == 0 && report.dropped == 0 {
                    shared.dedup.commit(&admission);
                }
                drop(fences);
                if report.wal_failed {
                    Response::Error {
                        code: ErrorCode::Durability,
                        detail: format!(
                            "{} samples accepted but WAL append failed (not durable)",
                            report.accepted
                        ),
                    }
                } else {
                    let last_seqs =
                        ids.iter().map(|id| (*id, shared.dedup.last_seq(&client, *id))).collect();
                    Response::PushSeq(PushSeqOutcome {
                        outcome: report.into(),
                        deduped: admission.deduped,
                        last_seqs,
                    })
                }
            }
        }
        Request::Predict { id } => {
            let fences = shared.fences.read().expect("fences");
            if let Some(owner) = not_owner(shared, &fences, id) {
                Response::Error { code: ErrorCode::NotOwner, detail: owner }
            } else {
                match engine.stream_info(id) {
                    Ok(info) => Response::Predict(PredictReply {
                        forecast: info.last_forecast,
                        health: info.health,
                        steps: info.steps,
                        forecasts: info.forecasts,
                    }),
                    Err(e) => fleet_err(e),
                }
            }
        }
        Request::StreamInfo { id } => {
            let fences = shared.fences.read().expect("fences");
            if let Some(owner) = not_owner(shared, &fences, id) {
                Response::Error { code: ErrorCode::NotOwner, detail: owner }
            } else {
                match engine.stream_info(id) {
                    Ok(info) => Response::StreamInfo(StreamInfoReply {
                        shard: info.shard as u32,
                        steps: info.steps,
                        forecasts: info.forecasts,
                        next_minute: info.next_minute,
                        health: info.health,
                        last_forecast: info.last_forecast,
                        retrains: info.retrains as u64,
                    }),
                    Err(e) => fleet_err(e),
                }
            }
        }
        Request::Health => {
            let h = engine.health();
            Response::Health(HealthReply {
                streams: h.streams as u64,
                shards: engine.config().shards as u16,
                pushes: h.pushes.into(),
                steps: h.steps,
                forecasts: h.forecasts,
                nonfinite_forecasts: h.nonfinite_forecasts,
                retrains: h.retrains,
                degraded_streams: h.degraded_streams() as u64,
                quarantined_streams: h.quarantined_streams() as u64,
                queue_depth: h.shards.iter().map(|s| s.queue_depth as u64).sum(),
                unknown_dropped: h.unknown_dropped(),
            })
        }
        Request::Checkpoint => match engine.checkpoint() {
            Ok(bytes) => Response::Checkpoint(bytes),
            Err(e) => fleet_err(e),
        },
        // Evict is exempt from fence/ring checks: it is the migration
        // coordinator's cleanup on the losing node.
        Request::Evict { id } => match engine.evict(id) {
            Ok(()) => Response::Evict,
            Err(e) => fleet_err(e),
        },
        Request::Shutdown => return (Response::Shutdown, AfterReply::ShutdownServer),
        Request::RingInfo => match &shared.cluster {
            Some(h) => Response::Ring { version: h.ring_version(), blob: h.ring_blob() },
            None => not_clustered(),
        },
        Request::RingUpdate { version, blob } => match &shared.cluster {
            Some(h) => match h.ring_update(version, &blob) {
                Ok(()) => {
                    // The new ring supersedes every handoff override,
                    // redirects and adoptions alike.
                    shared.fences.write().expect("fences").clear();
                    shared.adopted.write().expect("adopted").clear();
                    Response::RingUpdate
                }
                Err(m) => Response::Error { code: ErrorCode::InvalidConfig, detail: m },
            },
            None => not_clustered(),
        },
        Request::MigrateOut { id, dest } => {
            // Fence before the flush: pushes that held read() have already
            // enqueued and drain into the snapshot; everything later is
            // redirected at `dest`.
            shared.fences.write().expect("fences").insert(id, dest);
            engine.flush();
            match engine.export_stream(id) {
                Ok((next_minute, snapshot)) => {
                    let floor = next_minute.max(shared.dedup.floor_of(id));
                    Response::MigrateOut { next_minute, floor, snapshot }
                }
                Err(e) => {
                    shared.fences.write().expect("fences").remove(&id);
                    fleet_err(e)
                }
            }
        }
        Request::MigrateIn { id, next_minute, floor, snapshot } => {
            match engine.import_stream(id, next_minute, &snapshot) {
                // A duplicate means a coordinator retry after a lost ack:
                // the stream is already here, the request is idempotent.
                Ok(()) | Err(fleet::FleetError::DuplicateStream(_)) => {
                    shared.dedup.set_floor(id, floor);
                    shared.adopted.write().expect("adopted").insert(id);
                    Response::MigrateIn
                }
                Err(e) => fleet_err(e),
            }
        }
        Request::StandbyFeed { payload } => match &shared.cluster {
            Some(h) => match h.standby_feed(&payload) {
                Ok(()) => Response::StandbyFeed,
                Err(m) => Response::Error { code: ErrorCode::Internal, detail: m },
            },
            None => not_clustered(),
        },
    };
    (response, AfterReply::Continue)
}
