//! Minimal HTTP/1.1 shim on a second port: `/metrics` (Prometheus text
//! from the engine's registry) and `/healthz` (a small JSON liveness
//! document). Just enough HTTP for `curl` and a Prometheus scraper — each
//! request is served inline on the shim thread with a short read timeout
//! and a capped request head, then the connection is closed
//! (`Connection: close`).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use crate::server::Shared;

/// Longest accepted request head (request line + headers), in bytes.
const MAX_HEAD: usize = 4096;

/// Accept loop for the observability port; exits when shutdown begins.
pub(crate) fn serve(shared: &Arc<Shared>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Ok(stream) = stream {
            shared.obs.http_requests.inc();
            let _ = handle(shared, stream);
        }
    }
}

fn handle(shared: &Arc<Shared>, mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;

    let mut head = Vec::with_capacity(256);
    let mut buf = [0u8; 512];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() >= MAX_HEAD {
            return respond(&mut stream, 431, "text/plain", "request head too large");
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
    }
    let request_line = head.split(|&b| b == b'\r').next().unwrap_or(b"");
    let mut parts = std::str::from_utf8(request_line).unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "only GET is served here");
    }
    match path {
        "/metrics" => {
            let body = shared.engine.prometheus();
            respond(&mut stream, 200, "text/plain; version=0.0.4", &body)
        }
        "/healthz" => {
            let body = format!(
                "{{\"status\": \"ok\", \"streams\": {}, \"connections\": {}, \
                 \"shutting_down\": {}}}",
                shared.engine.stream_count(),
                shared.open_connections(),
                shared.shutdown.load(Ordering::SeqCst),
            );
            respond(&mut stream, 200, "application/json", &body)
        }
        _ => respond(&mut stream, 404, "text/plain", "try /metrics or /healthz"),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())
}
