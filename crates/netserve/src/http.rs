//! Minimal HTTP/1.1 shim on a second port: `/metrics` (Prometheus text
//! from the engine's registry) and `/healthz` (a small JSON liveness
//! document). Just enough HTTP for `curl` and a Prometheus scraper — the
//! shim is a second listener on the *same* reactor loops as the binary
//! protocol, so a scrape costs one connection slot, not a thread. The
//! request head is capped, one response is served, and the connection is
//! closed (`Connection: close`).

use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use reactor::{AcceptDecision, ConnCtx, Handler, Service, Verdict};

use crate::server::Shared;

/// Longest accepted request head (request line + headers), in bytes.
const MAX_HEAD: usize = 4096;

/// Accept policy for the observability port: always accept (scrapes must
/// work under connection pressure), reap stalled scrapers quickly.
pub(crate) struct HttpService {
    pub(crate) shared: Arc<Shared>,
}

impl Service for HttpService {
    fn on_accept(&self, _conn_id: u64, _peer: SocketAddr) -> AcceptDecision {
        self.shared.obs.http_requests.inc();
        AcceptDecision::Accept(Box::new(HttpConn { shared: Arc::clone(&self.shared) }))
    }

    fn idle_timeout(&self) -> Option<Duration> {
        Some(Duration::from_secs(2))
    }
}

/// One scrape connection: buffer the head, answer once, close.
struct HttpConn {
    shared: Arc<Shared>,
}

impl Handler for HttpConn {
    fn on_readable(&mut self, conn: &mut ConnCtx<'_>) -> Verdict {
        let head = conn.input();
        let complete = head.windows(4).any(|w| w == b"\r\n\r\n");
        if !complete && head.len() < MAX_HEAD {
            return Verdict::Continue;
        }
        let response = if !complete {
            respond(431, "text/plain", "request head too large")
        } else {
            let request_line = head.split(|&b| b == b'\r').next().unwrap_or(b"");
            let mut parts = std::str::from_utf8(request_line).unwrap_or("").split_whitespace();
            let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
            if method != "GET" {
                respond(405, "text/plain", "only GET is served here")
            } else {
                match path {
                    "/metrics" => {
                        let body = self.shared.engine.prometheus();
                        respond(200, "text/plain; version=0.0.4", &body)
                    }
                    "/healthz" => {
                        let body = format!(
                            "{{\"status\": \"ok\", \"streams\": {}, \"connections\": {}, \
                             \"shutting_down\": {}}}",
                            self.shared.engine.stream_count(),
                            self.shared.open_connections(),
                            self.shared.shutdown.load(Ordering::SeqCst),
                        );
                        respond(200, "application/json", &body)
                    }
                    _ => respond(404, "text/plain", "try /metrics or /healthz"),
                }
            }
        };
        let consumed = conn.input().len();
        conn.consume(consumed);
        conn.write(response);
        Verdict::Close
    }
}

fn respond(status: u16, content_type: &str, body: &str) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        _ => "Error",
    };
    let mut out = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}
