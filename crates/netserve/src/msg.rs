//! Request/response vocabulary: opcodes, typed error codes, and the
//! payload encodings for every message (tables in DESIGN.md §6).
//!
//! A request frame carries an [`OpCode`]; its response carries either the
//! *reply* opcode `0x80 | request_opcode` ([`REPLY_BIT`]) with an
//! opcode-specific payload, or [`ERROR_OPCODE`] with an [`ErrorCode`] and a
//! short human-readable detail string. Payload decoding is strict: wrong
//! lengths, trailing bytes, bad enum discriminants and invalid UTF-8 all
//! map to [`ErrorCode::MalformedPayload`] — never a panic.

use larp::HealthState;

/// Response opcode bit: a reply to opcode `op` carries `REPLY_BIT | op`.
pub const REPLY_BIT: u8 = 0x80;

/// Opcode of an error response.
pub const ERROR_OPCODE: u8 = 0xFF;

/// Longest accepted string field (client name, error detail) in bytes.
pub const MAX_STRING: usize = 1024;

/// Request opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpCode {
    /// Handshake: client announces itself, server answers with its shape.
    Hello = 0x01,
    /// Register a stream with the server's default configuration.
    Register = 0x02,
    /// Register a stream with explicit tuning ([`StreamTuning`]).
    RegisterWith = 0x03,
    /// Push one sample (auto-clocked or with an explicit minute).
    Push = 0x04,
    /// Push a batch of auto-clocked samples.
    PushBatch = 0x05,
    /// Read a stream's latest forecast and health.
    Predict = 0x06,
    /// Read a stream's full serving view.
    StreamInfo = 0x07,
    /// Read the fleet-wide health rollup.
    Health = 0x08,
    /// Download a full fleet checkpoint (FLEETCKP bytes).
    Checkpoint = 0x09,
    /// Evict a stream.
    Evict = 0x0A,
    /// Ask the server to shut down gracefully.
    Shutdown = 0x0B,
    /// Read the server's current cluster ring (version + encoded ring).
    RingInfo = 0x0C,
    /// Install a new cluster ring (coordinator → node).
    RingUpdate = 0x0D,
    /// Begin migrating a stream away: fence it, flush, export its snapshot.
    MigrateOut = 0x0E,
    /// Accept a migrated stream: import the snapshot, arm the dedup floor.
    MigrateIn = 0x0F,
    /// Warm-standby replication feed (opaque payload; codec lives in the
    /// cluster crate).
    StandbyFeed = 0x10,
    /// Push a batch of auto-clocked samples with per-stream sequence
    /// numbers for at-least-once dedup.
    PushSeq = 0x11,
}

impl OpCode {
    /// All opcodes, in wire order.
    pub const ALL: [OpCode; 17] = [
        OpCode::Hello,
        OpCode::Register,
        OpCode::RegisterWith,
        OpCode::Push,
        OpCode::PushBatch,
        OpCode::Predict,
        OpCode::StreamInfo,
        OpCode::Health,
        OpCode::Checkpoint,
        OpCode::Evict,
        OpCode::Shutdown,
        OpCode::RingInfo,
        OpCode::RingUpdate,
        OpCode::MigrateOut,
        OpCode::MigrateIn,
        OpCode::StandbyFeed,
        OpCode::PushSeq,
    ];

    /// Decodes an opcode byte.
    pub fn from_u8(b: u8) -> Option<OpCode> {
        OpCode::ALL.into_iter().find(|op| *op as u8 == b)
    }

    /// Stable snake_case name (metric names interpolate this).
    pub fn name(self) -> &'static str {
        match self {
            OpCode::Hello => "hello",
            OpCode::Register => "register",
            OpCode::RegisterWith => "register_with",
            OpCode::Push => "push",
            OpCode::PushBatch => "push_batch",
            OpCode::Predict => "predict",
            OpCode::StreamInfo => "stream_info",
            OpCode::Health => "health",
            OpCode::Checkpoint => "checkpoint",
            OpCode::Evict => "evict",
            OpCode::Shutdown => "shutdown",
            OpCode::RingInfo => "ring_info",
            OpCode::RingUpdate => "ring_update",
            OpCode::MigrateOut => "migrate_out",
            OpCode::MigrateIn => "migrate_in",
            OpCode::StandbyFeed => "standby_feed",
            OpCode::PushSeq => "push_seq",
        }
    }
}

/// Typed error codes carried by error responses (table in DESIGN.md §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// Undecodable frame: bad CRC, truncation, or undersized length. The
    /// server closes the connection after sending this — framing is lost.
    BadFrame = 1,
    /// The frame's protocol version is not supported. Connection closed.
    UnsupportedVersion = 2,
    /// Valid frame, unknown opcode byte. Connection stays open.
    UnknownOpcode = 3,
    /// Valid frame, undecodable payload. Connection stays open.
    MalformedPayload = 4,
    /// Declared frame length exceeds the server's cap. Connection closed
    /// before any allocation.
    PayloadTooLarge = 5,
    /// The addressed stream is not registered.
    UnknownStream = 6,
    /// The stream id is already registered.
    DuplicateStream = 7,
    /// Stream tuning failed validation.
    InvalidConfig = 8,
    /// The engine refused the sample(s) under backpressure
    /// (`RejectNew`: queue full; `DropOldest` reports drops in the push
    /// outcome instead).
    Backpressure = 9,
    /// Checkpoint serialization/restore failure.
    Checkpoint = 10,
    /// The server is shutting down and no longer serves requests.
    ShuttingDown = 11,
    /// The server is at its connection limit.
    TooManyConnections = 12,
    /// Unexpected server-side failure.
    Internal = 13,
    /// A durable-store failure: the WAL append behind an ack failed (the
    /// samples are served from memory but are not crash-safe), or a
    /// durable checkpoint / recovery operation failed.
    Durability = 14,
    /// This node does not (or no longer does) own the addressed stream.
    /// The detail string is exactly the owning node's protocol address —
    /// reconnect there and retry.
    NotOwner = 15,
}

impl ErrorCode {
    /// Decodes an error-code word.
    pub fn from_u16(v: u16) -> Option<ErrorCode> {
        use ErrorCode::*;
        [
            BadFrame,
            UnsupportedVersion,
            UnknownOpcode,
            MalformedPayload,
            PayloadTooLarge,
            UnknownStream,
            DuplicateStream,
            InvalidConfig,
            Backpressure,
            Checkpoint,
            ShuttingDown,
            TooManyConnections,
            Internal,
            Durability,
            NotOwner,
        ]
        .into_iter()
        .find(|c| *c as u16 == v)
    }

    /// Stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadFrame => "bad_frame",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::UnknownOpcode => "unknown_opcode",
            ErrorCode::MalformedPayload => "malformed_payload",
            ErrorCode::PayloadTooLarge => "payload_too_large",
            ErrorCode::UnknownStream => "unknown_stream",
            ErrorCode::DuplicateStream => "duplicate_stream",
            ErrorCode::InvalidConfig => "invalid_config",
            ErrorCode::Backpressure => "backpressure",
            ErrorCode::Checkpoint => "checkpoint",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::TooManyConnections => "too_many_connections",
            ErrorCode::Internal => "internal",
            ErrorCode::Durability => "durability",
            ErrorCode::NotOwner => "not_owner",
        }
    }
}

/// Wire-settable subset of [`fleet::StreamConfig`]: the per-stream tunables
/// a remote consumer is allowed to pick. Everything else (ingest policy,
/// larp internals, resilience) stays server-side configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamTuning {
    /// Samples per (re)training window.
    pub train_size: u32,
    /// QA audit window length.
    pub qa_window: u32,
    /// QA audit period.
    pub qa_period: u32,
    /// QA rolling-MSE retrain threshold (normalized units).
    pub qa_threshold: f64,
}

impl From<&fleet::StreamConfig> for StreamTuning {
    fn from(c: &fleet::StreamConfig) -> Self {
        Self {
            train_size: c.train_size as u32,
            qa_window: c.qa_window as u32,
            qa_period: c.qa_period as u32,
            qa_threshold: c.qa_threshold,
        }
    }
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Handshake; `client` is a short self-identification string.
    Hello {
        /// Client-chosen name (truncated to [`MAX_STRING`] bytes).
        client: String,
    },
    /// Register `id` with the server's default stream configuration.
    Register {
        /// Stream id.
        id: u64,
    },
    /// Register `id` with explicit tuning.
    RegisterWith {
        /// Stream id.
        id: u64,
        /// Wire-settable stream tunables.
        tuning: StreamTuning,
    },
    /// Push one sample.
    Push {
        /// Stream id.
        id: u64,
        /// Explicit minute; `None` auto-advances the stream clock.
        minute: Option<u64>,
        /// Sample value.
        value: f64,
    },
    /// Push a batch of auto-clocked samples.
    PushBatch {
        /// `(stream id, value)` pairs, pushed in order.
        samples: Vec<(u64, f64)>,
    },
    /// Read `id`'s latest forecast and health.
    Predict {
        /// Stream id.
        id: u64,
    },
    /// Read `id`'s full serving view.
    StreamInfo {
        /// Stream id.
        id: u64,
    },
    /// Read the fleet-wide health rollup.
    Health,
    /// Download a checkpoint.
    Checkpoint,
    /// Evict `id`.
    Evict {
        /// Stream id.
        id: u64,
    },
    /// Graceful server shutdown.
    Shutdown,
    /// Read the node's current cluster ring.
    RingInfo,
    /// Install a new cluster ring (clears migration fences).
    RingUpdate {
        /// Monotonic ring version; stale versions are rejected.
        version: u64,
        /// Encoded ring (see the cluster crate's ring codec).
        blob: Vec<u8>,
    },
    /// Fence `id` against new pushes (redirecting them to `dest`), flush,
    /// and export its snapshot for migration.
    MigrateOut {
        /// Stream id.
        id: u64,
        /// Protocol address of the gaining node; fenced pushes are
        /// redirected there via [`ErrorCode::NotOwner`].
        dest: String,
    },
    /// Import a migrated stream's snapshot on the gaining node.
    MigrateIn {
        /// Stream id.
        id: u64,
        /// The stream's restored clock.
        next_minute: u64,
        /// Dedup floor: sequenced pushes with `seq <= floor` are already
        /// applied and must be dropped.
        floor: u64,
        /// LARPSNAP snapshot bytes.
        snapshot: Vec<u8>,
    },
    /// Warm-standby replication feed record (opaque to this crate).
    StandbyFeed {
        /// Encoded feed chunk (cluster-crate codec).
        payload: Vec<u8>,
    },
    /// Push auto-clocked samples with per-stream sequence numbers. The
    /// server dedups on `(client, stream)`: a retried sample whose `seq`
    /// was already applied is dropped, making retries exactly-once.
    /// `seq` 0 is always admitted (unsequenced).
    PushSeq {
        /// Client identity the dedup state is keyed by.
        client: String,
        /// `(stream id, seq, value)` triples, pushed in order. Sequences
        /// are per-stream, start at 1, and increment by 1 per sample.
        samples: Vec<(u64, u64, f64)>,
    },
}

/// Latest-forecast view served by `Predict`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictReply {
    /// Most recent forecast, if the stream has produced one.
    pub forecast: Option<f64>,
    /// Health of the stream's most recent step.
    pub health: HealthState,
    /// Clean samples that reached the predictor.
    pub steps: u64,
    /// Forecasts served so far.
    pub forecasts: u64,
}

/// Full serving view served by `StreamInfo`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamInfoReply {
    /// Shard serving this stream.
    pub shard: u32,
    /// Clean samples that reached the predictor.
    pub steps: u64,
    /// Forecasts served.
    pub forecasts: u64,
    /// Minute assigned to the next auto-clocked sample.
    pub next_minute: u64,
    /// Health of the most recent step.
    pub health: HealthState,
    /// Most recent forecast, if any.
    pub last_forecast: Option<f64>,
    /// (Re)trainings performed.
    pub retrains: u64,
}

/// Push outcome: the engine's per-call backpressure accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PushOutcome {
    /// Samples enqueued.
    pub accepted: u64,
    /// Samples refused (queue full under `RejectNew`).
    pub rejected: u64,
    /// Older queued samples evicted (`DropOldest`).
    pub dropped: u64,
}

impl From<fleet::PushReport> for PushOutcome {
    fn from(r: fleet::PushReport) -> Self {
        Self { accepted: r.accepted, rejected: r.rejected, dropped: r.dropped }
    }
}

/// Outcome of a sequenced push ([`Request::PushSeq`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PushSeqOutcome {
    /// The engine's backpressure accounting for the admitted samples.
    pub outcome: PushOutcome,
    /// Samples dropped as already-applied duplicates.
    pub deduped: u64,
    /// Per stream touched by the batch: the highest applied sequence for
    /// this client after the batch. A reconnecting client resynchronizes
    /// its send cursor from this echo.
    pub last_seqs: Vec<(u64, u64)>,
}

/// Fleet-wide rollup served by `Health`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthReply {
    /// Registered streams.
    pub streams: u64,
    /// Shard (worker) count.
    pub shards: u16,
    /// Cumulative push outcomes since engine start.
    pub pushes: PushOutcome,
    /// Clean samples that reached a predictor.
    pub steps: u64,
    /// Forecasts served.
    pub forecasts: u64,
    /// Non-finite forecasts that escaped a serving stack (should be 0).
    pub nonfinite_forecasts: u64,
    /// (Re)trainings across the fleet.
    pub retrains: u64,
    /// Streams currently degraded.
    pub degraded_streams: u64,
    /// Streams with a quarantined pool member.
    pub quarantined_streams: u64,
    /// Samples waiting in shard queues right now.
    pub queue_depth: u64,
    /// Samples addressed to unregistered streams.
    pub unknown_dropped: u64,
}

/// A decoded response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake answer.
    Hello {
        /// Server protocol version.
        version: u8,
        /// Shard (worker) count.
        shards: u16,
        /// Streams currently registered.
        streams: u64,
    },
    /// Stream registered.
    Register,
    /// Stream registered with tuning.
    RegisterWith,
    /// Single-sample push accepted (rejections surface as
    /// [`ErrorCode::Backpressure`] errors instead).
    Push(PushOutcome),
    /// Batch push outcome (partial acceptance is not an error).
    PushBatch(PushOutcome),
    /// Latest forecast and health.
    Predict(PredictReply),
    /// Full serving view.
    StreamInfo(StreamInfoReply),
    /// Fleet-wide rollup.
    Health(HealthReply),
    /// FLEETCKP checkpoint bytes.
    Checkpoint(Vec<u8>),
    /// Stream evicted.
    Evict,
    /// Shutdown acknowledged; the server drains and stops after this.
    Shutdown,
    /// The node's current cluster ring.
    Ring {
        /// Monotonic ring version.
        version: u64,
        /// Encoded ring (cluster-crate codec).
        blob: Vec<u8>,
    },
    /// Ring installed.
    RingUpdate,
    /// The fenced stream's exported state, ready for `MigrateIn` on the
    /// gaining node.
    MigrateOut {
        /// The stream's clock at export.
        next_minute: u64,
        /// Dedup floor to arm on the gaining node.
        floor: u64,
        /// LARPSNAP snapshot bytes.
        snapshot: Vec<u8>,
    },
    /// Migrated stream imported.
    MigrateIn,
    /// Standby feed chunk applied.
    StandbyFeed,
    /// Sequenced-push outcome (dedup counts and per-stream seq echoes).
    PushSeq(PushSeqOutcome),
    /// Typed failure.
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Short human-readable context.
        detail: String,
    },
}

// ---------------------------------------------------------------------------
// Encoding helpers
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_str(out: &mut Vec<u8>, s: &str) {
    // Truncate on a char boundary to fit the cap.
    let mut end = s.len().min(MAX_STRING);
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    put_u16(out, end as u16);
    out.extend_from_slice(&s.as_bytes()[..end]);
}

fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    out.push(v.is_some() as u8);
    put_f64(out, v.unwrap_or(0.0));
}

fn health_to_u8(h: HealthState) -> u8 {
    match h {
        HealthState::Healthy => 0,
        HealthState::Degraded => 1,
        HealthState::Fallback => 2,
    }
}

/// Strict little-endian payload reader; every decode error carries the
/// field name so wire bugs are diagnosable from the error response alone.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

type Malformed = String;

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], Malformed> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("truncated payload reading {what}"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, Malformed> {
        Ok(self.take(1, what)?[0])
    }
    fn u16(&mut self, what: &str) -> Result<u16, Malformed> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().expect("2 bytes")))
    }
    fn u32(&mut self, what: &str) -> Result<u32, Malformed> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self, what: &str) -> Result<u64, Malformed> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }
    fn f64(&mut self, what: &str) -> Result<f64, Malformed> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    fn string(&mut self, what: &str) -> Result<String, Malformed> {
        let len = self.u16(what)? as usize;
        if len > MAX_STRING {
            return Err(format!("{what} length {len} exceeds cap {MAX_STRING}"));
        }
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| format!("{what} is not UTF-8"))
    }

    /// Everything not yet consumed (trailing-blob fields).
    fn rest(&mut self) -> Vec<u8> {
        let out = self.buf[self.pos..].to_vec();
        self.pos = self.buf.len();
        out
    }

    fn opt_f64(&mut self, what: &str) -> Result<Option<f64>, Malformed> {
        match self.u8(what)? {
            0 => {
                self.f64(what)?;
                Ok(None)
            }
            1 => Ok(Some(self.f64(what)?)),
            other => Err(format!("{what} presence flag {other} is neither 0 nor 1")),
        }
    }

    fn health(&mut self, what: &str) -> Result<HealthState, Malformed> {
        match self.u8(what)? {
            0 => Ok(HealthState::Healthy),
            1 => Ok(HealthState::Degraded),
            2 => Ok(HealthState::Fallback),
            other => Err(format!("{what} health discriminant {other} out of range")),
        }
    }

    fn done(self, what: &str) -> Result<(), Malformed> {
        if self.pos != self.buf.len() {
            return Err(format!("{} trailing bytes after {what}", self.buf.len() - self.pos));
        }
        Ok(())
    }
}

impl Request {
    /// The request's opcode.
    pub fn opcode(&self) -> OpCode {
        match self {
            Request::Hello { .. } => OpCode::Hello,
            Request::Register { .. } => OpCode::Register,
            Request::RegisterWith { .. } => OpCode::RegisterWith,
            Request::Push { .. } => OpCode::Push,
            Request::PushBatch { .. } => OpCode::PushBatch,
            Request::Predict { .. } => OpCode::Predict,
            Request::StreamInfo { .. } => OpCode::StreamInfo,
            Request::Health => OpCode::Health,
            Request::Checkpoint => OpCode::Checkpoint,
            Request::Evict { .. } => OpCode::Evict,
            Request::Shutdown => OpCode::Shutdown,
            Request::RingInfo => OpCode::RingInfo,
            Request::RingUpdate { .. } => OpCode::RingUpdate,
            Request::MigrateOut { .. } => OpCode::MigrateOut,
            Request::MigrateIn { .. } => OpCode::MigrateIn,
            Request::StandbyFeed { .. } => OpCode::StandbyFeed,
            Request::PushSeq { .. } => OpCode::PushSeq,
        }
    }

    /// Encodes the payload bytes for this request.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Hello { client } => put_str(&mut out, client),
            Request::Register { id } | Request::Predict { id } | Request::Evict { id } => {
                put_u64(&mut out, *id)
            }
            Request::StreamInfo { id } => put_u64(&mut out, *id),
            Request::RegisterWith { id, tuning } => {
                put_u64(&mut out, *id);
                put_u32(&mut out, tuning.train_size);
                put_u32(&mut out, tuning.qa_window);
                put_u32(&mut out, tuning.qa_period);
                put_f64(&mut out, tuning.qa_threshold);
            }
            Request::Push { id, minute, value } => {
                put_u64(&mut out, *id);
                out.push(minute.is_some() as u8);
                put_u64(&mut out, minute.unwrap_or(0));
                put_f64(&mut out, *value);
            }
            Request::PushBatch { samples } => {
                put_u32(&mut out, samples.len() as u32);
                for (id, value) in samples {
                    put_u64(&mut out, *id);
                    put_f64(&mut out, *value);
                }
            }
            Request::Health | Request::Checkpoint | Request::Shutdown | Request::RingInfo => {}
            Request::RingUpdate { version, blob } => {
                put_u64(&mut out, *version);
                out.extend_from_slice(blob);
            }
            Request::MigrateOut { id, dest } => {
                put_u64(&mut out, *id);
                put_str(&mut out, dest);
            }
            Request::MigrateIn { id, next_minute, floor, snapshot } => {
                put_u64(&mut out, *id);
                put_u64(&mut out, *next_minute);
                put_u64(&mut out, *floor);
                out.extend_from_slice(snapshot);
            }
            Request::StandbyFeed { payload } => out.extend_from_slice(payload),
            Request::PushSeq { client, samples } => {
                put_str(&mut out, client);
                put_u32(&mut out, samples.len() as u32);
                for (id, seq, value) in samples {
                    put_u64(&mut out, *id);
                    put_u64(&mut out, *seq);
                    put_f64(&mut out, *value);
                }
            }
        }
        out
    }

    /// Decodes a request from its opcode byte and payload.
    ///
    /// # Errors
    ///
    /// `UnknownOpcode` for an unrecognized byte, `MalformedPayload` (with a
    /// field-level detail string) for anything undecodable.
    pub fn decode(opcode: u8, payload: &[u8]) -> Result<Request, (ErrorCode, String)> {
        let op = OpCode::from_u8(opcode)
            .ok_or((ErrorCode::UnknownOpcode, format!("opcode {opcode:#04x}")))?;
        let mut c = Cur::new(payload);
        let malformed = |m: Malformed| (ErrorCode::MalformedPayload, m);
        let req = match op {
            OpCode::Hello => Request::Hello { client: c.string("client name").map_err(malformed)? },
            OpCode::Register => Request::Register { id: c.u64("stream id").map_err(malformed)? },
            OpCode::RegisterWith => Request::RegisterWith {
                id: c.u64("stream id").map_err(malformed)?,
                tuning: StreamTuning {
                    train_size: c.u32("train_size").map_err(malformed)?,
                    qa_window: c.u32("qa_window").map_err(malformed)?,
                    qa_period: c.u32("qa_period").map_err(malformed)?,
                    qa_threshold: c.f64("qa_threshold").map_err(malformed)?,
                },
            },
            OpCode::Push => {
                let id = c.u64("stream id").map_err(malformed)?;
                let has_minute = c.u8("minute flag").map_err(malformed)?;
                let minute = c.u64("minute").map_err(malformed)?;
                let value = c.f64("value").map_err(malformed)?;
                let minute = match has_minute {
                    0 => None,
                    1 => Some(minute),
                    other => {
                        return Err(malformed(format!("minute flag {other} is neither 0 nor 1")))
                    }
                };
                Request::Push { id, minute, value }
            }
            OpCode::PushBatch => {
                let count = c.u32("sample count").map_err(malformed)? as usize;
                // Each sample is 16 bytes; the cursor bounds-checks, so a
                // lying count fails on the first missing sample rather than
                // pre-allocating `count` slots.
                let mut samples = Vec::with_capacity(count.min(payload.len() / 16 + 1));
                for i in 0..count {
                    let id = c.u64(&format!("sample {i} id")).map_err(malformed)?;
                    let value = c.f64(&format!("sample {i} value")).map_err(malformed)?;
                    samples.push((id, value));
                }
                Request::PushBatch { samples }
            }
            OpCode::Predict => Request::Predict { id: c.u64("stream id").map_err(malformed)? },
            OpCode::StreamInfo => {
                Request::StreamInfo { id: c.u64("stream id").map_err(malformed)? }
            }
            OpCode::Health => Request::Health,
            OpCode::Checkpoint => Request::Checkpoint,
            OpCode::Evict => Request::Evict { id: c.u64("stream id").map_err(malformed)? },
            OpCode::Shutdown => Request::Shutdown,
            OpCode::RingInfo => Request::RingInfo,
            OpCode::RingUpdate => {
                let version = c.u64("ring version").map_err(malformed)?;
                let blob = c.rest();
                return Ok(Request::RingUpdate { version, blob });
            }
            OpCode::MigrateOut => Request::MigrateOut {
                id: c.u64("stream id").map_err(malformed)?,
                dest: c.string("dest addr").map_err(malformed)?,
            },
            OpCode::MigrateIn => {
                let id = c.u64("stream id").map_err(malformed)?;
                let next_minute = c.u64("next_minute").map_err(malformed)?;
                let floor = c.u64("floor").map_err(malformed)?;
                let snapshot = c.rest();
                return Ok(Request::MigrateIn { id, next_minute, floor, snapshot });
            }
            OpCode::StandbyFeed => return Ok(Request::StandbyFeed { payload: payload.to_vec() }),
            OpCode::PushSeq => {
                let client = c.string("client name").map_err(malformed)?;
                let count = c.u32("sample count").map_err(malformed)? as usize;
                // 24 bytes per sample; bounds-check instead of pre-allocating.
                let mut samples = Vec::with_capacity(count.min(payload.len() / 24 + 1));
                for i in 0..count {
                    let id = c.u64(&format!("sample {i} id")).map_err(malformed)?;
                    let seq = c.u64(&format!("sample {i} seq")).map_err(malformed)?;
                    let value = c.f64(&format!("sample {i} value")).map_err(malformed)?;
                    samples.push((id, seq, value));
                }
                Request::PushSeq { client, samples }
            }
        };
        c.done(op.name()).map_err(malformed)?;
        Ok(req)
    }
}

impl Response {
    /// The response's wire opcode (`REPLY_BIT | op`, or [`ERROR_OPCODE`]).
    pub fn opcode(&self) -> u8 {
        match self {
            Response::Hello { .. } => REPLY_BIT | OpCode::Hello as u8,
            Response::Register => REPLY_BIT | OpCode::Register as u8,
            Response::RegisterWith => REPLY_BIT | OpCode::RegisterWith as u8,
            Response::Push(_) => REPLY_BIT | OpCode::Push as u8,
            Response::PushBatch(_) => REPLY_BIT | OpCode::PushBatch as u8,
            Response::Predict(_) => REPLY_BIT | OpCode::Predict as u8,
            Response::StreamInfo(_) => REPLY_BIT | OpCode::StreamInfo as u8,
            Response::Health(_) => REPLY_BIT | OpCode::Health as u8,
            Response::Checkpoint(_) => REPLY_BIT | OpCode::Checkpoint as u8,
            Response::Evict => REPLY_BIT | OpCode::Evict as u8,
            Response::Shutdown => REPLY_BIT | OpCode::Shutdown as u8,
            Response::Ring { .. } => REPLY_BIT | OpCode::RingInfo as u8,
            Response::RingUpdate => REPLY_BIT | OpCode::RingUpdate as u8,
            Response::MigrateOut { .. } => REPLY_BIT | OpCode::MigrateOut as u8,
            Response::MigrateIn => REPLY_BIT | OpCode::MigrateIn as u8,
            Response::StandbyFeed => REPLY_BIT | OpCode::StandbyFeed as u8,
            Response::PushSeq(_) => REPLY_BIT | OpCode::PushSeq as u8,
            Response::Error { .. } => ERROR_OPCODE,
        }
    }

    /// Encodes the payload bytes for this response.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Hello { version, shards, streams } => {
                out.push(*version);
                put_u16(&mut out, *shards);
                put_u64(&mut out, *streams);
            }
            Response::Register
            | Response::RegisterWith
            | Response::Evict
            | Response::Shutdown
            | Response::RingUpdate
            | Response::MigrateIn
            | Response::StandbyFeed => {}
            Response::Push(o) | Response::PushBatch(o) => {
                put_u64(&mut out, o.accepted);
                put_u64(&mut out, o.rejected);
                put_u64(&mut out, o.dropped);
            }
            Response::Predict(p) => {
                put_opt_f64(&mut out, p.forecast);
                out.push(health_to_u8(p.health));
                put_u64(&mut out, p.steps);
                put_u64(&mut out, p.forecasts);
            }
            Response::StreamInfo(s) => {
                put_u32(&mut out, s.shard);
                put_u64(&mut out, s.steps);
                put_u64(&mut out, s.forecasts);
                put_u64(&mut out, s.next_minute);
                out.push(health_to_u8(s.health));
                put_opt_f64(&mut out, s.last_forecast);
                put_u64(&mut out, s.retrains);
            }
            Response::Health(h) => {
                put_u64(&mut out, h.streams);
                put_u16(&mut out, h.shards);
                put_u64(&mut out, h.pushes.accepted);
                put_u64(&mut out, h.pushes.rejected);
                put_u64(&mut out, h.pushes.dropped);
                put_u64(&mut out, h.steps);
                put_u64(&mut out, h.forecasts);
                put_u64(&mut out, h.nonfinite_forecasts);
                put_u64(&mut out, h.retrains);
                put_u64(&mut out, h.degraded_streams);
                put_u64(&mut out, h.quarantined_streams);
                put_u64(&mut out, h.queue_depth);
                put_u64(&mut out, h.unknown_dropped);
            }
            Response::Checkpoint(bytes) => out.extend_from_slice(bytes),
            Response::Ring { version, blob } => {
                put_u64(&mut out, *version);
                out.extend_from_slice(blob);
            }
            Response::MigrateOut { next_minute, floor, snapshot } => {
                put_u64(&mut out, *next_minute);
                put_u64(&mut out, *floor);
                out.extend_from_slice(snapshot);
            }
            Response::PushSeq(o) => {
                put_u64(&mut out, o.outcome.accepted);
                put_u64(&mut out, o.outcome.rejected);
                put_u64(&mut out, o.outcome.dropped);
                put_u64(&mut out, o.deduped);
                put_u32(&mut out, o.last_seqs.len() as u32);
                for (id, seq) in &o.last_seqs {
                    put_u64(&mut out, *id);
                    put_u64(&mut out, *seq);
                }
            }
            Response::Error { code, detail } => {
                put_u16(&mut out, *code as u16);
                put_str(&mut out, detail);
            }
        }
        out
    }

    /// Decodes a response from its wire opcode and payload.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first decode failure.
    pub fn decode(opcode: u8, payload: &[u8]) -> Result<Response, String> {
        if opcode == ERROR_OPCODE {
            let mut c = Cur::new(payload);
            let code_word = c.u16("error code")?;
            let code = ErrorCode::from_u16(code_word)
                .ok_or_else(|| format!("unknown error code {code_word}"))?;
            let detail = c.string("error detail")?;
            c.done("error")?;
            return Ok(Response::Error { code, detail });
        }
        let op = OpCode::from_u8(opcode & !REPLY_BIT)
            .filter(|_| opcode & REPLY_BIT != 0)
            .ok_or_else(|| format!("unknown response opcode {opcode:#04x}"))?;
        let mut c = Cur::new(payload);
        let resp = match op {
            OpCode::Hello => Response::Hello {
                version: c.u8("server version")?,
                shards: c.u16("shards")?,
                streams: c.u64("streams")?,
            },
            OpCode::Register => Response::Register,
            OpCode::RegisterWith => Response::RegisterWith,
            OpCode::Push | OpCode::PushBatch => {
                let o = PushOutcome {
                    accepted: c.u64("accepted")?,
                    rejected: c.u64("rejected")?,
                    dropped: c.u64("dropped")?,
                };
                if op == OpCode::Push {
                    Response::Push(o)
                } else {
                    Response::PushBatch(o)
                }
            }
            OpCode::Predict => Response::Predict(PredictReply {
                forecast: c.opt_f64("forecast")?,
                health: c.health("health")?,
                steps: c.u64("steps")?,
                forecasts: c.u64("forecasts")?,
            }),
            OpCode::StreamInfo => Response::StreamInfo(StreamInfoReply {
                shard: c.u32("shard")?,
                steps: c.u64("steps")?,
                forecasts: c.u64("forecasts")?,
                next_minute: c.u64("next_minute")?,
                health: c.health("health")?,
                last_forecast: c.opt_f64("last_forecast")?,
                retrains: c.u64("retrains")?,
            }),
            OpCode::Health => Response::Health(HealthReply {
                streams: c.u64("streams")?,
                shards: c.u16("shards")?,
                pushes: PushOutcome {
                    accepted: c.u64("accepted")?,
                    rejected: c.u64("rejected")?,
                    dropped: c.u64("dropped")?,
                },
                steps: c.u64("steps")?,
                forecasts: c.u64("forecasts")?,
                nonfinite_forecasts: c.u64("nonfinite_forecasts")?,
                retrains: c.u64("retrains")?,
                degraded_streams: c.u64("degraded_streams")?,
                quarantined_streams: c.u64("quarantined_streams")?,
                queue_depth: c.u64("queue_depth")?,
                unknown_dropped: c.u64("unknown_dropped")?,
            }),
            OpCode::Checkpoint => return Ok(Response::Checkpoint(payload.to_vec())),
            OpCode::Evict => Response::Evict,
            OpCode::Shutdown => Response::Shutdown,
            OpCode::RingInfo => {
                let version = c.u64("ring version")?;
                return Ok(Response::Ring { version, blob: c.rest() });
            }
            OpCode::RingUpdate => Response::RingUpdate,
            OpCode::MigrateOut => {
                let next_minute = c.u64("next_minute")?;
                let floor = c.u64("floor")?;
                return Ok(Response::MigrateOut { next_minute, floor, snapshot: c.rest() });
            }
            OpCode::MigrateIn => Response::MigrateIn,
            OpCode::StandbyFeed => Response::StandbyFeed,
            OpCode::PushSeq => {
                let outcome = PushOutcome {
                    accepted: c.u64("accepted")?,
                    rejected: c.u64("rejected")?,
                    dropped: c.u64("dropped")?,
                };
                let deduped = c.u64("deduped")?;
                let count = c.u32("echo count")? as usize;
                let mut last_seqs = Vec::with_capacity(count.min(payload.len() / 16 + 1));
                for i in 0..count {
                    let id = c.u64(&format!("echo {i} id"))?;
                    let seq = c.u64(&format!("echo {i} seq"))?;
                    last_seqs.push((id, seq));
                }
                Response::PushSeq(PushSeqOutcome { outcome, deduped, last_seqs })
            }
        };
        c.done(op.name())?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request_round_trip(req: Request) {
        let payload = req.encode_payload();
        let decoded = Request::decode(req.opcode() as u8, &payload).unwrap();
        assert_eq!(decoded, req);
    }

    fn response_round_trip(resp: Response) {
        let payload = resp.encode_payload();
        let decoded = Response::decode(resp.opcode(), &payload).unwrap();
        assert_eq!(decoded, resp);
    }

    #[test]
    fn every_request_round_trips() {
        request_round_trip(Request::Hello { client: "loadgen-3".into() });
        request_round_trip(Request::Register { id: 7 });
        request_round_trip(Request::RegisterWith {
            id: 8,
            tuning: StreamTuning { train_size: 40, qa_window: 8, qa_period: 4, qa_threshold: 2.0 },
        });
        request_round_trip(Request::Push { id: 1, minute: None, value: 42.5 });
        request_round_trip(Request::Push { id: 1, minute: Some(99), value: -0.0 });
        request_round_trip(Request::PushBatch { samples: vec![] });
        request_round_trip(Request::PushBatch {
            samples: (0..100).map(|i| (i as u64, i as f64 * 0.5)).collect(),
        });
        request_round_trip(Request::Predict { id: 3 });
        request_round_trip(Request::StreamInfo { id: u64::MAX });
        request_round_trip(Request::Health);
        request_round_trip(Request::Checkpoint);
        request_round_trip(Request::Evict { id: 12 });
        request_round_trip(Request::Shutdown);
        request_round_trip(Request::RingInfo);
        request_round_trip(Request::RingUpdate { version: 3, blob: vec![9, 8, 7] });
        request_round_trip(Request::RingUpdate { version: 0, blob: vec![] });
        request_round_trip(Request::MigrateOut { id: 4, dest: "127.0.0.1:7001".into() });
        request_round_trip(Request::MigrateIn {
            id: 4,
            next_minute: 120,
            floor: 120,
            snapshot: vec![0xAB; 64],
        });
        request_round_trip(Request::StandbyFeed { payload: vec![1, 2, 3, 4, 5] });
        request_round_trip(Request::PushSeq { client: "node-a".into(), samples: vec![] });
        request_round_trip(Request::PushSeq {
            client: "bench".into(),
            samples: (0..50).map(|i| (i as u64 % 7, i as u64 + 1, i as f64 * 0.25)).collect(),
        });
    }

    #[test]
    fn every_response_round_trips() {
        response_round_trip(Response::Hello { version: 1, shards: 4, streams: 200 });
        response_round_trip(Response::Register);
        response_round_trip(Response::RegisterWith);
        response_round_trip(Response::Push(PushOutcome { accepted: 1, rejected: 0, dropped: 0 }));
        response_round_trip(Response::PushBatch(PushOutcome {
            accepted: 200,
            rejected: 5,
            dropped: 3,
        }));
        response_round_trip(Response::Predict(PredictReply {
            forecast: Some(51.25),
            health: HealthState::Degraded,
            steps: 120,
            forecasts: 80,
        }));
        response_round_trip(Response::Predict(PredictReply {
            forecast: None,
            health: HealthState::Healthy,
            steps: 0,
            forecasts: 0,
        }));
        response_round_trip(Response::StreamInfo(StreamInfoReply {
            shard: 3,
            steps: 5,
            forecasts: 2,
            next_minute: 6,
            health: HealthState::Fallback,
            last_forecast: Some(-1.5),
            retrains: 1,
        }));
        response_round_trip(Response::Health(HealthReply {
            streams: 200,
            shards: 4,
            pushes: PushOutcome { accepted: 10, rejected: 1, dropped: 2 },
            steps: 9,
            forecasts: 8,
            nonfinite_forecasts: 0,
            retrains: 3,
            degraded_streams: 1,
            quarantined_streams: 0,
            queue_depth: 17,
            unknown_dropped: 4,
        }));
        response_round_trip(Response::Checkpoint(vec![1, 2, 3, 4]));
        response_round_trip(Response::Evict);
        response_round_trip(Response::Shutdown);
        response_round_trip(Response::Ring { version: 7, blob: vec![5; 33] });
        response_round_trip(Response::Ring { version: 0, blob: vec![] });
        response_round_trip(Response::RingUpdate);
        response_round_trip(Response::MigrateOut {
            next_minute: 99,
            floor: 99,
            snapshot: vec![0xCD; 48],
        });
        response_round_trip(Response::MigrateIn);
        response_round_trip(Response::StandbyFeed);
        response_round_trip(Response::PushSeq(PushSeqOutcome {
            outcome: PushOutcome { accepted: 40, rejected: 0, dropped: 0 },
            deduped: 8,
            last_seqs: vec![(0, 12), (3, 99)],
        }));
        response_round_trip(Response::PushSeq(PushSeqOutcome::default()));
        response_round_trip(Response::Error {
            code: ErrorCode::UnknownStream,
            detail: "stream 9".into(),
        });
        response_round_trip(Response::Error {
            code: ErrorCode::NotOwner,
            detail: "127.0.0.1:7002".into(),
        });
    }

    #[test]
    fn unknown_opcode_is_typed() {
        match Request::decode(0x7E, &[]) {
            Err((ErrorCode::UnknownOpcode, _)) => {}
            other => panic!("expected UnknownOpcode, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut payload = Request::Register { id: 3 }.encode_payload();
        payload.push(0);
        match Request::decode(OpCode::Register as u8, &payload) {
            Err((ErrorCode::MalformedPayload, detail)) => {
                assert!(detail.contains("trailing"), "{detail}")
            }
            other => panic!("expected MalformedPayload, got {other:?}"),
        }
    }

    #[test]
    fn lying_batch_count_fails_without_preallocation() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        payload.extend_from_slice(&[0u8; 16]); // one real sample
        match Request::decode(OpCode::PushBatch as u8, &payload) {
            Err((ErrorCode::MalformedPayload, _)) => {}
            other => panic!("expected MalformedPayload, got {other:?}"),
        }
    }

    #[test]
    fn truncated_payloads_name_the_missing_field() {
        let full = Request::Push { id: 1, minute: Some(5), value: 2.0 }.encode_payload();
        for cut in 0..full.len() {
            match Request::decode(OpCode::Push as u8, &full[..cut]) {
                Err((ErrorCode::MalformedPayload, _)) => {}
                other => panic!("cut {cut}: expected MalformedPayload, got {other:?}"),
            }
        }
    }

    #[test]
    fn bad_discriminants_are_malformed() {
        // Push with minute flag 2.
        let mut p = Vec::new();
        p.extend_from_slice(&1u64.to_le_bytes());
        p.push(2);
        p.extend_from_slice(&0u64.to_le_bytes());
        p.extend_from_slice(&1.0f64.to_le_bytes());
        assert!(matches!(
            Request::decode(OpCode::Push as u8, &p),
            Err((ErrorCode::MalformedPayload, _))
        ));
        // Predict reply with health discriminant 9.
        let mut r = Response::Predict(PredictReply {
            forecast: Some(1.0),
            health: HealthState::Healthy,
            steps: 0,
            forecasts: 0,
        })
        .encode_payload();
        r[9] = 9;
        assert!(Response::decode(REPLY_BIT | OpCode::Predict as u8, &r).is_err());
    }

    #[test]
    fn overlong_strings_truncate_on_encode_and_reject_on_decode() {
        let long = "x".repeat(MAX_STRING + 500);
        let payload = Request::Hello { client: long }.encode_payload();
        match Request::decode(OpCode::Hello as u8, &payload).unwrap() {
            Request::Hello { client } => assert_eq!(client.len(), MAX_STRING),
            other => panic!("unexpected {other:?}"),
        }
        // A hand-forged over-cap length word is rejected.
        let mut forged = Vec::new();
        forged.extend_from_slice(&((MAX_STRING + 1) as u16).to_le_bytes());
        forged.extend_from_slice(&vec![b'a'; MAX_STRING + 1]);
        assert!(matches!(
            Request::decode(OpCode::Hello as u8, &forged),
            Err((ErrorCode::MalformedPayload, _))
        ));
    }

    #[test]
    fn opcode_and_error_tables_are_self_consistent() {
        for op in OpCode::ALL {
            assert_eq!(OpCode::from_u8(op as u8), Some(op));
            assert!(!op.name().is_empty());
        }
        assert_eq!(OpCode::from_u8(0x00), None);
        assert_eq!(OpCode::from_u8(0x12), None);
        for code in 1..=15u16 {
            let c = ErrorCode::from_u16(code).expect("contiguous error codes");
            assert_eq!(c as u16, code);
        }
        assert_eq!(ErrorCode::from_u16(0), None);
        assert_eq!(ErrorCode::from_u16(16), None);
    }
}
