//! Kill-test harness: proves the durable serving path survives `kill -9`.
//!
//! The harness self-spawns (via `current_exe`) a child copy running
//! `--role server`: a durable [`fleet::FleetEngine`] behind a [`netserve`]
//! server, WAL directory on disk, ephemeral port published through an
//! addr-file. The parent then:
//!
//! 1. registers `--streams` streams and pushes `--warmup` deterministic
//!    auto-clocked batches (one sample per stream per batch),
//! 2. keeps pushing while a killer thread SIGKILLs the child mid-traffic,
//!    counting exactly which batches were acked,
//! 3. recovers the fleet in-process from the orphaned store directory
//!    ([`fleet::FleetEngine::recover`]) and asserts
//!    * every stream came back and the WAL had no gaps (a torn final
//!      record is expected and fine),
//!    * **zero acked-sample loss**: the recovered per-stream sample count
//!      covers every acked batch,
//!    * **bit-identical forecasts**: a shadow engine fed the same prefix of
//!      the deterministic trace reproduces every stream's forecast bits,
//!    * the `fleet_wal_recoveries_total` / `fleet_wal_gap_records_total`
//!      metrics are scrape-visible,
//! 4. restarts serving on the recovered engine and pushes more traffic
//!    through a fresh server to prove the process is fully live again.
//!
//! Prints a one-object JSON report (recovery latency, replayed records,
//! acked/recovered batch counts) and writes it to `--out`
//! (default `results/BENCH_recovery.json`). Exits non-zero on any failure.
//!
//! Run with: `cargo run --release -p netserve --bin crash_recovery`

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fleet::{
    BackpressurePolicy, DurabilityConfig, FleetConfig, FleetEngine, StreamConfig, StreamInfo,
};
use larp::HealthState;
use netserve::{Client, ClientConfig, Server, ServerConfig};
use vmsim::fleet_signal;
use vmsim::signal::Signal;

struct Args {
    role: String,
    dir: PathBuf,
    addr_file: PathBuf,
    streams: u64,
    shards: usize,
    seed: u64,
    warmup: u64,
    kill_after_ms: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        role: "harness".into(),
        dir: PathBuf::new(),
        addr_file: PathBuf::new(),
        streams: 16,
        shards: 4,
        seed: 2007,
        warmup: 150,
        kill_after_ms: 250,
        out: "results/BENCH_recovery.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| it.next().unwrap_or_else(|| panic!("{name} expects a value"));
        let uint = |name: &str, v: String| {
            v.parse::<u64>().unwrap_or_else(|_| panic!("{name} expects an unsigned integer"))
        };
        match flag.as_str() {
            "--role" => args.role = take("--role"),
            "--dir" => args.dir = PathBuf::from(take("--dir")),
            "--addr-file" => args.addr_file = PathBuf::from(take("--addr-file")),
            "--streams" => args.streams = uint("--streams", take("--streams")),
            "--shards" => args.shards = uint("--shards", take("--shards")) as usize,
            "--seed" => args.seed = uint("--seed", take("--seed")),
            "--warmup" => args.warmup = uint("--warmup", take("--warmup")),
            "--kill-after-ms" => {
                args.kill_after_ms = uint("--kill-after-ms", take("--kill-after-ms"))
            }
            "--out" => args.out = take("--out"),
            other => panic!(
                "unknown flag {other}; supported: --role --dir --addr-file --streams --shards \
                 --seed --warmup --kill-after-ms --out"
            ),
        }
    }
    assert!(args.streams >= 1, "--streams must be >= 1");
    assert!(args.warmup >= 1, "--warmup must be >= 1");
    args
}

/// The engine configuration both the child server and the recovering parent
/// must agree on (same seed + shards ⇒ same stream→shard placement).
fn fleet_config(args: &Args, durable: bool) -> FleetConfig {
    FleetConfig {
        shards: args.shards,
        backpressure: BackpressurePolicy::Block,
        queue_capacity: 8192,
        fleet_seed: args.seed,
        durability: durable.then(|| DurabilityConfig {
            // Small segments + a live auto-checkpointer so the kill also
            // lands across rotations and checkpoint truncation.
            segment_bytes: 64 << 10,
            auto_checkpoint_records: 256,
            ..DurabilityConfig::new(args.dir.clone())
        }),
        ..FleetConfig::default()
    }
}

/// Child role: serve a durable fleet until SIGKILLed. Never returns.
fn run_server(args: &Args) -> ! {
    let engine =
        Arc::new(FleetEngine::new(fleet_config(args, true)).expect("durable engine starts"));
    let server = Server::start(
        Arc::clone(&engine),
        ServerConfig { http_addr: None, ..ServerConfig::default() },
    )
    .expect("server starts");
    // Publish the ephemeral port atomically so the parent never reads a
    // half-written address.
    let tmp = args.addr_file.with_extension("tmp");
    std::fs::write(&tmp, server.addr().to_string()).expect("write addr file");
    std::fs::rename(&tmp, &args.addr_file).expect("publish addr file");
    loop {
        std::thread::park();
    }
}

/// Deterministic auto-clocked batch for `round`: one sample per stream.
/// Signals are stateful, so determinism holds per *call sequence* — both the
/// live run and the shadow replay start from fresh signals and call once per
/// round, in round order.
fn batch_for(signals: &mut [(u64, Box<dyn Signal>)], round: u64) -> Vec<(u64, f64)> {
    signals.iter_mut().map(|(id, s)| (*id, s.sample(round))).collect()
}

fn wait_for_addr(path: &std::path::Path, child: &mut Child) -> std::net::SocketAddr {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if let Ok(text) = std::fs::read_to_string(path) {
            if let Ok(addr) = text.trim().parse() {
                return addr;
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            panic!("server child exited early: {status}");
        }
        assert!(Instant::now() < deadline, "server child never published its address");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The bit-comparable serving state of one stream: everything a FLEETCKP
/// checkpoint preserves. `steps`/`forecasts` are since-restore slot counters
/// (same semantic as the non-durable `restore`), so they are not compared.
fn fingerprint(info: &StreamInfo) -> (u64, usize, Option<u64>, HealthState) {
    (info.next_minute, info.retrains, info.last_forecast.map(f64::to_bits), info.health)
}

fn main() {
    let args = parse_args();
    if args.role == "server" {
        run_server(&args);
    }
    assert_eq!(args.role, "harness", "--role must be 'server' or 'harness'");

    let base = std::env::temp_dir().join(format!("netserve-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("create harness dir");
    let store_dir = base.join("store");
    let addr_file = base.join("addr");

    let exe = std::env::current_exe().expect("current_exe");
    let mut child = Command::new(&exe)
        .args([
            "--role",
            "server",
            "--dir",
            store_dir.to_str().expect("utf-8 path"),
            "--addr-file",
            addr_file.to_str().expect("utf-8 path"),
            "--streams",
            &args.streams.to_string(),
            "--shards",
            &args.shards.to_string(),
            "--seed",
            &args.seed.to_string(),
        ])
        .stdin(Stdio::null())
        .spawn()
        .expect("spawn server child");
    let addr = wait_for_addr(&addr_file, &mut child);

    // One attempt per request: an ack is an ack, a failure is the kill.
    let client_cfg = ClientConfig {
        max_attempts: 1,
        request_timeout: Duration::from_secs(5),
        client_name: "crash-harness".into(),
        ..ClientConfig::default()
    };
    let mut client = Client::connect(addr, client_cfg).expect("harness connects");
    for id in 0..args.streams {
        client.register(id).expect("register stream");
    }

    let mut signals: Vec<(u64, Box<dyn Signal>)> =
        (0..args.streams).map(|id| (id, fleet_signal(args.seed, id))).collect();

    // Phase 1: warmup traffic, every batch must ack.
    for round in 0..args.warmup {
        let outcome = client.push_batch(&batch_for(&mut signals, round)).expect("warmup ack");
        assert_eq!(outcome.rejected, 0, "Block backpressure must not reject");
    }

    // Phase 2: keep pushing while the killer lands SIGKILL mid-traffic.
    let kill_after = Duration::from_millis(args.kill_after_ms);
    let killer = std::thread::spawn(move || {
        std::thread::sleep(kill_after);
        let _ = child.kill(); // SIGKILL: no destructors, no flush, no fsync
        let _ = child.wait();
    });
    let mut acked = args.warmup;
    // The loop ends when an ack is lost or the connection dies: the kill landed.
    while let Ok(outcome) = client.push_batch(&batch_for(&mut signals, acked)) {
        assert_eq!(outcome.rejected, 0, "Block backpressure must not reject");
        acked += 1;
        assert!(acked < args.warmup + 5_000_000, "kill never landed");
    }
    killer.join().expect("killer thread");
    drop(client);

    // Phase 3: recover in-process from the orphaned store directory.
    let recover_args = Args { dir: store_dir.clone(), ..args };
    let mut config = fleet_config(&recover_args, true);
    if let Some(d) = config.durability.as_mut() {
        d.auto_checkpoint_records = 0; // quiet while we compare state
    }
    let t = Instant::now();
    let (engine, summary) =
        FleetEngine::recover(config, StreamConfig::default()).expect("recovery succeeds");
    let recovery_ms = t.elapsed().as_secs_f64() * 1e3;
    let engine = Arc::new(engine);

    assert_eq!(engine.stream_count() as u64, recover_args.streams, "every stream recovered");
    assert_eq!(summary.gap_records, 0, "kill -9 must not create WAL gaps");
    assert_eq!(summary.corrupt_segments, 0, "kill -9 must not corrupt whole segments");
    assert_eq!(summary.missing_segments, 0, "no segment may vanish");
    assert_eq!(summary.unknown_replayed, 0, "every replayed sample must route");
    assert!(!summary.checkpoint_corrupt, "checkpoint writes must be atomic");
    assert!(!summary.archive_corrupt, "archive sidecar writes must be atomic");

    // Zero acked-sample loss: every batch carries one sample per stream, so
    // a stream's next auto-clock minute counts the batches it absorbed.
    let recovered: Vec<StreamInfo> = (0..recover_args.streams)
        .map(|id| engine.stream_info(id).expect("recovered stream"))
        .collect();
    let recovered_batches = recovered[0].next_minute;
    for info in &recovered {
        assert_eq!(
            info.next_minute, recovered_batches,
            "batch WAL records are atomic, so every stream sees the same prefix"
        );
    }
    assert!(
        recovered_batches >= acked,
        "acked samples lost: {acked} batches acked, {recovered_batches} recovered"
    );
    // The WAL may hold at most the one in-flight batch past the last ack.
    assert!(
        recovered_batches <= acked + 1,
        "recovered {recovered_batches} batches but only {acked} were even sent before the kill"
    );

    // Bit-identical forecasts: replay the same deterministic prefix into a
    // shadow (non-durable) engine and compare every stream's serving state.
    let shadow =
        FleetEngine::new(fleet_config(&recover_args, false)).expect("shadow engine starts");
    let mut shadow_signals: Vec<(u64, Box<dyn Signal>)> =
        (0..recover_args.streams).map(|id| (id, fleet_signal(recover_args.seed, id))).collect();
    for id in 0..recover_args.streams {
        shadow.register(id).expect("shadow register");
    }
    for round in 0..recovered_batches {
        let report = shadow.push_batch(&batch_for(&mut shadow_signals, round));
        assert_eq!(report.rejected, 0, "shadow push rejected");
    }
    shadow.flush();
    for info in &recovered {
        let reference = shadow.stream_info(info.id).expect("shadow stream");
        assert_eq!(
            fingerprint(info),
            fingerprint(&reference),
            "stream {} diverged from the uninterrupted reference",
            info.id
        );
    }

    // The recovery must be scrape-visible.
    let metrics = engine.prometheus();
    assert!(metrics.contains("fleet_wal_recoveries_total 1"), "recovery counter missing");
    assert!(metrics.contains("fleet_wal_gap_records_total 0"), "gap counter missing");

    // Phase 4: the recovered engine serves again, durably, over the wire.
    let mut server = Server::start(
        Arc::clone(&engine),
        ServerConfig { http_addr: None, ..ServerConfig::default() },
    )
    .expect("recovered server starts");
    let mut client =
        Client::connect(server.addr(), ClientConfig::default()).expect("reconnect after recovery");
    // `signals` has generated rounds up to `acked` (the final unacked
    // attempt included), so resume past it — minutes must stay increasing.
    for round in acked + 1..acked + 21 {
        client.push_batch(&batch_for(&mut signals, round)).expect("post-recovery ack");
    }
    for id in 0..recover_args.streams {
        client.predict(id).expect("post-recovery predict");
    }
    client.shutdown_server().expect("wire shutdown");
    server.shutdown();

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"streams\": {},\n", recover_args.streams));
    out.push_str(&format!("  \"shards\": {},\n", recover_args.shards));
    out.push_str(&format!("  \"seed\": {},\n", recover_args.seed));
    out.push_str(&format!("  \"warmup_batches\": {},\n", recover_args.warmup));
    out.push_str(&format!("  \"acked_batches\": {acked},\n"));
    out.push_str(&format!("  \"recovered_batches\": {recovered_batches},\n"));
    out.push_str(&format!("  \"checkpoint_seq\": {},\n", summary.checkpoint_seq));
    out.push_str(&format!("  \"checkpoint_streams\": {},\n", summary.checkpoint_streams));
    out.push_str(&format!("  \"replayed_records\": {},\n", summary.replayed_records));
    out.push_str(&format!("  \"replayed_samples\": {},\n", summary.replayed_samples));
    out.push_str(&format!("  \"torn_tail\": {},\n", summary.torn_tail));
    out.push_str(&format!("  \"gap_records\": {},\n", summary.gap_records));
    out.push_str(&format!("  \"recovery_ms\": {recovery_ms:.2},\n"));
    out.push_str("  \"acked_sample_loss\": 0,\n");
    out.push_str("  \"bit_identical\": true,\n");
    out.push_str("  \"served_after_recovery\": true\n");
    out.push('}');
    obs::expo::validate_json(&out)
        .unwrap_or_else(|e| panic!("crash_recovery produced invalid JSON: {e}"));
    println!("{out}");
    if let Err(e) = std::fs::write(&recover_args.out, &out) {
        eprintln!("warning: could not write {}: {e}", recover_args.out);
    }

    // Release the store handles (server first: its shared block holds the
    // engine Arc) before tearing the directory down.
    drop(server);
    drop(engine);
    let _ = std::fs::remove_dir_all(&base);
}
