//! Benchmark: concurrent client connections driving a fault-injected
//! fleet through the netserve wire protocol on localhost.
//!
//! Methodology: each `--conns` point in the sweep gets a fresh engine and
//! server (reactor event loops, binary + HTTP ports, both ephemeral),
//! `--streams` registered streams, and one closed-loop worker per
//! connection pushing fault-corrupted samples (vmsim `FaultInjector`) in
//! `--batch`-sized `PushBatch` requests (default 12), timing every round trip. Every 32
//! batches a worker also issues a `Predict`. The first `--warmup` seconds
//! of each point are excluded from the RTT percentiles and the throughput
//! window — connection ramp, allocator warm-up, and cold predictor
//! training don't belong in a steady-state number — and the default
//! `--duration` is 5 s so queue-fill transients can't flatter the rate.
//!
//! While the load runs, the main thread scrapes `/metrics` and `/healthz`
//! over the HTTP shim and validates them (finite Prometheus samples; the
//! strict no-NaN JSON parser for `/healthz`). Each point ends with a
//! `Health` poll, a `Checkpoint` download and a wire `Shutdown`. The
//! headline point (64 connections when present in the sweep, else the
//! last) fills the top-level report fields; every point lands in the
//! `"sweep"` array. The report is printed and written to `--out`
//! (default `results/BENCH_net.json`).
//!
//! With `--record <dir>` the headline point is also mirrored into a
//! replayable recorded-trace WAL (the `store` crate's segment format) and
//! self-validated by re-recovering it gap-free.
//!
//! `--storm N` runs a connection-storm smoke instead of the bench: open N
//! simultaneous connections (handshaking each), verify the shim still
//! answers and every connection is tracked, then tear them all down.
//!
//! Run with:
//! `cargo run --release -p netserve --bin net_loadgen -- --conns 8,64,256 --streams 256 --shards 4`

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use fleet::{BackpressurePolicy, FleetConfig, FleetEngine};
use netserve::{Client, ClientConfig, Server, ServerConfig};
use obs::percentile_sorted;
use store::{RegisterTuning, Sample, Wal, WalOptions, WalRecord};
use vmsim::{fleet_signal, FaultConfig, FaultInjector};

struct Args {
    conns: Vec<usize>,
    streams: u64,
    shards: usize,
    duration: f64,
    warmup: f64,
    batch: usize,
    fault_rate: f64,
    seed: u64,
    out: String,
    record: Option<String>,
    storm: Option<usize>,
}

fn parse_args() -> Args {
    let mut args = Args {
        conns: vec![8, 64, 256],
        streams: 256,
        shards: 4,
        duration: 5.0,
        warmup: 1.0,
        batch: 12,
        fault_rate: 0.01,
        seed: 2007,
        out: "results/BENCH_net.json".to_string(),
        record: None,
        storm: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| it.next().unwrap_or_else(|| panic!("{name} expects a value"));
        let uint = |name: &str, v: String| {
            v.parse::<u64>().unwrap_or_else(|_| panic!("{name} expects an unsigned integer"))
        };
        let secs = |name: &str, v: String| {
            v.parse::<f64>()
                .ok()
                .filter(|d| d.is_finite() && *d >= 0.0)
                .unwrap_or_else(|| panic!("{name} expects non-negative seconds, got {v}"))
        };
        match flag.as_str() {
            // --clients kept as a compatibility alias for a single point.
            "--conns" | "--clients" => {
                let v = take("--conns");
                args.conns =
                    v.split(',')
                        .map(|p| {
                            p.trim().parse::<usize>().ok().filter(|c| *c >= 1).unwrap_or_else(
                                || panic!("--conns expects positive integers, got {p}"),
                            )
                        })
                        .collect();
                assert!(!args.conns.is_empty(), "--conns expects at least one value");
            }
            "--streams" => args.streams = uint("--streams", take("--streams")),
            "--shards" => args.shards = uint("--shards", take("--shards")) as usize,
            "--duration" => {
                args.duration = secs("--duration", take("--duration"));
                assert!(args.duration > 0.0, "--duration must be positive");
            }
            "--warmup" => args.warmup = secs("--warmup", take("--warmup")),
            "--batch" => args.batch = (uint("--batch", take("--batch")) as usize).max(1),
            "--fault" => {
                args.fault_rate = secs("--fault", take("--fault"));
                assert!(args.fault_rate <= 1.0, "--fault expects a rate in [0, 1]");
            }
            "--seed" => args.seed = uint("--seed", take("--seed")),
            "--out" => args.out = take("--out"),
            "--record" => args.record = Some(take("--record")),
            "--storm" => args.storm = Some(uint("--storm", take("--storm")) as usize),
            other => panic!(
                "unknown flag {other}; supported: --conns --streams --shards --duration \
                 --warmup --batch --fault --seed --out --record --storm"
            ),
        }
    }
    assert!(args.streams >= 1, "--streams must be >= 1");
    let max_conns = *args.conns.iter().max().expect("non-empty sweep");
    assert!(
        args.streams >= max_conns as u64,
        "--streams ({}) must cover the largest sweep point ({max_conns}) so every worker \
         owns at least one stream",
        args.streams
    );
    assert!(
        args.warmup < args.duration,
        "--warmup ({}) must leave a measurement window inside --duration ({})",
        args.warmup,
        args.duration
    );
    args
}

/// Per-worker tallies. `measured_*` cover only the post-warmup window;
/// the total counters account for every sample (loss checks, trace).
#[derive(Default)]
struct WorkerStats {
    rtt_us: Vec<f64>,
    measured_requests: u64,
    measured_samples: u64,
    push_requests: u64,
    predict_requests: u64,
    samples_pushed: u64,
    accepted: u64,
    rejected: u64,
    dropped: u64,
}

/// One raw wire connection a worker drives: its own stream subset,
/// per-stream corrupted generators, and a request-id sequence.
struct DrivenConn {
    stream: TcpStream,
    gens: Vec<(u64, Box<dyn vmsim::signal::Signal>, FaultInjector, u64)>,
    next_gen: usize,
    seq: u64,
    batch: Vec<(u64, f64)>,
    sent_at: Instant,
}

impl DrivenConn {
    fn connect(
        addr: std::net::SocketAddr,
        ids: Vec<u64>,
        seed: u64,
        fault_rate: f64,
    ) -> DrivenConn {
        let stream = TcpStream::connect(addr).expect("worker connects");
        stream.set_nodelay(true).expect("nodelay");
        stream.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
        let gens = ids
            .iter()
            .map(|&id| {
                let injector =
                    FaultInjector::new(FaultConfig::uniform(fault_rate), seed ^ (id << 1) | 1)
                        .expect("valid fault config");
                (id, fleet_signal(seed, id), injector, 0u64)
            })
            .collect();
        let mut conn = DrivenConn {
            stream,
            gens,
            next_gen: 0,
            seq: 0,
            batch: Vec::new(),
            sent_at: Instant::now(),
        };
        let hello = conn.request_frame(&netserve::Request::Hello { client: "loadgen".into() });
        conn.stream.write_all(&hello).expect("hello");
        let reply = conn.read_reply();
        assert!(matches!(reply, netserve::Response::Hello { .. }), "handshake: {reply:?}");
        conn
    }

    fn request_frame(&mut self, req: &netserve::Request) -> Vec<u8> {
        self.seq += 1;
        netserve::wire::encode(&netserve::Frame {
            opcode: req.opcode() as u8,
            request_id: self.seq,
            payload: req.encode_payload(),
        })
    }

    fn read_reply(&mut self) -> netserve::Response {
        let frame = netserve::wire::read_frame(&mut self.stream, 1 << 24).expect("response frame");
        assert_eq!(frame.request_id, self.seq, "one request in flight per connection");
        let resp =
            netserve::Response::decode(frame.opcode, &frame.payload).expect("decodable response");
        assert!(!matches!(resp, netserve::Response::Error { .. }), "request failed: {resp:?}");
        resp
    }

    /// Builds the next auto-clocked fault-corrupted batch into `self.batch`.
    fn fill_batch(&mut self, batch_size: usize) {
        self.batch.clear();
        while self.batch.len() < batch_size {
            let gen_count = self.gens.len();
            let (id, signal, injector, minute) = &mut self.gens[self.next_gen];
            self.next_gen = (self.next_gen + 1) % gen_count;
            let clean = signal.sample(*minute);
            // The injector may drop the sample, duplicate it, or corrupt its
            // value; the wire batch is auto-clocked so only values travel.
            for (_, value, _) in injector.corrupt(*minute, clean) {
                self.batch.push((*id, value));
            }
            *minute += 1;
        }
    }
}

/// Drives `conns` connections from one thread, pipelined across (not
/// within) connections: write one `PushBatch` on every connection, then
/// read every reply. Each connection keeps exactly one request in flight,
/// so server-side response ordering is trivially covered, while the
/// client side needs only a handful of threads to saturate the wire —
/// RTT tails measure the server, not client-side thread scheduling.
#[allow(clippy::too_many_arguments)]
fn worker(
    addr: std::net::SocketAddr,
    conn_streams: Vec<Vec<u64>>,
    seed: u64,
    fault_rate: f64,
    batch_size: usize,
    warmup_end: Instant,
    deadline: Instant,
    recorder: Option<Arc<Mutex<Wal>>>,
) -> WorkerStats {
    let mut conns: Vec<DrivenConn> = conn_streams
        .into_iter()
        .map(|ids| DrivenConn::connect(addr, ids, seed, fault_rate))
        .collect();
    let mut stats = WorkerStats::default();
    let mut rounds = 0u64;
    let mut predict_rotor = 0usize;
    while Instant::now() < deadline {
        rounds += 1;
        for conn in &mut conns {
            conn.fill_batch(batch_size);
            let frame =
                conn.request_frame(&netserve::Request::PushBatch { samples: conn.batch.clone() });
            conn.sent_at = Instant::now();
            conn.stream.write_all(&frame).expect("push_batch write");
        }
        for conn in &mut conns {
            let resp = conn.read_reply();
            let conn = &*conn;
            let done = Instant::now();
            let netserve::Response::PushBatch(outcome) = resp else {
                panic!("push_batch got {resp:?}");
            };
            let measured = conn.sent_at >= warmup_end;
            if measured {
                stats.rtt_us.push((done - conn.sent_at).as_secs_f64() * 1e6);
                stats.measured_requests += 1;
                stats.measured_samples += conn.batch.len() as u64;
            }
            if let Some(wal) = &recorder {
                // Record the acked batch exactly as it traveled: auto-clocked
                // (stream, value) pairs, one WAL record per wire request.
                let samples: Vec<Sample> = conn
                    .batch
                    .iter()
                    .map(|&(stream, value)| Sample { stream, minute: None, value })
                    .collect();
                let mut wal = wal.lock().expect("recorder poisoned");
                wal.append_samples(&samples).expect("trace record append");
            }
            stats.push_requests += 1;
            stats.samples_pushed += conn.batch.len() as u64;
            stats.accepted += outcome.accepted;
            stats.rejected += outcome.rejected;
            stats.dropped += outcome.dropped;
        }
        if rounds.is_multiple_of(32) {
            let slot = predict_rotor % conns.len();
            let conn = &mut conns[slot];
            let id = conn.gens[predict_rotor % conn.gens.len()].0;
            predict_rotor += 1;
            let frame = conn.request_frame(&netserve::Request::Predict { id });
            let t = Instant::now();
            conn.stream.write_all(&frame).expect("predict write");
            let resp = conn.read_reply();
            assert!(matches!(resp, netserve::Response::Predict(_)), "predict got {resp:?}");
            if t >= warmup_end {
                stats.rtt_us.push(t.elapsed().as_secs_f64() * 1e6);
                stats.measured_requests += 1;
            }
            stats.predict_requests += 1;
        }
    }
    stats
}

/// Minimal HTTP GET over a raw socket; returns (status, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))
        .map_err(|e| format!("connect: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(2))).map_err(|e| e.to_string())?;
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).map_err(|e| format!("recv: {e}"))?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("unparsable status line in {raw:.60}"))?;
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Ok((status, body))
}

/// Every non-comment Prometheus sample line must carry a finite,
/// non-negative value.
fn prometheus_is_sane(text: &str) -> bool {
    !text.is_empty()
        && text.lines().filter(|l| !l.starts_with('#') && !l.is_empty()).all(|l| {
            l.rsplit(' ')
                .next()
                .and_then(|v| v.parse::<f64>().ok())
                .is_some_and(|v| v.is_finite() && v >= 0.0)
        })
}

/// One sweep point's results, plus the handles the headline report needs.
struct PointResult {
    conns: usize,
    measured_sec: f64,
    requests: u64,
    push_requests: u64,
    predict_requests: u64,
    samples_pushed: u64,
    measured_requests: u64,
    measured_samples: u64,
    req_per_sec: f64,
    samples_per_sec: f64,
    rtt_p50_us: f64,
    rtt_p90_us: f64,
    rtt_p99_us: f64,
    accepted: u64,
    rejected: u64,
    dropped: u64,
    health: netserve::HealthReply,
    checkpoint_bytes: usize,
    obs_json: String,
    trace: Option<(u64, u64, u64)>,
}

fn run_point(args: &Args, conns: usize, record: Option<&str>) -> PointResult {
    let engine = Arc::new(
        FleetEngine::new(FleetConfig {
            shards: args.shards,
            // Lossless: Block never sheds, and the queue is sized so a full
            // run fits without the enqueue path stalling on the serving
            // drain — the bench measures the wire path; the engine's own
            // drain rate is reported separately as fleet_steps.
            backpressure: BackpressurePolicy::Block,
            queue_capacity: 1 << 19,
            fleet_seed: args.seed,
            ..FleetConfig::default()
        })
        .expect("valid fleet config"),
    );
    let mut server = Server::start(
        Arc::clone(&engine),
        ServerConfig { max_connections: conns + 8, ..ServerConfig::default() },
    )
    .expect("server starts");
    let addr = server.addr();
    let http_addr = server.http_addr().expect("http shim enabled");

    let mut setup = Client::connect(addr, ClientConfig::default()).expect("setup client");
    for id in 0..args.streams {
        setup.register_with(id, bench_tuning(id)).expect("fresh stream id");
    }

    // --record: mirror the session into a replayable WAL trace (store's
    // segment format) — registrations first, then every acked batch.
    let recorder: Option<Arc<Mutex<Wal>>> = record.map(|dir| {
        let dir = Path::new(dir);
        if dir.exists() {
            std::fs::remove_dir_all(dir).expect("clear stale trace dir");
        }
        let mut wal = Wal::create(dir, WalOptions::default()).expect("create trace WAL");
        for id in 0..args.streams {
            let bench = bench_tuning(id);
            let tuning = RegisterTuning {
                train_size: bench.train_size,
                qa_window: bench.qa_window,
                qa_period: bench.qa_period,
                qa_threshold: bench.qa_threshold,
                f32_history: false,
            };
            wal.append_register(id, &tuning).expect("trace register append");
        }
        Arc::new(Mutex::new(wal))
    });

    let started = Instant::now();
    let warmup_end = started + Duration::from_secs_f64(args.warmup);
    let deadline = started + Duration::from_secs_f64(args.duration);
    // A few driver threads, many connections each: client-side thread
    // scheduling must not show up in the server's latency tails.
    let workers =
        conns.min(std::thread::available_parallelism().map(|n| n.get() * 2).unwrap_or(2).max(2));
    let stats: Vec<WorkerStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let conn_streams: Vec<Vec<u64>> = (0..conns)
                    .filter(|c| c % workers == w)
                    .map(|c| (0..args.streams).filter(|id| (*id as usize) % conns == c).collect())
                    .collect();
                let (seed, fault_rate, batch) = (args.seed, args.fault_rate, args.batch);
                let recorder = recorder.clone();
                scope.spawn(move || {
                    worker(
                        addr,
                        conn_streams,
                        seed,
                        fault_rate,
                        batch,
                        warmup_end,
                        deadline,
                        recorder,
                    )
                })
            })
            .collect();

        // While the fleet is under load, scrape the observability port.
        let (hz_status, hz_body) = http_get(http_addr, "/healthz").expect("healthz scrape");
        let healthz_ok = hz_status == 200 && obs::expo::validate_json(&hz_body).is_ok();
        let (m_status, m_body) = http_get(http_addr, "/metrics").expect("metrics scrape");
        let metrics_ok = m_status == 200
            && prometheus_is_sane(&m_body)
            && m_body.contains("net_op_push_batch_total")
            && m_body.contains("net_connections");
        assert!(healthz_ok, "healthz scrape failed: status {hz_status}, body {hz_body}");
        assert!(metrics_ok, "metrics scrape failed: status {m_status}");

        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let measured_sec = (Instant::now() - warmup_end).as_secs_f64().max(1e-9);

    // Post-run control-plane traffic on the setup connection.
    let health = setup.health().expect("health");
    let checkpoint = setup.checkpoint().expect("checkpoint");
    setup.shutdown_server().expect("wire shutdown acked");
    server.shutdown();

    // Finalize the recorded trace, then prove it replays: re-scan the WAL
    // and require every appended record back, gap-free.
    let trace = recorder.map(|wal| {
        let wal = Arc::try_unwrap(wal).ok().expect("workers have released the recorder");
        let mut wal = wal.into_inner().expect("recorder poisoned");
        wal.sync().expect("trace fsync");
        let appended = wal.stats();
        drop(wal);
        let dir = Path::new(record.expect("record path"));
        let mut samples = 0u64;
        let (_wal, report) = Wal::recover(dir, WalOptions::default(), 0, |_seq, rec| {
            if let WalRecord::Samples(s) = rec {
                samples += s.len() as u64;
            }
        })
        .expect("recorded trace replays");
        assert_eq!(report.replayed, appended.records, "recorded trace lost records");
        assert_eq!(report.gap_records, 0, "recorded trace has gaps");
        (appended.records, samples, appended.bytes)
    });

    let mut rtt_us: Vec<f64> = Vec::new();
    let mut total = WorkerStats::default();
    for s in stats {
        rtt_us.extend_from_slice(&s.rtt_us);
        total.measured_requests += s.measured_requests;
        total.measured_samples += s.measured_samples;
        total.push_requests += s.push_requests;
        total.predict_requests += s.predict_requests;
        total.samples_pushed += s.samples_pushed;
        total.accepted += s.accepted;
        total.rejected += s.rejected;
        total.dropped += s.dropped;
    }
    rtt_us.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let pct = |p: f64| percentile_sorted(&rtt_us, p).unwrap_or(0.0);

    assert_eq!(total.rejected, 0, "Block backpressure must be lossless");
    assert_eq!(health.nonfinite_forecasts, 0, "non-finite forecast escaped the fleet");
    assert_eq!(
        health.pushes.accepted, total.accepted,
        "every worker-accepted sample must be visible in the fleet rollup"
    );
    if let Some((_, trace_samples, _)) = trace {
        assert_eq!(
            trace_samples, total.samples_pushed,
            "the recorded trace must carry every pushed sample"
        );
    }

    PointResult {
        conns,
        measured_sec,
        requests: total.push_requests + total.predict_requests,
        push_requests: total.push_requests,
        predict_requests: total.predict_requests,
        samples_pushed: total.samples_pushed,
        measured_requests: total.measured_requests,
        measured_samples: total.measured_samples,
        req_per_sec: total.measured_requests as f64 / measured_sec,
        samples_per_sec: total.measured_samples as f64 / measured_sec,
        rtt_p50_us: pct(0.50),
        rtt_p90_us: pct(0.90),
        rtt_p99_us: pct(0.99),
        accepted: total.accepted,
        rejected: total.rejected,
        dropped: total.dropped,
        health,
        checkpoint_bytes: checkpoint.len(),
        obs_json: obs::expo::json(engine.registry(), None),
        trace,
    }
}

/// Connection-storm smoke: N simultaneous connections must all handshake,
/// stay tracked, leave the shim responsive, and tear down cleanly.
fn run_storm(args: &Args, storm: usize) {
    let engine = Arc::new(
        FleetEngine::new(FleetConfig {
            shards: args.shards,
            fleet_seed: args.seed,
            ..FleetConfig::default()
        })
        .expect("valid fleet config"),
    );
    let mut server = Server::start(
        Arc::clone(&engine),
        ServerConfig { max_connections: storm + 8, ..ServerConfig::default() },
    )
    .expect("server starts");
    let addr = server.addr();
    let http_addr = server.http_addr().expect("http shim enabled");

    let started = Instant::now();
    let mut conns: Vec<Client> = Vec::with_capacity(storm);
    for _ in 0..storm {
        conns.push(Client::connect(addr, ClientConfig::default()).expect("storm connect"));
    }
    let connect_sec = started.elapsed().as_secs_f64();
    assert_eq!(server.open_connections(), storm as u64, "every connection tracked");

    // The shim (same event loops) still answers under the storm.
    let (hz_status, hz_body) = http_get(http_addr, "/healthz").expect("healthz under storm");
    assert_eq!(hz_status, 200, "healthz under storm: {hz_body}");
    assert!(
        hz_body.contains(&format!("\"connections\": {storm}")),
        "healthz sees the storm: {hz_body}"
    );
    // And the data plane still serves: one round trip on every 10th conn.
    for client in conns.iter_mut().step_by(10) {
        client.health().expect("round trip under storm");
    }

    drop(conns);
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.open_connections() > 0 {
        assert!(Instant::now() < deadline, "storm teardown never drained");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
    println!(
        "{{\n  \"storm_conns\": {storm},\n  \"connect_sec\": {connect_sec:.3},\n  \
         \"healthz_ok\": true,\n  \"teardown_ok\": true\n}}"
    );
}

fn main() {
    let args = parse_args();
    if let Some(storm) = args.storm {
        run_storm(&args, storm);
        return;
    }

    let points: Vec<PointResult> = args
        .conns
        .iter()
        .map(|&conns| {
            // Only the headline point is mirrored into the trace WAL.
            let record =
                if headline_conns(&args.conns) == conns { args.record.as_deref() } else { None };
            eprintln!("net_loadgen: {conns} connections, {:.1}s...", args.duration);
            run_point(&args, conns, record)
        })
        .collect();
    let headline =
        points.iter().find(|p| p.conns == headline_conns(&args.conns)).expect("headline point ran");

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"conns\": {},\n", headline.conns));
    out.push_str(&format!(
        "  \"conns_sweep\": [{}],\n",
        args.conns.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(", ")
    ));
    out.push_str(&format!("  \"streams\": {},\n", args.streams));
    out.push_str(&format!("  \"shards\": {},\n", args.shards));
    out.push_str(&format!("  \"batch\": {},\n", args.batch));
    out.push_str(&format!("  \"fault_rate\": {},\n", args.fault_rate));
    let tuning = bench_tuning(0);
    out.push_str(&format!(
        "  \"stream_tuning\": {{\"train_size\": {}, \"qa_window\": {}, \
         \"qa_period_min\": {}, \"qa_period_max\": {}, \"qa_threshold\": {}}},\n",
        tuning.train_size,
        tuning.qa_window,
        tuning.qa_period,
        tuning.qa_period + 8,
        tuning.qa_threshold
    ));
    out.push_str(&format!("  \"seed\": {},\n", args.seed));
    out.push_str(&format!("  \"duration_sec\": {},\n", args.duration));
    out.push_str(&format!("  \"warmup_sec\": {},\n", args.warmup));
    out.push_str(&format!("  \"measured_sec\": {:.3},\n", headline.measured_sec));
    out.push_str(&format!("  \"requests\": {},\n", headline.requests));
    out.push_str(&format!("  \"push_requests\": {},\n", headline.push_requests));
    out.push_str(&format!("  \"predict_requests\": {},\n", headline.predict_requests));
    out.push_str(&format!("  \"samples_pushed\": {},\n", headline.samples_pushed));
    out.push_str(&format!("  \"measured_requests\": {},\n", headline.measured_requests));
    out.push_str(&format!("  \"measured_samples\": {},\n", headline.measured_samples));
    out.push_str(&format!("  \"req_per_sec\": {:.0},\n", headline.req_per_sec));
    out.push_str(&format!("  \"samples_per_sec\": {:.0},\n", headline.samples_per_sec));
    // Ceil-rank round-trip percentiles over every post-warmup request.
    out.push_str(&format!("  \"rtt_p50_us\": {:.1},\n", headline.rtt_p50_us));
    out.push_str(&format!("  \"rtt_p90_us\": {:.1},\n", headline.rtt_p90_us));
    out.push_str(&format!("  \"rtt_p99_us\": {:.1},\n", headline.rtt_p99_us));
    out.push_str(&format!("  \"accepted\": {},\n", headline.accepted));
    out.push_str(&format!("  \"rejected\": {},\n", headline.rejected));
    out.push_str(&format!("  \"dropped\": {},\n", headline.dropped));
    out.push_str(&format!("  \"fleet_steps\": {},\n", headline.health.steps));
    out.push_str(&format!("  \"fleet_forecasts\": {},\n", headline.health.forecasts));
    out.push_str(&format!("  \"nonfinite_forecasts\": {},\n", headline.health.nonfinite_forecasts));
    out.push_str(&format!("  \"degraded_streams\": {},\n", headline.health.degraded_streams));
    out.push_str(&format!("  \"quarantined_streams\": {},\n", headline.health.quarantined_streams));
    out.push_str(&format!("  \"checkpoint_bytes\": {},\n", headline.checkpoint_bytes));
    out.push_str("  \"healthz_ok\": true,\n");
    out.push_str("  \"metrics_scrape_ok\": true,\n");
    if let Some((records, samples, bytes)) = headline.trace {
        out.push_str(&format!("  \"trace_records\": {records},\n"));
        out.push_str(&format!("  \"trace_samples\": {samples},\n"));
        out.push_str(&format!("  \"trace_bytes\": {bytes},\n"));
    }
    out.push_str("  \"sweep\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"conns\": {}, \"req_per_sec\": {:.0}, \"samples_per_sec\": {:.0}, \
             \"rtt_p50_us\": {:.1}, \"rtt_p90_us\": {:.1}, \"rtt_p99_us\": {:.1}}}{}\n",
            p.conns,
            p.req_per_sec,
            p.samples_per_sec,
            p.rtt_p50_us,
            p.rtt_p90_us,
            p.rtt_p99_us,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"obs\": {}\n", headline.obs_json));
    out.push('}');

    obs::expo::validate_json(&out)
        .unwrap_or_else(|e| panic!("net_loadgen produced invalid JSON: {e}"));
    println!("{out}");
    if let Err(e) = std::fs::write(&args.out, &out) {
        eprintln!("warning: could not write {}: {e}", args.out);
    }
}

/// Stream tuning for the load: server-default training, but QA audits
/// paced for steady-state serving (the registration defaults audit every
/// 4 samples with a tight threshold — on a noisy fault-injected signal
/// that retrains every few samples and benchmarks the trainer, not the
/// serving path). The period is staggered per stream: every stream starts
/// at minute 0, so a fixed period makes the whole fleet retrain in
/// synchronized waves and the wave, not the serving path, sets the RTT
/// tail. The tuning travels on the wire via `RegisterWith`, so the bench
/// also exercises that opcode, and is recorded in the report.
fn bench_tuning(id: u64) -> netserve::StreamTuning {
    let defaults = &ServerConfig::default().stream_defaults;
    netserve::StreamTuning {
        train_size: defaults.train_size as u32,
        qa_window: 16,
        qa_period: 28 + (id % 9) as u32,
        qa_threshold: 3.0,
    }
}

/// The sweep point that fills the top-level report: 64 connections when
/// present (the fleet's standard comparison point), else the last point.
fn headline_conns(sweep: &[usize]) -> usize {
    if sweep.contains(&64) {
        64
    } else {
        *sweep.last().expect("non-empty sweep")
    }
}
