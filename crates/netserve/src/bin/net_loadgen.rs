//! Benchmark: N concurrent client connections driving a fault-injected
//! fleet through the netserve wire protocol on localhost.
//!
//! Starts a server (binary + HTTP ports, both ephemeral) over a
//! Block-backpressure engine, registers `--streams` streams, then runs
//! `--clients` worker threads for `--duration` seconds. Each worker owns a
//! [`netserve::Client`] and a disjoint subset of streams, pushes
//! fault-corrupted samples (vmsim `FaultInjector`: NaN, sentinels, spikes,
//! stuck values, duplicates, drops) in `--batch`-sized `PushBatch` requests,
//! and times every round trip. Every 32 batches it also issues a `Predict`.
//!
//! While the load runs, the main thread scrapes `/metrics` and `/healthz`
//! over the HTTP shim and validates them (finite Prometheus samples; the
//! strict no-NaN JSON parser for `/healthz`). The run ends with a `Health`
//! poll, a `Checkpoint` download and a wire `Shutdown`, then prints one
//! self-validated JSON report and writes it to `--out`
//! (default `results/BENCH_net.json`).
//!
//! With `--record <dir>` the session is also mirrored into a replayable
//! recorded-trace WAL (the `store` crate's segment format): one `Register`
//! record per stream, then one `Samples` record per acked batch. The run
//! self-validates the trace by re-recovering it and checking every record
//! reads back gap-free.
//!
//! Run with:
//! `cargo run --release -p netserve --bin net_loadgen -- --clients 8 --streams 200 --shards 4 --duration 3`

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use fleet::{BackpressurePolicy, FleetConfig, FleetEngine};
use netserve::{Client, ClientConfig, Server, ServerConfig};
use obs::percentile_sorted;
use store::{RegisterTuning, Sample, Wal, WalOptions, WalRecord};
use vmsim::{fleet_signal, FaultConfig, FaultInjector};

struct Args {
    clients: usize,
    streams: u64,
    shards: usize,
    duration: f64,
    batch: usize,
    seed: u64,
    out: String,
    record: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        clients: 8,
        streams: 200,
        shards: 4,
        duration: 3.0,
        batch: 64,
        seed: 2007,
        out: "results/BENCH_net.json".to_string(),
        record: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| it.next().unwrap_or_else(|| panic!("{name} expects a value"));
        let uint = |name: &str, v: String| {
            v.parse::<u64>().unwrap_or_else(|_| panic!("{name} expects an unsigned integer"))
        };
        match flag.as_str() {
            "--clients" => args.clients = uint("--clients", take("--clients")) as usize,
            "--streams" => args.streams = uint("--streams", take("--streams")),
            "--shards" => args.shards = uint("--shards", take("--shards")) as usize,
            "--duration" => {
                let v = take("--duration");
                args.duration = v
                    .parse::<f64>()
                    .ok()
                    .filter(|d| d.is_finite() && *d > 0.0)
                    .unwrap_or_else(|| panic!("--duration expects positive seconds, got {v}"));
            }
            "--batch" => args.batch = (uint("--batch", take("--batch")) as usize).max(1),
            "--seed" => args.seed = uint("--seed", take("--seed")),
            "--out" => args.out = take("--out"),
            "--record" => args.record = Some(take("--record")),
            other => panic!(
                "unknown flag {other}; supported: --clients --streams --shards --duration \
                 --batch --seed --out --record"
            ),
        }
    }
    assert!(args.clients >= 1, "--clients must be >= 1");
    assert!(args.streams >= 1, "--streams must be >= 1");
    args
}

/// Per-worker tallies returned to the aggregator.
#[derive(Default)]
struct WorkerStats {
    rtt_us: Vec<f64>,
    push_requests: u64,
    predict_requests: u64,
    samples_pushed: u64,
    accepted: u64,
    rejected: u64,
    dropped: u64,
}

fn worker(
    addr: std::net::SocketAddr,
    ids: Vec<u64>,
    seed: u64,
    batch_size: usize,
    deadline: Instant,
    recorder: Option<Arc<Mutex<Wal>>>,
) -> WorkerStats {
    let mut client = Client::connect(addr, ClientConfig::default()).expect("worker connects");
    // Per-stream corrupted generators: signal + injector + local clock.
    let mut gens: Vec<_> = ids
        .iter()
        .map(|&id| {
            let injector = FaultInjector::new(FaultConfig::uniform(0.05), seed ^ (id << 1) | 1)
                .expect("valid fault config");
            (id, fleet_signal(seed, id), injector, 0u64)
        })
        .collect();
    let mut stats = WorkerStats::default();
    let mut batch: Vec<(u64, f64)> = Vec::with_capacity(batch_size);
    let mut next_gen = 0usize;
    let mut predict_rotor = 0usize;
    while Instant::now() < deadline {
        batch.clear();
        while batch.len() < batch_size {
            let gen_count = gens.len();
            let (id, signal, injector, minute) = &mut gens[next_gen];
            next_gen = (next_gen + 1) % gen_count;
            let clean = signal.sample(*minute);
            // The injector may drop the sample, duplicate it, or corrupt its
            // value; the wire batch is auto-clocked so only values travel.
            for (_, value, _) in injector.corrupt(*minute, clean) {
                batch.push((*id, value));
            }
            *minute += 1;
        }
        let t = Instant::now();
        let outcome = client.push_batch(&batch).expect("push_batch round trip");
        stats.rtt_us.push(t.elapsed().as_secs_f64() * 1e6);
        if let Some(wal) = &recorder {
            // Record the acked batch exactly as it traveled: auto-clocked
            // (stream, value) pairs, one WAL record per wire request.
            let samples: Vec<Sample> = batch
                .iter()
                .map(|&(stream, value)| Sample { stream, minute: None, value })
                .collect();
            let mut wal = wal.lock().expect("recorder poisoned");
            wal.append_samples(&samples).expect("trace record append");
        }
        stats.push_requests += 1;
        stats.samples_pushed += batch.len() as u64;
        stats.accepted += outcome.accepted;
        stats.rejected += outcome.rejected;
        stats.dropped += outcome.dropped;
        if stats.push_requests.is_multiple_of(32) {
            let id = gens[predict_rotor % gens.len()].0;
            predict_rotor += 1;
            let t = Instant::now();
            client.predict(id).expect("predict round trip");
            stats.rtt_us.push(t.elapsed().as_secs_f64() * 1e6);
            stats.predict_requests += 1;
        }
    }
    stats
}

/// Minimal HTTP GET over a raw socket; returns (status, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))
        .map_err(|e| format!("connect: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(2))).map_err(|e| e.to_string())?;
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).map_err(|e| format!("recv: {e}"))?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("unparsable status line in {raw:.60}"))?;
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Ok((status, body))
}

/// Every non-comment Prometheus sample line must carry a finite,
/// non-negative value.
fn prometheus_is_sane(text: &str) -> bool {
    !text.is_empty()
        && text.lines().filter(|l| !l.starts_with('#') && !l.is_empty()).all(|l| {
            l.rsplit(' ')
                .next()
                .and_then(|v| v.parse::<f64>().ok())
                .is_some_and(|v| v.is_finite() && v >= 0.0)
        })
}

fn main() {
    let args = parse_args();
    let engine = Arc::new(
        FleetEngine::new(FleetConfig {
            shards: args.shards,
            // Lossless under sustained overload so the measured sample rate
            // is the true end-to-end serving rate.
            backpressure: BackpressurePolicy::Block,
            queue_capacity: 8192,
            fleet_seed: args.seed,
            ..FleetConfig::default()
        })
        .expect("valid fleet config"),
    );
    let mut server = Server::start(
        Arc::clone(&engine),
        ServerConfig { max_connections: args.clients + 8, ..ServerConfig::default() },
    )
    .expect("server starts");
    let addr = server.addr();
    let http_addr = server.http_addr().expect("http shim enabled");

    let mut setup = Client::connect(addr, ClientConfig::default()).expect("setup client");
    for id in 0..args.streams {
        setup.register(id).expect("fresh stream id");
    }

    // --record: mirror the session into a replayable WAL trace (store's
    // segment format) — registrations first, then every acked batch.
    let recorder: Option<Arc<Mutex<Wal>>> = args.record.as_deref().map(|dir| {
        let dir = Path::new(dir);
        if dir.exists() {
            std::fs::remove_dir_all(dir).expect("clear stale trace dir");
        }
        let mut wal = Wal::create(dir, WalOptions::default()).expect("create trace WAL");
        let defaults = &ServerConfig::default().stream_defaults;
        let tuning = RegisterTuning {
            train_size: defaults.train_size as u32,
            qa_window: defaults.qa_window as u32,
            qa_period: defaults.qa_period as u32,
            qa_threshold: defaults.qa_threshold,
        };
        for id in 0..args.streams {
            wal.append_register(id, &tuning).expect("trace register append");
        }
        Arc::new(Mutex::new(wal))
    });

    let started = Instant::now();
    let deadline = started + Duration::from_secs_f64(args.duration);
    let stats: Vec<WorkerStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|w| {
                let ids: Vec<u64> =
                    (0..args.streams).filter(|id| (*id as usize) % args.clients == w).collect();
                let seed = args.seed;
                let batch = args.batch;
                let recorder = recorder.clone();
                scope.spawn(move || worker(addr, ids, seed, batch, deadline, recorder))
            })
            .collect();

        // While the fleet is under load, scrape the observability port.
        let (hz_status, hz_body) = http_get(http_addr, "/healthz").expect("healthz scrape");
        let healthz_ok = hz_status == 200 && obs::expo::validate_json(&hz_body).is_ok();
        let (m_status, m_body) = http_get(http_addr, "/metrics").expect("metrics scrape");
        let metrics_ok = m_status == 200
            && prometheus_is_sane(&m_body)
            && m_body.contains("net_op_push_batch_total")
            && m_body.contains("net_connections");
        assert!(healthz_ok, "healthz scrape failed: status {hz_status}, body {hz_body}");
        assert!(metrics_ok, "metrics scrape failed: status {m_status}");

        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    // Post-run control-plane traffic on the setup connection.
    let health = setup.health().expect("health");
    let checkpoint = setup.checkpoint().expect("checkpoint");
    setup.shutdown_server().expect("wire shutdown acked");
    server.shutdown();

    // Finalize the recorded trace, then prove it replays: re-scan the WAL
    // and require every appended record back, gap-free.
    let recorded = recorder.map(|wal| {
        let wal = Arc::try_unwrap(wal).ok().expect("workers have released the recorder");
        let mut wal = wal.into_inner().expect("recorder poisoned");
        wal.sync().expect("trace fsync");
        let appended = wal.stats();
        drop(wal);
        let dir = Path::new(args.record.as_deref().expect("record path"));
        let mut samples = 0u64;
        let (_wal, report) = Wal::recover(dir, WalOptions::default(), 0, |_seq, rec| {
            if let WalRecord::Samples(s) = rec {
                samples += s.len() as u64;
            }
        })
        .expect("recorded trace replays");
        assert_eq!(report.replayed, appended.records, "recorded trace lost records");
        assert_eq!(report.gap_records, 0, "recorded trace has gaps");
        (appended.records, samples, appended.bytes)
    });

    let mut rtt_us: Vec<f64> = Vec::new();
    let mut total = WorkerStats::default();
    for s in stats {
        rtt_us.extend_from_slice(&s.rtt_us);
        total.push_requests += s.push_requests;
        total.predict_requests += s.predict_requests;
        total.samples_pushed += s.samples_pushed;
        total.accepted += s.accepted;
        total.rejected += s.rejected;
        total.dropped += s.dropped;
    }
    rtt_us.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let pct = |p: f64| percentile_sorted(&rtt_us, p).unwrap_or(0.0);
    let requests = total.push_requests + total.predict_requests;

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"clients\": {},\n", args.clients));
    out.push_str(&format!("  \"streams\": {},\n", args.streams));
    out.push_str(&format!("  \"shards\": {},\n", args.shards));
    out.push_str(&format!("  \"batch\": {},\n", args.batch));
    out.push_str(&format!("  \"seed\": {},\n", args.seed));
    out.push_str(&format!("  \"duration_sec\": {elapsed:.3},\n"));
    out.push_str(&format!("  \"requests\": {requests},\n"));
    out.push_str(&format!("  \"push_requests\": {},\n", total.push_requests));
    out.push_str(&format!("  \"predict_requests\": {},\n", total.predict_requests));
    out.push_str(&format!("  \"samples_pushed\": {},\n", total.samples_pushed));
    out.push_str(&format!("  \"req_per_sec\": {:.0},\n", requests as f64 / elapsed));
    out.push_str(&format!(
        "  \"samples_per_sec\": {:.0},\n",
        total.samples_pushed as f64 / elapsed
    ));
    // Ceil-rank round-trip percentiles over every timed request.
    out.push_str(&format!("  \"rtt_p50_us\": {:.1},\n", pct(0.50)));
    out.push_str(&format!("  \"rtt_p90_us\": {:.1},\n", pct(0.90)));
    out.push_str(&format!("  \"rtt_p99_us\": {:.1},\n", pct(0.99)));
    out.push_str(&format!("  \"accepted\": {},\n", total.accepted));
    out.push_str(&format!("  \"rejected\": {},\n", total.rejected));
    out.push_str(&format!("  \"dropped\": {},\n", total.dropped));
    out.push_str(&format!("  \"fleet_steps\": {},\n", health.steps));
    out.push_str(&format!("  \"fleet_forecasts\": {},\n", health.forecasts));
    out.push_str(&format!("  \"nonfinite_forecasts\": {},\n", health.nonfinite_forecasts));
    out.push_str(&format!("  \"degraded_streams\": {},\n", health.degraded_streams));
    out.push_str(&format!("  \"quarantined_streams\": {},\n", health.quarantined_streams));
    out.push_str(&format!("  \"checkpoint_bytes\": {},\n", checkpoint.len()));
    out.push_str("  \"healthz_ok\": true,\n");
    out.push_str("  \"metrics_scrape_ok\": true,\n");
    if let Some((records, samples, bytes)) = recorded {
        out.push_str(&format!("  \"trace_records\": {records},\n"));
        out.push_str(&format!("  \"trace_samples\": {samples},\n"));
        out.push_str(&format!("  \"trace_bytes\": {bytes},\n"));
    }
    out.push_str(&format!("  \"obs\": {}\n", obs::expo::json(engine.registry(), None)));
    out.push('}');

    obs::expo::validate_json(&out)
        .unwrap_or_else(|e| panic!("net_loadgen produced invalid JSON: {e}"));
    println!("{out}");
    if let Err(e) = std::fs::write(&args.out, &out) {
        eprintln!("warning: could not write {}: {e}", args.out);
    }

    assert_eq!(total.rejected, 0, "Block backpressure must be lossless");
    if let Some((_, trace_samples, _)) = recorded {
        assert_eq!(
            trace_samples, total.samples_pushed,
            "the recorded trace must carry every pushed sample"
        );
    }
    assert_eq!(health.nonfinite_forecasts, 0, "non-finite forecast escaped the fleet");
    assert_eq!(
        health.pushes.accepted, total.accepted,
        "every worker-accepted sample must be visible in the fleet rollup"
    );
}
