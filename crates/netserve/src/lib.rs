//! Remote serving: a binary wire protocol over TCP exposing a
//! [`fleet::FleetEngine`] to the network.
//!
//! The fleet engine scales serving across threads; this crate scales it
//! across *machines*. Consumers — schedulers, provisioners, dashboards —
//! talk a small length-prefixed, versioned, CRC-checked binary protocol
//! (frame layout and tables: DESIGN.md §6) instead of linking the engine
//! in-process:
//!
//! * [`wire`] — the frame codec. Every frame carries a protocol version,
//!   an opcode, a client correlation id, an opcode-specific payload, and a
//!   CRC-32 trailer; declared lengths are validated against a cap *before*
//!   allocation, so malformed or hostile input costs bytes, not memory.
//! * [`msg`] — the message vocabulary: seventeen request opcodes
//!   (`Hello`/`Register`/`RegisterWith`/`Push`/`PushBatch`/`Predict`/
//!   `StreamInfo`/`Health`/`Checkpoint`/`Evict`/`Shutdown`, plus the
//!   cluster tier's `RingInfo`/`RingUpdate`/`MigrateOut`/`MigrateIn`/
//!   `StandbyFeed`/`PushSeq`) and a typed error-code table covering
//!   framing, addressing, configuration, backpressure, lifecycle and
//!   ownership failures.
//! * [`cluster`] — cluster-mode plumbing: the [`ClusterHooks`] trait a
//!   cluster node lends a [`Server::start_clustered`] server (ring
//!   redirects, ring install, standby-feed sink) and the [`PushDedup`]
//!   table that makes sequenced-push retries exactly-once.
//! * [`server`] — an event-driven TCP server on the [`reactor`] crate's
//!   epoll loops: sharded accept across per-core event loops, an
//!   edge-triggered per-connection state machine with streaming zero-copy
//!   frame decode (clients may pipeline), bounded connections, engine
//!   backpressure mapped onto wire errors, idle/slow-reader reaping off a
//!   timer wheel, graceful drain-then-`flush_durable` shutdown, and a
//!   second-port HTTP/1.1 shim serving Prometheus `/metrics` and
//!   `/healthz` off the same loops. Fully instrumented through the
//!   engine's own [`obs`] registry (`net_*` and `reactor_*` metric sets)
//!   and event ring.
//! * [`client`] — a blocking client with connect/request timeouts,
//!   exponential-backoff reconnect, and a batched push API.
//!
//! The `net_loadgen` binary drives N concurrent client connections against
//! a fault-injected fleet and emits `results/BENCH_net.json` (request and
//! sample throughput, ceil-rank round-trip latency percentiles).
#![warn(missing_docs)]

pub mod client;
pub mod cluster;
mod http;
pub mod msg;
pub mod server;
pub mod wire;

pub use client::{Client, ClientConfig, ServerInfo};
pub use cluster::{Admission, ClusterHooks, PushDedup};
pub use msg::{
    ErrorCode, HealthReply, OpCode, PredictReply, PushOutcome, PushSeqOutcome, Request, Response,
    StreamInfoReply, StreamTuning,
};
pub use server::{Server, ServerConfig};
pub use wire::{Frame, WireError, PROTOCOL_VERSION};

/// Errors surfaced by the client (and server construction).
#[derive(Debug)]
pub enum NetError {
    /// Connectivity failure (resolve, connect, send, receive) — after the
    /// client's retry budget is exhausted.
    Io(String),
    /// The server answered with a typed error.
    Server {
        /// The wire error code.
        code: ErrorCode,
        /// Server-provided context.
        detail: String,
    },
    /// The peer violated the protocol (undecodable response, correlation
    /// mismatch, unexpected response kind).
    Protocol(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(m) => write!(f, "io: {m}"),
            NetError::Server { code, detail } => {
                write!(f, "server error {}: {detail}", code.name())
            }
            NetError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

impl NetError {
    /// The typed server error code, when this is a server-side error.
    pub fn server_code(&self) -> Option<ErrorCode> {
        match self {
            NetError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }
}
