//! Frame codec: length-prefixed, versioned, CRC-checked binary frames.
//!
//! Every message on the wire — request or response — travels in one frame
//! (all integers little-endian):
//!
//! ```text
//! len        u32    byte length of the body (everything between len and crc)
//! body:
//!   version    u8     PROTOCOL_VERSION (1)
//!   opcode     u8     request opcode, reply opcode (0x80|req) or ERROR (0xFF)
//!   reserved   u16    must be 0 (future flags; non-zero is rejected)
//!   request_id u64    client-chosen, echoed verbatim in the response
//!   payload    ...    opcode-specific encoding (see [`crate::msg`])
//! crc32      u32    CRC-32/IEEE over the body
//! ```
//!
//! The fixed body header is [`HEADER_LEN`] bytes; `len` must be at least
//! that and at most `HEADER_LEN + max_payload`, where `max_payload` is the
//! *reader's* cap — the server defaults to [`MAX_REQUEST_PAYLOAD`], the
//! client to [`MAX_RESPONSE_PAYLOAD`] (checkpoints come back large). A
//! declared length over the cap is rejected *before* any allocation, so a
//! hostile 4 GiB length costs the server twelve bytes of reads, not memory.
//!
//! Decoding never panics: every malformed input maps to a [`WireError`].

use std::io::{Read, Write};

/// Wire protocol version. Bump on any incompatible frame or payload change;
/// the server rejects frames whose version it does not speak with
/// [`crate::msg::ErrorCode::UnsupportedVersion`] (versioning rules:
/// DESIGN.md §6).
pub const PROTOCOL_VERSION: u8 = 1;

/// Fixed body-header length: version + opcode + reserved + request_id.
pub const HEADER_LEN: usize = 12;

/// Default cap on a request frame's payload (server side): 1 MiB.
pub const MAX_REQUEST_PAYLOAD: usize = 1 << 20;

/// Default cap on a response frame's payload (client side): 64 MiB, sized
/// for checkpoint downloads of large fleets.
pub const MAX_RESPONSE_PAYLOAD: usize = 64 << 20;

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Opcode byte (request, reply, or error — see [`crate::msg`]).
    pub opcode: u8,
    /// Client-chosen correlation id, echoed in responses.
    pub request_id: u64,
    /// Opcode-specific payload bytes.
    pub payload: Vec<u8>,
}

/// Why a frame failed to decode (or a read failed).
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket read/write failed or hit EOF mid-frame.
    Io(std::io::Error),
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// Declared body length is below the fixed header size.
    TooShort(u32),
    /// Declared body length exceeds the reader's payload cap.
    TooLarge {
        /// The declared body length.
        declared: u32,
        /// The reader's cap on `HEADER_LEN + payload`.
        cap: usize,
    },
    /// CRC-32 mismatch: the frame was corrupted in transit.
    BadCrc {
        /// CRC carried by the frame.
        expected: u32,
        /// CRC computed over the received body.
        actual: u32,
    },
    /// The frame speaks a protocol version this endpoint does not.
    BadVersion(u8),
    /// The reserved header field was non-zero.
    BadReserved(u16),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io error: {e}"),
            WireError::Closed => write!(f, "connection closed"),
            WireError::TooShort(n) => write!(f, "frame body {n} shorter than header"),
            WireError::TooLarge { declared, cap } => {
                write!(f, "frame body {declared} exceeds cap {cap}")
            }
            WireError::BadCrc { expected, actual } => {
                write!(f, "crc mismatch: frame {expected:#010x}, computed {actual:#010x}")
            }
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadReserved(r) => write!(f, "non-zero reserved field {r:#06x}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// CRC-32/IEEE (reflected, polynomial 0xEDB88320), the Ethernet/zip CRC.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Encodes one frame.
///
/// # Panics
///
/// Panics if the payload exceeds `u32::MAX - HEADER_LEN` bytes — a frame
/// that large is a programming error, not a runtime condition.
pub fn encode(frame: &Frame) -> Vec<u8> {
    let body_len = HEADER_LEN + frame.payload.len();
    assert!(body_len <= u32::MAX as usize, "frame body too large to encode");
    let mut out = Vec::with_capacity(4 + body_len + 4);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.push(PROTOCOL_VERSION);
    out.push(frame.opcode);
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&frame.request_id.to_le_bytes());
    out.extend_from_slice(&frame.payload);
    let crc = crc32(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// One decoded frame whose payload borrows the receive buffer — the
/// zero-copy twin of [`Frame`] used on the server's streaming decode path,
/// where the payload is dispatched and answered before the buffer advances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameRef<'a> {
    /// Opcode byte (request, reply, or error — see [`crate::msg`]).
    pub opcode: u8,
    /// Client-chosen correlation id, echoed in responses.
    pub request_id: u64,
    /// Opcode-specific payload bytes, borrowed from the input slice.
    pub payload: &'a [u8],
}

/// Decodes one frame from a byte slice, returning the frame and the bytes
/// consumed. `Ok(None)` means the slice holds only a frame prefix so far
/// (feed more bytes); errors are permanent for this input.
///
/// This is the allocation-bounded core both [`read_frame`] and the property
/// tests drive: the length field is validated against `max_payload` before
/// anything is sliced.
pub fn decode(buf: &[u8], max_payload: usize) -> Result<Option<(Frame, usize)>, WireError> {
    match decode_ref(buf, max_payload)? {
        Some((f, used)) => Ok(Some((
            Frame { opcode: f.opcode, request_id: f.request_id, payload: f.payload.to_vec() },
            used,
        ))),
        None => Ok(None),
    }
}

/// [`decode`] without the payload copy: the returned [`FrameRef`] borrows
/// `buf`. Same validation order — the declared length is checked against
/// `max_payload` before anything is sliced.
pub fn decode_ref(
    buf: &[u8],
    max_payload: usize,
) -> Result<Option<(FrameRef<'_>, usize)>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let body_len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
    check_len(body_len as u32, max_payload)?;
    let total = 4 + body_len + 4;
    if buf.len() < total {
        return Ok(None);
    }
    let body = &buf[4..4 + body_len];
    let carried = u32::from_le_bytes(buf[4 + body_len..total].try_into().expect("4 bytes"));
    check_body(body, carried)?;
    Ok(Some((
        FrameRef {
            opcode: body[1],
            request_id: u64::from_le_bytes(body[4..12].try_into().expect("8 bytes")),
            payload: &body[HEADER_LEN..],
        },
        total,
    )))
}

/// Validates a declared body length against the fixed header size and the
/// reader's payload cap.
fn check_len(body_len: u32, max_payload: usize) -> Result<(), WireError> {
    if (body_len as usize) < HEADER_LEN {
        return Err(WireError::TooShort(body_len));
    }
    if body_len as usize > HEADER_LEN + max_payload {
        return Err(WireError::TooLarge { declared: body_len, cap: HEADER_LEN + max_payload });
    }
    Ok(())
}

/// Verifies the CRC, version, and reserved field of a frame body.
fn check_body(body: &[u8], carried_crc: u32) -> Result<(), WireError> {
    let actual = crc32(body);
    if actual != carried_crc {
        return Err(WireError::BadCrc { expected: carried_crc, actual });
    }
    // CRC passed, so the header is trustworthy (body length was validated
    // against HEADER_LEN before the body was read).
    let version = body[0];
    if version != PROTOCOL_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let reserved = u16::from_le_bytes(body[2..4].try_into().expect("2 bytes"));
    if reserved != 0 {
        return Err(WireError::BadReserved(reserved));
    }
    Ok(())
}

/// Verifies the CRC and splits a frame body into its parts.
fn decode_body(body: &[u8], carried_crc: u32) -> Result<Frame, WireError> {
    check_body(body, carried_crc)?;
    Ok(Frame {
        opcode: body[1],
        request_id: u64::from_le_bytes(body[4..12].try_into().expect("8 bytes")),
        payload: body[HEADER_LEN..].to_vec(),
    })
}

/// Reads exactly one frame from a blocking reader.
///
/// Distinguishes a clean close (EOF before any length byte →
/// [`WireError::Closed`]) from a mid-frame truncation ([`WireError::Io`]).
/// The length field is validated before the body allocation.
pub fn read_frame(r: &mut impl Read, max_payload: usize) -> Result<Frame, WireError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Err(WireError::Closed),
            Ok(0) => {
                return Err(WireError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside frame length",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let body_len = u32::from_le_bytes(len_buf);
    check_len(body_len, max_payload)?;
    let mut rest = vec![0u8; body_len as usize + 4];
    r.read_exact(&mut rest)?;
    let carried = u32::from_le_bytes(rest[body_len as usize..].try_into().expect("4 crc bytes"));
    decode_body(&rest[..body_len as usize], carried)
}

/// Writes one frame to a blocking writer and flushes it.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    w.write_all(&encode(frame))?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(opcode: u8, request_id: u64, payload: &[u8]) -> Frame {
        Frame { opcode, request_id, payload: payload.to_vec() }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip() {
        for f in [
            frame(0x01, 0, b""),
            frame(0x05, u64::MAX, b"\x00\x01\x02"),
            frame(0xFF, 42, &vec![7u8; 4096]),
        ] {
            let bytes = encode(&f);
            let (decoded, used) = decode(&bytes, 1 << 20).unwrap().expect("complete frame");
            assert_eq!(decoded, f);
            assert_eq!(used, bytes.len());
            let mut cursor = std::io::Cursor::new(&bytes);
            assert_eq!(read_frame(&mut cursor, 1 << 20).unwrap(), f);
        }
    }

    #[test]
    fn decode_ref_matches_decode_without_copying() {
        let f = frame(0x05, 77, b"zero-copy");
        let bytes = encode(&f);
        let (r, used) = decode_ref(&bytes, 1 << 20).unwrap().expect("complete frame");
        assert_eq!(r.opcode, f.opcode);
        assert_eq!(r.request_id, f.request_id);
        assert_eq!(r.payload, &f.payload[..]);
        assert_eq!(used, bytes.len());
        for cut in 0..bytes.len() {
            assert!(decode_ref(&bytes[..cut], 1 << 20).unwrap().is_none(), "cut {cut}");
        }
    }

    #[test]
    fn incomplete_prefixes_ask_for_more() {
        let bytes = encode(&frame(0x04, 9, b"payload"));
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut], 1 << 20).unwrap().is_none(), "cut {cut}");
        }
    }

    #[test]
    fn corrupt_crc_is_rejected() {
        let mut bytes = encode(&frame(0x04, 9, b"payload"));
        let n = bytes.len();
        bytes[n - 1] ^= 0x40;
        assert!(matches!(decode(&bytes, 1 << 20), Err(WireError::BadCrc { .. })));
    }

    #[test]
    fn every_single_bit_flip_in_the_body_is_caught() {
        let bytes = encode(&frame(0x08, 3, b"abcdef"));
        for byte in 4..bytes.len() - 4 {
            let mut m = bytes.clone();
            m[byte] ^= 1;
            assert!(
                matches!(decode(&m, 1 << 20), Err(WireError::BadCrc { .. })),
                "flip at byte {byte} slipped through"
            );
        }
    }

    #[test]
    fn oversized_declared_length_rejected_before_allocation() {
        let mut bytes = encode(&frame(0x04, 9, b""));
        bytes[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode(&bytes, 1 << 20), Err(WireError::TooLarge { .. })));
        // The blocking reader must reject it from the length field alone.
        let huge_len = u32::MAX.to_le_bytes();
        let mut cursor = std::io::Cursor::new(&huge_len[..]);
        assert!(matches!(read_frame(&mut cursor, 1 << 20), Err(WireError::TooLarge { .. })));
    }

    #[test]
    fn undersized_declared_length_rejected() {
        let mut bytes = encode(&frame(0x04, 9, b""));
        bytes[..4].copy_from_slice(&3u32.to_le_bytes());
        assert!(matches!(decode(&bytes, 1 << 20), Err(WireError::TooShort(3))));
    }

    #[test]
    fn wrong_version_and_reserved_are_rejected() {
        // Re-encode with a patched body and a *valid* CRC, so the version
        // check itself is exercised rather than the CRC.
        let mut bytes = encode(&frame(0x04, 9, b"x"));
        bytes[4] = 2;
        let body_end = bytes.len() - 4;
        let crc = crc32(&bytes[4..body_end]);
        bytes[body_end..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(decode(&bytes, 1 << 20), Err(WireError::BadVersion(2))));

        let mut bytes = encode(&frame(0x04, 9, b"x"));
        bytes[6] = 0xAA;
        let crc = crc32(&bytes[4..body_end]);
        bytes[body_end..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(decode(&bytes, 1 << 20), Err(WireError::BadReserved(0xAA))));
    }

    #[test]
    fn clean_close_vs_truncation() {
        let mut empty = std::io::Cursor::new(&b""[..]);
        assert!(matches!(read_frame(&mut empty, 1 << 20), Err(WireError::Closed)));
        let bytes = encode(&frame(0x04, 9, b"payload"));
        let mut cut = std::io::Cursor::new(&bytes[..bytes.len() - 2]);
        assert!(matches!(read_frame(&mut cut, 1 << 20), Err(WireError::Io(_))));
    }
}
