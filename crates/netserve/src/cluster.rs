//! Cluster-mode server plumbing: the hook trait a cluster node implements
//! to give the server a ring, and the sequenced-push dedup table that makes
//! client retries exactly-once (DESIGN.md §12).
//!
//! The netserve crate stays ring-agnostic: it never decodes a ring blob,
//! never picks an owner, never speaks the standby codec. A clustered server
//! ([`crate::Server::start_clustered`]) routes those decisions through a
//! [`ClusterHooks`] implementation (the cluster crate's node state); a
//! plain [`crate::Server::start`] has no hooks and serves every stream.

use std::collections::HashMap;
use std::sync::Mutex;

/// What a cluster node lends the server: ring state for redirects, a ring
/// installer, and a sink for the warm-standby feed.
///
/// All methods are called from the server's event-loop threads and must not
/// block on the network.
pub trait ClusterHooks: Send + Sync {
    /// Version of the currently installed ring (0 = none yet).
    fn ring_version(&self) -> u64;

    /// The currently installed ring, encoded (empty = none yet).
    fn ring_blob(&self) -> Vec<u8>;

    /// Installs a ring; returns a human-readable refusal (stale version,
    /// undecodable blob) that surfaces as an `InvalidConfig` wire error.
    fn ring_update(&self, version: u64, blob: &[u8]) -> Result<(), String>;

    /// `Some(owner_addr)` when this node does not own `stream` under the
    /// installed ring — the caller answers [`crate::msg::ErrorCode::NotOwner`]
    /// with that address. `None` means serve it here (including when no
    /// ring is installed yet).
    fn redirect(&self, stream: u64) -> Option<String>;

    /// Applies one warm-standby feed chunk (opaque to netserve).
    fn standby_feed(&self, payload: &[u8]) -> Result<(), String>;
}

/// Per-`(client, stream)` sequence tracking for [`crate::msg::Request::PushSeq`]:
/// drops retried samples that were already applied, turning the client's
/// at-least-once retry into exactly-once ingestion.
///
/// Two tables:
///
/// * `last` — highest applied sequence per `(client, stream)`, advanced
///   only when the engine applied the whole admitted batch.
/// * `floor` — per-stream lower bound armed by migration/failover. The
///   gaining node knows how many samples the stream has absorbed
///   (`next_minute`) but not which client pushed them; since sequences
///   count samples (1, 2, 3, …) from one logical writer per stream, any
///   `seq <= floor` is already in the restored state.
///
/// Dedup assumes one in-flight sequenced batch per client name (the
/// blocking [`crate::Client`] guarantees this per connection).
#[derive(Default)]
pub struct PushDedup {
    inner: Mutex<DedupInner>,
}

#[derive(Default)]
struct DedupInner {
    last: HashMap<(String, u64), u64>,
    floor: HashMap<u64, u64>,
}

/// A screened batch: what to feed the engine, what was dropped, and the
/// commit token that advances the dedup state once the engine applied it.
pub struct Admission {
    /// Samples to feed, in request order, duplicates removed.
    pub admitted: Vec<(u64, f64)>,
    /// Samples dropped as already applied.
    pub deduped: u64,
    /// `(client, stream) -> highest admitted seq`, applied on commit.
    pending: Vec<((String, u64), u64)>,
}

impl PushDedup {
    /// An empty dedup table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Screens a sequenced batch against the table. `seq` 0 is always
    /// admitted (unsequenced); a sequenced sample is admitted only when its
    /// seq exceeds both the client's `last` and the stream's `floor`, with
    /// in-batch runs (seq k, k+1, …) tracked so only true retries drop.
    pub fn screen(&self, client: &str, samples: &[(u64, u64, f64)]) -> Admission {
        let inner = self.inner.lock().expect("dedup lock");
        let mut admitted = Vec::with_capacity(samples.len());
        let mut deduped = 0u64;
        let mut high: HashMap<u64, u64> = HashMap::new();
        for &(id, seq, value) in samples {
            if seq == 0 {
                admitted.push((id, value));
                continue;
            }
            let applied =
                high.get(&id).copied().unwrap_or_else(|| self.applied_locked(&inner, client, id));
            if seq <= applied {
                deduped += 1;
            } else {
                admitted.push((id, value));
                high.insert(id, seq);
            }
        }
        drop(inner);
        let pending = high.into_iter().map(|(id, seq)| ((client.to_string(), id), seq)).collect();
        Admission { admitted, deduped, pending }
    }

    /// Advances the dedup state for a screened batch the engine fully
    /// applied. Skipping the commit (partial application) leaves the state
    /// untouched, so the client's retry is re-screened from scratch.
    pub fn commit(&self, admission: &Admission) {
        let mut inner = self.inner.lock().expect("dedup lock");
        for (key, seq) in &admission.pending {
            let e = inner.last.entry(key.clone()).or_insert(0);
            *e = (*e).max(*seq);
        }
    }

    /// Arms `stream`'s floor after migration or failover: any sequenced
    /// push with `seq <= floor` is already part of the restored state.
    pub fn set_floor(&self, stream: u64, floor: u64) {
        let mut inner = self.inner.lock().expect("dedup lock");
        let e = inner.floor.entry(stream).or_insert(0);
        *e = (*e).max(floor);
    }

    /// The stream's current floor (0 if never armed).
    pub fn floor_of(&self, stream: u64) -> u64 {
        self.inner.lock().expect("dedup lock").floor.get(&stream).copied().unwrap_or(0)
    }

    /// Highest applied sequence for `(client, stream)` — the echo a
    /// reconnecting client resynchronizes from.
    pub fn last_seq(&self, client: &str, stream: u64) -> u64 {
        let inner = self.inner.lock().expect("dedup lock");
        self.applied_locked(&inner, client, stream)
    }

    fn applied_locked(&self, inner: &DedupInner, client: &str, stream: u64) -> u64 {
        let last = inner.last.get(&(client.to_string(), stream)).copied().unwrap_or(0);
        last.max(inner.floor.get(&stream).copied().unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triples(id: u64, seqs: std::ops::RangeInclusive<u64>) -> Vec<(u64, u64, f64)> {
        seqs.map(|s| (id, s, s as f64)).collect()
    }

    #[test]
    fn fresh_batch_admits_everything_and_retry_drops_it() {
        let dedup = PushDedup::new();
        let batch = triples(7, 1..=5);
        let a = dedup.screen("c", &batch);
        assert_eq!(a.admitted.len(), 5);
        assert_eq!(a.deduped, 0);
        dedup.commit(&a);
        assert_eq!(dedup.last_seq("c", 7), 5);

        let retry = dedup.screen("c", &batch);
        assert!(retry.admitted.is_empty());
        assert_eq!(retry.deduped, 5);

        // A partial retry (overlap + fresh tail) admits only the tail.
        let tail = triples(7, 4..=8);
        let a = dedup.screen("c", &tail);
        assert_eq!(a.admitted.len(), 3);
        assert_eq!(a.deduped, 2);
        dedup.commit(&a);
        assert_eq!(dedup.last_seq("c", 7), 8);
    }

    #[test]
    fn uncommitted_screens_do_not_advance() {
        let dedup = PushDedup::new();
        let batch = triples(1, 1..=3);
        let a = dedup.screen("c", &batch);
        assert_eq!(a.admitted.len(), 3);
        drop(a); // engine rejected part of the batch: no commit
        let again = dedup.screen("c", &batch);
        assert_eq!(again.admitted.len(), 3, "state untouched without commit");
    }

    #[test]
    fn floors_cover_unknown_clients_and_zero_seq_bypasses() {
        let dedup = PushDedup::new();
        dedup.set_floor(9, 40);
        let a = dedup.screen("never-seen", &triples(9, 35..=42));
        assert_eq!(a.deduped, 6, "seqs 35..=40 are under the floor");
        assert_eq!(a.admitted.len(), 2);
        assert_eq!(dedup.last_seq("never-seen", 9), 40);

        // Floors only ratchet up.
        dedup.set_floor(9, 10);
        assert_eq!(dedup.floor_of(9), 40);

        // seq 0 is the unsequenced escape hatch.
        let a = dedup.screen("x", &[(9, 0, 1.0), (9, 0, 2.0)]);
        assert_eq!(a.admitted.len(), 2);
        assert_eq!(a.deduped, 0);
    }

    #[test]
    fn clients_are_isolated() {
        let dedup = PushDedup::new();
        let a = dedup.screen("a", &triples(3, 1..=4));
        dedup.commit(&a);
        let b = dedup.screen("b", &triples(3, 1..=4));
        assert_eq!(b.admitted.len(), 4, "another client's seqs are its own");
    }
}
