//! Blocking client: connect/request timeouts, exponential-backoff
//! reconnect, and a typed API over every opcode.
//!
//! A [`Client`] owns one TCP connection and re-establishes it transparently:
//! when a request fails on an I/O error the client reconnects (backing off
//! exponentially from [`ClientConfig::reconnect_base`] up to
//! [`ClientConfig::reconnect_max`]) and retries, up to
//! [`ClientConfig::max_attempts`] total attempts. Typed server errors
//! ([`Response::Error`]) are returned immediately — they are answers, not
//! connectivity failures. Note the retry is at-least-once for pushes: a
//! request whose response was lost in transit may have been applied.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::msg::{
    HealthReply, PredictReply, PushOutcome, PushSeqOutcome, Request, Response, StreamInfoReply,
    StreamTuning,
};
use crate::wire::{self, Frame, WireError, MAX_RESPONSE_PAYLOAD};
use crate::NetError;

/// Client tuning.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Socket read/write timeout per request.
    pub request_timeout: Duration,
    /// First reconnect backoff delay; doubles per consecutive failure.
    pub reconnect_base: Duration,
    /// Backoff ceiling.
    pub reconnect_max: Duration,
    /// Total attempts per request (1 = no retry).
    pub max_attempts: u32,
    /// Cap on one response frame's payload (checkpoints come back large).
    pub max_response_payload: usize,
    /// Name sent in the `Hello` handshake after every (re)connect.
    pub client_name: String,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(10),
            reconnect_base: Duration::from_millis(50),
            reconnect_max: Duration::from_secs(2),
            max_attempts: 4,
            max_response_payload: MAX_RESPONSE_PAYLOAD,
            client_name: "netserve-client".into(),
        }
    }
}

/// What the server said hello back with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerInfo {
    /// Server protocol version.
    pub version: u8,
    /// Shard (worker) count.
    pub shards: u16,
    /// Streams registered at handshake time.
    pub streams: u64,
}

/// A blocking client for one netserve server.
pub struct Client {
    addr: SocketAddr,
    config: ClientConfig,
    conn: Option<TcpStream>,
    next_request_id: u64,
    /// Result of the most recent `Hello` handshake.
    server: Option<ServerInfo>,
    /// Consecutive connect failures, drives the backoff exponent.
    connect_failures: u32,
}

impl Client {
    /// Resolves `addr` and connects (including the `Hello` handshake).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when resolution or the first connection
    /// fails, or any handshake-level error.
    pub fn connect(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<Client, NetError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| NetError::Io(format!("resolve: {e}")))?
            .next()
            .ok_or_else(|| NetError::Io("address resolved to nothing".into()))?;
        let mut client = Client {
            addr,
            config,
            conn: None,
            next_request_id: 1,
            server: None,
            connect_failures: 0,
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// The server-reported shape from the most recent handshake.
    pub fn server_info(&self) -> Option<ServerInfo> {
        self.server
    }

    fn ensure_connected(&mut self) -> Result<(), NetError> {
        if self.conn.is_some() {
            return Ok(());
        }
        if self.connect_failures > 0 {
            let exp = (self.connect_failures - 1).min(16);
            let delay = self
                .config
                .reconnect_base
                .saturating_mul(1u32 << exp)
                .min(self.config.reconnect_max);
            std::thread::sleep(delay);
        }
        let stream =
            TcpStream::connect_timeout(&self.addr, self.config.connect_timeout).map_err(|e| {
                self.connect_failures += 1;
                NetError::Io(format!("connect {}: {e}", self.addr))
            })?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(self.config.request_timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.config.request_timeout)))
            .map_err(|e| NetError::Io(format!("set timeouts: {e}")))?;
        self.conn = Some(stream);
        // Handshake on the fresh connection; failure drops it again.
        let name = self.config.client_name.clone();
        match self.roundtrip(&Request::Hello { client: name }) {
            Ok(Response::Hello { version, shards, streams }) => {
                self.connect_failures = 0;
                self.server = Some(ServerInfo { version, shards, streams });
                Ok(())
            }
            Ok(other) => {
                self.conn = None;
                self.connect_failures += 1;
                Err(NetError::Protocol(format!("hello answered with {other:?}")))
            }
            Err(e) => {
                self.conn = None;
                self.connect_failures += 1;
                Err(e)
            }
        }
    }

    /// One send/receive on the current connection, no retry logic.
    fn roundtrip(&mut self, request: &Request) -> Result<Response, NetError> {
        let stream = self.conn.as_mut().expect("roundtrip requires a connection");
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        let frame =
            Frame { opcode: request.opcode() as u8, request_id, payload: request.encode_payload() };
        wire::write_frame(stream, &frame).map_err(wire_to_net)?;
        let reply =
            wire::read_frame(stream, self.config.max_response_payload).map_err(wire_to_net)?;
        // request_id 0 marks a connection-level error (e.g. the acceptor
        // refusing an over-limit connection before any request was read).
        if reply.request_id != request_id && reply.request_id != 0 {
            return Err(NetError::Protocol(format!(
                "response correlates to request {} but {} is in flight",
                reply.request_id, request_id
            )));
        }
        let response =
            Response::decode(reply.opcode, &reply.payload).map_err(NetError::Protocol)?;
        if let Response::Error { code, detail } = response {
            return Err(NetError::Server { code, detail });
        }
        if reply.request_id == 0 {
            return Err(NetError::Protocol(format!(
                "unsolicited non-error response: {response:?}"
            )));
        }
        Ok(response)
    }

    /// Sends a request, reconnecting with exponential backoff on I/O
    /// failures, up to `max_attempts` total attempts.
    ///
    /// # Errors
    ///
    /// [`NetError::Server`] for typed server errors (no retry),
    /// [`NetError::Io`] once attempts are exhausted, [`NetError::Protocol`]
    /// for undecodable or mis-correlated responses.
    pub fn request(&mut self, request: &Request) -> Result<Response, NetError> {
        let mut last = None;
        for _ in 0..self.config.max_attempts.max(1) {
            if let Err(e) = self.ensure_connected() {
                last = Some(e);
                continue;
            }
            match self.roundtrip(request) {
                Ok(resp) => return Ok(resp),
                Err(e @ (NetError::Server { .. } | NetError::Protocol(_))) => return Err(e),
                Err(e) => {
                    // I/O failure: the connection is suspect. Drop it and
                    // let the next attempt reconnect under backoff.
                    self.conn = None;
                    self.connect_failures += 1;
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| NetError::Io("no attempts made".into())))
    }

    fn expect<T>(
        &mut self,
        request: &Request,
        extract: impl FnOnce(Response) -> Option<T>,
    ) -> Result<T, NetError> {
        let response = self.request(request)?;
        let desc = format!("{response:?}");
        extract(response)
            .ok_or_else(|| NetError::Protocol(format!("mismatched response kind: {desc}")))
    }

    /// Registers `id` with the server's default stream configuration.
    pub fn register(&mut self, id: u64) -> Result<(), NetError> {
        self.expect(&Request::Register { id }, |r| matches!(r, Response::Register).then_some(()))
    }

    /// Registers `id` with explicit tuning.
    pub fn register_with(&mut self, id: u64, tuning: StreamTuning) -> Result<(), NetError> {
        self.expect(&Request::RegisterWith { id, tuning }, |r| {
            matches!(r, Response::RegisterWith).then_some(())
        })
    }

    /// Pushes one auto-clocked sample. A backpressure rejection surfaces as
    /// [`NetError::Server`] with [`crate::msg::ErrorCode::Backpressure`].
    pub fn push(&mut self, id: u64, value: f64) -> Result<PushOutcome, NetError> {
        self.expect(&Request::Push { id, minute: None, value }, |r| match r {
            Response::Push(o) => Some(o),
            _ => None,
        })
    }

    /// Pushes one sample with an explicit minute timestamp.
    pub fn push_at(&mut self, id: u64, minute: u64, value: f64) -> Result<PushOutcome, NetError> {
        self.expect(&Request::Push { id, minute: Some(minute), value }, |r| match r {
            Response::Push(o) => Some(o),
            _ => None,
        })
    }

    /// Pushes a batch of auto-clocked samples in one round trip — the bulk
    /// ingestion path; per-sample backpressure outcomes come back in the
    /// [`PushOutcome`] counts.
    pub fn push_batch(&mut self, samples: &[(u64, f64)]) -> Result<PushOutcome, NetError> {
        self.expect(&Request::PushBatch { samples: samples.to_vec() }, |r| match r {
            Response::PushBatch(o) => Some(o),
            _ => None,
        })
    }

    /// Pushes sequenced auto-clocked samples under this client's name
    /// ([`ClientConfig::client_name`]). The server drops samples whose
    /// `seq` it already applied, so the at-least-once retry of this client
    /// becomes exactly-once ingestion; the outcome echoes each touched
    /// stream's highest applied sequence.
    pub fn push_seq(&mut self, samples: &[(u64, u64, f64)]) -> Result<PushSeqOutcome, NetError> {
        let client = self.config.client_name.clone();
        self.expect(&Request::PushSeq { client, samples: samples.to_vec() }, |r| match r {
            Response::PushSeq(o) => Some(o),
            _ => None,
        })
    }

    /// Reads the node's current cluster ring: `(version, encoded ring)`.
    pub fn ring_info(&mut self) -> Result<(u64, Vec<u8>), NetError> {
        self.expect(&Request::RingInfo, |r| match r {
            Response::Ring { version, blob } => Some((version, blob)),
            _ => None,
        })
    }

    /// Installs a new cluster ring on the node.
    pub fn ring_update(&mut self, version: u64, blob: Vec<u8>) -> Result<(), NetError> {
        self.expect(&Request::RingUpdate { version, blob }, |r| {
            matches!(r, Response::RingUpdate).then_some(())
        })
    }

    /// Fences `id` on the losing node (redirecting new pushes to `dest`)
    /// and exports its state: `(next_minute, dedup floor, snapshot)`.
    pub fn migrate_out(&mut self, id: u64, dest: &str) -> Result<(u64, u64, Vec<u8>), NetError> {
        self.expect(&Request::MigrateOut { id, dest: dest.into() }, |r| match r {
            Response::MigrateOut { next_minute, floor, snapshot } => {
                Some((next_minute, floor, snapshot))
            }
            _ => None,
        })
    }

    /// Imports a migrated stream on the gaining node.
    pub fn migrate_in(
        &mut self,
        id: u64,
        next_minute: u64,
        floor: u64,
        snapshot: Vec<u8>,
    ) -> Result<(), NetError> {
        self.expect(&Request::MigrateIn { id, next_minute, floor, snapshot }, |r| {
            matches!(r, Response::MigrateIn).then_some(())
        })
    }

    /// Delivers one warm-standby feed chunk to the node.
    pub fn standby_feed(&mut self, payload: Vec<u8>) -> Result<(), NetError> {
        self.expect(&Request::StandbyFeed { payload }, |r| {
            matches!(r, Response::StandbyFeed).then_some(())
        })
    }

    /// Reads `id`'s latest forecast and health.
    pub fn predict(&mut self, id: u64) -> Result<PredictReply, NetError> {
        self.expect(&Request::Predict { id }, |r| match r {
            Response::Predict(p) => Some(p),
            _ => None,
        })
    }

    /// Reads `id`'s full serving view.
    pub fn stream_info(&mut self, id: u64) -> Result<StreamInfoReply, NetError> {
        self.expect(&Request::StreamInfo { id }, |r| match r {
            Response::StreamInfo(s) => Some(s),
            _ => None,
        })
    }

    /// Reads the fleet-wide health rollup.
    pub fn health(&mut self) -> Result<HealthReply, NetError> {
        self.expect(&Request::Health, |r| match r {
            Response::Health(h) => Some(h),
            _ => None,
        })
    }

    /// Downloads a full fleet checkpoint (FLEETCKP bytes, restorable via
    /// `FleetEngine::restore`).
    pub fn checkpoint(&mut self) -> Result<Vec<u8>, NetError> {
        self.expect(&Request::Checkpoint, |r| match r {
            Response::Checkpoint(b) => Some(b),
            _ => None,
        })
    }

    /// Evicts `id`.
    pub fn evict(&mut self, id: u64) -> Result<(), NetError> {
        self.expect(&Request::Evict { id }, |r| matches!(r, Response::Evict).then_some(()))
    }

    /// Asks the server to shut down gracefully. The acknowledgement is the
    /// last frame this connection will carry.
    pub fn shutdown_server(&mut self) -> Result<(), NetError> {
        let result =
            self.expect(&Request::Shutdown, |r| matches!(r, Response::Shutdown).then_some(()));
        // The server closes after acking; don't try to reuse the socket.
        self.conn = None;
        result
    }
}

fn wire_to_net(e: WireError) -> NetError {
    match e {
        WireError::Io(io) => NetError::Io(io.to_string()),
        WireError::Closed => NetError::Io("connection closed by server".into()),
        other => NetError::Protocol(other.to_string()),
    }
}
