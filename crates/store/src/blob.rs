//! Hibernation blob store: a memory-spill cache for cold-stream snapshots.
//!
//! The fleet engine hibernates idle streams by serializing their full guarded
//! state (a `LARPSNAP` blob) to disk and keeping only a tiny tombstone
//! resident (DESIGN.md §11). This store holds those blobs. It is a **cache**,
//! not a durability layer:
//!
//! * Durability still comes from checkpoint + WAL. Recovery never reads
//!   blobs — it rebuilds every stream live and calls [`BlobStore::clear`] to
//!   drop the stale spill file.
//! * Writes are not fsynced. Within a running process the page cache makes
//!   them reliable, and after a crash the file is discarded anyway.
//!
//! Layout: one append-only file of `[id u64][len u32][crc u32][payload]`
//! frames plus an in-memory index `id → (offset, len, crc)`. Reads are
//! positional (`pread`), so concurrent readers never contend on a seek
//! cursor. Deleting a blob only drops its index entry — the bytes stay in
//! the file as dead space until [`BlobStore::put`] notices the file is more
//! than half dead (and past a slack floor) and rewrites the live blobs.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use crate::{crc32, Result, StoreError};

/// Per-frame header: id (8) + payload length (4) + payload CRC (4).
const FRAME_HEADER: u64 = 16;

/// Dead space below this floor never triggers compaction, so small stores
/// don't churn.
const COMPACT_FLOOR_BYTES: u64 = 1 << 20;

#[derive(Debug, Clone, Copy)]
struct BlobEntry {
    /// Offset of the payload (not the frame header) in the file.
    offset: u64,
    len: u32,
    crc: u32,
}

/// Append-only spill file for hibernated stream snapshots.
#[derive(Debug)]
pub struct BlobStore {
    path: PathBuf,
    file: File,
    index: HashMap<u64, BlobEntry>,
    /// Next append offset.
    tail: u64,
    /// Payload + header bytes owned by live index entries.
    live_bytes: u64,
    /// Bytes of deleted/overwritten frames awaiting compaction.
    dead_bytes: u64,
}

impl BlobStore {
    /// Opens (and truncates) the spill file at `path`. Truncation is the
    /// point: blobs never survive a restart — recovery rebuilds streams from
    /// checkpoint + WAL, so anything on disk here is stale.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(&path)?;
        Ok(Self { path, file, index: HashMap::new(), tail: 0, live_bytes: 0, dead_bytes: 0 })
    }

    /// Stores `bytes` under `id`, replacing any previous blob for the id.
    pub fn put(&mut self, id: u64, bytes: &[u8]) -> Result<()> {
        let len = u32::try_from(bytes.len()).map_err(|_| {
            StoreError::InvalidConfig(format!("blob for stream {id} exceeds u32 length"))
        })?;
        if let Some(old) = self.index.remove(&id) {
            self.retire(&old);
        }
        self.maybe_compact()?;
        let crc = crc32(bytes);
        let mut frame = Vec::with_capacity(FRAME_HEADER as usize + bytes.len());
        frame.extend_from_slice(&id.to_le_bytes());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&crc.to_le_bytes());
        frame.extend_from_slice(bytes);
        self.file.write_all_at(&frame, self.tail)?;
        let offset = self.tail + FRAME_HEADER;
        self.tail += frame.len() as u64;
        self.live_bytes += frame.len() as u64;
        self.index.insert(id, BlobEntry { offset, len, crc });
        Ok(())
    }

    /// Reads the blob stored under `id`, or `None` if absent. A CRC mismatch
    /// (torn write, bit flip) is an error — the caller must treat the spilled
    /// state as lost, not silently restore garbage.
    pub fn get(&self, id: u64) -> Result<Option<Vec<u8>>> {
        let Some(entry) = self.index.get(&id) else { return Ok(None) };
        let mut buf = vec![0u8; entry.len as usize];
        self.file.read_exact_at(&mut buf, entry.offset)?;
        if crc32(&buf) != entry.crc {
            return Err(StoreError::Corrupt(format!("blob crc mismatch for stream {id}")));
        }
        Ok(Some(buf))
    }

    /// Drops the blob for `id` (on wake or evict). The bytes become dead
    /// space until a later [`BlobStore::put`] compacts.
    pub fn delete(&mut self, id: u64) -> bool {
        match self.index.remove(&id) {
            Some(entry) => {
                self.retire(&entry);
                true
            }
            None => false,
        }
    }

    /// Drops every blob and truncates the file (checkpoint load / recovery).
    pub fn clear(&mut self) -> Result<()> {
        self.index.clear();
        self.file.set_len(0)?;
        self.tail = 0;
        self.live_bytes = 0;
        self.dead_bytes = 0;
        Ok(())
    }

    /// Iterates the ids of all stored blobs (checkpoint inlining).
    pub fn ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.index.keys().copied()
    }

    /// Whether a blob exists for `id`.
    pub fn contains(&self, id: u64) -> bool {
        self.index.contains_key(&id)
    }

    /// Number of stored blobs.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no blobs.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// File bytes owned by live blobs (header + payload).
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// File bytes of deleted frames awaiting compaction.
    pub fn dead_bytes(&self) -> u64 {
        self.dead_bytes
    }

    fn retire(&mut self, entry: &BlobEntry) {
        let frame = FRAME_HEADER + entry.len as u64;
        self.live_bytes -= frame;
        self.dead_bytes += frame;
    }

    /// Rewrites live blobs into a fresh file when more than half the file is
    /// dead space (and the waste is past a slack floor). Keeps the long-lived
    /// hibernate/wake churn from leaking the file without bound.
    fn maybe_compact(&mut self) -> Result<()> {
        if self.dead_bytes <= COMPACT_FLOOR_BYTES || self.dead_bytes <= self.live_bytes {
            return Ok(());
        }
        let tmp_path = self.path.with_extension("blob.tmp");
        let tmp = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        let mut tail = 0u64;
        let mut frame = Vec::new();
        for (id, entry) in self.index.iter_mut() {
            let mut buf = vec![0u8; entry.len as usize];
            self.file.read_exact_at(&mut buf, entry.offset)?;
            frame.clear();
            frame.extend_from_slice(&id.to_le_bytes());
            frame.extend_from_slice(&entry.len.to_le_bytes());
            frame.extend_from_slice(&entry.crc.to_le_bytes());
            frame.extend_from_slice(&buf);
            tmp.write_all_at(&frame, tail)?;
            entry.offset = tail + FRAME_HEADER;
            tail += frame.len() as u64;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        self.file = tmp;
        self.tail = tail;
        self.live_bytes = tail;
        self.dead_bytes = 0;
        Ok(())
    }
}

impl Drop for BlobStore {
    fn drop(&mut self) {
        // Best-effort: the file is a cache; leave nothing stale behind.
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("blobstore-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn put_get_delete_round_trip() {
        let mut store = BlobStore::open(temp_path("roundtrip")).unwrap();
        store.put(7, b"hello").unwrap();
        store.put(9, b"world!").unwrap();
        assert_eq!(store.get(7).unwrap().unwrap(), b"hello");
        assert_eq!(store.get(9).unwrap().unwrap(), b"world!");
        assert_eq!(store.get(8).unwrap(), None);
        assert!(store.contains(7));
        assert_eq!(store.len(), 2);
        assert!(store.delete(7));
        assert!(!store.delete(7));
        assert_eq!(store.get(7).unwrap(), None);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn overwrite_replaces_and_retires_old_bytes() {
        let mut store = BlobStore::open(temp_path("overwrite")).unwrap();
        store.put(1, b"aaaa").unwrap();
        let live_before = store.live_bytes();
        store.put(1, b"bbbbbbbb").unwrap();
        assert_eq!(store.get(1).unwrap().unwrap(), b"bbbbbbbb");
        assert_eq!(store.dead_bytes(), live_before);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn clear_truncates_everything() {
        let mut store = BlobStore::open(temp_path("clear")).unwrap();
        for id in 0..10u64 {
            store.put(id, &[id as u8; 32]).unwrap();
        }
        store.clear().unwrap();
        assert!(store.is_empty());
        assert_eq!(store.live_bytes(), 0);
        assert_eq!(store.get(3).unwrap(), None);
        // Usable after clear.
        store.put(3, b"back").unwrap();
        assert_eq!(store.get(3).unwrap().unwrap(), b"back");
    }

    #[test]
    fn corrupt_payload_is_detected() {
        let path = temp_path("corrupt");
        let mut store = BlobStore::open(&path).unwrap();
        store.put(5, b"precious bytes").unwrap();
        // Flip a byte of the payload on disk behind the store's back.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.write_all_at(b"X", FRAME_HEADER + 2).unwrap();
        match store.get(5) {
            Err(StoreError::Corrupt(_)) => {}
            other => panic!("expected corruption error, got {other:?}"),
        }
    }

    #[test]
    fn compaction_reclaims_dead_space() {
        let mut store = BlobStore::open(temp_path("compact")).unwrap();
        let big = vec![0xabu8; 300 * 1024];
        // Overwrite the same ids until dead bytes cross the floor and exceed
        // live bytes; the next put must compact back down.
        for round in 0..4u64 {
            for id in 0..3u64 {
                store.put(id, &big).unwrap();
            }
            let _ = round;
        }
        // Without compaction 9 overwritten frames (~2.7 MiB) would be dead;
        // the store must have folded them back under the slack floor.
        assert!(store.dead_bytes() <= COMPACT_FLOOR_BYTES, "compaction never ran");
        for id in 0..3u64 {
            assert_eq!(store.get(id).unwrap().unwrap(), big);
        }
    }

    #[test]
    fn open_truncates_stale_file() {
        let path = temp_path("truncate");
        {
            let mut store = BlobStore::open(&path).unwrap();
            store.put(1, b"stale").unwrap();
            // Keep the file alive past drop by recreating it below.
        }
        let store = BlobStore::open(&path).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.get(1).unwrap(), None);
    }
}
