//! CRC-32/IEEE — the same reflected-polynomial checksum the netserve wire
//! protocol uses, reimplemented here so the store stays dependency-free.

/// CRC-32/IEEE (reflected, polynomial 0xEDB88320), the Ethernet/zip CRC.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_flips_change_the_crc() {
        let base = crc32(b"durable trace store");
        let mut bytes = b"durable trace store".to_vec();
        for i in 0..bytes.len() * 8 {
            bytes[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&bytes), base, "flip {i} not detected");
            bytes[i / 8] ^= 1 << (i % 8);
        }
    }
}
