//! Durable trace store: crash-safe WAL + tiered RRD archives.
//!
//! Everything the fleet engine serves lives in memory; this crate is the
//! durability layer underneath it. Three cooperating pieces:
//!
//! * **Write-ahead log** ([`Wal`]) — an append-only sequence of CRC-checked,
//!   length-prefixed, sequence-numbered records spread over rotating segment
//!   files with a [manifest](wal). Every accepted sample, registration and
//!   eviction is appended *before* the caller sees an ack, so a crash can
//!   only lose work that was never acknowledged. Recovery scans the segments
//!   and degrades gracefully: torn writes, truncated tails, bit flips and
//!   missing segments stop replay at the last valid record with a counted
//!   gap — never a panic.
//! * **Memtable** ([`Memtable`]) — a bounded in-memory ring of the most
//!   recent raw samples per stream, the fine-grained query surface.
//! * **Tiered archives** ([`TieredArchive`]) — the paper's `vmkusage`
//!   cascade (1-min × 2 h → 5-min × 24 h → 30-min × 7 d): a background
//!   compactor consolidates memtable samples upward so long histories cost
//!   coarse rows, not raw samples.
//!
//! [`TraceStore`] binds the three together behind one handle and persists
//! the memtable + archives as a CRC-checked sidecar next to each checkpoint,
//! so a restart rebuilds the full query surface from checkpoint + WAL tail.
//!
//! The crate is dependency-free (std only) and knows nothing about the fleet
//! engine: records carry plain `(stream, minute, value)` triples and the
//! wire-tunable registration quadruple. The `fleet` crate owns the policy of
//! what gets logged when; this crate owns making it durable.
#![warn(missing_docs)]

pub mod archive;
pub mod blob;
pub mod crc;
pub mod memtable;
pub mod record;
pub mod store;
pub mod tiers;
pub mod wal;

pub use blob::BlobStore;
pub use crc::crc32;
pub use memtable::Memtable;
pub use record::{RegisterTuning, Sample, WalRecord, MAX_RECORD_PAYLOAD};
pub use store::{Recovered, StoreOptions, StoreStats, TraceStore};
pub use tiers::{vmkusage_tiers, TierSpec, TieredArchive};
pub use wal::{read_tail, AppendInfo, FsyncPolicy, RecoveryReport, Wal, WalOptions};

/// Errors from the durable store.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// On-disk bytes failed validation (CRC, magic, bounds). Recovery paths
    /// *count* corruption instead of erroring; this variant surfaces only
    /// where corruption cannot be degraded around (e.g. a checkpoint file).
    Corrupt(String),
    /// An invalid option or argument.
    InvalidConfig(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Corrupt(m) => write!(f, "corrupt store data: {m}"),
            StoreError::InvalidConfig(m) => write!(f, "invalid store config: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, StoreError>;
