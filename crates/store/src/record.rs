//! WAL record codec: length-prefixed, CRC-checked, sequence-numbered.
//!
//! Every durable operation travels as one record (all integers
//! little-endian), following the netserve wire-framing idiom:
//!
//! ```text
//! len    u32    byte length of the body (everything between len and crc)
//! body:
//!   seq    u64    monotonically increasing, contiguous (+1 per record)
//!   kind   u8     record kind (see below)
//!   payload ...   kind-specific encoding
//! crc    u32    CRC-32/IEEE over the body
//! ```
//!
//! Kinds:
//!
//! | kind | record | payload |
//! |---|---|---|
//! | 1 | `Samples` | `count u32`, then per sample: `stream u64`, `flag u8` (1 = explicit minute follows), `[minute u64]`, `value u64` (f64 bits) |
//! | 2 | `Register` | `id u64`, `train_size u32`, `qa_window u32`, `qa_period u32`, `qa_threshold u64` (f64 bits), `f32_history u8` (optional; absent in pre-cluster logs = 0) |
//! | 3 | `Evict` | `id u64` |
//!
//! Decoding never panics and never allocates more than the *declared and
//! validated* length: the length field is checked against the reader's cap
//! before anything is sliced, and the sample count is cross-checked against
//! the remaining payload bytes before the vector is reserved — a forged
//! count costs the reader a comparison, not memory.

use crate::crc::crc32;

/// Fixed body-header length: seq + kind.
pub const RECORD_HEADER_LEN: usize = 9;

/// Cap on one record's payload: 4 MiB, comfortably above the largest sample
/// batch the fleet engine pushes while still bounding a corrupt length.
pub const MAX_RECORD_PAYLOAD: usize = 4 << 20;

/// Smallest on-disk footprint of one encoded sample (stream + flag + value).
const MIN_SAMPLE_LEN: usize = 17;

/// One logged sample: the exact triple the fleet push path accepted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Stream id.
    pub stream: u64,
    /// Explicit sample minute; `None` means auto-clocked at replay, exactly
    /// as the live push was.
    pub minute: Option<u64>,
    /// Sample value (NaN and friends round-trip bit-exactly).
    pub value: f64,
}

/// The wire-tunable registration quadruple (the same subset netserve's
/// `RegisterWith` exposes); everything else of a stream's configuration is
/// the serving engine's default and need not be logged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegisterTuning {
    /// Samples per (re)training window.
    pub train_size: u32,
    /// QA audit window length.
    pub qa_window: u32,
    /// QA audit period.
    pub qa_period: u32,
    /// QA rolling-MSE retrain threshold.
    pub qa_threshold: f64,
    /// Whether the stream stores history in f32 mode (halved ring memory).
    /// Encoded as a trailing flag byte; records written before the flag
    /// existed decode as `false`, matching the engine default.
    pub f32_history: bool,
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A batch of accepted samples.
    Samples(Vec<Sample>),
    /// A stream registration.
    Register {
        /// Stream id.
        id: u64,
        /// Tunables captured at registration.
        tuning: RegisterTuning,
    },
    /// A stream eviction.
    Evict {
        /// Stream id.
        id: u64,
    },
}

const KIND_SAMPLES: u8 = 1;
const KIND_REGISTER: u8 = 2;
const KIND_EVICT: u8 = 3;

/// Why a record failed to decode.
#[derive(Debug, PartialEq, Eq)]
pub enum RecordError {
    /// The buffer ends inside a record: at a segment tail this is a torn
    /// write, mid-stream it is truncation. Either way nothing decodable
    /// remains at this offset.
    Truncated,
    /// The declared body length is outside `[RECORD_HEADER_LEN,
    /// RECORD_HEADER_LEN + max_payload]`.
    BadLength(u32),
    /// CRC mismatch: the record was corrupted at rest.
    BadCrc,
    /// CRC passed but the payload does not decode (unknown kind, forged
    /// count, trailing bytes) — corruption that happens to preserve the CRC
    /// field, or a version skew.
    BadPayload,
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Truncated => write!(f, "record truncated"),
            RecordError::BadLength(n) => write!(f, "record body length {n} out of bounds"),
            RecordError::BadCrc => write!(f, "record crc mismatch"),
            RecordError::BadPayload => write!(f, "record payload undecodable"),
        }
    }
}

/// Encodes one `Samples` record directly from a borrowed slice into `out`
/// (cleared first). The hot append path: no intermediate [`WalRecord`] is
/// built.
pub fn encode_samples_into(out: &mut Vec<u8>, seq: u64, samples: &[Sample]) {
    out.clear();
    let payload_len: usize = 4 + samples
        .iter()
        .map(|s| MIN_SAMPLE_LEN + if s.minute.is_some() { 8 } else { 0 })
        .sum::<usize>();
    reserve_frame(out, payload_len);
    begin_body(out, seq, KIND_SAMPLES);
    out.extend_from_slice(&(samples.len() as u32).to_le_bytes());
    for s in samples {
        out.extend_from_slice(&s.stream.to_le_bytes());
        match s.minute {
            Some(m) => {
                out.push(1);
                out.extend_from_slice(&m.to_le_bytes());
            }
            None => out.push(0),
        }
        out.extend_from_slice(&s.value.to_bits().to_le_bytes());
    }
    finish_frame(out);
}

/// Encodes one `Register` record into `out` (cleared first).
pub fn encode_register_into(out: &mut Vec<u8>, seq: u64, id: u64, tuning: &RegisterTuning) {
    out.clear();
    reserve_frame(out, 8 + 4 + 4 + 4 + 8 + 1);
    begin_body(out, seq, KIND_REGISTER);
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&tuning.train_size.to_le_bytes());
    out.extend_from_slice(&tuning.qa_window.to_le_bytes());
    out.extend_from_slice(&tuning.qa_period.to_le_bytes());
    out.extend_from_slice(&tuning.qa_threshold.to_bits().to_le_bytes());
    out.push(tuning.f32_history as u8);
    finish_frame(out);
}

/// Encodes one `Evict` record into `out` (cleared first).
pub fn encode_evict_into(out: &mut Vec<u8>, seq: u64, id: u64) {
    out.clear();
    reserve_frame(out, 8);
    begin_body(out, seq, KIND_EVICT);
    out.extend_from_slice(&id.to_le_bytes());
    finish_frame(out);
}

/// Encodes any record (convenience over the `_into` functions).
pub fn encode(seq: u64, record: &WalRecord) -> Vec<u8> {
    let mut out = Vec::new();
    match record {
        WalRecord::Samples(samples) => encode_samples_into(&mut out, seq, samples),
        WalRecord::Register { id, tuning } => encode_register_into(&mut out, seq, *id, tuning),
        WalRecord::Evict { id } => encode_evict_into(&mut out, seq, *id),
    }
    out
}

fn reserve_frame(out: &mut Vec<u8>, payload_len: usize) {
    out.reserve(4 + RECORD_HEADER_LEN + payload_len + 4);
    // Length placeholder, patched by finish_frame.
    out.extend_from_slice(&0u32.to_le_bytes());
}

fn begin_body(out: &mut Vec<u8>, seq: u64, kind: u8) {
    out.extend_from_slice(&seq.to_le_bytes());
    out.push(kind);
}

fn finish_frame(out: &mut Vec<u8>) {
    let body_len = out.len() - 4;
    assert!(body_len <= RECORD_HEADER_LEN + MAX_RECORD_PAYLOAD, "record exceeds payload cap");
    out[..4].copy_from_slice(&(body_len as u32).to_le_bytes());
    let crc = crc32(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Decodes one record from the front of `buf`, returning the sequence
/// number, the record, and the bytes consumed.
///
/// `Err(Truncated)` means the buffer ends inside the record; all other
/// errors are permanent for this offset. Never panics, never allocates past
/// the validated declared length.
pub fn decode(
    buf: &[u8],
    max_payload: usize,
) -> std::result::Result<(u64, WalRecord, usize), RecordError> {
    if buf.len() < 4 {
        return Err(RecordError::Truncated);
    }
    let body_len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
    if body_len < RECORD_HEADER_LEN || body_len > RECORD_HEADER_LEN + max_payload {
        return Err(RecordError::BadLength(body_len as u32));
    }
    let total = 4 + body_len + 4;
    if buf.len() < total {
        return Err(RecordError::Truncated);
    }
    let body = &buf[4..4 + body_len];
    let carried = u32::from_le_bytes(buf[4 + body_len..total].try_into().expect("4 bytes"));
    if crc32(body) != carried {
        return Err(RecordError::BadCrc);
    }
    let seq = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
    let kind = body[8];
    let payload = &body[RECORD_HEADER_LEN..];
    let record = decode_payload(kind, payload).ok_or(RecordError::BadPayload)?;
    Ok((seq, record, total))
}

/// Decodes a CRC-verified payload; `None` for anything undecodable.
fn decode_payload(kind: u8, payload: &[u8]) -> Option<WalRecord> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
        let end = pos.checked_add(n)?;
        let s = payload.get(*pos..end)?;
        *pos = end;
        Some(s)
    };
    let take_u64 =
        |pos: &mut usize| take(pos, 8).map(|s| u64::from_le_bytes(s.try_into().expect("8 bytes")));
    let take_u32 =
        |pos: &mut usize| take(pos, 4).map(|s| u32::from_le_bytes(s.try_into().expect("4 bytes")));

    let record = match kind {
        KIND_SAMPLES => {
            let count = take_u32(&mut pos)? as usize;
            // A forged count cannot out-allocate the payload it arrived in.
            if count * MIN_SAMPLE_LEN > payload.len().saturating_sub(pos) {
                return None;
            }
            let mut samples = Vec::with_capacity(count);
            for _ in 0..count {
                let stream = take_u64(&mut pos)?;
                let minute = match take(&mut pos, 1)?[0] {
                    0 => None,
                    1 => Some(take_u64(&mut pos)?),
                    _ => return None,
                };
                let value = f64::from_bits(take_u64(&mut pos)?);
                samples.push(Sample { stream, minute, value });
            }
            WalRecord::Samples(samples)
        }
        KIND_REGISTER => {
            let id = take_u64(&mut pos)?;
            let train_size = take_u32(&mut pos)?;
            let qa_window = take_u32(&mut pos)?;
            let qa_period = take_u32(&mut pos)?;
            let qa_threshold = f64::from_bits(take_u64(&mut pos)?);
            // Trailing flag byte added for f32-history streams; a record
            // written before the flag existed simply ends here.
            let f32_history = if pos < payload.len() {
                match take(&mut pos, 1)?[0] {
                    0 => false,
                    1 => true,
                    _ => return None,
                }
            } else {
                false
            };
            WalRecord::Register {
                id,
                tuning: RegisterTuning {
                    train_size,
                    qa_window,
                    qa_period,
                    qa_threshold,
                    f32_history,
                },
            }
        }
        KIND_EVICT => WalRecord::Evict { id: take_u64(&mut pos)? },
        _ => return None,
    };
    // Trailing payload bytes mean the record was not written by this codec.
    (pos == payload.len()).then_some(record)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> WalRecord {
        WalRecord::Samples(vec![
            Sample { stream: 7, minute: None, value: 41.5 },
            Sample { stream: 9, minute: Some(1440), value: f64::NAN },
            Sample { stream: u64::MAX, minute: Some(0), value: -0.0 },
        ])
    }

    #[test]
    fn records_round_trip_bit_exactly() {
        let records = [
            sample_record(),
            WalRecord::Samples(Vec::new()),
            WalRecord::Register {
                id: 3,
                tuning: RegisterTuning {
                    train_size: 40,
                    qa_window: 8,
                    qa_period: 4,
                    qa_threshold: 2.0,
                    f32_history: false,
                },
            },
            WalRecord::Register {
                id: 4,
                tuning: RegisterTuning {
                    train_size: 64,
                    qa_window: 16,
                    qa_period: 8,
                    qa_threshold: 1.5,
                    f32_history: true,
                },
            },
            WalRecord::Evict { id: 12 },
        ];
        for (i, rec) in records.iter().enumerate() {
            let bytes = encode(i as u64 + 1, rec);
            let (seq, decoded, used) = decode(&bytes, MAX_RECORD_PAYLOAD).unwrap();
            assert_eq!(seq, i as u64 + 1);
            assert_eq!(used, bytes.len());
            // PartialEq is false for NaN; compare through the encoder.
            assert_eq!(encode(seq, &decoded), bytes, "record {i} did not round trip");
        }
    }

    #[test]
    fn incomplete_prefixes_report_truncation() {
        let bytes = encode(5, &sample_record());
        for cut in 0..bytes.len() {
            assert_eq!(
                decode(&bytes[..cut], MAX_RECORD_PAYLOAD).unwrap_err(),
                RecordError::Truncated,
                "cut {cut}"
            );
        }
    }

    #[test]
    fn every_body_bit_flip_is_caught() {
        let bytes = encode(5, &sample_record());
        for byte in 4..bytes.len() - 4 {
            for bit in 0..8 {
                let mut m = bytes.clone();
                m[byte] ^= 1 << bit;
                assert!(
                    decode(&m, MAX_RECORD_PAYLOAD).is_err(),
                    "flip {byte}.{bit} slipped through"
                );
            }
        }
    }

    #[test]
    fn forged_length_rejected_before_allocation() {
        let mut bytes = encode(5, &sample_record());
        bytes[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode(&bytes, MAX_RECORD_PAYLOAD).unwrap_err(),
            RecordError::BadLength(u32::MAX)
        );
        bytes[..4].copy_from_slice(&3u32.to_le_bytes());
        assert_eq!(decode(&bytes, MAX_RECORD_PAYLOAD).unwrap_err(), RecordError::BadLength(3));
    }

    #[test]
    fn forged_sample_count_rejected_after_crc_repair() {
        // Patch the count field to a huge value and re-CRC so only the
        // payload validation can catch it: the decoder must reject without
        // reserving a huge vector.
        let mut bytes = encode(5, &sample_record());
        let count_at = 4 + RECORD_HEADER_LEN;
        bytes[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let body_end = bytes.len() - 4;
        let crc = crc32(&bytes[4..body_end]);
        bytes[body_end..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(decode(&bytes, MAX_RECORD_PAYLOAD).unwrap_err(), RecordError::BadPayload);
    }

    /// A `Register` record written before the `f32_history` flag byte
    /// existed (28-byte payload) must still decode, with the flag defaulting
    /// to `false` — upgraded nodes replay pre-cluster WALs unchanged.
    #[test]
    fn legacy_register_without_flag_byte_decodes_as_f64() {
        let tuning = RegisterTuning {
            train_size: 40,
            qa_window: 8,
            qa_period: 4,
            qa_threshold: 2.0,
            f32_history: false,
        };
        let mut bytes = encode(9, &WalRecord::Register { id: 11, tuning });
        // Drop the trailing flag byte and re-frame: len -1, fresh CRC.
        let crc_at = bytes.len() - 4;
        bytes.remove(crc_at - 1);
        let body_len = (bytes.len() - 8) as u32;
        bytes[..4].copy_from_slice(&body_len.to_le_bytes());
        let body_end = bytes.len() - 4;
        let crc = crc32(&bytes[4..body_end]);
        bytes[body_end..].copy_from_slice(&crc.to_le_bytes());

        let (seq, rec, used) = decode(&bytes, MAX_RECORD_PAYLOAD).unwrap();
        assert_eq!(seq, 9);
        assert_eq!(used, bytes.len());
        assert_eq!(rec, WalRecord::Register { id: 11, tuning });
        // A flag byte with an out-of-range value is corruption, not a bool.
        let mut bad = encode(9, &WalRecord::Register { id: 11, tuning });
        let flag_at = bad.len() - 5;
        bad[flag_at] = 2;
        let body_end = bad.len() - 4;
        let crc = crc32(&bad[4..body_end]);
        bad[body_end..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(decode(&bad, MAX_RECORD_PAYLOAD).unwrap_err(), RecordError::BadPayload);
    }

    #[test]
    fn unknown_kind_and_trailing_bytes_rejected() {
        let rewrite_crc = |bytes: &mut Vec<u8>| {
            let body_end = bytes.len() - 4;
            let crc = crc32(&bytes[4..body_end]);
            bytes[body_end..].copy_from_slice(&crc.to_le_bytes());
        };
        let mut bytes = encode(5, &WalRecord::Evict { id: 1 });
        bytes[4 + 8] = 99; // kind byte
        rewrite_crc(&mut bytes);
        assert_eq!(decode(&bytes, MAX_RECORD_PAYLOAD).unwrap_err(), RecordError::BadPayload);

        // An Evict with one extra payload byte: CRC fine, payload not.
        let mut bytes = encode(5, &WalRecord::Evict { id: 1 });
        let crc_at = bytes.len() - 4;
        bytes.insert(crc_at, 0xAB);
        let body_len = (bytes.len() - 8) as u32;
        bytes[..4].copy_from_slice(&body_len.to_le_bytes());
        rewrite_crc(&mut bytes);
        assert_eq!(decode(&bytes, MAX_RECORD_PAYLOAD).unwrap_err(), RecordError::BadPayload);
    }
}
