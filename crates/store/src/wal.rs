//! Segmented write-ahead log with manifest, rotation, and graceful recovery.
//!
//! On-disk layout inside the WAL directory:
//!
//! ```text
//! MANIFEST              atomic (tmp + rename) list of segment first-seqs
//! <first_seq:016x>.seg  magic "STORSEG1" | first_seq u64 | records...
//! ```
//!
//! Records are the [`crate::record`] codec: contiguous sequence numbers,
//! CRC-checked bodies. Appends go to the newest (active) segment; when it
//! exceeds `segment_bytes` it is sealed (fsynced) and a fresh segment opens.
//!
//! Recovery scans segments in manifest order and *degrades, never panics*:
//!
//! * **missing segment** — counted, the seq jump at the next segment becomes
//!   a counted gap;
//! * **bad magic / mid-segment corruption** — scan of that segment stops at
//!   the last valid record, stranded bytes are counted, later segments still
//!   scan (their records gap-checked by sequence number);
//! * **torn tail** — a partial record at the end of the final segment is the
//!   expected artifact of a crash mid-write and is tolerated silently apart
//!   from the `torn_tail` flag;
//! * **corrupt or missing manifest** — falls back to a directory scan of
//!   `*.seg` files sorted by name.
//!
//! After recovery the log never appends after a possibly-damaged tail: a
//! fresh segment is opened at `last_seq + 1`.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::record::{self, RegisterTuning, Sample, WalRecord};
use crate::{Result, StoreError};

const SEG_MAGIC: &[u8; 8] = b"STORSEG1";
const MAN_MAGIC: &[u8; 8] = b"STORMAN1";
const MANIFEST: &str = "MANIFEST";
const SEG_HEADER_LEN: u64 = 16;

/// When appends are flushed to the disk platter (as opposed to the OS page
/// cache, which `write` alone reaches and which survives process death).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record — power-loss safe, slowest.
    Always,
    /// `fsync` every N records.
    EveryRecords(u32),
    /// `fsync` only when sealing a segment, on [`Wal::sync`], and on drop.
    /// Survives `kill -9` (page cache persists) but not power loss of the
    /// whole machine. The default.
    OnRotate,
}

/// WAL construction options.
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// Rotate the active segment once it holds at least this many bytes.
    pub segment_bytes: u64,
    /// Durability/latency trade-off for appends.
    pub fsync: FsyncPolicy,
    /// Keep fully-checkpointed segments on disk instead of deleting them in
    /// [`Wal::truncate_upto`]. Lets a reference process replay the complete
    /// history (the crash harness uses this).
    pub retain_segments: bool,
    /// Per-record payload cap enforced on both encode and decode.
    pub max_payload: usize,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            segment_bytes: 8 << 20,
            fsync: FsyncPolicy::OnRotate,
            retain_segments: false,
            max_payload: record::MAX_RECORD_PAYLOAD,
        }
    }
}

/// What one append did.
#[derive(Debug, Clone, Copy)]
pub struct AppendInfo {
    /// Sequence number assigned to the record.
    pub seq: u64,
    /// Encoded record size in bytes.
    pub bytes: usize,
    /// Whether this append sealed the previous segment and opened a new one.
    pub rotated: bool,
    /// Whether this append fsynced the active segment.
    pub fsynced: bool,
}

/// Counters for the life of this `Wal` handle (not persisted).
#[derive(Debug, Clone, Copy, Default)]
pub struct WalStats {
    /// Records appended.
    pub records: u64,
    /// Record bytes appended (excluding segment headers).
    pub bytes: u64,
    /// fsync calls issued.
    pub fsyncs: u64,
    /// Segment rotations.
    pub rotations: u64,
    /// Segments currently tracked by the manifest.
    pub segments: u64,
    /// Next sequence number to be assigned.
    pub next_seq: u64,
}

/// What recovery found while scanning the log.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryReport {
    /// Records delivered to the replay callback (`seq > start_after`).
    pub replayed: u64,
    /// Valid records skipped because a checkpoint already covers them.
    pub skipped: u64,
    /// Records known lost via sequence-number discontinuities.
    pub gap_records: u64,
    /// Bytes abandoned after a permanent mid-segment corruption.
    pub stranded_bytes: u64,
    /// A partial record ended the final segment (crash mid-write).
    pub torn_tail: bool,
    /// Segments whose scan hit permanent corruption (bad magic, bad CRC,
    /// undecodable payload, or an unexpected mid-file truncation).
    pub corrupt_segments: u64,
    /// Segments listed in the manifest but absent on disk.
    pub missing_segments: u64,
    /// The manifest itself was missing or corrupt; segment list rebuilt from
    /// a directory scan.
    pub manifest_rebuilt: bool,
    /// Highest valid sequence number seen (0 if none).
    pub last_seq: u64,
}

/// Append-only segmented log. Single-writer: callers serialize appends
/// (the fleet engine wraps it in a mutex).
pub struct Wal {
    dir: PathBuf,
    options: WalOptions,
    file: File,
    segments: Vec<u64>,
    segment_written: u64,
    next_seq: u64,
    unsynced: u32,
    buf: Vec<u8>,
    stats: WalStats,
}

impl Wal {
    /// Creates a fresh log in `dir` (created if missing). Fails if a
    /// manifest already exists — recovery must be explicit, never implicit.
    pub fn create(dir: &Path, options: WalOptions) -> Result<Wal> {
        validate(&options)?;
        fs::create_dir_all(dir)?;
        if dir.join(MANIFEST).exists() {
            return Err(StoreError::InvalidConfig(format!(
                "{} already holds a WAL; use recover",
                dir.display()
            )));
        }
        let mut wal = Wal {
            dir: dir.to_path_buf(),
            options,
            file: open_segment(dir, 1)?,
            segments: vec![1],
            segment_written: SEG_HEADER_LEN,
            next_seq: 1,
            unsynced: 0,
            buf: Vec::new(),
            stats: WalStats::default(),
        };
        wal.write_manifest()?;
        Ok(wal)
    }

    /// Scans an existing log, invoking `apply` for every valid record with
    /// `seq > start_after` (in order), and reopens the log for appending on
    /// a fresh segment. Corruption degrades to counted gaps in the report.
    pub fn recover<F: FnMut(u64, WalRecord)>(
        dir: &Path,
        options: WalOptions,
        start_after: u64,
        mut apply: F,
    ) -> Result<(Wal, RecoveryReport)> {
        validate(&options)?;
        if !dir.is_dir() {
            return Err(StoreError::InvalidConfig(format!("{} is not a directory", dir.display())));
        }
        let mut report = RecoveryReport::default();
        let listed = match read_manifest(dir) {
            Some(list) => list,
            None => {
                report.manifest_rebuilt = true;
                scan_segment_dir(dir)?
            }
        };

        let mut kept: Vec<u64> = Vec::new();
        // 0 = "no baseline yet": the first valid record anchors continuity.
        let mut expected = 0u64;
        let last_listed = listed.last().copied();
        for first_seq in &listed {
            let path = dir.join(segment_name(*first_seq));
            let data = match fs::read(&path) {
                Ok(d) => d,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    report.missing_segments += 1;
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            kept.push(*first_seq);
            if data.len() < SEG_HEADER_LEN as usize || &data[..8] != SEG_MAGIC {
                report.corrupt_segments += 1;
                report.stranded_bytes += data.len() as u64;
                continue;
            }
            let is_last = Some(*first_seq) == last_listed;
            scan_segment(
                &data[SEG_HEADER_LEN as usize..],
                options.max_payload,
                is_last,
                start_after,
                &mut expected,
                &mut report,
                &mut apply,
            );
        }
        report.last_seq = if expected > 0 { expected - 1 } else { 0 };

        // Never append after a possibly-damaged tail: open a new segment.
        // If the old active segment held zero valid records it has the same
        // first-seq; open_segment truncates it, so don't list it twice.
        let next_seq = report.last_seq.max(start_after) + 1;
        let file = open_segment(dir, next_seq)?;
        if kept.last() == Some(&next_seq) {
            kept.pop();
        }
        kept.push(next_seq);
        let mut wal = Wal {
            dir: dir.to_path_buf(),
            options,
            file,
            segments: kept,
            segment_written: SEG_HEADER_LEN,
            next_seq,
            unsynced: 0,
            buf: Vec::new(),
            stats: WalStats::default(),
        };
        wal.write_manifest()?;
        Ok((wal, report))
    }

    /// Appends a batch of samples as one record.
    pub fn append_samples(&mut self, samples: &[Sample]) -> Result<AppendInfo> {
        let seq = self.next_seq;
        record::encode_samples_into(&mut self.buf, seq, samples);
        self.append_encoded()
    }

    /// Appends a stream registration.
    pub fn append_register(&mut self, id: u64, tuning: &RegisterTuning) -> Result<AppendInfo> {
        let seq = self.next_seq;
        record::encode_register_into(&mut self.buf, seq, id, tuning);
        self.append_encoded()
    }

    /// Appends a stream eviction.
    pub fn append_evict(&mut self, id: u64) -> Result<AppendInfo> {
        let seq = self.next_seq;
        record::encode_evict_into(&mut self.buf, seq, id);
        self.append_encoded()
    }

    fn append_encoded(&mut self) -> Result<AppendInfo> {
        let mut rotated = false;
        if self.segment_written >= self.options.segment_bytes {
            self.rotate()?;
            rotated = true;
        }
        self.file.write_all(&self.buf)?;
        self.segment_written += self.buf.len() as u64;
        self.unsynced += 1;
        let fsynced = match self.options.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryRecords(n) => self.unsynced >= n.max(1),
            FsyncPolicy::OnRotate => false,
        };
        if fsynced {
            self.sync()?;
        }
        let info = AppendInfo { seq: self.next_seq, bytes: self.buf.len(), rotated, fsynced };
        self.next_seq += 1;
        self.stats.records += 1;
        self.stats.bytes += info.bytes as u64;
        Ok(info)
    }

    fn rotate(&mut self) -> Result<()> {
        self.file.sync_data()?;
        self.stats.fsyncs += 1;
        self.file = open_segment(&self.dir, self.next_seq)?;
        self.segments.push(self.next_seq);
        self.segment_written = SEG_HEADER_LEN;
        self.unsynced = 0;
        self.stats.rotations += 1;
        self.write_manifest()
    }

    /// Fsyncs the active segment.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        self.unsynced = 0;
        self.stats.fsyncs += 1;
        Ok(())
    }

    /// Deletes sealed segments whose every record has `seq <= upto` (they
    /// are covered by a checkpoint). Returns how many were removed; a no-op
    /// when `retain_segments` is set.
    pub fn truncate_upto(&mut self, upto: u64) -> Result<u64> {
        if self.options.retain_segments {
            return Ok(0);
        }
        let mut removed = 0u64;
        // Segment i covers [segments[i], segments[i+1] - 1]; the active
        // (last) segment is never removed.
        while self.segments.len() > 1 && self.segments[1] <= upto + 1 {
            let first = self.segments.remove(0);
            match fs::remove_file(self.dir.join(segment_name(first))) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
            removed += 1;
        }
        if removed > 0 {
            self.write_manifest()?;
        }
        Ok(removed)
    }

    /// Next sequence number to be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The WAL directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Lifetime counters for this handle.
    pub fn stats(&self) -> WalStats {
        WalStats { segments: self.segments.len() as u64, next_seq: self.next_seq, ..self.stats }
    }

    fn write_manifest(&mut self) -> Result<()> {
        let mut buf = Vec::with_capacity(16 + self.segments.len() * 8);
        buf.extend_from_slice(MAN_MAGIC);
        buf.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        for first in &self.segments {
            buf.extend_from_slice(&first.to_le_bytes());
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        let tmp = self.dir.join("MANIFEST.tmp");
        let mut f = File::create(&tmp)?;
        f.write_all(&buf)?;
        f.sync_data()?;
        fs::rename(&tmp, self.dir.join(MANIFEST))?;
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        let _ = self.file.sync_data();
    }
}

fn validate(options: &WalOptions) -> Result<()> {
    if options.segment_bytes < 64 {
        return Err(StoreError::InvalidConfig("segment_bytes must be >= 64".into()));
    }
    if options.max_payload == 0 || options.max_payload > record::MAX_RECORD_PAYLOAD {
        return Err(StoreError::InvalidConfig(format!(
            "max_payload must be in 1..={}",
            record::MAX_RECORD_PAYLOAD
        )));
    }
    Ok(())
}

fn segment_name(first_seq: u64) -> String {
    format!("{first_seq:016x}.seg")
}

fn open_segment(dir: &Path, first_seq: u64) -> Result<File> {
    let path = dir.join(segment_name(first_seq));
    let mut file = OpenOptions::new().create(true).write(true).truncate(true).open(path)?;
    let mut header = [0u8; SEG_HEADER_LEN as usize];
    header[..8].copy_from_slice(SEG_MAGIC);
    header[8..].copy_from_slice(&first_seq.to_le_bytes());
    file.write_all(&header)?;
    Ok(file)
}

fn read_manifest(dir: &Path) -> Option<Vec<u64>> {
    let buf = fs::read(dir.join(MANIFEST)).ok()?;
    if buf.len() < 16 || &buf[..8] != MAN_MAGIC {
        return None;
    }
    let body = &buf[..buf.len() - 4];
    let carried = u32::from_le_bytes(buf[buf.len() - 4..].try_into().ok()?);
    if crc32(body) != carried {
        return None;
    }
    let count = u32::from_le_bytes(buf[8..12].try_into().ok()?) as usize;
    if body.len() != 12 + count * 8 {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let at = 12 + i * 8;
        out.push(u64::from_le_bytes(body[at..at + 8].try_into().ok()?));
    }
    Some(out)
}

/// Fallback when the manifest is unusable: every `*.seg` file, ordered by
/// its hex first-seq name.
fn scan_segment_dir(dir: &Path) -> Result<Vec<u64>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(hex) = name.strip_suffix(".seg") {
            if let Ok(first) = u64::from_str_radix(hex, 16) {
                out.push(first);
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// Scans one segment's record area, updating continuity state and the
/// report. Stops at the first undecodable offset.
fn scan_segment<F: FnMut(u64, WalRecord)>(
    mut data: &[u8],
    max_payload: usize,
    is_last_segment: bool,
    start_after: u64,
    expected: &mut u64,
    report: &mut RecoveryReport,
    apply: &mut F,
) {
    loop {
        match record::decode(data, max_payload) {
            Ok((seq, rec, used)) => {
                data = &data[used..];
                if *expected != 0 && seq < *expected {
                    // Replay of an already-seen seq (e.g. overlap after a
                    // rebuilt manifest) — ignore, continuity unchanged.
                    report.skipped += 1;
                    continue;
                }
                if *expected != 0 && seq > *expected {
                    report.gap_records += seq - *expected;
                }
                if seq > start_after {
                    apply(seq, rec);
                    report.replayed += 1;
                } else {
                    report.skipped += 1;
                }
                *expected = seq + 1;
            }
            Err(record::RecordError::Truncated) => {
                if !data.is_empty() {
                    report.stranded_bytes += data.len() as u64;
                    if is_last_segment {
                        report.torn_tail = true;
                    } else {
                        report.corrupt_segments += 1;
                    }
                }
                return;
            }
            Err(_) => {
                report.stranded_bytes += data.len() as u64;
                report.corrupt_segments += 1;
                return;
            }
        }
    }
}

/// Read-only scan of a WAL directory: delivers every valid record with
/// `seq > start_after` to `apply` in order, without opening the log for
/// appending, rewriting the manifest, or truncating anything.
///
/// This is the streaming-read primitive the cluster tier's warm-standby
/// feeder and failover path use: a live node tails its *own* directory to
/// forward fresh records to its ring successor (appends use plain
/// `write_all`, so an independent reader sees them through the page cache),
/// and a failover heir reads a *dead* node's directory to close the gap
/// between its last standby snapshot and the final acked record. A torn
/// record at the end of the active segment — the normal artifact of reading
/// mid-write or after `kill -9` — is tolerated and flagged, never an error.
///
/// Segments whose whole range is `<= start_after` are skipped without being
/// read. Gap accounting therefore starts at the first scanned segment.
///
/// # Errors
///
/// Returns [`StoreError::InvalidConfig`] if `dir` is not a directory and
/// [`StoreError::Io`] for real I/O failures; corruption degrades to counted
/// gaps in the report exactly as recovery does.
pub fn read_tail<F: FnMut(u64, WalRecord)>(
    dir: &Path,
    start_after: u64,
    mut apply: F,
) -> Result<RecoveryReport> {
    if !dir.is_dir() {
        return Err(StoreError::InvalidConfig(format!("{} is not a directory", dir.display())));
    }
    let max_payload = record::MAX_RECORD_PAYLOAD;
    let mut report = RecoveryReport::default();
    let listed = match read_manifest(dir) {
        Some(list) => list,
        None => {
            report.manifest_rebuilt = true;
            scan_segment_dir(dir)?
        }
    };
    let mut expected = 0u64;
    let last_listed = listed.last().copied();
    for (i, first_seq) in listed.iter().enumerate() {
        // Segment i covers [first_seq, next first_seq - 1]; skip it when a
        // later segment proves the whole range is already covered.
        if let Some(next_first) = listed.get(i + 1) {
            if *next_first <= start_after + 1 {
                continue;
            }
        }
        let path = dir.join(segment_name(*first_seq));
        let data = match fs::read(&path) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                report.missing_segments += 1;
                continue;
            }
            Err(e) => return Err(e.into()),
        };
        if data.len() < SEG_HEADER_LEN as usize || &data[..8] != SEG_MAGIC {
            report.corrupt_segments += 1;
            report.stranded_bytes += data.len() as u64;
            continue;
        }
        let is_last = Some(*first_seq) == last_listed;
        scan_segment(
            &data[SEG_HEADER_LEN as usize..],
            max_payload,
            is_last,
            start_after,
            &mut expected,
            &mut report,
            &mut apply,
        );
    }
    report.last_seq = if expected > 0 { expected - 1 } else { 0 };
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("store-wal-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample(stream: u64, minute: u64, value: f64) -> Sample {
        Sample { stream, minute: Some(minute), value }
    }

    #[test]
    fn append_then_recover_replays_everything_in_order() {
        let dir = temp_dir("roundtrip");
        let mut wal = Wal::create(&dir, WalOptions::default()).unwrap();
        wal.append_register(
            7,
            &RegisterTuning {
                train_size: 40,
                qa_window: 8,
                qa_period: 4,
                qa_threshold: 2.0,
                f32_history: false,
            },
        )
        .unwrap();
        for i in 0..50u64 {
            wal.append_samples(&[sample(7, i, i as f64 * 0.5)]).unwrap();
        }
        wal.append_evict(7).unwrap();
        drop(wal);

        let mut seen = Vec::new();
        let (wal, report) = Wal::recover(&dir, WalOptions::default(), 0, |seq, rec| {
            seen.push((seq, rec));
        })
        .unwrap();
        assert_eq!(report.replayed, 52);
        assert_eq!(report.gap_records, 0);
        assert_eq!(report.last_seq, 52);
        assert!(!report.torn_tail);
        assert_eq!(wal.next_seq(), 53);
        assert!(matches!(seen[0].1, WalRecord::Register { id: 7, .. }));
        assert!(matches!(seen[51].1, WalRecord::Evict { id: 7 }));
        for (i, (seq, _)) in seen.iter().enumerate() {
            assert_eq!(*seq, i as u64 + 1);
        }
        drop(wal);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_tail_streams_a_live_log_without_touching_it() {
        let dir = temp_dir("tail");
        let options = WalOptions { segment_bytes: 256, ..WalOptions::default() };
        let mut wal = Wal::create(&dir, options).unwrap();
        for i in 0..40u64 {
            wal.append_samples(&[sample(3, i, i as f64)]).unwrap();
        }
        // An independent reader sees every append past its cursor while the
        // writer's handle stays open (page-cache visibility).
        let mut seen = Vec::new();
        let report = read_tail(&dir, 25, |seq, _| seen.push(seq)).unwrap();
        assert_eq!(seen, (26..=40).collect::<Vec<u64>>());
        assert_eq!(report.replayed, 15);
        assert_eq!(report.last_seq, 40);
        assert_eq!(report.gap_records, 0);
        assert!(!report.torn_tail);
        // The read was side-effect free: the writer keeps appending with
        // unbroken sequencing.
        for i in 40..45u64 {
            wal.append_samples(&[sample(3, i, i as f64)]).unwrap();
        }
        drop(wal);

        // A partial record at the active tail — what a reader racing a
        // writer (or scanning after kill -9) sees — is tolerated and
        // flagged, never an error.
        let mut segs: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|x| x == "seg"))
            .collect();
        segs.sort();
        let active = segs.last().unwrap();
        let mut data = fs::read(active).unwrap();
        data.extend_from_slice(&[20, 0, 0, 0, 46, 0, 0]);
        fs::write(active, data).unwrap();

        let mut seqs = Vec::new();
        let report = read_tail(&dir, 0, |seq, _| seqs.push(seq)).unwrap();
        assert_eq!(report.replayed, 45);
        assert_eq!(report.last_seq, 45);
        assert!(report.torn_tail);
        assert_eq!(seqs, (1..=45).collect::<Vec<u64>>());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn start_after_skips_checkpointed_prefix() {
        let dir = temp_dir("startafter");
        let mut wal = Wal::create(&dir, WalOptions::default()).unwrap();
        for i in 0..20u64 {
            wal.append_samples(&[sample(1, i, i as f64)]).unwrap();
        }
        drop(wal);
        let mut seqs = Vec::new();
        let (_wal, report) =
            Wal::recover(&dir, WalOptions::default(), 15, |seq, _| seqs.push(seq)).unwrap();
        assert_eq!(seqs, vec![16, 17, 18, 19, 20]);
        assert_eq!(report.replayed, 5);
        assert_eq!(report.skipped, 15);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_and_truncate_drop_covered_segments() {
        let dir = temp_dir("rotate");
        let options = WalOptions { segment_bytes: 256, ..WalOptions::default() };
        let mut wal = Wal::create(&dir, options.clone()).unwrap();
        for i in 0..100u64 {
            wal.append_samples(&[sample(1, i, 1.0)]).unwrap();
        }
        let stats = wal.stats();
        assert!(stats.rotations >= 3, "expected rotations, got {}", stats.rotations);
        let before = stats.segments;
        let removed = wal.truncate_upto(60).unwrap();
        assert!(removed > 0);
        assert_eq!(wal.stats().segments, before - removed);
        drop(wal);

        // Everything after the truncation point must still replay.
        let mut seqs = Vec::new();
        let (_wal, report) = Wal::recover(&dir, options, 60, |seq, _| seqs.push(seq)).unwrap();
        assert_eq!(report.replayed, 40);
        assert_eq!(seqs.first(), Some(&61));
        assert_eq!(seqs.last(), Some(&100));
        assert_eq!(report.gap_records, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let dir = temp_dir("torn");
        let mut wal = Wal::create(&dir, WalOptions::default()).unwrap();
        for i in 0..10u64 {
            wal.append_samples(&[sample(1, i, 1.0)]).unwrap();
        }
        drop(wal);
        let seg = dir.join(segment_name(1));
        let len = fs::metadata(&seg).unwrap().len();
        let file = OpenOptions::new().write(true).open(&seg).unwrap();
        file.set_len(len - 5).unwrap();
        drop(file);

        let mut count = 0u64;
        let (_wal, report) =
            Wal::recover(&dir, WalOptions::default(), 0, |_, _| count += 1).unwrap();
        assert_eq!(count, 9);
        assert!(report.torn_tail);
        assert_eq!(report.gap_records, 0);
        assert_eq!(report.last_seq, 9);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_segment_becomes_counted_gap() {
        let dir = temp_dir("missing");
        let options = WalOptions { segment_bytes: 256, ..WalOptions::default() };
        let mut wal = Wal::create(&dir, options.clone()).unwrap();
        for i in 0..100u64 {
            wal.append_samples(&[sample(1, i, 1.0)]).unwrap();
        }
        let segments: Vec<u64> = wal.segments.clone();
        assert!(segments.len() >= 3);
        drop(wal);
        // Remove a middle segment; its span = next first_seq - its first_seq.
        let victim = segments[1];
        let span = segments[2] - segments[1];
        fs::remove_file(dir.join(segment_name(victim))).unwrap();

        let mut count = 0u64;
        let (_wal, report) = Wal::recover(&dir, options, 0, |_, _| count += 1).unwrap();
        assert_eq!(report.missing_segments, 1);
        assert_eq!(report.gap_records, span);
        assert_eq!(count, 100 - span);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_falls_back_to_directory_scan() {
        let dir = temp_dir("manifest");
        let mut wal = Wal::create(&dir, WalOptions::default()).unwrap();
        for i in 0..10u64 {
            wal.append_samples(&[sample(1, i, 1.0)]).unwrap();
        }
        drop(wal);
        fs::write(dir.join(MANIFEST), b"garbage").unwrap();

        let mut count = 0u64;
        let (_wal, report) =
            Wal::recover(&dir, WalOptions::default(), 0, |_, _| count += 1).unwrap();
        assert!(report.manifest_rebuilt);
        assert_eq!(count, 10);
        assert_eq!(report.gap_records, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_refuses_existing_wal() {
        let dir = temp_dir("refuse");
        let wal = Wal::create(&dir, WalOptions::default()).unwrap();
        drop(wal);
        assert!(matches!(
            Wal::create(&dir, WalOptions::default()),
            Err(StoreError::InvalidConfig(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
