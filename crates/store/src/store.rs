//! [`TraceStore`]: the one handle binding WAL, memtable, and tiers.
//!
//! Appends go to the WAL first (that is the durability point — callers ack
//! only after the append returns), then into a pending queue that a
//! background compactor folds into the memtable and per-stream tier
//! cascades. WAL order and compaction order are identical (the pending
//! queue is filled under the WAL lock), so the in-memory state is a pure
//! function of the record sequence — replaying the WAL after a crash
//! rebuilds it exactly.
//!
//! [`TraceStore::persist_archive`] snapshots memtable + tiers into the
//! `STORARCH` sidecar tagged with the covered WAL sequence; recovery loads
//! the sidecar (degrading to empty if corrupt), replays the WAL tail into
//! both the in-memory state (`seq > sidecar.seq`) and the caller's callback
//! (`seq > start_after`), and reopens the log on a fresh segment.

use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::archive::{self, ArchiveSnapshot, StreamSnapshot};
use crate::memtable::Memtable;
use crate::record::{RegisterTuning, Sample, WalRecord};
use crate::tiers::{vmkusage_tiers, TierSpec, TieredArchive};
use crate::wal::{AppendInfo, RecoveryReport, Wal, WalOptions, WalStats};
use crate::{Result, StoreError};

const ARCHIVE_FILE: &str = "ARCHIVE";

/// Store construction options.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Write-ahead log options.
    pub wal: WalOptions,
    /// Raw samples retained per stream in the memtable.
    pub memtable_rows: usize,
    /// Tier layout for every stream's archive.
    pub tiers: Vec<TierSpec>,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions { wal: WalOptions::default(), memtable_rows: 256, tiers: vmkusage_tiers() }
    }
}

/// Counter snapshot for observability.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreStats {
    /// WAL counters.
    pub wal: WalStats,
    /// Compactor drain cycles completed.
    pub compactions: u64,
    /// Samples folded into memtable + tiers.
    pub compacted_samples: u64,
    /// Operations queued for the compactor right now.
    pub pending_ops: u64,
    /// Streams currently tracked.
    pub streams: u64,
}

/// What recovery found.
#[derive(Debug, Clone, Copy, Default)]
pub struct Recovered {
    /// WAL scan outcome (gaps, torn tail, corruption counts).
    pub wal: RecoveryReport,
    /// WAL sequence the archive sidecar covered (0 = none).
    pub archive_seq: u64,
    /// Streams restored from the sidecar.
    pub archive_streams: u64,
    /// The sidecar existed but failed validation and was discarded.
    pub archive_corrupt: bool,
}

#[derive(Debug)]
enum Op {
    Samples(Vec<Sample>),
    Register(u64),
    Evict(u64),
}

struct StreamState {
    /// Next minute assigned to an unstamped sample (mirrors the serving
    /// engine's per-stream clock rule).
    next_minute: u64,
    archive: TieredArchive,
}

struct Inner {
    memtable: Memtable,
    streams: HashMap<u64, StreamState>,
}

struct Pending {
    ops: VecDeque<Op>,
    busy: bool,
    shutdown: bool,
}

struct Shared {
    options: StoreOptions,
    wal: Mutex<Wal>,
    inner: Mutex<Inner>,
    pending: Mutex<Pending>,
    not_empty: Condvar,
    drained: Condvar,
    compactions: AtomicU64,
    compacted_samples: AtomicU64,
}

/// Durable trace store handle. All methods take `&self`; appends serialize
/// on the internal WAL lock.
pub struct TraceStore {
    shared: Arc<Shared>,
    dir: PathBuf,
    compactor: Option<JoinHandle<()>>,
}

impl TraceStore {
    /// Creates a fresh store in `dir` (created if missing; must not already
    /// hold a WAL).
    pub fn create(dir: &Path, options: StoreOptions) -> Result<TraceStore> {
        validate(&options)?;
        let wal = Wal::create(dir, options.wal.clone())?;
        Ok(Self::start(
            dir,
            options,
            wal,
            Inner {
                memtable: Memtable::new(usize::MAX), // replaced below
                streams: HashMap::new(),
            },
        ))
    }

    /// Recovers a store from `dir`: loads the archive sidecar (degrading to
    /// empty if corrupt), replays the WAL tail into the in-memory state, and
    /// delivers every record with `seq > start_after` to `apply` in order.
    pub fn recover<F: FnMut(u64, WalRecord)>(
        dir: &Path,
        options: StoreOptions,
        start_after: u64,
        mut apply: F,
    ) -> Result<(TraceStore, Recovered)> {
        validate(&options)?;
        let mut recovered = Recovered::default();
        let mut inner =
            Inner { memtable: Memtable::new(options.memtable_rows), streams: HashMap::new() };
        match archive::read_archive(&dir.join(ARCHIVE_FILE)) {
            Ok(Some(snap)) => {
                recovered.archive_seq = snap.seq;
                recovered.archive_streams = snap.streams.len() as u64;
                inner.memtable = snap.memtable;
                for s in snap.streams {
                    inner.streams.insert(
                        s.id,
                        StreamState { next_minute: s.next_minute, archive: s.archive },
                    );
                }
            }
            Ok(None) => {}
            Err(StoreError::Corrupt(_)) => recovered.archive_corrupt = true,
            Err(e) => return Err(e),
        }

        // Scan from the lower of the two thresholds: the sidecar and the
        // caller's checkpoint usually coincide, but a crash between the two
        // writes (or a corrupt sidecar) can leave them apart.
        let archive_seq = recovered.archive_seq;
        let low_water = start_after.min(archive_seq);
        let tiers = options.tiers.clone();
        let mut delivered = 0u64;
        let (wal, mut report) = Wal::recover(dir, options.wal.clone(), low_water, |seq, rec| {
            if seq > archive_seq {
                apply_record(&mut inner, &tiers, &rec);
            }
            if seq > start_after {
                delivered += 1;
                apply(seq, rec);
            }
        })?;
        // Report replay from the caller's point of view: records it saw.
        report.skipped += report.replayed - delivered;
        report.replayed = delivered;
        recovered.wal = report;
        Ok((Self::start(dir, options, wal, inner), recovered))
    }

    fn start(dir: &Path, options: StoreOptions, wal: Wal, mut inner: Inner) -> TraceStore {
        if inner.memtable.rows_per_stream() != options.memtable_rows {
            inner.memtable = Memtable::new(options.memtable_rows);
        }
        let shared = Arc::new(Shared {
            wal: Mutex::new(wal),
            inner: Mutex::new(inner),
            pending: Mutex::new(Pending { ops: VecDeque::new(), busy: false, shutdown: false }),
            not_empty: Condvar::new(),
            drained: Condvar::new(),
            compactions: AtomicU64::new(0),
            compacted_samples: AtomicU64::new(0),
            options,
        });
        let worker = Arc::clone(&shared);
        let compactor = std::thread::Builder::new()
            .name("store-compactor".into())
            .spawn(move || compactor_loop(&worker))
            .expect("spawn store compactor");
        TraceStore { shared, dir: dir.to_path_buf(), compactor: Some(compactor) }
    }

    /// Appends a batch of samples: durable once this returns (ack after, not
    /// before). The batch is queued for background compaction in WAL order.
    pub fn append_samples(&self, samples: &[Sample]) -> Result<AppendInfo> {
        let mut wal = self.shared.wal.lock().expect("wal lock");
        let info = wal.append_samples(samples)?;
        self.enqueue(Op::Samples(samples.to_vec()));
        Ok(info)
    }

    /// Appends a stream registration.
    pub fn append_register(&self, id: u64, tuning: &RegisterTuning) -> Result<AppendInfo> {
        let mut wal = self.shared.wal.lock().expect("wal lock");
        let info = wal.append_register(id, tuning)?;
        self.enqueue(Op::Register(id));
        Ok(info)
    }

    /// Appends a stream eviction.
    pub fn append_evict(&self, id: u64) -> Result<AppendInfo> {
        let mut wal = self.shared.wal.lock().expect("wal lock");
        let info = wal.append_evict(id)?;
        self.enqueue(Op::Evict(id));
        Ok(info)
    }

    /// Called with the WAL lock held, so queue order == WAL order.
    fn enqueue(&self, op: Op) {
        let mut pending = self.shared.pending.lock().expect("pending lock");
        pending.ops.push_back(op);
        drop(pending);
        self.shared.not_empty.notify_one();
    }

    /// Blocks until every queued operation has been folded into the
    /// memtable and tiers.
    pub fn flush(&self) {
        let mut pending = self.shared.pending.lock().expect("pending lock");
        while !pending.ops.is_empty() || pending.busy {
            pending = self.shared.drained.wait(pending).expect("drained wait");
        }
    }

    /// Fsyncs the WAL's active segment.
    pub fn sync(&self) -> Result<()> {
        self.shared.wal.lock().expect("wal lock").sync()
    }

    /// Snapshots memtable + tiers into the archive sidecar, tagged with the
    /// highest appended WAL sequence. Call from a quiesced point (no
    /// concurrent appends) so the tag is exact; returns the covered seq.
    pub fn persist_archive(&self) -> Result<u64> {
        self.flush();
        let wal = self.shared.wal.lock().expect("wal lock");
        let seq = wal.next_seq() - 1;
        let inner = self.shared.inner.lock().expect("inner lock");
        let mut streams: Vec<StreamSnapshot> = inner
            .streams
            .iter()
            .map(|(id, s)| StreamSnapshot {
                id: *id,
                next_minute: s.next_minute,
                archive: s.archive.clone(),
            })
            .collect();
        streams.sort_by_key(|s| s.id);
        let snap = ArchiveSnapshot { seq, memtable: inner.memtable.clone(), streams };
        drop(inner);
        archive::write_archive(&self.dir.join(ARCHIVE_FILE), &snap)?;
        drop(wal);
        Ok(seq)
    }

    /// Deletes WAL segments fully covered by `seq` (normally the sequence
    /// returned by [`TraceStore::persist_archive`]). Returns segments
    /// removed.
    pub fn truncate_upto(&self, seq: u64) -> Result<u64> {
        self.shared.wal.lock().expect("wal lock").truncate_upto(seq)
    }

    /// Raw samples of `stream` in `[from, to]` minutes, from the memtable.
    pub fn query_raw(&self, stream: u64, from: u64, to: u64) -> Vec<(u64, f64)> {
        self.shared.inner.lock().expect("inner lock").memtable.query(stream, from, to)
    }

    /// Consolidated rows of `stream` for `[start, end)` minutes at
    /// `interval` (see [`TieredArchive::query`]).
    pub fn query_archive(
        &self,
        stream: u64,
        start_minute: u64,
        end_minute: u64,
        interval_minutes: u64,
    ) -> Option<Vec<f64>> {
        self.shared.inner.lock().expect("inner lock").streams.get(&stream)?.archive.query(
            start_minute,
            end_minute,
            interval_minutes,
        )
    }

    /// Next WAL sequence number to be assigned.
    pub fn next_seq(&self) -> u64 {
        self.shared.wal.lock().expect("wal lock").next_seq()
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        let wal = self.shared.wal.lock().expect("wal lock").stats();
        let pending_ops = self.shared.pending.lock().expect("pending lock").ops.len() as u64;
        let streams = self.shared.inner.lock().expect("inner lock").streams.len() as u64;
        StoreStats {
            wal,
            compactions: self.shared.compactions.load(Ordering::Relaxed),
            compacted_samples: self.shared.compacted_samples.load(Ordering::Relaxed),
            pending_ops,
            streams,
        }
    }
}

impl Drop for TraceStore {
    fn drop(&mut self) {
        {
            let mut pending = self.shared.pending.lock().expect("pending lock");
            pending.shutdown = true;
        }
        self.shared.not_empty.notify_all();
        if let Some(handle) = self.compactor.take() {
            let _ = handle.join();
        }
    }
}

fn validate(options: &StoreOptions) -> Result<()> {
    if options.memtable_rows == 0 {
        return Err(StoreError::InvalidConfig("memtable_rows must be positive".into()));
    }
    // Tier layout errors surface here rather than on first sample.
    TieredArchive::new(options.tiers.clone())?;
    Ok(())
}

fn compactor_loop(shared: &Shared) {
    let mut batch: Vec<Op> = Vec::new();
    loop {
        {
            let mut pending = shared.pending.lock().expect("pending lock");
            while pending.ops.is_empty() && !pending.shutdown {
                pending = shared.not_empty.wait(pending).expect("not_empty wait");
            }
            if pending.ops.is_empty() && pending.shutdown {
                return;
            }
            batch.extend(pending.ops.drain(..));
            pending.busy = true;
        }
        let mut samples = 0u64;
        {
            let mut inner = shared.inner.lock().expect("inner lock");
            for op in batch.drain(..) {
                match op {
                    Op::Samples(s) => {
                        samples += s.len() as u64;
                        for sample in &s {
                            apply_sample(&mut inner, &shared.options.tiers, sample);
                        }
                    }
                    Op::Register(id) => apply_register(&mut inner, &shared.options.tiers, id),
                    Op::Evict(id) => apply_evict(&mut inner, id),
                }
            }
        }
        shared.compactions.fetch_add(1, Ordering::Relaxed);
        shared.compacted_samples.fetch_add(samples, Ordering::Relaxed);
        {
            let mut pending = shared.pending.lock().expect("pending lock");
            pending.busy = false;
            if pending.ops.is_empty() {
                shared.drained.notify_all();
            }
        }
    }
}

/// Applies one replayed WAL record to the in-memory state (recovery path;
/// identical logic to the compactor's live path).
fn apply_record(inner: &mut Inner, tiers: &[TierSpec], rec: &WalRecord) {
    match rec {
        WalRecord::Samples(samples) => {
            for s in samples {
                apply_sample(inner, tiers, s);
            }
        }
        WalRecord::Register { id, .. } => apply_register(inner, tiers, *id),
        WalRecord::Evict { id } => apply_evict(inner, *id),
    }
}

fn apply_sample(inner: &mut Inner, tiers: &[TierSpec], sample: &Sample) {
    let state = inner.streams.entry(sample.stream).or_insert_with(|| StreamState {
        next_minute: 0,
        archive: TieredArchive::new(tiers.to_vec()).expect("tiers validated at construction"),
    });
    // The serving engine's clock rule: an unstamped sample lands on the
    // stream's next minute; an explicit minute advances the clock past it.
    let minute = sample.minute.unwrap_or(state.next_minute);
    state.next_minute = state.next_minute.max(minute + 1);
    state.archive.record(minute, sample.value);
    inner.memtable.insert(sample.stream, minute, sample.value);
}

fn apply_register(inner: &mut Inner, tiers: &[TierSpec], id: u64) {
    inner.streams.entry(id).or_insert_with(|| StreamState {
        next_minute: 0,
        archive: TieredArchive::new(tiers.to_vec()).expect("tiers validated at construction"),
    });
}

fn apply_evict(inner: &mut Inner, id: u64) {
    inner.streams.remove(&id);
    inner.memtable.evict(id);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::sync::atomic::AtomicU64 as TestCounter;

    fn temp_dir(tag: &str) -> PathBuf {
        static N: TestCounter = TestCounter::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("store-ts-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tuning() -> RegisterTuning {
        RegisterTuning {
            train_size: 40,
            qa_window: 8,
            qa_period: 4,
            qa_threshold: 2.0,
            f32_history: false,
        }
    }

    #[test]
    fn ingest_compacts_into_memtable_and_tiers() {
        let dir = temp_dir("ingest");
        let store = TraceStore::create(&dir, StoreOptions::default()).unwrap();
        store.append_register(5, &tuning()).unwrap();
        for m in 0..30u64 {
            store
                .append_samples(&[Sample { stream: 5, minute: Some(m), value: m as f64 }])
                .unwrap();
        }
        store.flush();
        assert_eq!(store.query_raw(5, 10, 12), vec![(10, 10.0), (11, 11.0), (12, 12.0)]);
        assert_eq!(store.query_archive(5, 0, 10, 5).unwrap(), vec![2.0, 7.0]);
        let stats = store.stats();
        assert_eq!(stats.compacted_samples, 30);
        assert_eq!(stats.streams, 1);
        assert_eq!(stats.wal.records, 31);
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unstamped_samples_follow_the_clock_rule() {
        let dir = temp_dir("clock");
        let store = TraceStore::create(&dir, StoreOptions::default()).unwrap();
        store
            .append_samples(&[
                Sample { stream: 1, minute: None, value: 1.0 },
                Sample { stream: 1, minute: Some(10), value: 2.0 },
                Sample { stream: 1, minute: None, value: 3.0 },
            ])
            .unwrap();
        store.flush();
        assert_eq!(store.query_raw(1, 0, 100), vec![(0, 1.0), (10, 2.0), (11, 3.0)]);
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_rebuilds_state_from_sidecar_plus_tail() {
        let dir = temp_dir("recover");
        let store = TraceStore::create(&dir, StoreOptions::default()).unwrap();
        store.append_register(9, &tuning()).unwrap();
        for m in 0..20u64 {
            store
                .append_samples(&[Sample { stream: 9, minute: Some(m), value: m as f64 }])
                .unwrap();
        }
        let covered = store.persist_archive().unwrap();
        assert_eq!(covered, 21);
        for m in 20..35u64 {
            store
                .append_samples(&[Sample { stream: 9, minute: Some(m), value: m as f64 }])
                .unwrap();
        }
        store.flush();
        let raw_before = store.query_raw(9, 0, 100);
        let tier_before = store.query_archive(9, 0, 30, 5);
        drop(store);

        let mut replayed = Vec::new();
        let (back, recovered) =
            TraceStore::recover(&dir, StoreOptions::default(), covered, |seq, rec| {
                replayed.push((seq, rec));
            })
            .unwrap();
        assert_eq!(recovered.archive_seq, 21);
        assert_eq!(recovered.archive_streams, 1);
        assert!(!recovered.archive_corrupt);
        assert_eq!(recovered.wal.replayed, 15);
        assert_eq!(recovered.wal.gap_records, 0);
        assert_eq!(replayed.len(), 15);
        back.flush();
        assert_eq!(back.query_raw(9, 0, 100), raw_before);
        assert_eq!(back.query_archive(9, 0, 30, 5), tier_before);
        drop(back);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_sidecar_degrades_to_full_replay() {
        let dir = temp_dir("sidecar");
        let store = TraceStore::create(&dir, StoreOptions::default()).unwrap();
        for m in 0..10u64 {
            store
                .append_samples(&[Sample { stream: 2, minute: Some(m), value: m as f64 }])
                .unwrap();
        }
        store.persist_archive().unwrap();
        drop(store);
        // Flip a byte in the sidecar.
        let path = dir.join(ARCHIVE_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        let (back, recovered) =
            TraceStore::recover(&dir, StoreOptions::default(), 0, |_, _| {}).unwrap();
        assert!(recovered.archive_corrupt);
        assert_eq!(recovered.archive_seq, 0);
        // Full WAL replay still rebuilds the query surface.
        back.flush();
        assert_eq!(back.query_raw(2, 0, 100).len(), 10);
        drop(back);
        let _ = fs::remove_dir_all(&dir);
    }
}
