//! Per-stream tiered RRD archive — the paper's `vmkusage` cascade.
//!
//! Consolidation semantics deliberately match `vmsim::TieredDatabase`
//! (bucket completes when `(minute + 1) % interval == 0`, rows are bucket
//! averages, reads come from the finest tier that still retains the range)
//! so the two implementations can be cross-checked against the same golden
//! fixtures. Unlike vmsim's fleet-keyed database, this archive holds ONE
//! stream and serializes into the archive sidecar.

use std::collections::VecDeque;

use crate::memtable::{take_u32, take_u64};
use crate::{Result, StoreError};

/// One archive tier: consolidation interval and retention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierSpec {
    /// Consolidation interval in minutes (tier 0 must be 1 = raw).
    pub interval_minutes: u64,
    /// Consolidated rows retained.
    pub rows: usize,
}

impl TierSpec {
    /// Retention of this tier in minutes.
    pub fn retention_minutes(&self) -> u64 {
        self.interval_minutes * self.rows as u64
    }
}

/// The `vmkusage` layout: 1-minute × 2 h, 5-minute × 24 h, 30-minute × 7 d.
pub fn vmkusage_tiers() -> Vec<TierSpec> {
    vec![
        TierSpec { interval_minutes: 1, rows: 120 },
        TierSpec { interval_minutes: 5, rows: 288 },
        TierSpec { interval_minutes: 30, rows: 7 * 48 },
    ]
}

#[derive(Debug, Clone, Default)]
struct Tier {
    /// Consolidated index of the first retained row.
    first_row: u64,
    rows: VecDeque<f64>,
    acc_sum: f64,
    acc_count: u64,
}

/// Tiered round-robin storage for one stream.
#[derive(Debug, Clone)]
pub struct TieredArchive {
    specs: Vec<TierSpec>,
    tiers: Vec<Tier>,
}

impl TieredArchive {
    /// An empty archive with the given tier layout.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidConfig`] unless specs are non-empty, start at 1
    /// minute, strictly increase, each a multiple of the previous, with
    /// positive rows.
    pub fn new(specs: Vec<TierSpec>) -> Result<TieredArchive> {
        validate_specs(&specs)?;
        let tiers = specs.iter().map(|_| Tier::default()).collect();
        Ok(TieredArchive { specs, tiers })
    }

    /// The configured tier layout.
    pub fn specs(&self) -> &[TierSpec] {
        &self.specs
    }

    /// Records the sample for `minute` into every tier's accumulator,
    /// emitting a consolidated row wherever the bucket completes. Minutes
    /// are expected in increasing order per stream.
    pub fn record(&mut self, minute: u64, value: f64) {
        for (spec, tier) in self.specs.iter().zip(&mut self.tiers) {
            tier.acc_sum += value;
            tier.acc_count += 1;
            if (minute + 1).is_multiple_of(spec.interval_minutes) {
                let avg = tier.acc_sum / tier.acc_count as f64;
                tier.acc_sum = 0.0;
                tier.acc_count = 0;
                tier.rows.push_back(avg);
                if tier.rows.len() > spec.rows {
                    tier.rows.pop_front();
                    tier.first_row += 1;
                }
            }
        }
    }

    /// Consolidated rows for `[start_minute, end_minute)` at
    /// `interval_minutes`, from the finest tier whose interval divides the
    /// request and which still retains the whole range. `None` when no tier
    /// can serve it (evicted, misaligned, or empty).
    pub fn query(
        &self,
        start_minute: u64,
        end_minute: u64,
        interval_minutes: u64,
    ) -> Option<Vec<f64>> {
        if interval_minutes == 0
            || start_minute >= end_minute
            || !(end_minute - start_minute).is_multiple_of(interval_minutes)
            || !start_minute.is_multiple_of(interval_minutes)
        {
            return None;
        }
        for (spec, tier) in self.specs.iter().zip(&self.tiers) {
            if !interval_minutes.is_multiple_of(spec.interval_minutes) {
                continue;
            }
            let first_needed = start_minute / spec.interval_minutes;
            let last_needed = end_minute / spec.interval_minutes; // exclusive
            let retained_end = tier.first_row + tier.rows.len() as u64;
            if first_needed < tier.first_row || last_needed > retained_end {
                continue;
            }
            let group = (interval_minutes / spec.interval_minutes) as usize;
            let offset = (first_needed - tier.first_row) as usize;
            let n = (last_needed - first_needed) as usize;
            let out = tier
                .rows
                .iter()
                .skip(offset)
                .take(n)
                .collect::<Vec<_>>()
                .chunks(group)
                .map(|c| c.iter().copied().sum::<f64>() / c.len() as f64)
                .collect();
            return Some(out);
        }
        None
    }

    /// Retained consolidated row range `[first, last]` of tier `tier`, or
    /// `None` if absent or empty.
    pub fn tier_range(&self, tier: usize) -> Option<(u64, u64)> {
        let t = self.tiers.get(tier)?;
        if t.rows.is_empty() {
            return None;
        }
        Some((t.first_row, t.first_row + t.rows.len() as u64 - 1))
    }

    /// Serializes the archive (specs + ring contents + accumulators) — a
    /// pure function of the samples recorded, so byte-deterministic.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.specs.len() as u32).to_le_bytes());
        for (spec, tier) in self.specs.iter().zip(&self.tiers) {
            out.extend_from_slice(&spec.interval_minutes.to_le_bytes());
            out.extend_from_slice(&(spec.rows as u64).to_le_bytes());
            out.extend_from_slice(&tier.first_row.to_le_bytes());
            out.extend_from_slice(&tier.acc_sum.to_bits().to_le_bytes());
            out.extend_from_slice(&tier.acc_count.to_le_bytes());
            out.extend_from_slice(&(tier.rows.len() as u32).to_le_bytes());
            for row in &tier.rows {
                out.extend_from_slice(&row.to_bits().to_le_bytes());
            }
        }
    }

    /// Decodes from `bytes` at `*pos`, advancing it. `None` on malformed
    /// input (forged counts are bounded against remaining bytes before any
    /// allocation; never panics).
    pub fn decode(bytes: &[u8], pos: &mut usize) -> Option<TieredArchive> {
        let tier_count = take_u32(bytes, pos)? as usize;
        // Each tier costs at least 40 bytes of fixed fields.
        if tier_count.checked_mul(40)? > bytes.len().saturating_sub(*pos) {
            return None;
        }
        let mut specs = Vec::with_capacity(tier_count);
        let mut tiers = Vec::with_capacity(tier_count);
        for _ in 0..tier_count {
            let interval_minutes = take_u64(bytes, pos)?;
            let spec_rows = take_u64(bytes, pos)? as usize;
            let first_row = take_u64(bytes, pos)?;
            let acc_sum = f64::from_bits(take_u64(bytes, pos)?);
            let acc_count = take_u64(bytes, pos)?;
            let row_count = take_u32(bytes, pos)? as usize;
            if row_count > spec_rows || row_count.checked_mul(8)? > bytes.len().saturating_sub(*pos)
            {
                return None;
            }
            let mut rows = VecDeque::with_capacity(row_count);
            for _ in 0..row_count {
                rows.push_back(f64::from_bits(take_u64(bytes, pos)?));
            }
            specs.push(TierSpec { interval_minutes, rows: spec_rows });
            tiers.push(Tier { first_row, rows, acc_sum, acc_count });
        }
        validate_specs(&specs).ok()?;
        Some(TieredArchive { specs, tiers })
    }
}

fn validate_specs(specs: &[TierSpec]) -> Result<()> {
    if specs.is_empty() {
        return Err(StoreError::InvalidConfig("at least one tier required".into()));
    }
    if specs[0].interval_minutes != 1 {
        return Err(StoreError::InvalidConfig("tier 0 must be 1-minute raw".into()));
    }
    for (i, s) in specs.iter().enumerate() {
        if s.interval_minutes == 0 || s.rows == 0 {
            return Err(StoreError::InvalidConfig(format!(
                "tier {i}: interval and rows must be positive"
            )));
        }
        if i > 0 {
            let prev = specs[i - 1].interval_minutes;
            if s.interval_minutes <= prev || !s.interval_minutes.is_multiple_of(prev) {
                return Err(StoreError::InvalidConfig(format!(
                    "tier {i}: interval {} must be a strict multiple of {}",
                    s.interval_minutes, prev
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(archive: &mut TieredArchive, minutes: u64) {
        for minute in 0..minutes {
            archive.record(minute, minute as f64);
        }
    }

    #[test]
    fn layout_validation() {
        assert!(TieredArchive::new(vec![]).is_err());
        assert!(TieredArchive::new(vec![TierSpec { interval_minutes: 5, rows: 10 }]).is_err());
        assert!(TieredArchive::new(vec![
            TierSpec { interval_minutes: 1, rows: 10 },
            TierSpec { interval_minutes: 7, rows: 10 },
            TierSpec { interval_minutes: 10, rows: 10 },
        ])
        .is_err());
        assert!(TieredArchive::new(vec![
            TierSpec { interval_minutes: 1, rows: 10 },
            TierSpec { interval_minutes: 5, rows: 0 },
        ])
        .is_err());
        TieredArchive::new(vmkusage_tiers()).unwrap();
    }

    #[test]
    fn consolidation_matches_vmkusage_semantics() {
        let mut a = TieredArchive::new(vmkusage_tiers()).unwrap();
        ramp(&mut a, 60);
        assert_eq!(a.query(10, 20, 1).unwrap(), (10..20).map(|m| m as f64).collect::<Vec<_>>());
        let five = a.query(0, 60, 5).unwrap();
        assert_eq!(five.len(), 12);
        assert_eq!(five[0], 2.0);
        assert_eq!(five[11], 57.0);
        assert_eq!(a.query(0, 60, 30).unwrap(), vec![14.5, 44.5]);
        // Partial buckets are invisible until complete.
        let mut b = TieredArchive::new(vmkusage_tiers()).unwrap();
        ramp(&mut b, 7);
        assert_eq!(b.query(0, 5, 5).unwrap(), vec![2.0]);
        assert!(b.query(0, 10, 5).is_none());
    }

    #[test]
    fn evicted_fine_rows_served_coarser() {
        let mut a = TieredArchive::new(vmkusage_tiers()).unwrap();
        ramp(&mut a, 600);
        assert!(a.query(0, 60, 1).is_none());
        let old = a.query(0, 60, 5).unwrap();
        assert_eq!(old[0], 2.0);
        assert_eq!(a.query(590, 600, 1).unwrap()[0], 590.0);
        assert_eq!(a.tier_range(0), Some((480, 599)));
        assert_eq!(a.tier_range(1), Some((0, 119)));
    }

    #[test]
    fn encode_decode_round_trips_bit_exactly() {
        let mut a = TieredArchive::new(vmkusage_tiers()).unwrap();
        ramp(&mut a, 333); // leaves partial accumulators in tiers 1 and 2
        let mut bytes = Vec::new();
        a.encode_into(&mut bytes);
        let mut pos = 0;
        let mut back = TieredArchive::decode(&bytes, &mut pos).unwrap();
        assert_eq!(pos, bytes.len());
        let mut bytes2 = Vec::new();
        back.encode_into(&mut bytes2);
        assert_eq!(bytes, bytes2);
        // The decoded archive keeps consolidating identically.
        a.record(333, 1.5);
        back.record(333, 1.5);
        assert_eq!(a.query(0, 330, 5), back.query(0, 330, 5));
        assert_eq!(a.query(300, 330, 30), back.query(300, 330, 30));
    }

    #[test]
    fn decode_rejects_malformed_input_without_panic() {
        let mut a = TieredArchive::new(vmkusage_tiers()).unwrap();
        ramp(&mut a, 10);
        let mut bytes = Vec::new();
        a.encode_into(&mut bytes);
        for cut in 0..bytes.len() {
            let _ = TieredArchive::decode(&bytes[..cut], &mut 0);
        }
        let mut forged = bytes.clone();
        forged[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(TieredArchive::decode(&forged, &mut 0).is_none());
    }
}
