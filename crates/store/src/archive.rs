//! The `STORARCH` archive sidecar: memtable + tier state persisted next to
//! a checkpoint so a restart rebuilds the query surface without replaying
//! the whole history.
//!
//! File layout (all little-endian):
//!
//! ```text
//! magic   8B  "STORARCH"
//! version u32 1
//! seq     u64 highest WAL sequence number the snapshot covers
//! memtable    (see Memtable::encode_into)
//! streams u32
//! per stream: id u64 | next_minute u64 | archive (TieredArchive::encode_into)
//! crc     u32 CRC-32/IEEE over everything above
//! ```
//!
//! Writes are atomic (tmp + rename + directory fsync). Reads return
//! `Ok(None)` for a missing file and `Err(Corrupt)` for one that fails
//! validation — callers degrade to an empty archive and count it, they do
//! not crash.

use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

use crate::crc::crc32;
use crate::memtable::{take_u32, take_u64, Memtable};
use crate::tiers::TieredArchive;
use crate::{Result, StoreError};

const ARCH_MAGIC: &[u8; 8] = b"STORARCH";
const ARCH_VERSION: u32 = 1;

/// One persisted stream: id, its replay clock, and its tier state.
#[derive(Debug, Clone)]
pub struct StreamSnapshot {
    /// Stream id.
    pub id: u64,
    /// The stream's auto-clock (next minute to assign to an unstamped
    /// sample), so replay continues the exact live numbering.
    pub next_minute: u64,
    /// Tiered archive state.
    pub archive: TieredArchive,
}

/// Everything a sidecar file holds.
#[derive(Debug, Clone)]
pub struct ArchiveSnapshot {
    /// Highest WAL sequence number folded into this snapshot.
    pub seq: u64,
    /// Raw-sample rings.
    pub memtable: Memtable,
    /// Per-stream tier state, sorted by id.
    pub streams: Vec<StreamSnapshot>,
}

/// Atomically writes `snapshot` to `path`.
pub fn write_archive(path: &Path, snapshot: &ArchiveSnapshot) -> Result<()> {
    let mut buf = Vec::new();
    buf.extend_from_slice(ARCH_MAGIC);
    buf.extend_from_slice(&ARCH_VERSION.to_le_bytes());
    buf.extend_from_slice(&snapshot.seq.to_le_bytes());
    snapshot.memtable.encode_into(&mut buf);
    buf.extend_from_slice(&(snapshot.streams.len() as u32).to_le_bytes());
    let mut sorted: Vec<&StreamSnapshot> = snapshot.streams.iter().collect();
    sorted.sort_by_key(|s| s.id);
    for s in sorted {
        buf.extend_from_slice(&s.id.to_le_bytes());
        buf.extend_from_slice(&s.next_minute.to_le_bytes());
        s.archive.encode_into(&mut buf);
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());

    let tmp = path.with_extension("tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(&buf)?;
    f.sync_data()?;
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Reads a sidecar. `Ok(None)` if the file does not exist;
/// [`StoreError::Corrupt`] if it exists but fails validation.
pub fn read_archive(path: &Path) -> Result<Option<ArchiveSnapshot>> {
    let buf = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    decode_archive(&buf).map(Some)
}

fn decode_archive(buf: &[u8]) -> Result<ArchiveSnapshot> {
    let corrupt = |m: &str| StoreError::Corrupt(format!("archive sidecar: {m}"));
    if buf.len() < 16 {
        return Err(corrupt("too short"));
    }
    if &buf[..8] != ARCH_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let body = &buf[..buf.len() - 4];
    let carried = u32::from_le_bytes(buf[buf.len() - 4..].try_into().expect("4 bytes"));
    if crc32(body) != carried {
        return Err(corrupt("crc mismatch"));
    }
    let mut pos = 8usize;
    let version = take_u32(body, &mut pos).ok_or_else(|| corrupt("truncated"))?;
    if version != ARCH_VERSION {
        return Err(corrupt(&format!("unsupported version {version}")));
    }
    let seq = take_u64(body, &mut pos).ok_or_else(|| corrupt("truncated"))?;
    let memtable = Memtable::decode(body, &mut pos).ok_or_else(|| corrupt("bad memtable"))?;
    let count = take_u32(body, &mut pos).ok_or_else(|| corrupt("truncated"))? as usize;
    if count.checked_mul(16).is_none_or(|n| n > body.len().saturating_sub(pos)) {
        return Err(corrupt("stream count out of bounds"));
    }
    let mut streams = Vec::with_capacity(count);
    let mut prev: Option<u64> = None;
    for _ in 0..count {
        let id = take_u64(body, &mut pos).ok_or_else(|| corrupt("truncated"))?;
        if prev.is_some_and(|p| p >= id) {
            return Err(corrupt("stream ids not strictly ascending"));
        }
        prev = Some(id);
        let next_minute = take_u64(body, &mut pos).ok_or_else(|| corrupt("truncated"))?;
        let archive =
            TieredArchive::decode(body, &mut pos).ok_or_else(|| corrupt("bad tier state"))?;
        streams.push(StreamSnapshot { id, next_minute, archive });
    }
    if pos != body.len() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(ArchiveSnapshot { seq, memtable, streams })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiers::vmkusage_tiers;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("store-arch-{tag}-{}", std::process::id()))
    }

    fn snapshot() -> ArchiveSnapshot {
        let mut memtable = Memtable::new(16);
        let mut archive = TieredArchive::new(vmkusage_tiers()).unwrap();
        for m in 0..12u64 {
            memtable.insert(3, m, m as f64);
            archive.record(m, m as f64);
        }
        ArchiveSnapshot {
            seq: 42,
            memtable,
            streams: vec![StreamSnapshot { id: 3, next_minute: 12, archive }],
        }
    }

    #[test]
    fn sidecar_round_trips() {
        let path = temp_path("roundtrip");
        let snap = snapshot();
        write_archive(&path, &snap).unwrap();
        let back = read_archive(&path).unwrap().unwrap();
        assert_eq!(back.seq, 42);
        assert_eq!(back.streams.len(), 1);
        assert_eq!(back.streams[0].next_minute, 12);
        assert_eq!(back.memtable.query(3, 0, 100), snap.memtable.query(3, 0, 100));
        assert_eq!(
            back.streams[0].archive.query(0, 10, 5),
            snap.streams[0].archive.query(0, 10, 5)
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_is_none_corrupt_is_error() {
        let path = temp_path("corrupt");
        let _ = fs::remove_file(&path);
        assert!(read_archive(&path).unwrap().is_none());
        write_archive(&path, &snapshot()).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_archive(&path), Err(StoreError::Corrupt(_))));
        let _ = fs::remove_file(&path);
    }
}
