//! Bounded in-memory ring of recent raw samples per stream.
//!
//! The memtable is the fine-grained end of the query surface: the last
//! `rows_per_stream` raw `(minute, value)` pairs of every stream, before
//! tier consolidation coarsens them. It serializes into the archive sidecar
//! (sorted by stream id, so encodings are deterministic) and is rebuilt
//! from checkpoint + WAL replay after a crash.

use std::collections::{HashMap, VecDeque};

/// Per-stream bounded rings of the newest raw samples.
#[derive(Debug, Clone)]
pub struct Memtable {
    rows_per_stream: usize,
    map: HashMap<u64, VecDeque<(u64, f64)>>,
}

impl Memtable {
    /// A memtable retaining at most `rows_per_stream` samples per stream.
    pub fn new(rows_per_stream: usize) -> Memtable {
        Memtable { rows_per_stream: rows_per_stream.max(1), map: HashMap::new() }
    }

    /// Retention bound per stream.
    pub fn rows_per_stream(&self) -> usize {
        self.rows_per_stream
    }

    /// Appends one sample, evicting the oldest row if the ring is full.
    pub fn insert(&mut self, stream: u64, minute: u64, value: f64) {
        let ring = self.map.entry(stream).or_default();
        if ring.len() == self.rows_per_stream {
            ring.pop_front();
        }
        ring.push_back((minute, value));
    }

    /// All retained samples of `stream` with `from <= minute <= to`, oldest
    /// first.
    pub fn query(&self, stream: u64, from: u64, to: u64) -> Vec<(u64, f64)> {
        match self.map.get(&stream) {
            Some(ring) => ring.iter().copied().filter(|(m, _)| *m >= from && *m <= to).collect(),
            None => Vec::new(),
        }
    }

    /// The newest retained sample of `stream`.
    pub fn latest(&self, stream: u64) -> Option<(u64, f64)> {
        self.map.get(&stream).and_then(|r| r.back().copied())
    }

    /// Drops a stream's ring; `true` if it existed.
    pub fn evict(&mut self, stream: u64) -> bool {
        self.map.remove(&stream).is_some()
    }

    /// Number of streams with at least one retained sample.
    pub fn streams(&self) -> usize {
        self.map.len()
    }

    /// Retained rows for one stream.
    pub fn rows(&self, stream: u64) -> usize {
        self.map.get(&stream).map_or(0, |r| r.len())
    }

    /// Serializes the memtable (streams sorted by id, so byte-identical for
    /// equal contents).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.rows_per_stream as u32).to_le_bytes());
        let mut ids: Vec<u64> = self.map.keys().copied().collect();
        ids.sort_unstable();
        out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
        for id in ids {
            let ring = &self.map[&id];
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&(ring.len() as u32).to_le_bytes());
            for (minute, value) in ring {
                out.extend_from_slice(&minute.to_le_bytes());
                out.extend_from_slice(&value.to_bits().to_le_bytes());
            }
        }
    }

    /// Decodes from `bytes` starting at `*pos`, advancing it past the
    /// memtable. `None` on any malformed input (never panics).
    pub fn decode(bytes: &[u8], pos: &mut usize) -> Option<Memtable> {
        let rows_per_stream = take_u32(bytes, pos)? as usize;
        if rows_per_stream == 0 {
            return None;
        }
        let streams = take_u32(bytes, pos)? as usize;
        // A stream entry is at least id + count (12 bytes): bound before
        // trusting the count.
        if streams.checked_mul(12)? > bytes.len().saturating_sub(*pos) {
            return None;
        }
        let mut table = Memtable::new(rows_per_stream);
        for _ in 0..streams {
            let id = take_u64(bytes, pos)?;
            let rows = take_u32(bytes, pos)? as usize;
            if rows > rows_per_stream || rows.checked_mul(16)? > bytes.len().saturating_sub(*pos) {
                return None;
            }
            let mut ring = VecDeque::with_capacity(rows);
            for _ in 0..rows {
                let minute = take_u64(bytes, pos)?;
                let value = f64::from_bits(take_u64(bytes, pos)?);
                ring.push_back((minute, value));
            }
            table.map.insert(id, ring);
        }
        Some(table)
    }
}

pub(crate) fn take_u32(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let end = pos.checked_add(4)?;
    let s = bytes.get(*pos..end)?;
    *pos = end;
    Some(u32::from_le_bytes(s.try_into().expect("4 bytes")))
}

pub(crate) fn take_u64(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let end = pos.checked_add(8)?;
    let s = bytes.get(*pos..end)?;
    *pos = end;
    Some(u64::from_le_bytes(s.try_into().expect("8 bytes")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_bounds_and_query() {
        let mut t = Memtable::new(4);
        for m in 0..10u64 {
            t.insert(1, m, m as f64);
        }
        assert_eq!(t.rows(1), 4);
        assert_eq!(t.query(1, 0, 100), vec![(6, 6.0), (7, 7.0), (8, 8.0), (9, 9.0)]);
        assert_eq!(t.query(1, 7, 8), vec![(7, 7.0), (8, 8.0)]);
        assert_eq!(t.latest(1), Some((9, 9.0)));
        assert!(t.query(2, 0, 100).is_empty());
        assert!(t.evict(1));
        assert!(!t.evict(1));
        assert_eq!(t.streams(), 0);
    }

    #[test]
    fn encode_decode_round_trips() {
        let mut t = Memtable::new(8);
        for stream in [9u64, 2, 5] {
            for m in 0..6u64 {
                t.insert(stream, m, stream as f64 + m as f64 * 0.25);
            }
        }
        let mut bytes = Vec::new();
        t.encode_into(&mut bytes);
        let mut pos = 0;
        let back = Memtable::decode(&bytes, &mut pos).unwrap();
        assert_eq!(pos, bytes.len());
        assert_eq!(back.streams(), 3);
        for stream in [9u64, 2, 5] {
            assert_eq!(back.query(stream, 0, 100), t.query(stream, 0, 100));
        }
        // Deterministic bytes regardless of insertion order.
        let mut bytes2 = Vec::new();
        back.encode_into(&mut bytes2);
        assert_eq!(bytes, bytes2);
    }

    #[test]
    fn decode_rejects_forged_counts_without_allocating() {
        let mut t = Memtable::new(8);
        t.insert(1, 0, 1.0);
        let mut bytes = Vec::new();
        t.encode_into(&mut bytes);
        // Forge the stream count.
        bytes[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Memtable::decode(&bytes, &mut 0).is_none());
        // Truncations never panic.
        let mut good = Vec::new();
        t.encode_into(&mut good);
        for cut in 0..good.len() {
            let _ = Memtable::decode(&good[..cut], &mut 0);
        }
    }
}
