//! WAL append-latency microbenchmark.
//!
//! Appends batches of samples under each fsync policy and reports per-append
//! latency percentiles as JSON (committed as `results/BENCH_wal.json`).
//!
//! ```text
//! wal_bench [--records N] [--batch N] [--segment-bytes N] [--dir PATH]
//! ```
//!
//! The `always` arm runs a reduced record count: every append pays a real
//! fsync, and the point is the per-append latency distribution, not a long
//! soak.

use std::path::PathBuf;
use std::time::Instant;

use store::{FsyncPolicy, Sample, Wal, WalOptions};

struct Args {
    records: u64,
    batch: usize,
    segment_bytes: u64,
    dir: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args { records: 200_000, batch: 8, segment_bytes: 8 << 20, dir: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--records" => args.records = val().parse().expect("--records"),
            "--batch" => args.batch = val().parse().expect("--batch"),
            "--segment-bytes" => args.segment_bytes = val().parse().expect("--segment-bytes"),
            "--dir" => args.dir = Some(PathBuf::from(val())),
            "--help" | "-h" => {
                eprintln!(
                    "usage: wal_bench [--records N] [--batch N] [--segment-bytes N] [--dir PATH]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Ceil-rank percentile over a sorted slice (same convention as
/// `obs::percentile_sorted`, inlined to keep the store dependency-free).
fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1] as f64
}

struct ArmResult {
    name: &'static str,
    records: u64,
    elapsed_sec: f64,
    appends_per_sec: f64,
    samples_per_sec: f64,
    bytes: u64,
    fsyncs: u64,
    rotations: u64,
    lat_us: Vec<u64>,
}

fn run_arm(
    name: &'static str,
    policy: FsyncPolicy,
    records: u64,
    args: &Args,
    base: &std::path::Path,
) -> ArmResult {
    let dir = base.join(name);
    let _ = std::fs::remove_dir_all(&dir);
    let options =
        WalOptions { segment_bytes: args.segment_bytes, fsync: policy, ..WalOptions::default() };
    let mut wal = Wal::create(&dir, options).expect("create wal");

    // Deterministic synthetic batch; values vary per append via splitmix so
    // the records are not trivially compressible by the page cache path.
    let mut batch: Vec<Sample> = (0..args.batch)
        .map(|i| Sample { stream: i as u64 % 64, minute: None, value: 0.0 })
        .collect();
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };

    let mut lat_us = Vec::with_capacity(records as usize);
    let start = Instant::now();
    for i in 0..records {
        for s in &mut batch {
            s.minute = Some(i);
            s.value = (next() >> 11) as f64 / (1u64 << 53) as f64;
        }
        let t0 = Instant::now();
        wal.append_samples(&batch).expect("append");
        lat_us.push(t0.elapsed().as_micros() as u64);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = wal.stats();
    drop(wal);
    let _ = std::fs::remove_dir_all(&dir);
    lat_us.sort_unstable();
    ArmResult {
        name,
        records,
        elapsed_sec: elapsed,
        appends_per_sec: records as f64 / elapsed,
        samples_per_sec: records as f64 * args.batch as f64 / elapsed,
        bytes: stats.bytes,
        fsyncs: stats.fsyncs,
        rotations: stats.rotations,
        lat_us,
    }
}

fn main() {
    let args = parse_args();
    let base = args
        .dir
        .clone()
        .unwrap_or_else(|| std::env::temp_dir().join(format!("wal-bench-{}", std::process::id())));

    let arms = [
        run_arm("rotate", FsyncPolicy::OnRotate, args.records, &args, &base),
        run_arm("every256", FsyncPolicy::EveryRecords(256), args.records, &args, &base),
        // Every append fsyncs: keep this arm short.
        run_arm("always", FsyncPolicy::Always, (args.records / 100).clamp(100, 2000), &args, &base),
    ];
    let _ = std::fs::remove_dir_all(&base);

    println!("{{");
    println!("  \"batch\": {},", args.batch);
    println!("  \"segment_bytes\": {},", args.segment_bytes);
    println!("  \"arms\": [");
    for (i, arm) in arms.iter().enumerate() {
        let l = &arm.lat_us;
        println!("    {{");
        println!("      \"fsync\": \"{}\",", arm.name);
        println!("      \"records\": {},", arm.records);
        println!("      \"elapsed_sec\": {:.3},", arm.elapsed_sec);
        println!("      \"appends_per_sec\": {:.0},", arm.appends_per_sec);
        println!("      \"samples_per_sec\": {:.0},", arm.samples_per_sec);
        println!("      \"wal_bytes\": {},", arm.bytes);
        println!("      \"fsyncs\": {},", arm.fsyncs);
        println!("      \"rotations\": {},", arm.rotations);
        println!(
            "      \"wal_append_us\": {{\"p50\": {:.1}, \"p90\": {:.1}, \"p99\": {:.1}, \"p999\": {:.1}, \"max\": {}}}",
            percentile(l, 50.0),
            percentile(l, 90.0),
            percentile(l, 99.0),
            percentile(l, 99.9),
            l.last().copied().unwrap_or(0)
        );
        println!("    }}{}", if i + 1 < arms.len() { "," } else { "" });
    }
    println!("  ]");
    println!("}}");
}
