//! Property tests for the WAL record codec and the segment scanner, in the
//! netserve malformed-input idiom: seeded random records are encoded, then
//! bit-mutated, truncated, or blasted over with noise. The decoder must
//! never panic and never allocate past the validated declared length; when
//! it does accept bytes, the result must re-encode to exactly what was
//! consumed (no silent reinterpretation).

use simrng::{Rng64, Xoshiro256pp};
use store::record::{self, RecordError};
use store::{RegisterTuning, Sample, Wal, WalOptions, WalRecord, MAX_RECORD_PAYLOAD};

/// Draws a random record: sample batches dominate (as they do in a real
/// log), with registrations and evictions mixed in. Values include the
/// nasty f64s (NaN, infinities, -0.0) so bit-exactness is exercised.
fn random_record(rng: &mut Xoshiro256pp) -> WalRecord {
    match rng.next_u64() % 10 {
        0 => WalRecord::Register {
            id: rng.next_u64(),
            tuning: RegisterTuning {
                train_size: rng.next_u64() as u32,
                qa_window: rng.next_u64() as u32,
                qa_period: rng.next_u64() as u32,
                qa_threshold: random_value(rng),
                f32_history: rng.next_u64().is_multiple_of(2),
            },
        },
        1 => WalRecord::Evict { id: rng.next_u64() },
        _ => {
            let count = (rng.next_u64() % 65) as usize;
            WalRecord::Samples(
                (0..count)
                    .map(|_| Sample {
                        stream: rng.next_u64(),
                        minute: rng.next_u64().is_multiple_of(2).then(|| rng.next_u64()),
                        value: random_value(rng),
                    })
                    .collect(),
            )
        }
    }
}

fn random_value(rng: &mut Xoshiro256pp) -> f64 {
    match rng.next_u64() % 8 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -0.0,
        // Raw bit patterns: every f64, normal or not, must round trip.
        _ => f64::from_bits(rng.next_u64()),
    }
}

/// The one invariant a mutated frame may not break: decode never panics,
/// and an `Ok` is only acceptable if re-encoding the result reproduces the
/// exact bytes consumed — i.e. the decoder accepted a genuinely valid
/// record, not a corrupted one it happened to misread.
fn assert_sound(bytes: &[u8]) {
    if let Ok((seq, rec, used)) = record::decode(bytes, MAX_RECORD_PAYLOAD) {
        assert!(used <= bytes.len(), "decode consumed past the buffer");
        assert_eq!(
            record::encode(seq, &rec),
            &bytes[..used],
            "decode accepted bytes that do not re-encode to themselves"
        );
    }
}

#[test]
fn random_records_round_trip_bit_exactly() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x57012);
    for i in 0..500u64 {
        let rec = random_record(&mut rng);
        let bytes = record::encode(i + 1, &rec);
        let (seq, decoded, used) =
            record::decode(&bytes, MAX_RECORD_PAYLOAD).expect("valid record decodes");
        assert_eq!(seq, i + 1);
        assert_eq!(used, bytes.len());
        // PartialEq is false for NaN; compare through the encoder.
        assert_eq!(record::encode(seq, &decoded), bytes, "record {i} did not round trip");
    }
}

#[test]
fn bit_mutated_frames_never_panic_or_slip_through() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x57013);
    let mut rejected = 0u64;
    for i in 0..400u64 {
        let rec = random_record(&mut rng);
        let mut bytes = record::encode(i + 1, &rec);
        for _ in 0..=(rng.next_u64() % 4) {
            let at = (rng.next_u64() % bytes.len() as u64) as usize;
            bytes[at] ^= (1 << (rng.next_u64() % 8)) as u8;
        }
        assert_sound(&bytes);
        if record::decode(&bytes, MAX_RECORD_PAYLOAD).is_err() {
            rejected += 1;
        }
    }
    // Body/length/CRC mutations are all detectable, so the overwhelming
    // majority must be rejected (a flip can cancel a previous flip, so an
    // occasional survivor that passes assert_sound is legitimate).
    assert!(rejected >= 390, "only {rejected}/400 mutated frames rejected");
}

#[test]
fn every_truncation_of_a_valid_frame_reports_truncated() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x57014);
    for i in 0..50u64 {
        let rec = random_record(&mut rng);
        let bytes = record::encode(i + 1, &rec);
        for cut in 0..bytes.len() {
            assert_eq!(
                record::decode(&bytes[..cut], MAX_RECORD_PAYLOAD).unwrap_err(),
                RecordError::Truncated,
                "record {i} cut at {cut}"
            );
        }
    }
}

#[test]
fn pure_noise_buffers_never_panic() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x57015);
    for _ in 0..2000 {
        let len = (rng.next_u64() % 96) as usize;
        let noise: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        assert_sound(&noise);
    }
}

/// A forged declared length must be rejected from the 4-byte prefix alone.
/// Were the decoder to trust it, this test would try to slice gigabytes out
/// of a 16-byte buffer.
#[test]
fn forged_lengths_bounded_by_max_payload() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x57016);
    for _ in 0..500 {
        let mut bytes = record::encode(1, &WalRecord::Evict { id: 42 });
        let forged = rng.next_u64() as u32;
        bytes[..4].copy_from_slice(&forged.to_le_bytes());
        match record::decode(&bytes, MAX_RECORD_PAYLOAD) {
            Err(RecordError::BadLength(n)) => assert_eq!(n, forged),
            // In-range forgeries land on Truncated (buffer too short for
            // the claim) or a CRC/payload mismatch — never a panic, never
            // an allocation of the forged size.
            Err(_) => {}
            Ok(_) => assert_eq!(forged as usize, bytes.len() - 8, "only the true length decodes"),
        }
    }
}

/// Segment-level fuzz: a real WAL directory with its segment files mutated
/// at random offsets. Recovery must never panic, and its accounting must
/// stay conservative — every record is replayed, counted as a gap, or
/// part of a counted corrupt/stranded region; nothing vanishes silently.
#[test]
fn mutated_segments_recover_without_panic_and_account_for_every_record() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x57017);
    for round in 0..25u64 {
        let dir = std::env::temp_dir().join(format!("store-fuzz-{}-{round}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let options = WalOptions { segment_bytes: 512, ..WalOptions::default() };
        let mut wal = Wal::create(&dir, options.clone()).expect("create");
        let total = 40 + rng.next_u64() % 80;
        for i in 0..total {
            wal.append_samples(&[Sample {
                stream: i % 4,
                minute: Some(i),
                value: i as f64 * 0.25,
            }])
            .expect("append");
        }
        drop(wal);

        // Mutate 1..=6 random bytes across the segment files (headers,
        // bodies, CRCs — wherever they land).
        let mut segs: Vec<_> = std::fs::read_dir(&dir)
            .expect("readdir")
            .map(|e| e.expect("entry").path())
            .filter(|p| p.extension().is_some_and(|x| x == "seg"))
            .collect();
        segs.sort();
        for _ in 0..=(rng.next_u64() % 6) {
            let path = &segs[(rng.next_u64() % segs.len() as u64) as usize];
            let mut data = std::fs::read(path).expect("read seg");
            if data.is_empty() {
                continue;
            }
            let at = (rng.next_u64() % data.len() as u64) as usize;
            data[at] ^= (1 << (rng.next_u64() % 8)) as u8;
            std::fs::write(path, data).expect("write seg");
        }

        let mut replayed = 0u64;
        let (recovered, report) =
            Wal::recover(&dir, options, 0, |_, _| replayed += 1).expect("recovery never errors");
        assert_eq!(report.replayed, replayed);
        assert!(
            report.replayed + report.gap_records <= total,
            "round {round}: accounting invented records: {report:?}"
        );
        assert!(
            report.replayed + report.gap_records == total
                || report.corrupt_segments > 0
                || report.torn_tail
                || report.stranded_bytes > 0,
            "round {round}: records lost without any corruption signal: {report:?}"
        );
        // The reopened log is usable: appends land after everything seen.
        assert!(recovered.next_seq() > report.last_seq);
        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
