//! Golden cross-check: `store::TieredArchive` against the original
//! `vmsim::TieredDatabase`. The store's per-stream archive claims the exact
//! `vmkusage` consolidation semantics the simulator implements; this test
//! feeds identical sample sequences into both and demands bit-identical
//! consolidated rows for every tier and query interval, through retention
//! eviction and partial buckets alike.

use simrng::{Rng64, Xoshiro256pp};
use store::{vmkusage_tiers, TieredArchive};
use vmsim::metric::{MetricKind, VmId};
use vmsim::tiered::TieredDatabase;

const VM: VmId = VmId(1);
const METRIC: MetricKind = MetricKind::CpuUsedSec;

/// Feeds the same `minutes`-long trace into both implementations and
/// returns them, along with the recorded values.
fn feed(minutes: u64, seed: u64) -> (TieredArchive, TieredDatabase, Vec<f64>) {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut archive = TieredArchive::new(vmkusage_tiers()).expect("valid layout");
    let database = TieredDatabase::vmkusage_layout();
    let mut values = Vec::with_capacity(minutes as usize);
    for minute in 0..minutes {
        // A drifting daily shape with noise: averages exercise the full
        // mantissa, so any summation-order difference would show up.
        let value = 50.0
            + 30.0 * ((minute as f64) * std::f64::consts::TAU / 1440.0).sin()
            + (rng.next_u64() % 1000) as f64 * 0.013;
        archive.record(minute, value);
        database.record(VM, METRIC, minute, value);
        values.push(value);
    }
    (archive, database, values)
}

/// Every aligned query both sides can serve must agree bit-for-bit; a range
/// one side refuses the other must refuse too.
fn cross_check(archive: &TieredArchive, database: &TieredDatabase, minutes: u64) {
    let mut served = 0u64;
    for interval in [1u64, 5, 30] {
        let mut start = 0u64;
        while start < minutes {
            let end = (start + interval * 7).min(minutes / interval * interval);
            if end > start {
                let from_archive = archive.query(start, end, interval);
                let from_database = database.query(VM, METRIC, start, end, interval).ok();
                match (&from_archive, &from_database) {
                    (Some(a), Some(d)) => {
                        let a_bits: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
                        let d_bits: Vec<u64> = d.iter().map(|v| v.to_bits()).collect();
                        assert_eq!(
                            a_bits, d_bits,
                            "[{start}, {end}) @ {interval}m diverged: {a:?} vs {d:?}"
                        );
                        served += 1;
                    }
                    (None, None) => {} // both evicted it — also agreement
                    _ => panic!(
                        "[{start}, {end}) @ {interval}m: archive={from_archive:?}, \
                         database={from_database:?} — one side served what the other refused"
                    ),
                }
            }
            start += interval * 97; // odd stride: hit many alignments
        }
    }
    assert!(served > 0, "cross-check never exercised a served query");
}

#[test]
fn short_trace_matches_vmsim_before_any_eviction() {
    let minutes = 90; // inside every tier's retention
    let (archive, database, values) = feed(minutes, 0x601d_0001);
    cross_check(&archive, &database, minutes);
    // The raw tier is the values themselves.
    let raw = archive.query(0, minutes, 1).expect("raw tier retains everything");
    assert_eq!(raw.len(), values.len());
    for (got, want) in raw.iter().zip(&values) {
        assert_eq!(got.to_bits(), want.to_bits());
    }
}

#[test]
fn day_long_trace_matches_vmsim_through_fine_tier_eviction() {
    // 1500 minutes: the 1-minute tier (120 rows) has rotated many times and
    // the 5-minute tier (288 rows) has just started evicting.
    let minutes = 1500;
    let (archive, database, _) = feed(minutes, 0x601d_0002);
    cross_check(&archive, &database, minutes);
    // Old ranges fall out of the fine tier and get served coarser, exactly
    // like vmsim: minute 0 at interval 1 is gone, at interval 30 it lives.
    assert!(archive.query(0, 30, 1).is_none());
    assert!(archive.query(0, 30, 30).is_some());
}

#[test]
fn week_long_trace_matches_vmsim_at_full_retention() {
    // 7 days fills the 30-minute tier to its 336-row capacity.
    let minutes = 7 * 1440 + 123;
    let (archive, database, _) = feed(minutes, 0x601d_0003);
    cross_check(&archive, &database, minutes);
    let (first, last) = archive.tier_range(2).expect("coarse tier populated");
    assert_eq!(last - first + 1, 7 * 48, "coarse tier at capacity");
}

#[test]
fn partial_buckets_stay_invisible_on_both_sides() {
    // 1443 minutes: 3 minutes into an unfinished 5-minute bucket and an
    // unfinished 30-minute bucket. Neither side may serve the open bucket.
    let minutes = 1443;
    let (archive, database, _) = feed(minutes, 0x601d_0004);
    cross_check(&archive, &database, minutes);
    assert!(archive.query(1440, 1445, 5).is_none());
    assert!(database.query(VM, METRIC, 1440, 1445, 5).is_err());
}
