//! Selector strategies: the LARPredictor's k-NN choice and every baseline.
//!
//! A [`Selector`] is asked, before each test step, which pool member should
//! forecast the next value; after the value is revealed it may update internal
//! state. The key cost distinction the paper draws is captured by
//! [`Selector::runs_full_pool`]: the NWS baselines must execute *every*
//! predictor *every* step to maintain their error accounting, while the
//! k-NN selector runs only the model it picks.

use predictors::{PredictorId, PredictorPool};
use timeseries::metrics::{CumulativeMse, WindowedMse};

use crate::model::TrainedLarp;
use crate::Result;

/// A strategy for choosing the next-step predictor.
pub trait Selector {
    /// Display name for reports.
    fn name(&self) -> &'static str;

    /// Chooses the predictor for the next value, given the normalised history
    /// observed so far (length ≥ the pool window).
    ///
    /// # Errors
    ///
    /// Implementations may reject histories shorter than their window.
    fn select(&mut self, history: &[f64]) -> Result<PredictorId>;

    /// Receives the revealed actual value so error-tracking selectors can
    /// update. Called after every step, including the first.
    fn observe(&mut self, history: &[f64], actual: f64);

    /// Whether `observe` internally runs the whole pool (the cost the
    /// LARPredictor exists to avoid).
    fn runs_full_pool(&self) -> bool;
}

/// The LARPredictor's k-NN selector (testing phase of the paper).
pub struct KnnSelector<'a> {
    model: &'a TrainedLarp,
}

impl<'a> KnnSelector<'a> {
    /// Wraps a trained model.
    pub fn new(model: &'a TrainedLarp) -> Self {
        Self { model }
    }
}

impl Selector for KnnSelector<'_> {
    fn name(&self) -> &'static str {
        "Knn-LARP"
    }

    fn select(&mut self, history: &[f64]) -> Result<PredictorId> {
        self.model.select(history)
    }

    fn observe(&mut self, _history: &[f64], _actual: f64) {}

    fn runs_full_pool(&self) -> bool {
        false
    }
}

/// The NWS selection rule: run all predictors every step, keep a cumulative
/// MSE per predictor over the whole history, and choose the current minimum.
pub struct NwsCumMse<'a> {
    pool: &'a PredictorPool,
    accumulators: Vec<CumulativeMse>,
}

impl<'a> NwsCumMse<'a> {
    /// Creates the selector over a fitted pool.
    pub fn new(pool: &'a PredictorPool) -> Self {
        Self { pool, accumulators: (0..pool.len()).map(|_| CumulativeMse::new()).collect() }
    }
}

impl Selector for NwsCumMse<'_> {
    fn name(&self) -> &'static str {
        "Cum.MSE"
    }

    fn select(&mut self, _history: &[f64]) -> Result<PredictorId> {
        Ok(argmin_mse(self.accumulators.iter().map(|a| a.mse())))
    }

    fn observe(&mut self, history: &[f64], actual: f64) {
        for (forecast, acc) in
            self.pool.predict_all(history).into_iter().zip(&mut self.accumulators)
        {
            acc.record(forecast, actual);
        }
    }

    fn runs_full_pool(&self) -> bool {
        true
    }
}

/// The windowed variant: cumulative MSE over only the last `window` errors
/// (the paper's Fig. 6 "W-Cum.MSE" with window 2).
pub struct WindowedCumMse<'a> {
    pool: &'a PredictorPool,
    accumulators: Vec<WindowedMse>,
    window: usize,
}

impl<'a> WindowedCumMse<'a> {
    /// Creates the selector with the given error window.
    ///
    /// # Errors
    ///
    /// Returns [`crate::LarpError::InvalidConfig`] if `window == 0`.
    pub fn new(pool: &'a PredictorPool, window: usize) -> Result<Self> {
        let accumulators = (0..pool.len())
            .map(|_| WindowedMse::new(window))
            .collect::<timeseries::Result<Vec<_>>>()
            .map_err(|e| crate::LarpError::InvalidConfig(e.to_string()))?;
        Ok(Self { pool, accumulators, window })
    }

    /// The configured error window.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Selector for WindowedCumMse<'_> {
    fn name(&self) -> &'static str {
        "W-Cum.MSE"
    }

    fn select(&mut self, _history: &[f64]) -> Result<PredictorId> {
        Ok(argmin_mse(self.accumulators.iter().map(|a| a.mse())))
    }

    fn observe(&mut self, history: &[f64], actual: f64) {
        for (forecast, acc) in
            self.pool.predict_all(history).into_iter().zip(&mut self.accumulators)
        {
            acc.record(forecast, actual);
        }
    }

    fn runs_full_pool(&self) -> bool {
        true
    }
}

/// Owned per-predictor windowed-error accounting for the online serving
/// layer's degradation ladder.
///
/// Unlike [`NwsCumMse`]/[`WindowedCumMse`] this holds no pool reference — the
/// pool is passed to each call — so it can live inside [`crate::OnlineLarp`]
/// across retrains (each retrain replaces the pool but the error bookkeeping
/// survives as a fresh tracker). The online layer only pays the full-pool cost
/// of [`PoolErrorTracker::observe`] while at least one predictor is
/// quarantined; on a healthy stream it is never consulted.
#[derive(Debug)]
pub struct PoolErrorTracker {
    accumulators: Vec<WindowedMse>,
}

impl PoolErrorTracker {
    /// Creates a tracker for a pool of `pool_len` members with the given
    /// error window.
    ///
    /// # Errors
    ///
    /// Returns [`crate::LarpError::InvalidConfig`] if `window == 0`.
    pub fn new(pool_len: usize, window: usize) -> Result<Self> {
        let accumulators = (0..pool_len)
            .map(|_| WindowedMse::new(window))
            .collect::<timeseries::Result<Vec<_>>>()
            .map_err(|e| crate::LarpError::InvalidConfig(e.to_string()))?;
        Ok(Self { accumulators })
    }

    /// Runs the whole pool on `history` and records each member's error
    /// against the revealed `actual`. Non-finite forecasts are recorded as a
    /// large finite penalty so a NaN-emitting model ranks last instead of
    /// poisoning its accumulator.
    pub fn observe(&mut self, pool: &PredictorPool, history: &[f64], actual: f64) {
        for (forecast, acc) in pool.predict_all(history).into_iter().zip(&mut self.accumulators) {
            if forecast.is_finite() && actual.is_finite() {
                acc.record(forecast, actual);
            } else {
                acc.record(1e6, 0.0);
            }
        }
    }

    /// The lowest-error pool member among those for which `allowed` is true.
    /// Members without history yet rank as if their error were 0. Returns
    /// `None` if nothing is allowed.
    pub fn best_allowed(&self, allowed: impl Fn(PredictorId) -> bool) -> Option<PredictorId> {
        let mut best: Option<(PredictorId, f64)> = None;
        for (i, acc) in self.accumulators.iter().enumerate() {
            let id = PredictorId(i);
            if !allowed(id) {
                continue;
            }
            let v = acc.mse().unwrap_or(0.0);
            if best.is_none_or(|(_, bv)| v < bv) {
                best = Some((id, v));
            }
        }
        best.map(|(id, _)| id)
    }

    /// Heap bytes held by the tracker's error windows, for memory accounting.
    pub fn heap_bytes(&self) -> usize {
        self.accumulators.capacity() * std::mem::size_of::<WindowedMse>()
            + self.accumulators.iter().map(WindowedMse::heap_bytes).sum::<usize>()
    }

    /// Number of pool members tracked.
    pub fn len(&self) -> usize {
        self.accumulators.len()
    }

    /// Whether the tracker tracks nothing.
    pub fn is_empty(&self) -> bool {
        self.accumulators.is_empty()
    }
}

/// Always selects one fixed predictor — how the paper reports the single-model
/// columns (LAST / AR / SW) of Table 2.
pub struct Static {
    id: PredictorId,
    name: &'static str,
}

impl Static {
    /// Creates a static selector for pool member `id`, carrying the model's
    /// display name.
    pub fn new(id: PredictorId, name: &'static str) -> Self {
        Self { id, name }
    }
}

impl Selector for Static {
    fn name(&self) -> &'static str {
        self.name
    }

    fn select(&mut self, _history: &[f64]) -> Result<PredictorId> {
        Ok(self.id)
    }

    fn observe(&mut self, _history: &[f64], _actual: f64) {}

    fn runs_full_pool(&self) -> bool {
        false
    }
}

/// Argmin over optional MSEs: predictors with no history yet rank as if their
/// error were 0 (everyone starts equal, ties resolve to the lowest id — for
/// the standard pool that is LAST, a sane cold-start default).
fn argmin_mse(mses: impl Iterator<Item = Option<f64>>) -> PredictorId {
    let mut best = PredictorId(0);
    let mut best_val = f64::INFINITY;
    for (i, m) in mses.enumerate() {
        let v = m.unwrap_or(0.0);
        if v < best_val {
            best_val = v;
            best = PredictorId(i);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_over(train: &[f64]) -> PredictorPool {
        PredictorPool::standard(train, 3).unwrap()
    }

    /// A two-model pool {LAST, SW_AVG(4)} where the winner on each workload
    /// shape is unambiguous (no AR, whose fit quality depends on the data).
    fn two_model_pool(train: &[f64]) -> PredictorPool {
        use predictors::ModelSpec;
        PredictorPool::from_specs(&[ModelSpec::Last, ModelSpec::SwAvg { window: 4 }], train)
            .unwrap()
    }

    #[test]
    fn nws_tracks_the_lowest_error_model() {
        // Smooth ramp: LAST has error 0.1 per step; SW_AVG(4) lags by ~0.25.
        // After a few observations NWS must settle on LAST (id 0).
        let t: Vec<f64> = (0..100).map(|i| i as f64 * 0.1).collect();
        let pool = two_model_pool(&t);
        let mut sel = NwsCumMse::new(&pool);
        for step in 3..30 {
            sel.observe(&t[..step], t[step]);
        }
        assert_eq!(sel.select(&t[..30]).unwrap(), PredictorId(0));
    }

    #[test]
    fn nws_selection_matches_independent_cumulative_mse() {
        // On the standard pool, whatever NWS selects must be the argmin of
        // independently accumulated cumulative squared errors.
        let t: Vec<f64> = (0..120).map(|i| (i as f64 * 0.17).sin() * 2.0).collect();
        let pool = pool_over(&t);
        let mut sel = NwsCumMse::new(&pool);
        let mut sums = vec![0.0; pool.len()];
        for step in 3..80 {
            sel.observe(&t[..step], t[step]);
            for (i, f) in pool.predict_all(&t[..step]).iter().enumerate() {
                sums[i] += (f - t[step]).powi(2);
            }
        }
        let expect = sums
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
            .map(|(i, _)| PredictorId(i))
            .unwrap();
        assert_eq!(sel.select(&t[..80]).unwrap(), expect);
    }

    #[test]
    fn nws_cold_start_defaults_to_first_model() {
        let t: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let pool = pool_over(&t);
        let mut sel = NwsCumMse::new(&pool);
        assert_eq!(sel.select(&t[..5]).unwrap(), PredictorId(0));
    }

    #[test]
    fn windowed_selector_adapts_faster_than_cumulative() {
        // Phase 1 (long): LAST perfect. Phase 2: alternating noise where
        // SW_AVG wins. The windowed selector must flip soon after the switch,
        // while the cumulative one is still anchored to phase-1 history.
        // Phase 1 uses a unit-slope ramp so LAST accumulates real error
        // (1 per step) while SW_AVG(4) accumulates ~6.25 per step — enough
        // history to anchor the cumulative selector on LAST through phase 2.
        let mut t: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let base = t[199];
        t.extend((0..40).map(|i| base + if i % 2 == 0 { 1.0 } else { -1.0 }));
        let pool = two_model_pool(&t);
        let mut win = WindowedCumMse::new(&pool, 2).unwrap();
        let mut cum = NwsCumMse::new(&pool);
        for step in 3..t.len() {
            win.observe(&t[..step], t[step]);
            cum.observe(&t[..step], t[step]);
        }
        // After 40 noisy steps, the windowed selector must have flipped to
        // SW_AVG (id 1) while the cumulative one is still anchored to LAST
        // by its 200-step smooth prefix.
        assert_eq!(win.select(&t).unwrap(), PredictorId(1));
        assert_eq!(cum.select(&t).unwrap(), PredictorId(0));
    }

    #[test]
    fn windowed_zero_window_rejected() {
        let t: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let pool = pool_over(&t);
        assert!(WindowedCumMse::new(&pool, 0).is_err());
    }

    #[test]
    fn static_selector_is_constant() {
        let t: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let mut sel = Static::new(PredictorId(2), "SW_AVG");
        assert_eq!(sel.select(&t[..10]).unwrap(), PredictorId(2));
        sel.observe(&t[..10], 99.0);
        assert_eq!(sel.select(&t[..20]).unwrap(), PredictorId(2));
        assert!(!sel.runs_full_pool());
        assert_eq!(sel.name(), "SW_AVG");
    }

    #[test]
    fn tracker_ranks_by_windowed_error_and_respects_exclusions() {
        // Smooth ramp: LAST (id 0) beats SW_AVG (id 1).
        let t: Vec<f64> = (0..100).map(|i| i as f64 * 0.1).collect();
        let pool = two_model_pool(&t);
        let mut tracker = PoolErrorTracker::new(pool.len(), 8).unwrap();
        for step in 4..60 {
            tracker.observe(&pool, &t[..step], t[step]);
        }
        assert_eq!(tracker.best_allowed(|_| true), Some(PredictorId(0)));
        // Excluding the winner falls through to the runner-up.
        assert_eq!(tracker.best_allowed(|id| id.0 != 0), Some(PredictorId(1)));
        // Excluding everything yields nothing.
        assert_eq!(tracker.best_allowed(|_| false), None);
        assert_eq!(tracker.len(), 2);
        assert!(!tracker.is_empty());
    }

    #[test]
    fn tracker_survives_nonfinite_observations() {
        let t: Vec<f64> = (0..60).map(|i| i as f64 * 0.1).collect();
        let pool = two_model_pool(&t);
        let mut tracker = PoolErrorTracker::new(pool.len(), 4).unwrap();
        for step in 4..20 {
            tracker.observe(&pool, &t[..step], t[step]);
        }
        // A NaN actual must not poison the accounting into unanimity loss.
        tracker.observe(&pool, &t[..20], f64::NAN);
        assert!(tracker.best_allowed(|_| true).is_some());
        assert!(PoolErrorTracker::new(2, 0).is_err());
    }

    #[test]
    fn cost_flags_match_paper_claims() {
        let t: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let pool = pool_over(&t);
        assert!(NwsCumMse::new(&pool).runs_full_pool());
        assert!(WindowedCumMse::new(&pool, 2).unwrap().runs_full_pool());
        assert!(!Static::new(PredictorId(0), "LAST").runs_full_pool());
    }
}
