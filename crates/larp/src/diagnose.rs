//! Applicability diagnostics: *should* you use a LARPredictor on this series?
//!
//! The paper's future work asks for "a quantitative method to assess the
//! LARPredictor's applicability to time series predictions in other areas".
//! This module implements one, built from the quantities the rest of the
//! crate already computes. Adaptive predictor selection pays off exactly when
//!
//! 1. a perfect selector would beat the best single model by a useful margin
//!    (**oracle headroom**),
//! 2. the best predictor genuinely varies — the per-step labels are not
//!    dominated by one model (**label entropy**) and flip over time
//!    (**switch rate**), and
//! 3. the prediction *window* carries information about which model will win,
//!    so a window-based classifier can actually exploit 1–2
//!    (**window information**: leave-one-out k-NN label accuracy above the
//!    modal-label baseline).
//!
//! [`assess`] measures all four on a training prefix and folds them into a
//! [`Recommendation`].

use learn::vote::majority_vote;
use linalg::vecops::squared_distance;
use predictors::PredictorPool;
use timeseries::ZScore;

use crate::config::LarpConfig;
use crate::labeler::label_windows;
use crate::model::TrainedLarp;
use crate::{LarpError, Result};

/// Verdict of the applicability assessment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recommendation {
    /// The best predictor is time-varying, window-identifiable, and a
    /// selector has real headroom: use the LARPredictor.
    StrongFit,
    /// Some structure exists but the expected gain is small; the
    /// LARPredictor should roughly match the best single model while still
    /// saving the pool-execution cost versus NWS.
    MarginalFit,
    /// One model dominates or the window carries no label information:
    /// fit the best single model and skip selection.
    UseSingleBest,
}

/// Quantitative applicability measurements for one series.
#[derive(Debug, Clone, PartialEq)]
pub struct Applicability {
    /// `1 − oracle_mse / best_single_mse` on the assessed data: the fraction
    /// of the best single model's error a *perfect* selector would remove.
    /// 0 means selection cannot help at all.
    pub oracle_headroom: f64,
    /// Entropy of the best-predictor label distribution, normalised to
    /// `[0, 1]` by `log(pool size)`. 0 = one model always wins.
    pub label_entropy: f64,
    /// Leave-one-out k-NN label accuracy minus the modal-label rate:
    /// how much better than "always guess the most common winner" the window
    /// makes you. ≤ 0 means the window is uninformative.
    pub window_information: f64,
    /// Fraction of adjacent steps whose best predictor differs.
    pub switch_rate: f64,
    /// Modal-label rate (the accuracy of always guessing the most frequent
    /// best predictor) — the baseline `window_information` is measured from.
    pub modal_rate: f64,
    /// The folded verdict.
    pub recommendation: Recommendation,
}

/// Assesses LARPredictor applicability on `values` under `config`.
///
/// The assessment mirrors the training phase: normalise, frame, label every
/// window with its best predictor, then measure headroom, label structure and
/// window informativeness on those labels. It needs the same minimum data as
/// [`TrainedLarp::train`].
///
/// # Errors
///
/// * [`LarpError::InvalidConfig`] for an invalid configuration;
/// * [`LarpError::InsufficientData`] if `values` cannot produce at least
///   `k + 1` labelled windows;
/// * [`LarpError::Substrate`] for propagated fitting failures.
pub fn assess(values: &[f64], config: &LarpConfig) -> Result<Applicability> {
    config.validate()?;
    if values.len() < config.window + config.k + 1 {
        return Err(LarpError::InsufficientData(format!(
            "series of length {} cannot produce {} labelled windows of size {}",
            values.len(),
            config.k + 1,
            config.window
        )));
    }
    let zscore = ZScore::fit(values)?;
    let normalized = zscore.apply_slice(values);
    let pool = PredictorPool::from_specs(&config.pool, &normalized)?;
    let labeled = label_windows(&pool, &normalized, config.window)?;
    if labeled.len() <= config.k {
        return Err(LarpError::InsufficientData(format!(
            "{} labelled windows cannot support k = {} leave-one-out assessment",
            labeled.len(),
            config.k
        )));
    }

    // --- oracle headroom -------------------------------------------------
    let steps = labeled.len() as f64;
    let mut oracle_sq = 0.0;
    let mut model_sq = vec![0.0; pool.len()];
    for lw in &labeled {
        let forecasts = pool.predict_all(&lw.window);
        oracle_sq += (forecasts[lw.label.0] - lw.target).powi(2);
        for (i, f) in forecasts.iter().enumerate() {
            model_sq[i] += (f - lw.target).powi(2);
        }
    }
    let best_single = model_sq.iter().cloned().fold(f64::INFINITY, f64::min) / steps;
    let oracle = oracle_sq / steps;
    let oracle_headroom =
        if best_single > 1e-15 { (1.0 - oracle / best_single).max(0.0) } else { 0.0 };

    // --- label distribution ----------------------------------------------
    let mut counts = vec![0usize; pool.len()];
    for lw in &labeled {
        counts[lw.label.0] += 1;
    }
    let modal_rate = counts.iter().copied().max().unwrap_or(0) as f64 / steps;
    let label_entropy = if pool.len() > 1 {
        let h: f64 = counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / steps;
                -p * p.ln()
            })
            .sum();
        h / (pool.len() as f64).ln()
    } else {
        0.0
    };
    let switch_rate = labeled.windows(2).filter(|w| w[0].label != w[1].label).count() as f64
        / (steps - 1.0).max(1.0);

    // --- window information: leave-one-out k-NN over the same features ----
    // Reuse the trained feature pipeline (PCA etc.) for fidelity.
    let model = TrainedLarp::train(values, config)?;
    let features: Vec<Vec<f64>> =
        labeled.iter().map(|lw| model.features_for(&lw.window)).collect::<Result<_>>()?;
    let mut hits = 0usize;
    for (i, query) in features.iter().enumerate() {
        let mut neighbors: Vec<(usize, f64)> = features
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(j, p)| (labeled[j].label.0, squared_distance(query, p)))
            .collect();
        neighbors.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
        neighbors.truncate(config.k);
        if majority_vote(&neighbors) == Some(labeled[i].label.0) {
            hits += 1;
        }
    }
    let loo_accuracy = hits as f64 / steps;
    let window_information = loo_accuracy - modal_rate;

    // --- fold into a verdict ----------------------------------------------
    let recommendation = if label_entropy < 0.25 || oracle_headroom < 0.05 {
        // One model owns the series, or even perfect selection gains < 5%.
        Recommendation::UseSingleBest
    } else if window_information > 0.05 && oracle_headroom > 0.20 {
        Recommendation::StrongFit
    } else {
        Recommendation::MarginalFit
    };

    Ok(Applicability {
        oracle_headroom,
        label_entropy,
        window_information,
        switch_rate,
        modal_rate,
        recommendation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trace where one model wins essentially always: a step-hold level
    /// with long flat stretches (ties resolve to LAST deterministically).
    fn single_model_trace() -> Vec<f64> {
        (0..240).map(|t| (t / 40) as f64).collect()
    }

    /// A step-hold / noisy-burst regime trace where the best model is
    /// time-varying and window-identifiable.
    fn switchy_trace() -> Vec<f64> {
        let mut out = Vec::with_capacity(400);
        let mut level = 0.0f64;
        for t in 0..400 {
            let phase = (t / 40) % 2;
            let v = if phase == 0 {
                if t % 13 == 0 {
                    level += if (t / 13) % 2 == 0 { 1.0 } else { -1.0 };
                }
                level
            } else {
                8.0 + if t % 2 == 0 { 2.0 } else { -2.0 } + ((t * 37) % 5) as f64 * 0.2
            };
            out.push(v);
        }
        out
    }

    #[test]
    fn ramp_recommends_single_best() {
        let a = assess(&single_model_trace(), &LarpConfig::default()).unwrap();
        // On a deterministic ramp the labels concentrate hard.
        assert!(a.modal_rate > 0.8, "{a:?}");
        assert_eq!(a.recommendation, Recommendation::UseSingleBest, "{a:?}");
    }

    #[test]
    fn regime_trace_is_a_strong_fit() {
        let a = assess(&switchy_trace(), &LarpConfig::default()).unwrap();
        assert!(a.oracle_headroom > 0.2, "{a:?}");
        assert!(a.label_entropy > 0.4, "{a:?}");
        assert!(a.window_information > 0.05, "{a:?}");
        assert_eq!(a.recommendation, Recommendation::StrongFit, "{a:?}");
    }

    #[test]
    fn measurements_are_bounded() {
        for trace in [single_model_trace(), switchy_trace()] {
            let a = assess(&trace, &LarpConfig::default()).unwrap();
            assert!((0.0..=1.0).contains(&a.oracle_headroom), "{a:?}");
            assert!((0.0..=1.0).contains(&a.label_entropy), "{a:?}");
            assert!((0.0..=1.0).contains(&a.switch_rate), "{a:?}");
            assert!((0.0..=1.0).contains(&a.modal_rate), "{a:?}");
            assert!((-1.0..=1.0).contains(&a.window_information), "{a:?}");
        }
    }

    #[test]
    fn white_noise_has_high_entropy_but_no_window_information() {
        // Genuine white noise: per-step best labels spread across the pool,
        // but the window carries (almost) no information about them.
        use simrng::{dist::Normal, Xoshiro256pp};
        let mut rng = Xoshiro256pp::seed_from_u64(31);
        let gauss = Normal::standard();
        let trace: Vec<f64> = (0..300).map(|_| gauss.sample(&mut rng)).collect();
        let a = assess(&trace, &LarpConfig::default()).unwrap();
        assert!(a.label_entropy > 0.5, "{a:?}");
        assert!(a.window_information < 0.15, "{a:?}");
    }

    #[test]
    fn too_short_series_errors() {
        assert!(matches!(
            assess(&[1.0, 2.0, 3.0], &LarpConfig::default()),
            Err(LarpError::InsufficientData(_))
        ));
    }

    #[test]
    fn assessment_is_deterministic() {
        let t = switchy_trace();
        let a = assess(&t, &LarpConfig::default()).unwrap();
        let b = assess(&t, &LarpConfig::default()).unwrap();
        assert_eq!(a, b);
    }
}
