//! A fixed-capacity sliding buffer for the online history.
//!
//! [`OnlineLarp`](crate::OnlineLarp) needs its recent history as one
//! contiguous `&[f64]` (the pool predictors and the trainer take slices), but
//! the old `Vec` + `drain(..excess)` bound moved the entire history left by
//! one slot on every steady-state push — `O(len)` per sample. [`HistoryRing`]
//! keeps the same logical contents contiguous while amortising eviction:
//! values append at the tail, a start cursor advances past evicted ones, and
//! the buffer compacts with one `copy_within` only after `cap` evictions.
//! Steady-state cost is O(1) per push with zero heap allocation (the backing
//! `Vec` is pre-sized to hold `2·cap` values and never grows past it).

/// A contiguous sliding window over the most recent `cap` values
/// (`cap == 0` means unbounded — plain append-only storage).
#[derive(Debug, Clone, Default)]
pub(crate) struct HistoryRing {
    buf: Vec<f64>,
    /// Index of the logically-first retained value in `buf`.
    start: usize,
    cap: usize,
}

impl HistoryRing {
    /// Creates a ring retaining the last `cap` values (0 = unbounded).
    pub(crate) fn new(cap: usize) -> Self {
        // 2·cap backing: each slot between compactions absorbs one eviction,
        // so the copy_within runs once per cap pushes — amortised O(1).
        let buf = if cap == 0 { Vec::new() } else { Vec::with_capacity(2 * cap) };
        Self { buf, start: 0, cap }
    }

    /// Builds a ring from logical contents (used by snapshot restore); keeps
    /// at most the last `cap` values.
    pub(crate) fn from_vec(mut values: Vec<f64>, cap: usize) -> Self {
        if cap != 0 && values.len() > cap {
            let excess = values.len() - cap;
            values.drain(..excess);
        }
        let mut ring = Self::new(cap);
        ring.buf.extend_from_slice(&values);
        ring
    }

    /// Appends one value, evicting the oldest when over capacity.
    pub(crate) fn push(&mut self, value: f64) {
        self.buf.push(value);
        if self.cap != 0 && self.buf.len() - self.start > self.cap {
            self.start += 1;
            if self.start >= self.cap {
                // Compact: shift the retained window back to the front. The
                // backing buffer never exceeds 2·cap, so `push` above never
                // reallocates either.
                self.buf.copy_within(self.start.., 0);
                self.buf.truncate(self.buf.len() - self.start);
                self.start = 0;
            }
        }
    }

    /// Number of retained values.
    pub(crate) fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether nothing is retained.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The retained values, oldest first, as one contiguous slice.
    pub(crate) fn as_slice(&self) -> &[f64] {
        &self.buf[self.start..]
    }

    /// The most recent value.
    pub(crate) fn last(&self) -> Option<&f64> {
        self.buf.last()
    }

    /// Drops all retained values (capacity preserved).
    pub(crate) fn clear(&mut self) {
        self.buf.clear();
        self.start = 0;
    }

    /// The retention capacity (0 = unbounded).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn cap(&self) -> usize {
        self.cap
    }
}

impl std::ops::Index<std::ops::Range<usize>> for HistoryRing {
    type Output = [f64];
    fn index(&self, r: std::ops::Range<usize>) -> &[f64] {
        &self.as_slice()[r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_ring_is_append_only() {
        let mut r = HistoryRing::new(0);
        for i in 0..100 {
            r.push(i as f64);
        }
        assert_eq!(r.len(), 100);
        assert_eq!(r.as_slice()[0], 0.0);
        assert_eq!(*r.last().unwrap(), 99.0);
    }

    #[test]
    fn bounded_ring_matches_vec_drain_reference() {
        // The ring must present exactly the contents the old Vec+drain code
        // kept, at every step, across several capacities.
        for cap in [1, 2, 3, 7, 64] {
            let mut ring = HistoryRing::new(cap);
            let mut reference: Vec<f64> = Vec::new();
            for i in 0..(cap * 10 + 3) {
                let v = (i as f64) * 0.5 - 3.0;
                ring.push(v);
                reference.push(v);
                if reference.len() > cap {
                    let excess = reference.len() - cap;
                    reference.drain(..excess);
                }
                assert_eq!(ring.as_slice(), reference.as_slice(), "cap {cap}, step {i}");
                assert_eq!(ring.len(), reference.len());
                assert_eq!(ring.last(), reference.last());
            }
        }
    }

    #[test]
    fn steady_state_never_reallocates() {
        let cap = 32;
        let mut r = HistoryRing::new(cap);
        for i in 0..cap {
            r.push(i as f64);
        }
        let ptr = r.buf.as_ptr();
        let backing = r.buf.capacity();
        for i in 0..10_000 {
            r.push(i as f64);
        }
        assert_eq!(ptr, r.buf.as_ptr(), "backing buffer moved");
        assert_eq!(backing, r.buf.capacity(), "backing buffer grew");
        assert_eq!(r.len(), cap);
    }

    #[test]
    fn from_vec_truncates_to_cap() {
        let r = HistoryRing::from_vec((0..10).map(f64::from).collect(), 4);
        assert_eq!(r.as_slice(), &[6.0, 7.0, 8.0, 9.0]);
        let r = HistoryRing::from_vec(vec![1.0, 2.0], 4);
        assert_eq!(r.as_slice(), &[1.0, 2.0]);
        let r = HistoryRing::from_vec(vec![1.0, 2.0, 3.0], 0);
        assert_eq!(r.len(), 3);
        assert_eq!(r.cap(), 0);
    }

    #[test]
    fn clear_empties_but_keeps_capacity() {
        let mut r = HistoryRing::new(8);
        for i in 0..20 {
            r.push(i as f64);
        }
        let backing = r.buf.capacity();
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.buf.capacity(), backing);
        r.push(5.0);
        assert_eq!(r.as_slice(), &[5.0]);
    }

    #[test]
    fn range_indexing_matches_slice() {
        let mut r = HistoryRing::new(4);
        for i in 0..9 {
            r.push(i as f64);
        }
        assert_eq!(&r[1..3], &[6.0, 7.0]);
    }
}
