//! A fixed-capacity sliding buffer for the online history.
//!
//! [`OnlineLarp`](crate::OnlineLarp) needs its recent history as one
//! contiguous `&[f64]` (the pool predictors and the trainer take slices), but
//! the old `Vec` + `drain(..excess)` bound moved the entire history left by
//! one slot on every steady-state push — `O(len)` per sample. [`HistoryRing`]
//! keeps the same logical contents contiguous while amortising eviction:
//! values append at the tail, a start cursor advances past evicted ones, and
//! the buffer compacts with one `copy_within` only after `cap` evictions.
//! Steady-state cost is O(1) per push with zero heap allocation (the backing
//! `Vec` is sized to hold `2·cap` values on the first push and never grows
//! past it).
//!
//! # Storage precision
//!
//! The ring stores either `f64` (default) or `f32` values. The `f32` mode
//! halves the dominant per-stream allocation for the million-stream memory
//! budget (DESIGN.md §11): a value is quantized once on `push`
//! (`value as f32`) and read back widened to `f64`, so every downstream
//! computation still runs in `f64` over the *same* quantized inputs — which
//! keeps serve/snapshot/restore bit-identical within a mode. Reading the ring
//! as a contiguous `&[f64]` goes through [`HistoryRing::materialized`]: a
//! zero-copy borrow in `f64` mode, a widening copy into caller scratch in
//! `f32` mode.

/// Backing storage: full-precision or quantized.
#[derive(Debug, Clone)]
enum RingBuf {
    F64(Vec<f64>),
    F32(Vec<f32>),
}

impl Default for RingBuf {
    fn default() -> Self {
        RingBuf::F64(Vec::new())
    }
}

/// A contiguous sliding window over the most recent `cap` values
/// (`cap == 0` means unbounded — plain append-only storage).
#[derive(Debug, Clone, Default)]
pub(crate) struct HistoryRing {
    buf: RingBuf,
    /// Index of the logically-first retained value in `buf`.
    start: usize,
    cap: usize,
}

impl HistoryRing {
    /// Creates an `f64` ring retaining the last `cap` values (0 = unbounded).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn new(cap: usize) -> Self {
        Self::new_mode(cap, false)
    }

    /// Creates a ring in the requested storage mode. The backing buffer is
    /// allocated lazily on the first push (`2·cap` values), so a registered
    /// but never-pushed stream holds no ring memory at all.
    pub(crate) fn new_mode(cap: usize, f32_mode: bool) -> Self {
        let buf = if f32_mode { RingBuf::F32(Vec::new()) } else { RingBuf::F64(Vec::new()) };
        Self { buf, start: 0, cap }
    }

    /// Builds an `f64` ring from logical contents (used by snapshot restore);
    /// keeps at most the last `cap` values.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn from_vec(values: Vec<f64>, cap: usize) -> Self {
        Self::from_vec_mode(values, cap, false)
    }

    /// [`HistoryRing::from_vec`] in the requested storage mode. In `f32` mode
    /// each value goes through the same `as f32` quantization `push` applies,
    /// so restoring a snapshot written by an `f32` ring is exact.
    pub(crate) fn from_vec_mode(values: Vec<f64>, cap: usize, f32_mode: bool) -> Self {
        let mut ring = Self::new_mode(cap, f32_mode);
        let skip = if cap != 0 && values.len() > cap { values.len() - cap } else { 0 };
        for &v in &values[skip..] {
            ring.push(v);
        }
        ring
    }

    /// Whether the ring stores quantized `f32` values.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn is_f32(&self) -> bool {
        matches!(self.buf, RingBuf::F32(_))
    }

    /// Appends one value, evicting the oldest when over capacity.
    pub(crate) fn push(&mut self, value: f64) {
        // 2·cap backing: each slot between compactions absorbs one eviction,
        // so the copy_within runs once per cap pushes — amortised O(1). The
        // reservation happens here, not at construction, so idle streams pay
        // nothing.
        let cap = self.cap;
        let start = &mut self.start;
        match &mut self.buf {
            RingBuf::F64(buf) => {
                if cap != 0 && buf.capacity() == 0 {
                    buf.reserve_exact(2 * cap);
                }
                buf.push(value);
                if cap != 0 && buf.len() - *start > cap {
                    *start += 1;
                    if *start >= cap {
                        buf.copy_within(*start.., 0);
                        buf.truncate(buf.len() - *start);
                        *start = 0;
                    }
                }
            }
            RingBuf::F32(buf) => {
                if cap != 0 && buf.capacity() == 0 {
                    buf.reserve_exact(2 * cap);
                }
                buf.push(value as f32);
                if cap != 0 && buf.len() - *start > cap {
                    *start += 1;
                    if *start >= cap {
                        buf.copy_within(*start.., 0);
                        buf.truncate(buf.len() - *start);
                        *start = 0;
                    }
                }
            }
        }
    }

    /// Number of retained values.
    pub(crate) fn len(&self) -> usize {
        let stored = match &self.buf {
            RingBuf::F64(buf) => buf.len(),
            RingBuf::F32(buf) => buf.len(),
        };
        stored - self.start
    }

    /// Whether nothing is retained.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The retained values as one contiguous `&[f64]`, oldest first: a direct
    /// borrow of the backing buffer in `f64` mode (zero copy, preserving the
    /// allocation-free hot path), a widening copy into `scratch` in `f32`
    /// mode (allocation-free once the scratch buffer is warm).
    pub(crate) fn materialized<'a>(&'a self, scratch: &'a mut Vec<f64>) -> &'a [f64] {
        match &self.buf {
            RingBuf::F64(buf) => &buf[self.start..],
            RingBuf::F32(buf) => {
                // Widening through the dispatched kernel (vcvtps2pd under
                // AVX2) — the conversion is exact, so mode cannot change
                // results.
                linalg::kernels::widen_into(&buf[self.start..], scratch);
                scratch.as_slice()
            }
        }
    }

    /// Iterates the retained values widened to `f64`, oldest first.
    pub(crate) fn iter64(&self) -> RingIter64<'_> {
        match &self.buf {
            RingBuf::F64(buf) => RingIter64::F64(buf[self.start..].iter()),
            RingBuf::F32(buf) => RingIter64::F32(buf[self.start..].iter()),
        }
    }

    /// The most recent value.
    pub(crate) fn last(&self) -> Option<f64> {
        match &self.buf {
            RingBuf::F64(buf) => buf.last().copied(),
            RingBuf::F32(buf) => buf.last().map(|&v| v as f64),
        }
    }

    /// Drops all retained values (capacity preserved).
    pub(crate) fn clear(&mut self) {
        match &mut self.buf {
            RingBuf::F64(buf) => buf.clear(),
            RingBuf::F32(buf) => buf.clear(),
        }
        self.start = 0;
    }

    /// The retention capacity (0 = unbounded).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn cap(&self) -> usize {
        self.cap
    }

    /// Heap bytes held by the backing buffer.
    pub(crate) fn heap_bytes(&self) -> usize {
        match &self.buf {
            RingBuf::F64(buf) => buf.capacity() * std::mem::size_of::<f64>(),
            RingBuf::F32(buf) => buf.capacity() * std::mem::size_of::<f32>(),
        }
    }
}

/// Iterator over a ring's retained values, widened to `f64`.
pub(crate) enum RingIter64<'a> {
    F64(std::slice::Iter<'a, f64>),
    F32(std::slice::Iter<'a, f32>),
}

impl Iterator for RingIter64<'_> {
    type Item = f64;
    fn next(&mut self) -> Option<f64> {
        match self {
            RingIter64::F64(it) => it.next().copied(),
            RingIter64::F32(it) => it.next().map(|&v| v as f64),
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            RingIter64::F64(it) => it.size_hint(),
            RingIter64::F32(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for RingIter64<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn contents(r: &HistoryRing) -> Vec<f64> {
        r.iter64().collect()
    }

    #[test]
    fn unbounded_ring_is_append_only() {
        let mut r = HistoryRing::new(0);
        for i in 0..100 {
            r.push(i as f64);
        }
        assert_eq!(r.len(), 100);
        assert_eq!(contents(&r)[0], 0.0);
        assert_eq!(r.last().unwrap(), 99.0);
    }

    #[test]
    fn bounded_ring_matches_vec_drain_reference() {
        // The ring must present exactly the contents the old Vec+drain code
        // kept, at every step, across several capacities — in both modes.
        for f32_mode in [false, true] {
            for cap in [1, 2, 3, 7, 64] {
                let mut ring = HistoryRing::new_mode(cap, f32_mode);
                let mut reference: Vec<f64> = Vec::new();
                for i in 0..(cap * 10 + 3) {
                    let v = (i as f64) * 0.5 - 3.0;
                    ring.push(v);
                    let stored = if f32_mode { v as f32 as f64 } else { v };
                    reference.push(stored);
                    if reference.len() > cap {
                        let excess = reference.len() - cap;
                        reference.drain(..excess);
                    }
                    assert_eq!(contents(&ring), reference, "cap {cap}, step {i}");
                    assert_eq!(ring.len(), reference.len());
                    assert_eq!(ring.last(), reference.last().copied());
                }
            }
        }
    }

    #[test]
    fn steady_state_never_reallocates() {
        let cap = 32;
        let mut r = HistoryRing::new(cap);
        for i in 0..cap {
            r.push(i as f64);
        }
        let RingBuf::F64(buf) = &r.buf else { panic!("f64 mode") };
        let ptr = buf.as_ptr();
        let backing = buf.capacity();
        for i in 0..10_000 {
            r.push(i as f64);
        }
        let RingBuf::F64(buf) = &r.buf else { panic!("f64 mode") };
        assert_eq!(ptr, buf.as_ptr(), "backing buffer moved");
        assert_eq!(backing, buf.capacity(), "backing buffer grew");
        assert_eq!(r.len(), cap);
    }

    #[test]
    fn allocation_is_lazy_and_exact() {
        // A never-pushed ring holds no heap memory; the first push reserves
        // exactly 2·cap and steady state stays there (both modes).
        for f32_mode in [false, true] {
            let mut r = HistoryRing::new_mode(64, f32_mode);
            assert_eq!(r.heap_bytes(), 0, "no allocation before first push");
            r.push(1.0);
            let elem = if f32_mode { 4 } else { 8 };
            assert_eq!(r.heap_bytes(), 2 * 64 * elem);
            for i in 0..1000 {
                r.push(i as f64);
            }
            assert_eq!(r.heap_bytes(), 2 * 64 * elem, "steady state never grows");
        }
    }

    #[test]
    fn f32_mode_quantizes_once_and_reads_back_stably() {
        let mut r = HistoryRing::new_mode(8, true);
        assert!(r.is_f32());
        let v = 0.1f64; // not f32-representable
        r.push(v);
        let q = v as f32 as f64;
        assert_eq!(r.last().unwrap().to_bits(), q.to_bits());
        // Re-quantizing the read-back value is a fixed point: pushing what we
        // read produces the identical stored value (hibernate/restore cycles
        // cannot drift).
        r.push(r.last().unwrap());
        assert_eq!(r.last().unwrap().to_bits(), q.to_bits());
    }

    #[test]
    fn materialized_reads_identical_to_iter64() {
        for f32_mode in [false, true] {
            let mut r = HistoryRing::new_mode(16, f32_mode);
            for i in 0..40 {
                r.push((i as f64) * 0.3 - 2.0);
            }
            let mut scratch = Vec::new();
            assert_eq!(r.materialized(&mut scratch), contents(&r).as_slice());
        }
    }

    #[test]
    fn from_vec_truncates_to_cap() {
        let r = HistoryRing::from_vec((0..10).map(f64::from).collect(), 4);
        assert_eq!(contents(&r), &[6.0, 7.0, 8.0, 9.0]);
        let r = HistoryRing::from_vec(vec![1.0, 2.0], 4);
        assert_eq!(contents(&r), &[1.0, 2.0]);
        let r = HistoryRing::from_vec(vec![1.0, 2.0, 3.0], 0);
        assert_eq!(r.len(), 3);
        assert_eq!(r.cap(), 0);
    }

    #[test]
    fn from_vec_mode_round_trips_f32_contents() {
        let values: Vec<f64> = (0..20).map(|i| (i as f64) * 0.7).collect();
        let mut live = HistoryRing::new_mode(8, true);
        for &v in &values {
            live.push(v);
        }
        // Serializing iter64() and restoring through from_vec_mode is exact:
        // the stored values are f32-representable, so `as f32` is lossless.
        let restored = HistoryRing::from_vec_mode(contents(&live), 8, true);
        assert_eq!(contents(&restored), contents(&live));
    }

    #[test]
    fn clear_empties_but_keeps_capacity() {
        let mut r = HistoryRing::new(8);
        for i in 0..20 {
            r.push(i as f64);
        }
        let backing = r.heap_bytes();
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.heap_bytes(), backing);
        r.push(5.0);
        assert_eq!(contents(&r), &[5.0]);
    }
}
