//! Parallel evaluation of many traces.
//!
//! The paper evaluates 60 independent (VM, metric) traces; each
//! [`TraceReport`] is self-contained, so the sweep is embarrassingly parallel.
//! [`evaluate_traces`] fans the trace list out over `std::thread` scoped
//! threads, preserving input order in the output.

use crate::config::LarpConfig;
use crate::eval::TraceReport;
use crate::model::default_threads;
use crate::Result;

/// A named trace to evaluate: `(identifier, raw values)`.
pub type NamedTrace = (String, Vec<f64>);

/// Evaluates every trace under `config` with `folds` random splits per trace,
/// in parallel. Per-trace seeds are derived as `seed + index` so results do
/// not depend on scheduling. Output order matches input order; traces that
/// fail (e.g. too short) carry their error.
pub fn evaluate_traces(
    traces: &[NamedTrace],
    config: &LarpConfig,
    folds: usize,
    seed: u64,
) -> Vec<Result<TraceReport>> {
    evaluate_traces_with_threads(traces, config, folds, seed, default_threads())
}

/// [`evaluate_traces`] with an explicit worker count (1 runs inline).
pub fn evaluate_traces_with_threads(
    traces: &[NamedTrace],
    config: &LarpConfig,
    folds: usize,
    seed: u64,
    threads: usize,
) -> Vec<Result<TraceReport>> {
    let eval_one = |(i, (name, values)): (usize, &NamedTrace)| {
        TraceReport::evaluate(name.clone(), values, config, folds, seed + i as u64)
    };
    if threads <= 1 || traces.len() < 2 {
        return traces.iter().enumerate().map(eval_one).collect();
    }
    let chunk = traces.len().div_ceil(threads);
    let results = std::thread::scope(|s| {
        let handles: Vec<_> = traces
            .chunks(chunk)
            .enumerate()
            .map(|(c, part)| {
                let base = c * chunk;
                s.spawn(move || {
                    part.iter()
                        .enumerate()
                        .map(|(j, t)| eval_one((base + j, t)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("trace evaluation worker panicked"))
            .collect::<Vec<Vec<_>>>()
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_traces(n: usize) -> Vec<NamedTrace> {
        (0..n)
            .map(|i| {
                let values: Vec<f64> = (0..200)
                    .map(|t| ((t + i * 13) as f64 * 0.21).sin() * (1.0 + i as f64 * 0.1))
                    .collect();
                (format!("trace{i}"), values)
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let traces = make_traces(6);
        let config = LarpConfig::default();
        let seq = evaluate_traces_with_threads(&traces, &config, 3, 9, 1);
        for threads in [2, 4] {
            let par = evaluate_traces_with_threads(&traces, &config, 3, 9, threads);
            assert_eq!(par.len(), seq.len());
            for (a, b) in par.iter().zip(&seq) {
                assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
            }
        }
    }

    #[test]
    fn order_is_preserved() {
        let traces = make_traces(5);
        let out = evaluate_traces(&traces, &LarpConfig::default(), 2, 1);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap().trace, format!("trace{i}"));
        }
    }

    #[test]
    fn failing_trace_reports_error_without_poisoning_others() {
        let mut traces = make_traces(3);
        traces.insert(1, ("short".into(), vec![1.0, 2.0, 3.0]));
        let out = evaluate_traces(&traces, &LarpConfig::default(), 2, 1);
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
        assert!(out[2].is_ok());
        assert!(out[3].is_ok());
    }

    #[test]
    fn empty_input_is_empty_output() {
        let out = evaluate_traces(&[], &LarpConfig::default(), 2, 1);
        assert!(out.is_empty());
    }
}
