//! LARPredictor configuration.

use learn::KnnBackend;
use predictors::ModelSpec;

use crate::{LarpError, Result};

/// How the classification feature space is built from prediction windows.
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureReduction {
    /// Project windows onto the top `n` principal components. The paper fixes
    /// `n = 2` ("the minimal fraction variance was set to extract exactly two
    /// principal components").
    Pca {
        /// Number of components to keep.
        dims: usize,
    },
    /// Keep the smallest number of components reaching this cumulative
    /// explained-variance fraction (the paper's general formulation).
    PcaFraction {
        /// Required variance fraction in `(0, 1]`.
        min_fraction: f64,
    },
    /// No reduction: classify in the raw `m`-dimensional window space
    /// (the ABL1 ablation arm).
    None,
}

/// Full configuration of a LARPredictor.
#[derive(Debug, Clone, PartialEq)]
pub struct LarpConfig {
    /// Prediction window size `m` (also the AR order and SW_AVG window in the
    /// standard pool). The paper uses 5 for 24-hour traces and 16 for the
    /// 7-day VM1 trace.
    pub window: usize,
    /// Feature-space reduction before classification.
    pub reduction: FeatureReduction,
    /// Neighbour count `k` for the k-NN classifier (paper: 3).
    pub k: usize,
    /// Neighbour-search implementation.
    pub backend: KnnBackend,
    /// The predictor pool specification.
    pub pool: Vec<ModelSpec>,
}

impl Default for LarpConfig {
    /// The paper's configuration for the short traces: `m = 5`, PCA to
    /// `n = 2`, `3`-NN over the standard {LAST, AR, SW_AVG} pool.
    fn default() -> Self {
        Self::paper(5)
    }
}

impl LarpConfig {
    /// The paper's configuration with prediction window `m` (the paper uses
    /// `m = 5` for 5-minute/24-hour traces and `m = 16` for the 30-minute/
    /// 7-day VM1 trace).
    pub fn paper(window: usize) -> Self {
        Self {
            window,
            reduction: FeatureReduction::Pca { dims: 2 },
            k: 3,
            backend: KnnBackend::BruteForce,
            pool: ModelSpec::standard_pool(window),
        }
    }

    /// The paper configuration with the extended 11-model pool.
    pub fn extended(window: usize) -> Self {
        Self { pool: ModelSpec::extended_pool(window), ..Self::paper(window) }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`LarpError::InvalidConfig`] for a zero window/k, an empty
    /// pool, or a PCA dimension larger than the window.
    pub fn validate(&self) -> Result<()> {
        if self.window == 0 {
            return Err(LarpError::InvalidConfig("window must be >= 1".into()));
        }
        if self.k == 0 {
            return Err(LarpError::InvalidConfig("k must be >= 1".into()));
        }
        if self.pool.is_empty() {
            return Err(LarpError::InvalidConfig("pool must contain a model".into()));
        }
        match &self.reduction {
            FeatureReduction::Pca { dims } => {
                if *dims == 0 || *dims > self.window {
                    return Err(LarpError::InvalidConfig(format!(
                        "PCA dims must be in 1..={}, got {dims}",
                        self.window
                    )));
                }
            }
            FeatureReduction::PcaFraction { min_fraction } => {
                if !(min_fraction.is_finite() && 0.0 < *min_fraction && *min_fraction <= 1.0) {
                    return Err(LarpError::InvalidConfig(format!(
                        "variance fraction must be in (0, 1], got {min_fraction}"
                    )));
                }
            }
            FeatureReduction::None => {}
        }
        Ok(())
    }
}

/// Fault-tolerance policy for [`crate::OnlineLarp`]: predictor quarantine,
/// retrain retry backoff, and history bounding.
///
/// The defaults are deliberately permissive — clean streams behave exactly as
/// they did without a resilience layer — and every knob exists to survive the
/// fault model documented in DESIGN.md ("Fault model & degradation ladder").
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// A forecast whose absolute error exceeds `divergence_factor` times the
    /// training standard deviation counts as a divergence strike against the
    /// predictor that produced it.
    pub divergence_factor: f64,
    /// Consecutive divergence strikes before a predictor is quarantined.
    /// Non-finite forecasts quarantine immediately regardless.
    pub max_strikes: usize,
    /// First quarantine lasts this many steps; each subsequent quarantine of
    /// the same predictor doubles it (exponential backoff).
    pub quarantine_base: usize,
    /// Upper bound on any quarantine duration, in steps.
    pub quarantine_cap: usize,
    /// First retrain retry after a training failure waits this many steps;
    /// consecutive failures double it.
    pub retrain_backoff_base: usize,
    /// Upper bound on the retrain retry delay, in steps.
    pub retrain_backoff_cap: usize,
    /// Retained history length in samples (`0` = unbounded). Must be at least
    /// the online predictor's `train_size`.
    pub max_history: usize,
    /// Store the history and normalised-mirror rings as `f32` instead of
    /// `f64`, halving the dominant per-stream allocation (the million-stream
    /// memory diet, DESIGN.md §11).
    ///
    /// Quantization happens exactly once, on push (`value as f32`); every
    /// read widens back to `f64`, so all downstream math runs in `f64` over
    /// the same quantized inputs. Within a mode, serving stays fully
    /// deterministic and snapshots restore bit-identically — but forecasts
    /// differ between `f32` and `f64` streams, so the mode is part of the
    /// stream's identity (serialized in the snapshot, default `false`).
    pub f32_history: bool,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            divergence_factor: 50.0,
            max_strikes: 3,
            quarantine_base: 8,
            quarantine_cap: 256,
            retrain_backoff_base: 4,
            retrain_backoff_cap: 64,
            max_history: 4096,
            f32_history: false,
        }
    }
}

impl ResilienceConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`LarpError::InvalidConfig`] for a non-positive divergence
    /// factor, zero strike/backoff parameters, or a cap below its base.
    pub fn validate(&self) -> Result<()> {
        if !(self.divergence_factor.is_finite() && self.divergence_factor > 0.0) {
            return Err(LarpError::InvalidConfig(format!(
                "divergence_factor must be positive, got {}",
                self.divergence_factor
            )));
        }
        if self.max_strikes == 0 || self.quarantine_base == 0 || self.retrain_backoff_base == 0 {
            return Err(LarpError::InvalidConfig(
                "max_strikes, quarantine_base and retrain_backoff_base must be >= 1".into(),
            ));
        }
        if self.quarantine_cap < self.quarantine_base
            || self.retrain_backoff_cap < self.retrain_backoff_base
        {
            return Err(LarpError::InvalidConfig("backoff caps must be >= their bases".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_short_trace_settings() {
        let c = LarpConfig::default();
        assert_eq!(c.window, 5);
        assert_eq!(c.k, 3);
        assert_eq!(c.reduction, FeatureReduction::Pca { dims: 2 });
        assert_eq!(c.pool.len(), 3);
        c.validate().unwrap();
    }

    #[test]
    fn paper_16_is_the_vm1_configuration() {
        let c = LarpConfig::paper(16);
        assert_eq!(c.window, 16);
        assert!(matches!(c.pool[1], ModelSpec::Ar { order: 16 }));
        c.validate().unwrap();
    }

    #[test]
    fn extended_pool_config_validates() {
        let c = LarpConfig::extended(5);
        assert!(c.pool.len() > 3);
        c.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_values() {
        let c = LarpConfig { window: 0, ..LarpConfig::default() };
        assert!(c.validate().is_err());

        let c = LarpConfig { k: 0, ..LarpConfig::default() };
        assert!(c.validate().is_err());

        let c = LarpConfig { pool: Vec::new(), ..LarpConfig::default() };
        assert!(c.validate().is_err());

        let c =
            LarpConfig { reduction: FeatureReduction::Pca { dims: 9 }, ..LarpConfig::default() };
        assert!(c.validate().is_err());

        let c = LarpConfig {
            reduction: FeatureReduction::PcaFraction { min_fraction: 0.0 },
            ..LarpConfig::default()
        };
        assert!(c.validate().is_err());

        let c = LarpConfig { reduction: FeatureReduction::None, ..LarpConfig::default() };
        c.validate().unwrap();
    }

    #[test]
    fn resilience_default_validates() {
        ResilienceConfig::default().validate().unwrap();
    }

    #[test]
    fn resilience_validation_catches_bad_values() {
        let r = ResilienceConfig { divergence_factor: 0.0, ..ResilienceConfig::default() };
        assert!(r.validate().is_err());
        let r = ResilienceConfig { divergence_factor: f64::NAN, ..ResilienceConfig::default() };
        assert!(r.validate().is_err());
        let r = ResilienceConfig { max_strikes: 0, ..ResilienceConfig::default() };
        assert!(r.validate().is_err());
        let r = ResilienceConfig { quarantine_base: 0, ..ResilienceConfig::default() };
        assert!(r.validate().is_err());
        let r = ResilienceConfig {
            quarantine_cap: 1,
            quarantine_base: 8,
            ..ResilienceConfig::default()
        };
        assert!(r.validate().is_err());
        let r = ResilienceConfig {
            retrain_backoff_cap: 1,
            retrain_backoff_base: 4,
            ..ResilienceConfig::default()
        };
        assert!(r.validate().is_err());
    }
}
