//! LARPredictor configuration.

use learn::KnnBackend;
use predictors::ModelSpec;

use crate::{LarpError, Result};

/// How the classification feature space is built from prediction windows.
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureReduction {
    /// Project windows onto the top `n` principal components. The paper fixes
    /// `n = 2` ("the minimal fraction variance was set to extract exactly two
    /// principal components").
    Pca {
        /// Number of components to keep.
        dims: usize,
    },
    /// Keep the smallest number of components reaching this cumulative
    /// explained-variance fraction (the paper's general formulation).
    PcaFraction {
        /// Required variance fraction in `(0, 1]`.
        min_fraction: f64,
    },
    /// No reduction: classify in the raw `m`-dimensional window space
    /// (the ABL1 ablation arm).
    None,
}

/// Full configuration of a LARPredictor.
#[derive(Debug, Clone, PartialEq)]
pub struct LarpConfig {
    /// Prediction window size `m` (also the AR order and SW_AVG window in the
    /// standard pool). The paper uses 5 for 24-hour traces and 16 for the
    /// 7-day VM1 trace.
    pub window: usize,
    /// Feature-space reduction before classification.
    pub reduction: FeatureReduction,
    /// Neighbour count `k` for the k-NN classifier (paper: 3).
    pub k: usize,
    /// Neighbour-search implementation.
    pub backend: KnnBackend,
    /// The predictor pool specification.
    pub pool: Vec<ModelSpec>,
}

impl Default for LarpConfig {
    /// The paper's configuration for the short traces: `m = 5`, PCA to
    /// `n = 2`, `3`-NN over the standard {LAST, AR, SW_AVG} pool.
    fn default() -> Self {
        Self::paper(5)
    }
}

impl LarpConfig {
    /// The paper's configuration with prediction window `m` (the paper uses
    /// `m = 5` for 5-minute/24-hour traces and `m = 16` for the 30-minute/
    /// 7-day VM1 trace).
    pub fn paper(window: usize) -> Self {
        Self {
            window,
            reduction: FeatureReduction::Pca { dims: 2 },
            k: 3,
            backend: KnnBackend::BruteForce,
            pool: ModelSpec::standard_pool(window),
        }
    }

    /// The paper configuration with the extended 11-model pool.
    pub fn extended(window: usize) -> Self {
        Self { pool: ModelSpec::extended_pool(window), ..Self::paper(window) }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`LarpError::InvalidConfig`] for a zero window/k, an empty
    /// pool, or a PCA dimension larger than the window.
    pub fn validate(&self) -> Result<()> {
        if self.window == 0 {
            return Err(LarpError::InvalidConfig("window must be >= 1".into()));
        }
        if self.k == 0 {
            return Err(LarpError::InvalidConfig("k must be >= 1".into()));
        }
        if self.pool.is_empty() {
            return Err(LarpError::InvalidConfig("pool must contain a model".into()));
        }
        match &self.reduction {
            FeatureReduction::Pca { dims } => {
                if *dims == 0 || *dims > self.window {
                    return Err(LarpError::InvalidConfig(format!(
                        "PCA dims must be in 1..={}, got {dims}",
                        self.window
                    )));
                }
            }
            FeatureReduction::PcaFraction { min_fraction } => {
                if !(min_fraction.is_finite() && 0.0 < *min_fraction && *min_fraction <= 1.0) {
                    return Err(LarpError::InvalidConfig(format!(
                        "variance fraction must be in (0, 1], got {min_fraction}"
                    )));
                }
            }
            FeatureReduction::None => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_short_trace_settings() {
        let c = LarpConfig::default();
        assert_eq!(c.window, 5);
        assert_eq!(c.k, 3);
        assert_eq!(c.reduction, FeatureReduction::Pca { dims: 2 });
        assert_eq!(c.pool.len(), 3);
        c.validate().unwrap();
    }

    #[test]
    fn paper_16_is_the_vm1_configuration() {
        let c = LarpConfig::paper(16);
        assert_eq!(c.window, 16);
        assert!(matches!(c.pool[1], ModelSpec::Ar { order: 16 }));
        c.validate().unwrap();
    }

    #[test]
    fn extended_pool_config_validates() {
        let c = LarpConfig::extended(5);
        assert!(c.pool.len() > 3);
        c.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_values() {
        let c = LarpConfig { window: 0, ..LarpConfig::default() };
        assert!(c.validate().is_err());

        let c = LarpConfig { k: 0, ..LarpConfig::default() };
        assert!(c.validate().is_err());

        let c = LarpConfig { pool: Vec::new(), ..LarpConfig::default() };
        assert!(c.validate().is_err());

        let c = LarpConfig {
            reduction: FeatureReduction::Pca { dims: 9 },
            ..LarpConfig::default()
        };
        assert!(c.validate().is_err());

        let c = LarpConfig {
            reduction: FeatureReduction::PcaFraction { min_fraction: 0.0 },
            ..LarpConfig::default()
        };
        assert!(c.validate().is_err());

        let c = LarpConfig { reduction: FeatureReduction::None, ..LarpConfig::default() };
        c.validate().unwrap();
    }
}
