//! Online operation: streaming prediction with QA-triggered retraining.
//!
//! The paper's prototype (Figure 1) runs continuously: the monitor feeds new
//! samples, the LARPredictor forecasts the next one, and the Quality Assuror
//! retrains the whole stack when accuracy degrades. [`OnlineLarp`] is that loop
//! as a library type: push raw observations one at a time, get back the
//! forecast for the *next* observation, and let the embedded
//! [`QualityAssuror`] decide when to refit on the most recent window of data.

use predictors::PredictorId;

use crate::config::LarpConfig;
use crate::model::TrainedLarp;
use crate::qa::{AuditOutcome, QualityAssuror};
use crate::{LarpError, Result};

/// One step of online output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineStep {
    /// Forecast (raw scale) for the next observation, if a model is trained
    /// and enough history exists.
    pub forecast: Option<f64>,
    /// Which pool member produced it.
    pub chosen: Option<PredictorId>,
    /// Whether this step triggered a retrain.
    pub retrained: bool,
}

/// A self-retraining streaming LARPredictor.
pub struct OnlineLarp {
    config: LarpConfig,
    qa: QualityAssuror,
    /// All observations seen so far (raw scale).
    history: Vec<f64>,
    /// How many most-recent points each (re)training uses.
    train_size: usize,
    model: Option<TrainedLarp>,
    /// The forecast made for the not-yet-seen next value, for QA scoring.
    pending_forecast: Option<f64>,
    retrain_count: usize,
}

impl OnlineLarp {
    /// Creates an online predictor.
    ///
    /// * `config` — the LARPredictor configuration;
    /// * `train_size` — number of most-recent samples used at each (re)train;
    /// * `qa` — quality assuror governing retraining.
    ///
    /// # Errors
    ///
    /// Returns [`LarpError::InvalidConfig`] if `train_size` cannot support
    /// training under `config` (needs at least `window + max(k, 2)` points).
    pub fn new(config: LarpConfig, train_size: usize, qa: QualityAssuror) -> Result<Self> {
        config.validate()?;
        let min_train = config.window + config.k.max(2);
        if train_size < min_train {
            return Err(LarpError::InvalidConfig(format!(
                "train_size {train_size} below minimum {min_train} for window {} and k {}",
                config.window, config.k
            )));
        }
        Ok(Self {
            config,
            qa,
            history: Vec::new(),
            train_size,
            model: None,
            pending_forecast: None,
            retrain_count: 0,
        })
    }

    /// Feeds one raw observation; returns the forecast for the next one.
    ///
    /// Behaviour:
    /// 1. scores the previous forecast against `value` through the QA;
    /// 2. (re)trains if the QA orders it, or trains initially once
    ///    `train_size` samples have arrived;
    /// 3. produces the next forecast if a model exists and the window is full.
    pub fn push(&mut self, value: f64) -> OnlineStep {
        // 1. Score the pending forecast.
        let mut retrained = false;
        if let Some(forecast) = self.pending_forecast.take() {
            if let AuditOutcome::RetrainNeeded { .. } = self.qa.record(forecast, value) {
                self.history.push(value);
                self.retrain();
                retrained = true;
                // fall through to forecasting with the fresh model
                let (forecast, chosen) = self.forecast_next();
                return OnlineStep { forecast, chosen, retrained };
            }
        }
        self.history.push(value);

        // 2. Initial training.
        if self.model.is_none() && self.history.len() >= self.train_size {
            self.retrain();
            retrained = true;
        }

        // 3. Forecast.
        let (forecast, chosen) = self.forecast_next();
        OnlineStep { forecast, chosen, retrained }
    }

    fn retrain(&mut self) {
        let start = self.history.len().saturating_sub(self.train_size);
        let train = &self.history[start..];
        // Training can fail on degenerate data (e.g. all-identical warmup);
        // keep the old model in that case rather than dropping service.
        if let Ok(model) = TrainedLarp::train(train, &self.config) {
            self.model = Some(model);
            self.retrain_count += 1;
            self.qa.reset();
        }
    }

    fn forecast_next(&mut self) -> (Option<f64>, Option<PredictorId>) {
        let Some(model) = &self.model else {
            return (None, None);
        };
        if self.history.len() < self.config.window {
            return (None, None);
        }
        match model.predict_next_raw(&self.history) {
            Ok((id, f)) => {
                self.pending_forecast = Some(f);
                (Some(f), Some(id))
            }
            Err(_) => (None, None),
        }
    }

    /// Number of (re)trainings performed, including the initial one.
    pub fn retrain_count(&self) -> usize {
        self.retrain_count
    }

    /// Whether a model is currently trained.
    pub fn is_trained(&self) -> bool {
        self.model.is_some()
    }

    /// Observations consumed so far.
    pub fn seen(&self) -> usize {
        self.history.len()
    }

    /// The embedded quality assuror.
    pub fn qa(&self) -> &QualityAssuror {
        &self.qa
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qa() -> QualityAssuror {
        QualityAssuror::new(2.0, 8, 4).unwrap()
    }

    fn online() -> OnlineLarp {
        OnlineLarp::new(LarpConfig::default(), 40, qa()).unwrap()
    }

    #[test]
    fn no_forecast_before_initial_training() {
        let mut o = online();
        for t in 0..39 {
            let step = o.push((t as f64 * 0.3).sin());
            assert_eq!(step.forecast, None, "step {t}");
            assert!(!o.is_trained());
        }
        let step = o.push(0.5);
        assert!(o.is_trained());
        assert!(step.retrained);
        assert!(step.forecast.is_some());
    }

    #[test]
    fn forecasts_flow_after_training() {
        let mut o = online();
        let mut forecasts = 0;
        for t in 0..120 {
            let step = o.push((t as f64 * 0.2).sin() * 3.0);
            if step.forecast.is_some() {
                forecasts += 1;
                assert!(step.chosen.is_some());
            }
        }
        assert!(forecasts >= 70, "{forecasts}");
        assert_eq!(o.seen(), 120);
    }

    #[test]
    fn regime_change_triggers_retraining() {
        // Train on a gentle sinusoid, then switch to huge swings: normalized
        // errors explode and the QA must order a refit.
        let mut o = OnlineLarp::new(
            LarpConfig::default(),
            40,
            QualityAssuror::new(0.5, 4, 2).unwrap(),
        )
        .unwrap();
        for t in 0..60 {
            o.push((t as f64 * 0.2).sin() * 0.1);
        }
        assert_eq!(o.retrain_count(), 1);
        for t in 0..60 {
            o.push(if t % 2 == 0 { 50.0 } else { -50.0 });
        }
        assert!(o.retrain_count() > 1, "retrains: {}", o.retrain_count());
    }

    #[test]
    fn stable_workload_does_not_retrain() {
        let mut o = OnlineLarp::new(
            LarpConfig::default(),
            40,
            QualityAssuror::new(5.0, 8, 4).unwrap(),
        )
        .unwrap();
        for t in 0..200 {
            o.push((t as f64 * 0.2).sin());
        }
        assert_eq!(o.retrain_count(), 1, "only the initial training");
    }

    #[test]
    fn construction_validates_train_size() {
        assert!(OnlineLarp::new(LarpConfig::default(), 3, qa()).is_err());
        assert!(OnlineLarp::new(LarpConfig::default(), 8, qa()).is_ok());
    }

    #[test]
    fn forecast_is_in_raw_units() {
        let mut o = OnlineLarp::new(LarpConfig::default(), 40, qa()).unwrap();
        let mut last = None;
        for t in 0..80 {
            last = o.push(1000.0 + (t as f64 * 0.3).sin() * 10.0).forecast.or(last);
        }
        let f = last.unwrap();
        assert!((950.0..1050.0).contains(&f), "{f}");
    }
}
