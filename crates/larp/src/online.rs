//! Online operation: streaming prediction with QA-triggered retraining and a
//! graceful-degradation ladder.
//!
//! The paper's prototype (Figure 1) runs continuously: the monitor feeds new
//! samples, the LARPredictor forecasts the next one, and the Quality Assuror
//! retrains the whole stack when accuracy degrades. [`OnlineLarp`] is that loop
//! as a library type: push raw observations one at a time, get back the
//! forecast for the *next* observation, and let the embedded
//! [`QualityAssuror`] decide when to refit on the most recent window of data.
//!
//! On top of the paper's loop this module adds the serving-robustness layer
//! described in DESIGN.md ("Fault model & degradation ladder"):
//!
//! * **Predictor quarantine** — a pool member that emits a non-finite
//!   forecast, or accumulates [`ResilienceConfig::max_strikes`] wildly
//!   diverging forecasts in a row, is benched for an exponentially growing
//!   number of steps before re-admission;
//! * **Degradation ladder** — when the k-NN choice is quarantined the loop
//!   falls back to the lowest-windowed-error non-quarantined pool member
//!   (NWS-style accounting via [`PoolErrorTracker`]), and when the whole pool
//!   is benched it serves last-value persistence rather than going dark;
//! * **Retrain retry with backoff** — a failed [`TrainedLarp::train`] keeps
//!   the stale model serving and schedules a retry instead of re-fitting (and
//!   re-failing) every step;
//! * **Health surface** — every [`OnlineStep`] reports a [`HealthState`] and
//!   the loop keeps [`OnlineCounters`] for observability.

use std::sync::Arc;
use std::time::Instant;

use learn::PcaInterner;
use predictors::PredictorId;
use timeseries::RollingMoments;

use crate::config::{LarpConfig, ResilienceConfig};
use crate::model::{Scratch, TrainedLarp};
use crate::observe::LarpObs;
use crate::qa::{AuditOutcome, QualityAssuror};
use crate::ring::HistoryRing;
use crate::selector::PoolErrorTracker;
use crate::{LarpError, Result};

/// Serving health of one online step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthState {
    /// The k-NN-selected predictor served the forecast (or the loop is still
    /// in its warmup phase before the first training).
    #[default]
    Healthy,
    /// A fallback pool member served the forecast because the first choice is
    /// quarantined.
    Degraded,
    /// The whole pool (or the model itself) is unavailable; last-value
    /// persistence served the forecast.
    Fallback,
}

/// One step of online output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineStep {
    /// Forecast (raw scale) for the next observation, if a model is trained
    /// and enough history exists.
    pub forecast: Option<f64>,
    /// Which pool member produced it (`None` for persistence fallback).
    pub chosen: Option<PredictorId>,
    /// Whether this step triggered a retrain.
    pub retrained: bool,
    /// Serving health of this step.
    pub health: HealthState,
}

/// Cumulative fault-handling counters, for observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OnlineCounters {
    /// Quarantines imposed (manual and automatic).
    pub quarantines: usize,
    /// Retraining attempts that failed (stale model kept serving).
    pub retrain_failures: usize,
    /// Non-finite forecasts caught before they reached the caller.
    pub nonfinite_forecasts: usize,
    /// Steps served by a fallback pool member ([`HealthState::Degraded`]).
    pub degraded_steps: usize,
    /// Steps served by last-value persistence ([`HealthState::Fallback`]).
    pub fallback_steps: usize,
}

/// A training job captured at arm time: the exact window copy a retrain would
/// have used inline, plus the model generation it must install against.
///
/// The deferred-retrain contract (DESIGN.md §13): when the QA orders a refit
/// at step *t* and a model already exists, the loop *arms* a request instead
/// of fitting inline — the old model serves step *t*'s forecast, and the new
/// model installs strictly before step *t+1* is scored. The fit itself is
/// pure (window copy + config in, model out), so it can run on any thread;
/// [`OnlineLarp::install_retrain`] rejects outcomes whose generation no
/// longer matches, making late or duplicated fits harmless.
#[derive(Debug, Clone)]
pub struct RetrainRequest {
    generation: u64,
    tail: Vec<f64>,
}

impl RetrainRequest {
    /// The model generation this request was armed against.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The training window (most recent `train_size` observations, raw scale).
    pub fn tail(&self) -> &[f64] {
        &self.tail
    }

    /// Fits a model on the captured window. Pure: no serving state is read or
    /// written, so this can run off-thread. Returns `None` when training
    /// fails *or* the fitted model cannot produce a finite forecast on its
    /// own training tail (a NaN-poisoned window) — installing such a model
    /// would poison every forecast.
    pub fn fit(&self, config: &LarpConfig) -> Option<TrainedLarp> {
        TrainedLarp::train(&self.tail, config).ok().filter(|model| {
            matches!(
                model.predict_next_raw(&self.tail),
                Ok((_, f)) if f.is_finite()
            )
        })
    }
}

/// The result of fitting a [`RetrainRequest`], ready for
/// [`OnlineLarp::install_retrain`]. `model: None` records a *failed* fit —
/// installing it applies the retry-backoff bookkeeping, exactly as an inline
/// failure would.
#[derive(Debug)]
pub struct RetrainOutcome {
    /// Generation copied from the request; installs are rejected when the
    /// model has moved on since arming.
    pub generation: u64,
    /// The fitted model, or `None` when the fit failed the train/probe.
    pub model: Option<TrainedLarp>,
    /// Time the request spent queued before a worker picked it up (0 for
    /// inline resolution).
    pub queue_wait_us: u64,
    /// Wall-clock time of the fit itself.
    pub fit_us: u64,
}

/// Per-pool-member quarantine bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PredictorHealth {
    /// Consecutive divergence strikes.
    pub(crate) strikes: usize,
    /// Step clock until which the predictor is benched.
    pub(crate) quarantined_until: Option<u64>,
    /// How often this predictor has been quarantined (drives the backoff).
    pub(crate) times_quarantined: u32,
}

/// A self-retraining, fault-tolerant streaming LARPredictor.
///
/// Fields are `pub(crate)` so `crate::snapshot` can serialize and rebuild the
/// exact serving state without retraining.
pub struct OnlineLarp {
    pub(crate) config: LarpConfig,
    pub(crate) resilience: ResilienceConfig,
    pub(crate) qa: QualityAssuror,
    /// Most recent observations (raw scale), bounded by
    /// [`ResilienceConfig::max_history`].
    pub(crate) history: HistoryRing,
    /// The same observations normalised with the *current* model's train
    /// coefficients, maintained incrementally (one `ZScore::apply` per push,
    /// rebuilt wholesale on retrain/restore). Empty while no model is
    /// trained. This is what lets the serving path skip the per-step
    /// `apply_slice` pass over the whole history.
    pub(crate) norm: HistoryRing,
    /// Incremental mean/variance over the most recent `train_size` samples
    /// (runtime-only diagnostic; rebuilt from history on restore).
    pub(crate) rolling: RollingMoments,
    /// Internal scratch backing [`OnlineLarp::push`]; runtime-only.
    pub(crate) scratch: Scratch,
    /// Total observations consumed (unlike `history.len()`, never truncated).
    pub(crate) seen: usize,
    /// How many most-recent points each (re)training uses.
    pub(crate) train_size: usize,
    pub(crate) model: Option<TrainedLarp>,
    /// The forecast made for the not-yet-seen next value, with its producer,
    /// for QA scoring and divergence attribution (`None` producer =
    /// persistence fallback).
    pub(crate) pending: Option<(Option<PredictorId>, f64)>,
    pub(crate) retrain_count: usize,
    /// Step clock (one tick per push), the time base for quarantine expiry
    /// and retrain backoff.
    pub(crate) clock: u64,
    pub(crate) predictor_health: Vec<PredictorHealth>,
    pub(crate) tracker: Option<PoolErrorTracker>,
    pub(crate) counters: OnlineCounters,
    pub(crate) consecutive_retrain_failures: u32,
    /// Earliest clock at which another training attempt is allowed.
    pub(crate) next_retrain_at: u64,
    pub(crate) retrain_pending: bool,
    /// A retrain captured this step but not yet fitted/installed; runtime-only
    /// (never snapshotted — every snapshot path settles it first, and
    /// `retrain_pending` re-arms after restore if one were ever lost).
    pub(crate) armed: Option<RetrainRequest>,
    /// When `true`, an external driver (the fleet retrain pool) takes armed
    /// requests via [`OnlineLarp::take_retrain_request`] and installs the
    /// outcomes between pushes; when `false` (default) the push itself
    /// resolves them inline at end of step. Runtime-only.
    pub(crate) deferred_external: bool,
    /// Bumped on every model install; stamps [`RetrainRequest`]s so stale
    /// off-thread fits are discarded instead of installed. Runtime-only.
    pub(crate) generation: u64,
    /// Registry-backed recorder; runtime-only (never snapshotted, restored
    /// instances start unattached).
    pub(crate) obs: Option<LarpObs>,
    /// Fleet-shared PCA deduplication table; runtime-only (never snapshotted,
    /// restored instances start unattached). When present, every (re)trained
    /// model's basis is interned so byte-identical bases across streams share
    /// one allocation.
    pub(crate) interner: Option<Arc<PcaInterner>>,
}

/// Resident heap bytes of one stream's predictor state, by component — the
/// accounting half of the memory diet (DESIGN.md §11). Sizes are the
/// *capacities* actually held (what the allocator sees), not logical lengths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamMemReport {
    /// Raw-history ring backing buffer.
    pub history_bytes: usize,
    /// Normalised-mirror ring backing buffer.
    pub norm_bytes: usize,
    /// Trained model minus the PCA basis: predictor pool state, k-NN point
    /// store + labels + tree nodes, spec lists.
    pub model_bytes: usize,
    /// PCA basis. Reported separately because interned bases are shared
    /// across streams: a fleet-level rollup must deduplicate this component
    /// by basis identity (see [`OnlineLarp::pca_shared`]) or it overcounts.
    pub pca_bytes: usize,
    /// Quality-assuror error window.
    pub qa_bytes: usize,
    /// Per-stream scratch buffers (zero when a shard worker owns the scratch).
    pub scratch_bytes: usize,
    /// Fallback error tracker + per-predictor quarantine table.
    pub tracker_bytes: usize,
    /// Ingestion sanitizer mirror (zero for a bare [`OnlineLarp`]).
    pub sanitizer_bytes: usize,
}

impl StreamMemReport {
    /// Sum of every component, PCA included.
    pub fn total(&self) -> usize {
        self.history_bytes
            + self.norm_bytes
            + self.model_bytes
            + self.pca_bytes
            + self.qa_bytes
            + self.scratch_bytes
            + self.tracker_bytes
            + self.sanitizer_bytes
    }

    /// Component-wise accumulation, for fleet-level rollups.
    pub fn accumulate(&mut self, other: &StreamMemReport) {
        self.history_bytes += other.history_bytes;
        self.norm_bytes += other.norm_bytes;
        self.model_bytes += other.model_bytes;
        self.pca_bytes += other.pca_bytes;
        self.qa_bytes += other.qa_bytes;
        self.scratch_bytes += other.scratch_bytes;
        self.tracker_bytes += other.tracker_bytes;
        self.sanitizer_bytes += other.sanitizer_bytes;
    }
}

impl OnlineLarp {
    /// Creates an online predictor with the default [`ResilienceConfig`].
    ///
    /// * `config` — the LARPredictor configuration;
    /// * `train_size` — number of most-recent samples used at each (re)train;
    /// * `qa` — quality assuror governing retraining.
    ///
    /// # Errors
    ///
    /// Returns [`LarpError::InvalidConfig`] if `train_size` cannot support
    /// training under `config` (needs at least `window + max(k, 2)` points).
    pub fn new(config: LarpConfig, train_size: usize, qa: QualityAssuror) -> Result<Self> {
        Self::with_resilience(config, train_size, qa, ResilienceConfig::default())
    }

    /// [`OnlineLarp::new`] with an explicit fault-tolerance policy.
    ///
    /// # Errors
    ///
    /// Same conditions as [`OnlineLarp::new`], plus an invalid `resilience`
    /// or a bounded `max_history` smaller than `train_size`.
    pub fn with_resilience(
        config: LarpConfig,
        train_size: usize,
        qa: QualityAssuror,
        resilience: ResilienceConfig,
    ) -> Result<Self> {
        config.validate()?;
        resilience.validate()?;
        let min_train = config.window + config.k.max(2);
        if train_size < min_train {
            return Err(LarpError::InvalidConfig(format!(
                "train_size {train_size} below minimum {min_train} for window {} and k {}",
                config.window, config.k
            )));
        }
        if resilience.max_history != 0 && resilience.max_history < train_size {
            return Err(LarpError::InvalidConfig(format!(
                "max_history {} cannot hold train_size {train_size}",
                resilience.max_history
            )));
        }
        Ok(Self {
            config,
            qa,
            history: HistoryRing::new_mode(resilience.max_history, resilience.f32_history),
            norm: HistoryRing::new_mode(resilience.max_history, resilience.f32_history),
            rolling: RollingMoments::new(train_size)
                .expect("train_size validated >= window + 2 above"),
            scratch: Scratch::new(),
            resilience,
            seen: 0,
            train_size,
            model: None,
            pending: None,
            retrain_count: 0,
            clock: 0,
            predictor_health: Vec::new(),
            tracker: None,
            counters: OnlineCounters::default(),
            consecutive_retrain_failures: 0,
            next_retrain_at: 0,
            retrain_pending: false,
            armed: None,
            deferred_external: false,
            generation: 0,
            obs: None,
            interner: None,
        })
    }

    /// Attaches a registry-backed recorder: selection outcomes, quarantine
    /// and retrain activity are mirrored into its metrics and event ring
    /// from this step on. The recorder is runtime state — snapshots neither
    /// carry nor require one.
    pub fn attach_obs(&mut self, obs: LarpObs) {
        self.obs = Some(obs);
    }

    /// The attached recorder, if any.
    pub fn obs(&self) -> Option<&LarpObs> {
        self.obs.as_ref()
    }

    /// Attaches a shared PCA interner: the current model's basis (if any) and
    /// every basis produced by future retrains are deduplicated through it.
    /// Runtime state — snapshots neither carry nor require one, and interning
    /// never changes forecasts (substitution requires bitwise equality).
    pub fn attach_interner(&mut self, interner: Arc<PcaInterner>) {
        if let Some(model) = &mut self.model {
            model.intern_pca(&interner);
        }
        self.interner = Some(interner);
    }

    /// The shared handle to the current model's PCA basis, if any — the
    /// identity a fleet-level memory rollup deduplicates
    /// [`StreamMemReport::pca_bytes`] by.
    pub fn pca_shared(&self) -> Option<&Arc<learn::Pca>> {
        self.model.as_ref().and_then(TrainedLarp::pca_shared)
    }

    /// Measures the resident heap bytes of this stream's state, by component.
    /// Cold path (walks fitted predictor state) — for accounting, not serving.
    pub fn mem_report(&self) -> StreamMemReport {
        let (model_bytes, pca_bytes) =
            self.model.as_ref().map_or((0, 0), TrainedLarp::heap_bytes_split);
        StreamMemReport {
            history_bytes: self.history.heap_bytes(),
            norm_bytes: self.norm.heap_bytes(),
            model_bytes,
            pca_bytes,
            qa_bytes: self.qa.heap_bytes(),
            scratch_bytes: self.scratch.heap_bytes(),
            tracker_bytes: self.tracker.as_ref().map_or(0, PoolErrorTracker::heap_bytes)
                + self.predictor_health.capacity() * std::mem::size_of::<PredictorHealth>(),
            sanitizer_bytes: 0,
        }
    }

    /// Feeds one raw observation; returns the forecast for the next one.
    ///
    /// Behaviour:
    /// 1. scores the previous forecast against `value` through the QA and the
    ///    divergence monitor (quarantining the producer if it misbehaved);
    /// 2. (re)trains if the QA ordered it and the retry backoff allows, or
    ///    trains initially once `train_size` samples have arrived;
    /// 3. releases expired quarantines;
    /// 4. produces the next forecast by walking the degradation ladder:
    ///    k-NN choice → lowest-error non-quarantined member → persistence.
    ///
    /// The returned forecast, when present, is always finite.
    pub fn push(&mut self, value: f64) -> OnlineStep {
        // Route through the internal scratch (moved out and back so the
        // buffers can be borrowed alongside `self` — a pointer swap, not a
        // copy).
        let mut scratch = std::mem::take(&mut self.scratch);
        let step = self.push_with(value, &mut scratch);
        self.scratch = scratch;
        step
    }

    /// [`OnlineLarp::push`] with caller-owned scratch buffers: the serving
    /// layer keeps one [`Scratch`] per worker and reuses it across every
    /// stream it serves, making the steady-state step allocation-free.
    pub fn push_with(&mut self, value: f64, scratch: &mut Scratch) -> OnlineStep {
        // 0. A request armed on the previous step that no external driver
        // took (multi-value gap-fill feeds, replay, direct pushes) must
        // install before this step is scored — the contract is "armed
        // resolves before the next push", whoever runs the fit.
        self.settle_retrain_now();

        self.clock += 1;

        // 1. Score the pending forecast.
        if let Some((producer, forecast)) = self.pending.take() {
            self.score_pending(producer, forecast, value);
        }

        self.history.push(value);
        // In `f32` mode the ring quantized on push; every derived value must
        // come from the *stored* reading, or an incremental update and a
        // rebuild-from-history would disagree. In `f64` mode `stored == value`
        // bit-for-bit.
        let stored = self.history.last().expect("value was just pushed");
        if let Some(model) = &self.model {
            // Keep the normalised mirror in lockstep (same capacity, same
            // eviction) so downstream never re-normalises the whole history.
            self.norm.push(model.zscore().apply(stored));
        }
        self.rolling.push(stored);
        self.seen += 1;

        // Keep the fallback error accounting warm while anything is benched.
        if self.any_quarantined() {
            self.observe_tracker(stored, &mut scratch.norm64);
        }

        // 2. Training, gated by the retry backoff. The *initial* train (no
        // model yet) stays fully inline — the caller is owed a forecast from
        // it this very step. A re-train arms a request instead: the old model
        // serves this step, and the new one installs at end of push (inline
        // mode) or between pushes (external retrain pool).
        let mut retrained = false;
        let due = self.retrain_pending || self.model.is_none();
        if due
            && self.history.len() >= self.train_size
            && self.clock >= self.next_retrain_at
            && self.armed.is_none()
        {
            if self.model.is_none() {
                retrained = self.try_retrain(scratch);
            } else {
                self.armed = Some(self.snapshot_request(scratch));
            }
        }

        // 3. Re-admit predictors whose quarantine has expired.
        for (id, h) in self.predictor_health.iter_mut().enumerate() {
            if h.quarantined_until.is_some_and(|until| self.clock >= until) {
                h.quarantined_until = None;
                h.strikes = 0;
                if let Some(obs) = &self.obs {
                    obs.record_quarantine_exit(id);
                }
            }
        }

        // 4. Forecast via the ladder.
        let (forecast, chosen, health) = self.forecast_next(scratch);
        match health {
            HealthState::Healthy => {}
            HealthState::Degraded => self.counters.degraded_steps += 1,
            HealthState::Fallback => self.counters.fallback_steps += 1,
        }
        if forecast.is_some() {
            // Warmup steps (no forecast yet) are not selection outcomes.
            if let Some(obs) = &self.obs {
                obs.record_step(chosen.map(|c| c.0 as u64), health);
            }
        }
        if let Some(f) = forecast {
            self.pending = Some((chosen, f));
        }
        // 5. Inline mode resolves the armed retrain here, after the old model
        // served this step's forecast. External mode leaves it armed for the
        // retrain pool (step 0 of the next push is the backstop).
        if !self.deferred_external {
            retrained |= self.settle_retrain_now();
        }
        OnlineStep { forecast, chosen, retrained, health }
    }

    /// Scores one revealed value against the forecast made for it: QA
    /// recording, divergence strikes, and non-finite quarantine.
    fn score_pending(&mut self, producer: Option<PredictorId>, forecast: f64, value: f64) {
        if !forecast.is_finite() {
            // Defensive: the ladder never emits non-finite forecasts, but a
            // poisoned one must never reach the QA window or the caller twice.
            self.counters.nonfinite_forecasts += 1;
            if let Some(obs) = &self.obs {
                obs.record_nonfinite();
            }
            self.retrain_pending = true;
            if let Some(id) = producer {
                self.quarantine(id);
            }
            return;
        }
        if let AuditOutcome::RetrainNeeded { .. } = self.qa.record(forecast, value) {
            self.retrain_pending = true;
        }
        if let Some(id) = producer {
            let scale =
                self.model.as_ref().map(|m| m.zscore().std()).unwrap_or(1.0).max(f64::EPSILON);
            let diverged = !value.is_finite()
                || (forecast - value).abs() / scale > self.resilience.divergence_factor;
            let h = &mut self.predictor_health[id.0];
            if diverged {
                h.strikes += 1;
                if h.strikes >= self.resilience.max_strikes {
                    self.quarantine(id);
                }
            } else {
                h.strikes = 0;
            }
        }
    }

    /// Attempts a (re)train on the most recent `train_size` points, fully
    /// inline: arm, fit, install in one call. Used for the initial train
    /// (which must serve its forecast the same step) and by tests.
    fn try_retrain(&mut self, scratch: &mut Scratch) -> bool {
        self.armed = Some(self.snapshot_request(scratch));
        self.settle_retrain_now()
    }

    /// Captures the training window ending at the current step into an
    /// owned, generation-stamped request.
    fn snapshot_request(&self, scratch: &mut Scratch) -> RetrainRequest {
        let start = self.history.len().saturating_sub(self.train_size);
        // Zero-copy for `f64` rings; `f32` rings widen into the scratch.
        let full = self.history.materialized(&mut scratch.hist64);
        RetrainRequest { generation: self.generation, tail: full[start..].to_vec() }
    }

    /// Takes the armed retrain request, if any, for off-thread fitting.
    /// Whoever takes it owes the model an [`OnlineLarp::install_retrain`]
    /// before the next push (the push's own backstop resolves anything still
    /// armed, so forgetting to take is safe — forgetting to install is not,
    /// but a stale install is simply discarded).
    pub fn take_retrain_request(&mut self) -> Option<RetrainRequest> {
        self.armed.take()
    }

    /// Resolves any armed retrain inline right now: fit on this thread,
    /// install immediately. Returns `true` iff a new model was installed.
    pub fn settle_retrain_now(&mut self) -> bool {
        let Some(request) = self.armed.take() else {
            return false;
        };
        let started = Instant::now();
        let model = request.fit(&self.config);
        let installed = model.is_some();
        self.install_retrain(RetrainOutcome {
            generation: request.generation,
            model,
            queue_wait_us: 0,
            fit_us: started.elapsed().as_micros() as u64,
        });
        installed
    }

    /// Whether deferred retrains are resolved externally (see
    /// [`OnlineLarp::set_deferred_retrain`]).
    pub fn retrain_deferred(&self) -> bool {
        self.deferred_external
    }

    /// Switches between inline resolution (default: the push that arms a
    /// retrain also fits and installs it at end of step) and external
    /// resolution (an off-worker pool takes requests between pushes). The
    /// forecast sequence is bit-identical either way — only *where* the fit
    /// runs changes.
    pub fn set_deferred_retrain(&mut self, external: bool) {
        self.deferred_external = external;
    }

    /// The current model generation (bumped on every install).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The LARPredictor configuration a [`RetrainRequest::fit`] needs.
    pub fn config(&self) -> &LarpConfig {
        &self.config
    }

    /// Installs the outcome of a fitted [`RetrainRequest`]. Returns `false`
    /// (and changes nothing) when the outcome's generation no longer matches
    /// — a model was installed since the request was armed, so both success
    /// and failure bookkeeping would apply to the wrong serving state.
    ///
    /// A successful outcome installs the model exactly as an inline retrain
    /// would: fresh quarantine slate, fresh fallback tracker, rebuilt
    /// normalised mirror, QA reset. A failed outcome (`model: None`) keeps
    /// the stale model serving and pushes the next attempt out by the
    /// exponential backoff.
    pub fn install_retrain(&mut self, outcome: RetrainOutcome) -> bool {
        if outcome.generation != self.generation {
            return false;
        }
        match outcome.model {
            Some(mut model) => {
                if let Some(interner) = &self.interner {
                    model.intern_pca(interner);
                }
                let pool_len = model.pool().len();
                self.predictor_health = vec![PredictorHealth::default(); pool_len];
                self.tracker = PoolErrorTracker::new(pool_len, self.config.window.max(8)).ok();
                self.model = Some(model);
                self.rebuild_norm();
                self.retrain_count += 1;
                self.qa.reset();
                self.retrain_pending = false;
                self.consecutive_retrain_failures = 0;
                self.generation += 1;
                if let Some(obs) = &self.obs {
                    obs.record_retrain_success(outcome.fit_us, outcome.queue_wait_us);
                }
            }
            None => {
                self.counters.retrain_failures += 1;
                let exp = self.consecutive_retrain_failures.min(16);
                self.consecutive_retrain_failures += 1;
                if let Some(obs) = &self.obs {
                    obs.record_retrain_failure(self.consecutive_retrain_failures as u64);
                }
                let delay = self
                    .resilience
                    .retrain_backoff_base
                    .saturating_mul(1usize << exp)
                    .min(self.resilience.retrain_backoff_cap);
                self.next_retrain_at = self.clock + delay as u64;
            }
        }
        true
    }

    /// Walks the degradation ladder for the next forecast. The returned
    /// forecast, when present, is finite.
    fn forecast_next(
        &mut self,
        scratch: &mut Scratch,
    ) -> (Option<f64>, Option<PredictorId>, HealthState) {
        if self.model.is_none() || self.history.len() < self.config.window {
            // Before the first successful training: dark during warmup (no
            // training attempted yet), persistence once training has been
            // attempted and failed (the caller is owed *some* forecast).
            if self.model.is_none() && self.history.len() >= self.train_size {
                if let Some(last) = self.history.last() {
                    if last.is_finite() {
                        return (Some(last), None, HealthState::Fallback);
                    }
                }
            }
            return (None, None, HealthState::Healthy);
        }

        // Rung 1: the k-NN choice, if not quarantined. The current window is
        // already normalised in the mirror ring; no re-normalisation pass.
        // Borrowed field-by-field so the `f32` widening buffer can live in
        // the same scratch the ranking writes into.
        let first = {
            let model = self.model.as_ref().expect("model checked above");
            let Scratch { features, neighbors, votes, nearest, ranked, norm64, .. } = scratch;
            let norm = self.norm.materialized(norm64);
            match model.select_ranked_fields(norm, features, neighbors, votes, nearest, ranked) {
                Ok(()) => ranked.first().copied(),
                Err(_) => None,
            }
        };
        if let Some(first) = first {
            if !self.is_quarantined(first) {
                if let Some(f) = self.checked_predict(first, &mut scratch.norm64) {
                    return (Some(f), Some(first), HealthState::Healthy);
                }
            }
        }

        // Rung 2: lowest-windowed-error non-quarantined pool member.
        loop {
            let best = self.tracker.as_ref().and_then(|t| {
                t.best_allowed(|id| {
                    self.predictor_health.get(id.0).is_none_or(|h| h.quarantined_until.is_none())
                })
            });
            let Some(id) = best else { break };
            if let Some(f) = self.checked_predict(id, &mut scratch.norm64) {
                return (Some(f), Some(id), HealthState::Degraded);
            }
            // checked_predict quarantined it; the next iteration excludes it.
        }

        // Rung 3: last-value persistence.
        match self.history.last() {
            Some(last) if last.is_finite() => (Some(last), None, HealthState::Fallback),
            _ => (None, None, HealthState::Fallback),
        }
    }

    /// Runs one pool member and validates its output; a non-finite or failed
    /// forecast quarantines the producer and yields `None`. `norm64` is the
    /// widening buffer for `f32` mirror rings (untouched in `f64` mode).
    fn checked_predict(&mut self, id: PredictorId, norm64: &mut Vec<f64>) -> Option<f64> {
        let forecast = {
            let Self { model, norm, .. } = &*self;
            model.as_ref().and_then(|m| {
                let normalized = norm.materialized(norm64);
                m.predict_with_normalized(id, normalized).ok()
            })
        };
        match forecast {
            Some(f) if f.is_finite() => Some(f),
            _ => {
                // A pool member going non-finite on serving is model breakage,
                // not mere inaccuracy: bench it and order a retrain (the
                // post-train probe keeps a still-poisoned window from
                // installing, so this cannot churn).
                self.counters.nonfinite_forecasts += 1;
                if let Some(obs) = &self.obs {
                    obs.record_nonfinite();
                }
                self.retrain_pending = true;
                self.quarantine(id);
                None
            }
        }
    }

    /// Benches a predictor for `quarantine_base · 2^(times quarantined)`
    /// steps, capped at `quarantine_cap`.
    fn quarantine(&mut self, id: PredictorId) {
        let Some(h) = self.predictor_health.get_mut(id.0) else {
            return;
        };
        let exp = h.times_quarantined.min(16);
        let duration = self
            .resilience
            .quarantine_base
            .saturating_mul(1usize << exp)
            .min(self.resilience.quarantine_cap);
        let until = self.clock + duration as u64;
        h.quarantined_until = Some(until);
        h.times_quarantined += 1;
        h.strikes = 0;
        self.counters.quarantines += 1;
        if let Some(obs) = &self.obs {
            obs.record_quarantine(id.0, until);
        }
    }

    /// Manually benches a pool member (operational override; also the
    /// deterministic hook the fault-injection tests use).
    ///
    /// # Errors
    ///
    /// Returns [`LarpError::InvalidConfig`] if no model is trained yet or the
    /// id is outside the pool.
    pub fn quarantine_predictor(&mut self, id: PredictorId) -> Result<()> {
        if id.0 >= self.predictor_health.len() {
            return Err(LarpError::InvalidConfig(format!(
                "cannot quarantine predictor {}: pool has {} trained members",
                id.0,
                self.predictor_health.len()
            )));
        }
        self.quarantine(id);
        Ok(())
    }

    /// Whether a pool member is currently quarantined.
    pub fn is_quarantined(&self, id: PredictorId) -> bool {
        self.predictor_health.get(id.0).is_some_and(|h| h.quarantined_until.is_some())
    }

    /// Currently quarantined pool members.
    pub fn quarantined(&self) -> Vec<PredictorId> {
        self.predictor_health
            .iter()
            .enumerate()
            .filter(|(_, h)| h.quarantined_until.is_some())
            .map(|(i, _)| PredictorId(i))
            .collect()
    }

    fn any_quarantined(&self) -> bool {
        self.predictor_health.iter().any(|h| h.quarantined_until.is_some())
    }

    /// Feeds the fallback error tracker one revealed value (normalised into
    /// the model's training units), using the history *before* `value`.
    fn observe_tracker(&mut self, value: f64, norm64: &mut Vec<f64>) {
        let Self { model, tracker, history, norm, config, .. } = self;
        let Some(model) = model.as_ref() else { return };
        let Some(tracker) = tracker.as_mut() else { return };
        let upto = history.len() - 1; // `value` is already pushed
        let m = config.window;
        if upto < m || !value.is_finite() {
            return;
        }
        let start = upto.saturating_sub(4 * m);
        // The mirror ring is in lockstep with the raw history whenever a
        // model exists, so the normalised lookback is a plain subslice.
        let full = norm.materialized(norm64);
        let normalized = &full[start..upto];
        let actual = model.zscore().apply(value);
        tracker.observe(model.pool(), normalized, actual);
    }

    /// Rebuilds the normalised mirror ring from the raw history with the
    /// current model's coefficients (or empties it when no model exists).
    /// Called after every successful (re)train and after snapshot restore.
    pub(crate) fn rebuild_norm(&mut self) {
        self.norm.clear();
        if let Some(model) = &self.model {
            for v in self.history.iter64() {
                self.norm.push(model.zscore().apply(v));
            }
        }
    }

    /// Rebuilds all runtime-only derived state (the normalised mirror and the
    /// rolling moments) from the serialized fields; used by snapshot restore.
    pub(crate) fn rebuild_runtime(&mut self) {
        self.rolling =
            RollingMoments::new(self.train_size).expect("train_size validated at construction");
        let tail = self.history.len().saturating_sub(self.train_size);
        for v in self.history.iter64().skip(tail) {
            self.rolling.push(v);
        }
        self.rebuild_norm();
    }

    /// Incrementally maintained mean/variance over the most recent
    /// `train_size` observations — the normalisation coefficients a retrain
    /// would derive right now, available in O(1) without a history pass.
    pub fn rolling_moments(&self) -> &RollingMoments {
        &self.rolling
    }

    /// Number of (re)trainings performed, including the initial one.
    pub fn retrain_count(&self) -> usize {
        self.retrain_count
    }

    /// Whether a model is currently trained.
    pub fn is_trained(&self) -> bool {
        self.model.is_some()
    }

    /// Observations consumed so far.
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// The embedded quality assuror.
    pub fn qa(&self) -> &QualityAssuror {
        &self.qa
    }

    /// The fault-tolerance policy in force.
    pub fn resilience(&self) -> &ResilienceConfig {
        &self.resilience
    }

    /// Cumulative fault-handling counters.
    pub fn counters(&self) -> &OnlineCounters {
        &self.counters
    }

    /// Training failures since the last successful (re)train.
    pub fn consecutive_retrain_failures(&self) -> u32 {
        self.consecutive_retrain_failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qa() -> QualityAssuror {
        QualityAssuror::new(2.0, 8, 4).unwrap()
    }

    fn online() -> OnlineLarp {
        OnlineLarp::new(LarpConfig::default(), 40, qa()).unwrap()
    }

    #[test]
    fn no_forecast_before_initial_training() {
        let mut o = online();
        for t in 0..39 {
            let step = o.push((t as f64 * 0.3).sin());
            assert_eq!(step.forecast, None, "step {t}");
            assert_eq!(step.health, HealthState::Healthy, "warmup is healthy");
            assert!(!o.is_trained());
        }
        let step = o.push(0.5);
        assert!(o.is_trained());
        assert!(step.retrained);
        assert!(step.forecast.is_some());
    }

    #[test]
    fn forecasts_flow_after_training() {
        let mut o = online();
        let mut forecasts = 0;
        for t in 0..120 {
            let step = o.push((t as f64 * 0.2).sin() * 3.0);
            if step.forecast.is_some() {
                forecasts += 1;
                assert!(step.chosen.is_some());
                assert_eq!(step.health, HealthState::Healthy);
            }
        }
        assert!(forecasts >= 70, "{forecasts}");
        assert_eq!(o.seen(), 120);
        assert_eq!(o.counters().quarantines, 0);
        assert_eq!(o.counters().degraded_steps, 0);
        assert_eq!(o.counters().fallback_steps, 0);
    }

    #[test]
    fn regime_change_triggers_retraining() {
        // Train on a gentle sinusoid, then switch to huge swings: normalized
        // errors explode and the QA must order a refit.
        let mut o =
            OnlineLarp::new(LarpConfig::default(), 40, QualityAssuror::new(0.5, 4, 2).unwrap())
                .unwrap();
        for t in 0..60 {
            o.push((t as f64 * 0.2).sin() * 0.1);
        }
        assert_eq!(o.retrain_count(), 1);
        for t in 0..60 {
            o.push(if t % 2 == 0 { 50.0 } else { -50.0 });
        }
        assert!(o.retrain_count() > 1, "retrains: {}", o.retrain_count());
    }

    #[test]
    fn stable_workload_does_not_retrain() {
        let mut o =
            OnlineLarp::new(LarpConfig::default(), 40, QualityAssuror::new(5.0, 8, 4).unwrap())
                .unwrap();
        for t in 0..200 {
            o.push((t as f64 * 0.2).sin());
        }
        assert_eq!(o.retrain_count(), 1, "only the initial training");
    }

    #[test]
    fn construction_validates_train_size() {
        assert!(OnlineLarp::new(LarpConfig::default(), 3, qa()).is_err());
        assert!(OnlineLarp::new(LarpConfig::default(), 8, qa()).is_ok());
    }

    #[test]
    fn construction_validates_resilience() {
        let bad = ResilienceConfig { divergence_factor: -1.0, ..ResilienceConfig::default() };
        assert!(OnlineLarp::with_resilience(LarpConfig::default(), 40, qa(), bad).is_err());
        // Bounded history must hold at least one training window.
        let tiny = ResilienceConfig { max_history: 10, ..ResilienceConfig::default() };
        assert!(OnlineLarp::with_resilience(LarpConfig::default(), 40, qa(), tiny).is_err());
        let unbounded = ResilienceConfig { max_history: 0, ..ResilienceConfig::default() };
        assert!(OnlineLarp::with_resilience(LarpConfig::default(), 40, qa(), unbounded).is_ok());
    }

    #[test]
    fn forecast_is_in_raw_units() {
        let mut o = OnlineLarp::new(LarpConfig::default(), 40, qa()).unwrap();
        let mut last = None;
        for t in 0..80 {
            last = o.push(1000.0 + (t as f64 * 0.3).sin() * 10.0).forecast.or(last);
        }
        let f = last.unwrap();
        assert!((950.0..1050.0).contains(&f), "{f}");
    }

    #[test]
    fn history_stays_bounded() {
        let resilience = ResilienceConfig { max_history: 64, ..ResilienceConfig::default() };
        let mut o =
            OnlineLarp::with_resilience(LarpConfig::default(), 40, qa(), resilience).unwrap();
        for t in 0..500 {
            o.push((t as f64 * 0.2).sin());
        }
        assert_eq!(o.seen(), 500);
        assert!(o.history.len() <= 64, "history {} exceeds bound", o.history.len());
        assert!(o.is_trained());
    }

    #[test]
    fn manual_quarantine_degrades_then_recovers() {
        let resilience = ResilienceConfig { quarantine_base: 8, ..ResilienceConfig::default() };
        let mut o =
            OnlineLarp::with_resilience(LarpConfig::default(), 40, qa(), resilience).unwrap();
        let signal = |t: usize| (t as f64 * 0.2).sin() * 3.0;
        let mut t = 0;
        while !o.is_trained() {
            o.push(signal(t));
            t += 1;
        }
        // Bench the model the selector would pick next.
        let step = o.push(signal(t));
        t += 1;
        let first_choice = step.chosen.unwrap();
        o.quarantine_predictor(first_choice).unwrap();
        assert!(o.is_quarantined(first_choice));
        assert_eq!(o.counters().quarantines, 1);

        // While benched, serving continues off the ladder: forecasts stay
        // finite and never come from the quarantined member.
        let mut degraded_seen = false;
        for _ in 0..7 {
            let step = o.push(signal(t));
            t += 1;
            if let Some(f) = step.forecast {
                assert!(f.is_finite());
            }
            assert_ne!(step.chosen, Some(first_choice));
            if step.health == HealthState::Degraded {
                degraded_seen = true;
            }
        }
        assert!(degraded_seen, "ladder never reported a degraded step");

        // After the 8-step quarantine expires the member is re-admitted.
        for _ in 0..4 {
            o.push(signal(t));
            t += 1;
        }
        assert!(!o.is_quarantined(first_choice));
        assert!(o.quarantined().is_empty());
        let step = o.push(signal(t));
        assert_eq!(step.health, HealthState::Healthy);
    }

    #[test]
    fn quarantine_backoff_doubles_per_offence() {
        let resilience = ResilienceConfig {
            quarantine_base: 2,
            quarantine_cap: 16,
            ..ResilienceConfig::default()
        };
        let mut o =
            OnlineLarp::with_resilience(LarpConfig::default(), 40, qa(), resilience).unwrap();
        for t in 0..41 {
            o.push((t as f64 * 0.2).sin());
        }
        let id = PredictorId(0);
        // First offence: 2 steps.
        o.quarantine_predictor(id).unwrap();
        o.push(0.1);
        assert!(o.is_quarantined(id), "still benched after 1 of 2 steps");
        o.push(0.2);
        assert!(!o.is_quarantined(id), "released after 2 steps");
        // Second offence: 4 steps.
        o.quarantine_predictor(id).unwrap();
        for i in 0..3 {
            o.push(0.1 * i as f64);
            assert!(o.is_quarantined(id), "still benched after {} of 4 steps", i + 1);
        }
        o.push(0.5);
        assert!(!o.is_quarantined(id), "released after 4 steps");
        // Third offence: 8, but capped at quarantine_cap if it grows further.
        o.quarantine_predictor(id).unwrap();
        for _ in 0..7 {
            o.push(0.3);
            assert!(o.is_quarantined(id));
        }
        o.push(0.4);
        assert!(!o.is_quarantined(id));
        assert_eq!(o.counters().quarantines, 3);
    }

    #[test]
    fn whole_pool_quarantined_serves_persistence() {
        // Huge QA threshold: no retrain can fire and wipe the quarantines
        // mid-test (a successful retrain replaces the pool, so it starts with
        // a clean quarantine slate by design).
        let mut o =
            OnlineLarp::new(LarpConfig::default(), 40, QualityAssuror::new(1e9, 8, 4).unwrap())
                .unwrap();
        for t in 0..45 {
            o.push(100.0 + (t as f64 * 0.2).sin());
        }
        for id in 0..3 {
            o.quarantine_predictor(PredictorId(id)).unwrap();
        }
        let step = o.push(123.0);
        assert_eq!(step.health, HealthState::Fallback);
        assert_eq!(step.chosen, None);
        assert_eq!(step.forecast, Some(123.0), "persistence repeats the last value");
        assert!(o.counters().fallback_steps >= 1);
    }

    #[test]
    fn failed_training_serves_persistence_and_backs_off() {
        // train_size 8 passes construction (window 5 + max(k, 2) = 8) but the
        // AR(5) pool member needs 2·5 = 10 points, so every training attempt
        // fails. The loop must serve last-value persistence instead of going
        // dark, and throttle its retries with the exponential backoff.
        let resilience = ResilienceConfig {
            retrain_backoff_base: 4,
            retrain_backoff_cap: 64,
            ..ResilienceConfig::default()
        };
        let mut o =
            OnlineLarp::with_resilience(LarpConfig::default(), 8, qa(), resilience).unwrap();
        for t in 0..60 {
            let value = (t as f64 * 0.2).sin();
            let step = o.push(value);
            assert!(!o.is_trained());
            if o.seen() >= 8 {
                // Training has been attempted and failed: persistence serves.
                assert_eq!(step.forecast, Some(value));
                assert_eq!(step.chosen, None);
                assert_eq!(step.health, HealthState::Fallback);
            } else {
                assert_eq!(step.forecast, None, "dark during warmup");
            }
        }
        let failures = o.counters().retrain_failures;
        // Backoff spacing 4, 8, 16, 32 from step 8: attempts at steps
        // 8, 12, 20, 36 within the first 60 — not one per step.
        assert!((2..=5).contains(&failures), "{failures} attempts — backoff not applied");
        assert!(o.consecutive_retrain_failures() > 0);
        assert!(o.counters().fallback_steps >= 50);
    }

    #[test]
    fn nan_burst_fails_retraining_then_recovers() {
        // A healthy model, then a burst of raw NaN observations (no sanitizer
        // in front). The QA's non-finite guard orders a retrain, but training
        // windows containing NaN cannot produce a servable model (the
        // post-train probe rejects them), so the stale model is kept with
        // backoff. Once the NaNs wash out of the training window, a retry
        // succeeds and serving returns to Healthy.
        let resilience = ResilienceConfig {
            max_history: 60,
            retrain_backoff_base: 4,
            retrain_backoff_cap: 16,
            ..ResilienceConfig::default()
        };
        let mut o = OnlineLarp::with_resilience(
            LarpConfig::default(),
            40,
            QualityAssuror::new(2.0, 4, 2).unwrap(),
            resilience,
        )
        .unwrap();
        let signal = |t: usize| (t as f64 * 0.2).sin() * 3.0;
        for t in 0..40 {
            o.push(signal(t));
        }
        assert_eq!(o.retrain_count(), 1);

        for _ in 0..6 {
            let step = o.push(f64::NAN);
            // The invariant that matters: never a non-finite forecast.
            if let Some(f) = step.forecast {
                assert!(f.is_finite());
            }
        }
        assert!(o.counters().retrain_failures > 0, "NaN training window must fail the probe");
        assert!(o.is_trained(), "stale model kept serving");
        assert_eq!(o.retrain_count(), 1);

        let mut last = OnlineStep {
            forecast: None,
            chosen: None,
            retrained: false,
            health: HealthState::Fallback,
        };
        for t in 0..80 {
            last = o.push(signal(t));
            if let Some(f) = last.forecast {
                assert!(f.is_finite());
            }
        }
        assert!(o.retrain_count() >= 2, "retraining must succeed after the wash-out");
        assert_eq!(o.consecutive_retrain_failures(), 0);
        assert_eq!(last.health, HealthState::Healthy);
        assert!(last.forecast.is_some());
    }

    #[test]
    fn quarantine_of_unknown_id_is_rejected() {
        let mut o = online();
        assert!(o.quarantine_predictor(PredictorId(0)).is_err(), "no model yet");
        for t in 0..41 {
            o.push((t as f64 * 0.2).sin());
        }
        assert!(o.quarantine_predictor(PredictorId(9)).is_err());
        assert!(o.quarantine_predictor(PredictorId(1)).is_ok());
    }
}
