//! The Prediction Quality Assuror (paper §3.2, Figure 1).
//!
//! "The Prediction Quality Assuror (QA) … periodically audits the prediction
//! performance by calculating the average MSE of historical prediction data …
//! When the average MSE of the audit window exceeds a predefined threshold, it
//! directs the LARPredictor to re-train the predictors and the classifier."
//!
//! [`QualityAssuror`] is that component as a small state machine: feed it
//! (prediction, observation) pairs; every `audit_period` samples it audits the
//! rolling window and reports whether retraining is due.

use std::collections::VecDeque;

use crate::{LarpError, Result};

/// Outcome of one recorded sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AuditOutcome {
    /// Not an audit point; nothing to report.
    NotAudited,
    /// Audited: rolling MSE within threshold.
    Healthy {
        /// The rolling MSE at the audit.
        mse: f64,
    },
    /// Audited: rolling MSE exceeded the threshold — retrain.
    RetrainNeeded {
        /// The rolling MSE at the audit.
        mse: f64,
    },
}

/// Rolling-window MSE auditor with a retraining threshold.
#[derive(Debug, Clone)]
pub struct QualityAssuror {
    pub(crate) threshold: f64,
    pub(crate) audit_window: usize,
    pub(crate) audit_period: usize,
    pub(crate) errors: VecDeque<f64>,
    pub(crate) since_audit: usize,
    pub(crate) audits: usize,
    pub(crate) retrains_signalled: usize,
}

impl QualityAssuror {
    /// Creates an auditor.
    ///
    /// * `threshold` — rolling MSE above which retraining is ordered;
    /// * `audit_window` — how many recent squared errors the audit averages;
    /// * `audit_period` — audit every this-many recorded samples.
    ///
    /// # Errors
    ///
    /// Returns [`LarpError::InvalidConfig`] for a non-positive threshold or
    /// zero window/period.
    pub fn new(threshold: f64, audit_window: usize, audit_period: usize) -> Result<Self> {
        if !(threshold.is_finite() && threshold > 0.0) {
            return Err(LarpError::InvalidConfig(format!(
                "QA threshold must be positive, got {threshold}"
            )));
        }
        if audit_window == 0 || audit_period == 0 {
            return Err(LarpError::InvalidConfig("QA window and period must be positive".into()));
        }
        Ok(Self {
            threshold,
            audit_window,
            audit_period,
            errors: VecDeque::with_capacity(audit_window),
            since_audit: 0,
            audits: 0,
            retrains_signalled: 0,
        })
    }

    /// Records one (prediction, observation) pair; audits if the period is due.
    ///
    /// A non-finite prediction or observation is recorded as a large *finite*
    /// squared error (`2 · threshold · audit_window`): NaN must never poison
    /// the rolling mean into permanent NaN (which would disable auditing
    /// entirely), but a faulted sample still guarantees the next audit trips.
    pub fn record(&mut self, predicted: f64, observed: f64) -> AuditOutcome {
        let d = predicted - observed;
        let mut sq = d * d;
        if !sq.is_finite() {
            sq = 2.0 * self.threshold * self.audit_window as f64;
        }
        self.errors.push_back(sq);
        if self.errors.len() > self.audit_window {
            self.errors.pop_front();
        }
        self.since_audit += 1;
        if self.since_audit < self.audit_period {
            return AuditOutcome::NotAudited;
        }
        self.since_audit = 0;
        self.audits += 1;
        let mse = self.rolling_mse().expect("window non-empty after record");
        if mse > self.threshold {
            self.retrains_signalled += 1;
            AuditOutcome::RetrainNeeded { mse }
        } else {
            AuditOutcome::Healthy { mse }
        }
    }

    /// Heap bytes held by the error window, for memory accounting.
    pub fn heap_bytes(&self) -> usize {
        self.errors.capacity() * std::mem::size_of::<f64>()
    }

    /// Current rolling MSE (`None` before any sample).
    pub fn rolling_mse(&self) -> Option<f64> {
        if self.errors.is_empty() {
            None
        } else {
            Some(self.errors.iter().sum::<f64>() / self.errors.len() as f64)
        }
    }

    /// Clears the error window (call after retraining so stale errors from the
    /// old model don't immediately re-trigger).
    pub fn reset(&mut self) {
        self.errors.clear();
        self.since_audit = 0;
    }

    /// Number of audits performed.
    pub fn audits(&self) -> usize {
        self.audits
    }

    /// Number of retrain signals issued.
    pub fn retrains_signalled(&self) -> usize {
        self.retrains_signalled
    }

    /// The configured threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(QualityAssuror::new(0.0, 10, 5).is_err());
        assert!(QualityAssuror::new(-1.0, 10, 5).is_err());
        assert!(QualityAssuror::new(f64::NAN, 10, 5).is_err());
        assert!(QualityAssuror::new(1.0, 0, 5).is_err());
        assert!(QualityAssuror::new(1.0, 10, 0).is_err());
        assert!(QualityAssuror::new(1.0, 10, 5).is_ok());
    }

    #[test]
    fn audits_only_at_period_boundaries() {
        let mut qa = QualityAssuror::new(1.0, 8, 4).unwrap();
        for i in 0..3 {
            assert_eq!(qa.record(0.0, 0.0), AuditOutcome::NotAudited, "sample {i}");
        }
        assert!(matches!(qa.record(0.0, 0.0), AuditOutcome::Healthy { .. }));
        assert_eq!(qa.audits(), 1);
    }

    #[test]
    fn good_predictions_stay_healthy() {
        let mut qa = QualityAssuror::new(0.5, 10, 5).unwrap();
        for _ in 0..50 {
            let out = qa.record(1.0, 1.1);
            assert!(!matches!(out, AuditOutcome::RetrainNeeded { .. }));
        }
        assert_eq!(qa.retrains_signalled(), 0);
    }

    #[test]
    fn degrading_predictions_trigger_retrain() {
        let mut qa = QualityAssuror::new(0.5, 4, 4).unwrap();
        // Four errors of magnitude 2 -> rolling MSE 4 > 0.5.
        let mut triggered = false;
        for _ in 0..4 {
            if matches!(qa.record(0.0, 2.0), AuditOutcome::RetrainNeeded { .. }) {
                triggered = true;
            }
        }
        assert!(triggered);
        assert_eq!(qa.retrains_signalled(), 1);
    }

    #[test]
    fn rolling_window_forgets_old_errors() {
        let mut qa = QualityAssuror::new(0.5, 2, 1).unwrap();
        // One huge error, then perfect predictions: after 2 good samples the
        // window contains only zeros.
        assert!(matches!(qa.record(0.0, 10.0), AuditOutcome::RetrainNeeded { .. }));
        qa.record(1.0, 1.0);
        let out = qa.record(1.0, 1.0);
        assert!(matches!(out, AuditOutcome::Healthy { mse } if mse == 0.0));
    }

    #[test]
    fn reset_clears_state() {
        let mut qa = QualityAssuror::new(0.5, 4, 2).unwrap();
        qa.record(0.0, 5.0);
        qa.reset();
        assert_eq!(qa.rolling_mse(), None);
        // After reset the period counter restarts too.
        assert_eq!(qa.record(0.0, 0.0), AuditOutcome::NotAudited);
    }

    #[test]
    fn nonfinite_samples_trip_the_audit_without_poisoning_the_window() {
        let mut qa = QualityAssuror::new(1.0, 4, 1).unwrap();
        // A NaN observation audits as RetrainNeeded with a finite MSE.
        match qa.record(0.5, f64::NAN) {
            AuditOutcome::RetrainNeeded { mse } => assert!(mse.is_finite()),
            other => panic!("unexpected {other:?}"),
        }
        match qa.record(f64::INFINITY, 1.0) {
            AuditOutcome::RetrainNeeded { mse } => assert!(mse.is_finite()),
            other => panic!("unexpected {other:?}"),
        }
        // Once the faulted samples roll out of the window, health returns.
        for _ in 0..4 {
            qa.record(1.0, 1.0);
        }
        assert!(matches!(qa.record(1.0, 1.0), AuditOutcome::Healthy { mse } if mse == 0.0));
    }

    #[test]
    fn audit_reports_exact_mse() {
        let mut qa = QualityAssuror::new(100.0, 2, 2).unwrap();
        qa.record(0.0, 1.0); // sq = 1
        match qa.record(0.0, 3.0) {
            AuditOutcome::Healthy { mse } => assert!((mse - 5.0).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
    }
}
