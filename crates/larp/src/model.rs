//! The trained LARPredictor: normaliser + pool + PCA + k-NN, bundled.

use std::sync::Arc;

use learn::{KnnClassifier, Pca};
use linalg::Matrix;
use predictors::{PredictorId, PredictorPool};
use timeseries::ZScore;

use crate::config::{FeatureReduction, LarpConfig};
use crate::labeler::label_ids;
use crate::selector::KnnSelector;
use crate::{LarpError, Result};

/// Caller-owned reusable buffers for the allocation-free serving path.
///
/// One `Scratch` per stream (or per shard worker, reused across the streams it
/// serves) lets the steady-state push → classify → predict cycle run without
/// touching the heap: every `_into` method writes into these buffers instead
/// of returning fresh `Vec`s. Buffers keep their capacity across calls, so
/// after the first few steps every field is a straight reuse.
#[derive(Debug, Default)]
pub struct Scratch {
    /// Projected feature vector (PCA output, or the raw window when reduction
    /// is disabled).
    pub(crate) features: Vec<f64>,
    /// The k nearest `(label, squared distance)` pairs.
    pub(crate) neighbors: Vec<(usize, f64)>,
    /// Per-pool-member vote counts for ranked selection.
    pub(crate) votes: Vec<usize>,
    /// Per-pool-member nearest-neighbour distance for ranked selection.
    pub(crate) nearest: Vec<f64>,
    /// Ranked predictor ids, most preferred first.
    pub(crate) ranked: Vec<PredictorId>,
    /// Rolling window for iterated horizon forecasting.
    pub(crate) rolling: Vec<f64>,
    /// Sanitized values produced by one ingest step.
    pub(crate) clean: Vec<f64>,
    /// Widened raw history for `f32`-ring streams (see
    /// [`crate::ResilienceConfig::f32_history`]); stays empty for `f64` rings,
    /// whose history is borrowed zero-copy.
    pub(crate) hist64: Vec<f64>,
    /// Widened normalised mirror for `f32`-ring streams.
    pub(crate) norm64: Vec<f64>,
}

impl Scratch {
    /// Creates an empty scratch; buffers grow to their steady-state sizes on
    /// first use and are reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// The ranking produced by the last [`TrainedLarp::select_ranked_into`].
    pub fn ranked(&self) -> &[PredictorId] {
        &self.ranked
    }

    /// Heap bytes currently held by the scratch buffers.
    pub fn heap_bytes(&self) -> usize {
        self.features.capacity() * 8
            + self.neighbors.capacity() * std::mem::size_of::<(usize, f64)>()
            + self.votes.capacity() * std::mem::size_of::<usize>()
            + self.nearest.capacity() * 8
            + self.ranked.capacity() * std::mem::size_of::<PredictorId>()
            + self.rolling.capacity() * 8
            + self.clean.capacity() * 8
            + self.hist64.capacity() * 8
            + self.norm64.capacity() * 8
    }
}

/// A LARPredictor after its training phase (paper §6.1).
///
/// Holds everything the testing phase needs: the train-derived z-score
/// coefficients, the fitted predictor pool, the PCA projection (if enabled)
/// and the labelled k-NN index. Create with [`TrainedLarp::train`].
pub struct TrainedLarp {
    pub(crate) config: LarpConfig,
    pub(crate) zscore: ZScore,
    pub(crate) pool: PredictorPool,
    /// Reference-counted so byte-identical bases can be interned and shared
    /// across streams trained on similar signals (see
    /// [`learn::PcaInterner`]) — at fleet scale many streams carry the same
    /// workload shape and need only one resident basis.
    pub(crate) pca: Option<Arc<Pca>>,
    pub(crate) knn: KnnClassifier,
    pub(crate) train_len: usize,
}

impl TrainedLarp {
    /// Runs the full training phase on a raw (unnormalised) training series.
    ///
    /// Steps (paper Figure 3): z-score fit → normalise → frame into windows of
    /// size `m` → label every window with its best predictor (all models run
    /// in parallel) → PCA fit on the windows → index (projected window, label)
    /// pairs in the k-NN classifier.
    ///
    /// # Errors
    ///
    /// * [`LarpError::InvalidConfig`] for an invalid configuration;
    /// * [`LarpError::InsufficientData`] if `train` is too short to produce
    ///   at least `k` labelled windows;
    /// * [`LarpError::Substrate`] for propagated fitting failures.
    pub fn train(train: &[f64], config: &LarpConfig) -> Result<Self> {
        Self::train_with_threads(train, config, default_threads())
    }

    /// [`TrainedLarp::train`] with an explicit labelling thread count
    /// (exposed for the PERF ablation benches).
    ///
    /// # Errors
    ///
    /// Same conditions as [`TrainedLarp::train`].
    pub fn train_with_threads(train: &[f64], config: &LarpConfig, threads: usize) -> Result<Self> {
        config.validate()?;
        let m = config.window;
        // Need enough windows for PCA (>= 2) and for k neighbours.
        let min_windows = config.k.max(2);
        if train.len() < m + min_windows {
            return Err(LarpError::InsufficientData(format!(
                "training series of length {} cannot produce {min_windows} windows of size {m}",
                train.len()
            )));
        }

        let zscore = ZScore::fit(train)?;
        let normalized = zscore.apply_slice(train);

        let pool = PredictorPool::from_specs(&config.pool, &normalized)?;
        // Labels only — the windows themselves are overlapping subslices of
        // `normalized`, so nothing is copied per window until the single flat
        // matrix below. This keeps a steady-state retrain (a few dozen tiny
        // windows, several thousand times a minute at fleet scale) down to a
        // handful of right-sized allocations instead of ~4 per window.
        let labels = label_ids(&pool, &normalized, m, threads)?;
        let n_windows = labels.len();

        // Flat row-major window matrix: (u - m) × m, one copy per window.
        let mut windows = Vec::with_capacity(n_windows * m);
        for i in 0..n_windows {
            windows.extend_from_slice(&normalized[i..i + m]);
        }

        let (pca, points, dim) = match &config.reduction {
            FeatureReduction::None => (None, windows, m),
            reduction => {
                let window_matrix = Matrix::from_vec(n_windows, m, windows)
                    .map_err(|e| LarpError::Substrate(e.to_string()))?;
                let p = match reduction {
                    FeatureReduction::Pca { dims } => Pca::fit(&window_matrix, *dims)?,
                    FeatureReduction::PcaFraction { min_fraction } => {
                        Pca::fit_fraction(&window_matrix, *min_fraction)?
                    }
                    FeatureReduction::None => unreachable!("handled above"),
                };
                let dim = p.n_components();
                let mut features = Vec::with_capacity(n_windows * dim);
                let mut buf = Vec::with_capacity(dim);
                for i in 0..n_windows {
                    p.transform_into(window_matrix.row(i), &mut buf)?;
                    features.extend_from_slice(&buf);
                }
                (Some(Arc::new(p)), features, dim)
            }
        };
        let knn = KnnClassifier::fit_flat(points, dim, labels, config.k, config.backend)?;

        Ok(Self { config: config.clone(), zscore, pool, pca, knn, train_len: train.len() })
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &LarpConfig {
        &self.config
    }

    /// The train-derived normalisation coefficients.
    pub fn zscore(&self) -> &ZScore {
        &self.zscore
    }

    /// The fitted predictor pool.
    pub fn pool(&self) -> &PredictorPool {
        &self.pool
    }

    /// The fitted PCA projection (if reduction is enabled).
    pub fn pca(&self) -> Option<&Pca> {
        self.pca.as_deref()
    }

    /// The shared handle to the PCA basis, for interning and for identity-
    /// based memory accounting (a basis shared by many streams must be
    /// counted once).
    pub fn pca_shared(&self) -> Option<&Arc<Pca>> {
        self.pca.as_ref()
    }

    /// Replaces the PCA basis with an interned shared handle (same bytes,
    /// possibly an existing allocation).
    pub(crate) fn intern_pca(&mut self, interner: &learn::PcaInterner) {
        if let Some(p) = self.pca.take() {
            self.pca = Some(interner.intern(p));
        }
    }

    /// Heap bytes of the model, split as `(pool + knn + config, pca)`. The
    /// PCA share is reported separately because interned bases are shared
    /// across streams and must be deduplicated by the fleet-level accounting.
    pub fn heap_bytes_split(&self) -> (usize, usize) {
        let own = self.pool.heap_bytes()
            + self.knn.heap_bytes()
            + self.config.pool.capacity() * std::mem::size_of::<predictors::ModelSpec>();
        let pca = self.pca.as_deref().map_or(0, Pca::heap_bytes);
        (own, pca)
    }

    /// The labelled k-NN index.
    pub fn knn(&self) -> &KnnClassifier {
        &self.knn
    }

    /// Number of raw training points the model saw.
    pub fn train_len(&self) -> usize {
        self.train_len
    }

    /// Projects a normalised window of size `m` into the classification
    /// feature space.
    ///
    /// # Errors
    ///
    /// Returns [`LarpError::InvalidConfig`] if `window.len()` differs from the
    /// configured `m`.
    pub fn features_for(&self, window: &[f64]) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.features_for_into(window, &mut out)?;
        Ok(out)
    }

    /// [`TrainedLarp::features_for`] writing into a caller-owned buffer
    /// (cleared first) instead of allocating.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TrainedLarp::features_for`].
    pub fn features_for_into(&self, window: &[f64], out: &mut Vec<f64>) -> Result<()> {
        if window.len() != self.config.window {
            return Err(LarpError::InvalidConfig(format!(
                "window length {} does not match configured m = {}",
                window.len(),
                self.config.window
            )));
        }
        match &self.pca {
            Some(p) => p.transform_into(window, out)?,
            None => {
                out.clear();
                out.extend_from_slice(window);
            }
        }
        Ok(())
    }

    /// Testing-phase selection (paper §6.2): forecasts the best predictor for
    /// the *next* value given a normalised history of at least `m` points.
    /// Only the last `m` points (the current window) influence the choice.
    ///
    /// # Errors
    ///
    /// Returns [`LarpError::InsufficientData`] if `history` is shorter than `m`.
    pub fn select(&self, history: &[f64]) -> Result<PredictorId> {
        let m = self.config.window;
        if history.len() < m {
            return Err(LarpError::InsufficientData(format!(
                "selection needs a window of {m} points, got {}",
                history.len()
            )));
        }
        let window = &history[history.len() - m..];
        let features = self.features_for(window)?;
        Ok(PredictorId(self.knn.classify(&features)?))
    }

    /// Ranked testing-phase selection: every pool member ordered from most to
    /// least preferred for the next step.
    ///
    /// The head of the ranking is k-NN's majority vote (ties broken by nearest
    /// neighbour, then lowest id — the same rule as [`TrainedLarp::select`]);
    /// pool members that received no votes follow in id order. The online
    /// serving layer walks this list to find the best *non-quarantined*
    /// predictor when its first choice is unavailable.
    ///
    /// # Errors
    ///
    /// Returns [`LarpError::InsufficientData`] if `history` is shorter than `m`.
    pub fn select_ranked(&self, history: &[f64]) -> Result<Vec<PredictorId>> {
        let mut scratch = Scratch::new();
        self.select_ranked_into(history, &mut scratch)?;
        Ok(scratch.ranked)
    }

    /// [`TrainedLarp::select_ranked`] writing into caller-owned scratch; the
    /// ranking lands in [`Scratch::ranked`]. Allocation-free once the scratch
    /// buffers have reached their steady-state sizes (a pool-sized ranking
    /// sorts with insertion sort, which needs no buffer).
    ///
    /// # Errors
    ///
    /// Same conditions as [`TrainedLarp::select_ranked`].
    pub fn select_ranked_into(&self, history: &[f64], scratch: &mut Scratch) -> Result<()> {
        let Scratch { features, neighbors, votes, nearest, ranked, .. } = scratch;
        self.select_ranked_fields(history, features, neighbors, votes, nearest, ranked)
    }

    /// [`TrainedLarp::select_ranked_into`] over individually borrowed scratch
    /// fields, so a caller that sourced `history` from *another* scratch
    /// buffer (the widened `f32`-ring mirror) can still rank without a
    /// whole-struct borrow conflict.
    pub(crate) fn select_ranked_fields(
        &self,
        history: &[f64],
        features: &mut Vec<f64>,
        neighbors: &mut Vec<(usize, f64)>,
        votes: &mut Vec<usize>,
        nearest: &mut Vec<f64>,
        ranked: &mut Vec<PredictorId>,
    ) -> Result<()> {
        let m = self.config.window;
        if history.len() < m {
            return Err(LarpError::InsufficientData(format!(
                "selection needs a window of {m} points, got {}",
                history.len()
            )));
        }
        let window = &history[history.len() - m..];
        self.features_for_into(window, features)?;
        self.knn.neighbors_into(features, neighbors)?;

        // (votes, nearest distance) per pool member.
        votes.clear();
        votes.resize(self.pool.len(), 0);
        nearest.clear();
        nearest.resize(self.pool.len(), f64::INFINITY);
        for &(label, dist) in neighbors.iter() {
            if label < self.pool.len() {
                votes[label] += 1;
                if dist < nearest[label] {
                    nearest[label] = dist;
                }
            }
        }
        ranked.clear();
        ranked.extend((0..self.pool.len()).map(PredictorId));
        ranked.sort_by(|a, b| {
            votes[b.0]
                .cmp(&votes[a.0])
                .then(nearest[a.0].total_cmp(&nearest[b.0]))
                .then(a.0.cmp(&b.0))
        });
        Ok(())
    }

    /// Runs one specific pool member on a *raw-scale* history: normalises with
    /// the train coefficients, predicts, and de-normalises the forecast.
    /// The serving layer uses this to forecast with a fallback predictor when
    /// the k-NN choice is quarantined.
    ///
    /// # Errors
    ///
    /// * [`LarpError::InvalidConfig`] if `id` is not a pool member;
    /// * [`LarpError::InsufficientData`] if `history` is shorter than `m`.
    pub fn predict_with(&self, id: PredictorId, history: &[f64]) -> Result<f64> {
        if id.0 >= self.pool.len() {
            return Err(LarpError::InvalidConfig(format!(
                "predictor id {} outside pool of {} models",
                id.0,
                self.pool.len()
            )));
        }
        if history.len() < self.config.window {
            return Err(LarpError::InsufficientData(format!(
                "prediction needs a window of {} points, got {}",
                self.config.window,
                history.len()
            )));
        }
        let normalized = self.zscore.apply_slice(history);
        Ok(self.zscore.invert(self.pool.predict_one(id, &normalized)))
    }

    /// [`TrainedLarp::predict_with`] on an already-*normalised* history: runs
    /// one pool member and de-normalises the forecast, without re-normalising
    /// the input. The serving layer feeds this from the normalised history it
    /// maintains incrementally, which turns the per-step cost from
    /// `O(history)` (a full `apply_slice` pass plus its allocation) into the
    /// predictor's own window-sized work.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TrainedLarp::predict_with`].
    pub fn predict_with_normalized(&self, id: PredictorId, normalized: &[f64]) -> Result<f64> {
        if id.0 >= self.pool.len() {
            return Err(LarpError::InvalidConfig(format!(
                "predictor id {} outside pool of {} models",
                id.0,
                self.pool.len()
            )));
        }
        if normalized.len() < self.config.window {
            return Err(LarpError::InsufficientData(format!(
                "prediction needs a window of {} points, got {}",
                self.config.window,
                normalized.len()
            )));
        }
        Ok(self.zscore.invert(self.pool.predict_one(id, normalized)))
    }

    /// Runs one testing-phase step on a *normalised* history: selects the best
    /// predictor and runs only it. Returns `(chosen model, forecast)`.
    ///
    /// # Errors
    ///
    /// Returns [`LarpError::InsufficientData`] if `history` is shorter than `m`.
    pub fn predict_next(&self, history: &[f64]) -> Result<(PredictorId, f64)> {
        let id = self.select(history)?;
        Ok((id, self.pool.predict_one(id, history)))
    }

    /// Runs one step on a *raw-scale* history: normalises with the train
    /// coefficients, predicts, and de-normalises the forecast.
    ///
    /// # Errors
    ///
    /// Returns [`LarpError::InsufficientData`] if `history` is shorter than `m`.
    pub fn predict_next_raw(&self, history: &[f64]) -> Result<(PredictorId, f64)> {
        let normalized = self.zscore.apply_slice(history);
        let (id, z) = self.predict_next(&normalized)?;
        Ok((id, self.zscore.invert(z)))
    }

    /// Iterated multi-step forecasting on a *normalised* history: predicts
    /// `horizon` steps ahead by feeding each one-step forecast back as the
    /// newest observation, re-selecting the best predictor at every step.
    ///
    /// This serves the paper's provisioning use case ("the prediction of the
    /// resource performance of VMs in a given time frame"): a resource
    /// manager planning several intervals ahead. Uncertainty compounds with
    /// the horizon — iterated forecasts converge toward the conditional mean.
    ///
    /// # Errors
    ///
    /// * [`LarpError::InvalidConfig`] if `horizon == 0`;
    /// * [`LarpError::InsufficientData`] if `history` is shorter than `m`.
    pub fn predict_horizon(
        &self,
        history: &[f64],
        horizon: usize,
    ) -> Result<Vec<(PredictorId, f64)>> {
        let mut scratch = Scratch::new();
        let mut out = Vec::with_capacity(horizon);
        self.predict_horizon_into(history, horizon, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// [`TrainedLarp::predict_horizon`] writing the `(chosen model, forecast)`
    /// pairs into a caller-owned `out` (cleared first) and doing all rolling
    /// window and classification work in `scratch` — no per-call allocation
    /// once the buffers are warm.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TrainedLarp::predict_horizon`].
    pub fn predict_horizon_into(
        &self,
        history: &[f64],
        horizon: usize,
        scratch: &mut Scratch,
        out: &mut Vec<(PredictorId, f64)>,
    ) -> Result<()> {
        out.clear();
        if horizon == 0 {
            return Err(LarpError::InvalidConfig("horizon must be >= 1".into()));
        }
        let m = self.config.window;
        if history.len() < m {
            return Err(LarpError::InsufficientData(format!(
                "horizon forecasting needs a window of {m} points, got {}",
                history.len()
            )));
        }
        // Keep only the window the models can see; slide it step by step.
        let Scratch { features, neighbors, rolling, .. } = scratch;
        rolling.clear();
        rolling.extend_from_slice(&history[history.len() - m..]);
        for _ in 0..horizon {
            self.features_for_into(rolling, features)?;
            let id = PredictorId(self.knn.classify_into(features, neighbors)?);
            let forecast = self.pool.predict_one(id, rolling);
            out.push((id, forecast));
            rolling.copy_within(1.., 0);
            let newest = rolling.len() - 1;
            rolling[newest] = forecast;
        }
        Ok(())
    }

    /// [`TrainedLarp::predict_horizon`] on a raw-scale history, returning
    /// raw-scale forecasts.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TrainedLarp::predict_horizon`].
    pub fn predict_horizon_raw(
        &self,
        history: &[f64],
        horizon: usize,
    ) -> Result<Vec<(PredictorId, f64)>> {
        let normalized = self.zscore.apply_slice(history);
        Ok(self
            .predict_horizon(&normalized, horizon)?
            .into_iter()
            .map(|(id, z)| (id, self.zscore.invert(z)))
            .collect())
    }

    /// A fresh [`KnnSelector`] view over this model for use with
    /// [`crate::run_selector`].
    pub fn selector(&self) -> KnnSelector<'_> {
        KnnSelector::new(self)
    }
}

impl std::fmt::Debug for TrainedLarp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainedLarp")
            .field("window", &self.config.window)
            .field("k", &self.config.k)
            .field("pool", &self.pool.names())
            .field("pca_dims", &self.pca.as_ref().map(|p| p.n_components()))
            .field("train_windows", &self.knn.len())
            .finish()
    }
}

/// Labelling thread count: the available parallelism, capped at 8 (labelling
/// is memory-bandwidth-bound beyond that for these tiny windows).
pub(crate) fn default_threads() -> usize {
    // available_parallelism re-reads cgroup quota files on every call on
    // Linux — tens of microseconds, which dwarfed a 40-sample retrain.
    // Parallelism doesn't change under us; resolve it once.
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS
        .get_or_init(|| std::thread::available_parallelism().map(|n| n.get().min(8)).unwrap_or(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regime_series(n: usize) -> Vec<f64> {
        // First half: smooth ramp (LAST-friendly); second half: alternating
        // noise around a level (SW_AVG-friendly).
        (0..n)
            .map(|t| {
                if t < n / 2 {
                    t as f64 * 0.05
                } else {
                    let noise = if t % 2 == 0 { 1.0 } else { -1.0 };
                    n as f64 * 0.025 + noise
                }
            })
            .collect()
    }

    #[test]
    fn trains_on_regime_series() {
        let s = regime_series(400);
        let model = TrainedLarp::train(&s[..200], &LarpConfig::default()).unwrap();
        assert_eq!(model.pool().len(), 3);
        assert_eq!(model.pca().unwrap().n_components(), 2);
        assert_eq!(model.knn().k(), 3);
        assert_eq!(model.train_len(), 200);
    }

    #[test]
    fn select_returns_valid_pool_member() {
        let s = regime_series(400);
        let model = TrainedLarp::train(&s[..200], &LarpConfig::default()).unwrap();
        let norm = model.zscore().apply_slice(&s[200..]);
        for t in 5..norm.len() {
            let id = model.select(&norm[..t]).unwrap();
            assert!(id.0 < 3);
        }
    }

    #[test]
    fn predict_next_runs_only_chosen_model() {
        let s = regime_series(300);
        let model = TrainedLarp::train(&s[..150], &LarpConfig::default()).unwrap();
        let norm = model.zscore().apply_slice(&s[150..]);
        let (id, forecast) = model.predict_next(&norm[..20]).unwrap();
        // The forecast must equal running that model directly.
        assert_eq!(forecast, model.pool().predict_one(id, &norm[..20]));
    }

    #[test]
    fn raw_prediction_round_trips_units() {
        // A series living around 1000 with +-50 swings: raw forecasts must be
        // in that range, not near zero.
        let s: Vec<f64> = (0..300).map(|t| 1000.0 + 50.0 * ((t as f64) * 0.1).sin()).collect();
        let model = TrainedLarp::train(&s[..150], &LarpConfig::default()).unwrap();
        let (_, forecast) = model.predict_next_raw(&s[150..200]).unwrap();
        assert!((900.0..1100.0).contains(&forecast), "{forecast}");
    }

    #[test]
    fn insufficient_history_is_an_error() {
        let s = regime_series(300);
        let model = TrainedLarp::train(&s[..150], &LarpConfig::default()).unwrap();
        assert!(model.select(&[1.0, 2.0]).is_err());
        assert!(model.features_for(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn too_short_training_series_rejected() {
        // 7 points cannot yield the k = 3 windows of size m = 5.
        let s = regime_series(7);
        assert!(matches!(
            TrainedLarp::train(&s, &LarpConfig::default()),
            Err(LarpError::InsufficientData(_))
        ));
        // 8 points pass the window check but starve the AR(5) fit, which
        // needs 2·order points; the failure surfaces as a substrate error.
        let s = regime_series(8);
        assert!(TrainedLarp::train(&s, &LarpConfig::default()).is_err());
    }

    #[test]
    fn reduction_none_classifies_in_window_space() {
        let s = regime_series(300);
        let mut config = LarpConfig::default();
        config.reduction = crate::config::FeatureReduction::None;
        let model = TrainedLarp::train(&s[..150], &config).unwrap();
        assert!(model.pca().is_none());
        assert_eq!(model.knn().dim(), 5);
    }

    #[test]
    fn fraction_reduction_picks_some_dims() {
        let s = regime_series(300);
        let mut config = LarpConfig::default();
        config.reduction = crate::config::FeatureReduction::PcaFraction { min_fraction: 0.9 };
        let model = TrainedLarp::train(&s[..150], &config).unwrap();
        let dims = model.pca().unwrap().n_components();
        assert!((1..=5).contains(&dims));
    }

    #[test]
    fn horizon_forecasts_have_requested_length_and_stay_finite() {
        let s = regime_series(300);
        let model = TrainedLarp::train(&s[..150], &LarpConfig::default()).unwrap();
        let norm = model.zscore().apply_slice(&s[150..]);
        let fs = model.predict_horizon(&norm[..30], 12).unwrap();
        assert_eq!(fs.len(), 12);
        for (id, f) in fs {
            assert!(id.0 < 3);
            assert!(f.is_finite());
        }
    }

    #[test]
    fn horizon_first_step_equals_one_step_prediction() {
        let s = regime_series(300);
        let model = TrainedLarp::train(&s[..150], &LarpConfig::default()).unwrap();
        let norm = model.zscore().apply_slice(&s[150..]);
        let one = model.predict_next(&norm[..40]).unwrap();
        let multi = model.predict_horizon(&norm[..40], 3).unwrap();
        assert_eq!(multi[0], one);
    }

    #[test]
    fn horizon_on_constant_history_stays_constant() {
        // Train on a regime series, then forecast from a flat window: every
        // pool model forecasts the flat value, so the whole horizon is flat.
        let s = regime_series(300);
        let model = TrainedLarp::train(&s[..150], &LarpConfig::default()).unwrap();
        let flat = vec![0.0; 10];
        for (_, f) in model.predict_horizon(&flat, 8).unwrap() {
            assert!(f.abs() < 0.3, "{f}");
        }
    }

    #[test]
    fn horizon_raw_round_trips_units() {
        let s: Vec<f64> = (0..300).map(|t| 500.0 + 20.0 * ((t as f64) * 0.15).sin()).collect();
        let model = TrainedLarp::train(&s[..150], &LarpConfig::default()).unwrap();
        for (_, f) in model.predict_horizon_raw(&s[150..200], 6).unwrap() {
            assert!((420.0..580.0).contains(&f), "{f}");
        }
    }

    #[test]
    fn horizon_validation() {
        let s = regime_series(300);
        let model = TrainedLarp::train(&s[..150], &LarpConfig::default()).unwrap();
        assert!(model.predict_horizon(&s[..40], 0).is_err());
        assert!(model.predict_horizon(&[1.0, 2.0], 3).is_err());
    }

    #[test]
    fn ranked_selection_covers_pool_and_leads_with_select() {
        let s = regime_series(400);
        let model = TrainedLarp::train(&s[..200], &LarpConfig::default()).unwrap();
        let norm = model.zscore().apply_slice(&s[200..]);
        for t in 5..norm.len() {
            let ranked = model.select_ranked(&norm[..t]).unwrap();
            assert_eq!(ranked.len(), model.pool().len());
            let mut ids: Vec<usize> = ranked.iter().map(|id| id.0).collect();
            ids.sort_unstable();
            assert_eq!(ids, vec![0, 1, 2], "ranking must be a permutation");
            assert_eq!(ranked[0], model.select(&norm[..t]).unwrap());
        }
    }

    #[test]
    fn predict_with_matches_direct_pool_run() {
        let s: Vec<f64> = (0..300).map(|t| 1000.0 + 50.0 * ((t as f64) * 0.1).sin()).collect();
        let model = TrainedLarp::train(&s[..150], &LarpConfig::default()).unwrap();
        let history = &s[150..200];
        for id in 0..3 {
            let f = model.predict_with(PredictorId(id), history).unwrap();
            let norm = model.zscore().apply_slice(history);
            let direct = model.zscore().invert(model.pool().predict_one(PredictorId(id), &norm));
            assert_eq!(f, direct);
            assert!((900.0..1100.0).contains(&f), "{f}");
        }
        assert!(model.predict_with(PredictorId(7), history).is_err());
        assert!(model.predict_with(PredictorId(0), &[1.0, 2.0]).is_err());
    }

    #[test]
    fn into_variants_match_allocating_equivalents_bit_for_bit() {
        let s = regime_series(400);
        let model = TrainedLarp::train(&s[..200], &LarpConfig::default()).unwrap();
        let norm = model.zscore().apply_slice(&s[200..]);
        let mut scratch = Scratch::new();
        let mut horizon = Vec::new();
        for t in 5..norm.len() {
            let h = &norm[..t];
            let window = &h[t - 5..];

            let features = model.features_for(window).unwrap();
            model.features_for_into(window, &mut scratch.features).unwrap();
            assert_eq!(scratch.features, features);

            model.select_ranked_into(h, &mut scratch).unwrap();
            assert_eq!(scratch.ranked(), model.select_ranked(h).unwrap());

            model.predict_horizon_into(h, 4, &mut scratch, &mut horizon).unwrap();
            assert_eq!(horizon, model.predict_horizon(h, 4).unwrap());
        }
        // predict_with_normalized must agree with predict_with on the same
        // normalised bytes.
        let raw = &s[200..260];
        let normalized = model.zscore().apply_slice(raw);
        for id in 0..3 {
            let a = model.predict_with(PredictorId(id), raw).unwrap();
            let b = model.predict_with_normalized(PredictorId(id), &normalized).unwrap();
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(model.predict_with_normalized(PredictorId(9), &normalized).is_err());
        assert!(model.predict_with_normalized(PredictorId(0), &normalized[..2]).is_err());
    }

    #[test]
    fn training_is_deterministic() {
        let s = regime_series(400);
        let a = TrainedLarp::train(&s[..200], &LarpConfig::default()).unwrap();
        let b = TrainedLarp::train(&s[..200], &LarpConfig::default()).unwrap();
        let norm = a.zscore().apply_slice(&s[200..]);
        for t in 5..norm.len() {
            assert_eq!(a.select(&norm[..t]).unwrap(), b.select(&norm[..t]).unwrap());
        }
    }
}
