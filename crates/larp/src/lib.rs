//! LARPredictor — the Learning-Aided Adaptive Resource Predictor.
//!
//! This crate is the paper's contribution (Zhang & Figueiredo, IPPS 2007,
//! §5–§6): instead of running a pool of predictors in parallel forever and
//! selecting by cumulative error (the Network Weather Service approach), the
//! LARPredictor *learns* the mapping from workload shape to best predictor:
//!
//! 1. **Training phase** ([`TrainedLarp::train`]): normalise the training
//!    series (z-score), frame it into windows of size `m`, run *all* predictors
//!    on every window, and label each window with the predictor that had the
//!    smallest absolute one-step error. Reduce windows to `n` dimensions with
//!    PCA and index the labelled points with a k-NN classifier.
//! 2. **Testing phase** ([`TrainedLarp::select`] / [`run_selector`]): for each
//!    new window, project it through the same normaliser + PCA, ask the k-NN
//!    classifier which predictor will be best, and run **only that predictor**.
//!
//! The crate also implements every baseline the paper compares against, behind
//! the common [`Selector`] trait:
//!
//! * [`selector::NwsCumMse`] — NWS's run-everything, pick-lowest-cumulative-MSE
//!   forecaster selection;
//! * [`selector::WindowedCumMse`] — the fixed-window variant (paper Fig. 6,
//!   window 2);
//! * [`selector::Static`] — any single predictor run alone;
//! * the **P-LAR oracle** (perfect selector) computed inside
//!   [`eval::observed_best`].
//!
//! [`eval::TraceReport`] bundles the paper's whole §7 protocol: a random
//! contiguous 50/50 split, ten repetitions, and per-selector normalized MSE +
//! best-predictor forecasting accuracy.
//!
//! # Quickstart
//!
//! ```
//! use larp::{LarpConfig, TrainedLarp};
//!
//! // A regime-switching series: smooth ramp, then noisy plateau.
//! let series: Vec<f64> = (0..300)
//!     .map(|t| if t < 150 { t as f64 * 0.1 } else { 15.0 + ((t * 37) % 11) as f64 * 0.3 })
//!     .collect();
//! let (train, test) = series.split_at(150);
//!
//! let config = LarpConfig::default();
//! let model = TrainedLarp::train(train, &config).unwrap();
//! let run = larp::run_selector(&mut model.selector(), &model, test).unwrap();
//! assert!(run.mse.is_finite());
//! ```
#![warn(missing_docs)]

pub mod config;
pub mod diagnose;
pub mod eval;
pub mod ingest;
pub mod labeler;
pub mod model;
pub mod observe;
pub mod online;
pub mod parallel;
pub mod qa;
mod ring;
pub mod selector;
pub mod snapshot;

pub use config::{LarpConfig, ResilienceConfig};
pub use diagnose::{assess, Applicability, Recommendation};
pub use eval::{run_selector, SelectorRun, TraceReport};
pub use ingest::{GapFill, GuardedLarp, IngestConfig, IngestStats, OutlierPolicy, Sanitizer};
pub use model::{Scratch, TrainedLarp};
pub use observe::LarpObs;
pub use online::{
    HealthState, OnlineCounters, OnlineLarp, OnlineStep, RetrainOutcome, RetrainRequest,
    StreamMemReport,
};
pub use qa::QualityAssuror;
pub use selector::Selector;

/// Errors from LARPredictor training and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum LarpError {
    /// The series is too short for the configured window/split.
    InsufficientData(String),
    /// An invalid configuration value.
    InvalidConfig(String),
    /// Propagated failure from a substrate crate.
    Substrate(String),
    /// A malformed or incompatible serialized snapshot.
    Snapshot(String),
}

impl std::fmt::Display for LarpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LarpError::InsufficientData(m) => write!(f, "insufficient data: {m}"),
            LarpError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
            LarpError::Substrate(m) => write!(f, "substrate failure: {m}"),
            LarpError::Snapshot(m) => write!(f, "snapshot failure: {m}"),
        }
    }
}

impl std::error::Error for LarpError {}

impl From<predictors::PredictorError> for LarpError {
    fn from(e: predictors::PredictorError) -> Self {
        LarpError::Substrate(e.to_string())
    }
}

impl From<learn::LearnError> for LarpError {
    fn from(e: learn::LearnError) -> Self {
        LarpError::Substrate(e.to_string())
    }
}

impl From<timeseries::TsError> for LarpError {
    fn from(e: timeseries::TsError) -> Self {
        LarpError::Substrate(e.to_string())
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, LarpError>;
