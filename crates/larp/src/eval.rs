//! The paper's §7 evaluation protocol: selector runs, the P-LAR oracle,
//! per-trace reports and cross-trace aggregates.

use predictors::{PredictorId, PredictorPool};
use simrng::Xoshiro256pp;

use crate::config::LarpConfig;
use crate::model::TrainedLarp;
use crate::selector::{NwsCumMse, Selector, WindowedCumMse};
use crate::{LarpError, Result};

/// The outcome of replaying one selector over a test series.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectorRun {
    /// Selector display name.
    pub name: &'static str,
    /// Chosen predictor per step (steps `m..test.len()`).
    pub chosen: Vec<PredictorId>,
    /// The selector's forecast per step (normalised scale).
    pub forecasts: Vec<f64>,
    /// The observed values per step (normalised scale).
    pub actuals: Vec<f64>,
    /// Normalised mean squared error over the run.
    pub mse: f64,
    /// How many individual model executions the run cost — the paper's
    /// motivation: k-NN selection costs one per step, NWS costs `pool.len()`.
    pub model_executions: usize,
}

/// Replays `selector` over a **raw-scale** test series using `model`'s
/// normaliser and pool: for each step `t` in `m..test.len()`, the selector
/// picks a model from the normalised history `[0, t)`, only that model runs,
/// and the selector then observes the revealed value.
///
/// # Errors
///
/// * [`LarpError::InsufficientData`] if `test.len() <= m` (no step to score);
/// * propagated selector errors.
pub fn run_selector(
    selector: &mut dyn Selector,
    model: &TrainedLarp,
    test: &[f64],
) -> Result<SelectorRun> {
    let norm = model.zscore().apply_slice(test);
    run_selector_normalized(selector, model.pool(), model.config().window, &norm)
}

/// [`run_selector`] over an already-normalised series and an explicit pool —
/// the primitive the report builder uses so the oracle, the NWS baselines and
/// the k-NN selector all score against identical inputs.
///
/// # Errors
///
/// Same conditions as [`run_selector`].
pub fn run_selector_normalized(
    selector: &mut dyn Selector,
    pool: &PredictorPool,
    window: usize,
    norm: &[f64],
) -> Result<SelectorRun> {
    run_selector_scored(selector, pool, window, norm, window)
}

/// [`run_selector_normalized`] that replays the selector over the *whole*
/// series but records (and scores) only steps `t >= score_from`.
///
/// This matches the paper's evaluation: the NWS baseline's cumulative MSE is
/// "of all history", i.e. its error accounting runs from the beginning of the
/// trace — including the portion the LARPredictor used for training — while
/// the reported MSE covers only the test half. Stateless selectors (k-NN,
/// static) produce identical scored output either way.
///
/// # Errors
///
/// * [`LarpError::InsufficientData`] if no scoreable step exists;
/// * propagated selector errors.
pub fn run_selector_scored(
    selector: &mut dyn Selector,
    pool: &PredictorPool,
    window: usize,
    norm: &[f64],
    score_from: usize,
) -> Result<SelectorRun> {
    let start = score_from.max(window);
    if norm.len() <= start {
        return Err(LarpError::InsufficientData(format!(
            "series of length {} has no step beyond {start}",
            norm.len()
        )));
    }
    let steps = norm.len() - start;
    let mut chosen = Vec::with_capacity(steps);
    let mut forecasts = Vec::with_capacity(steps);
    let mut actuals = Vec::with_capacity(steps);
    let mut model_executions = 0usize;
    let per_observe = if selector.runs_full_pool() { pool.len() } else { 0 };

    for t in window..norm.len() {
        let history = &norm[..t];
        if t >= start {
            let id = selector.select(history)?;
            let forecast = pool.predict_one(id, history);
            model_executions += 1 + per_observe;
            chosen.push(id);
            forecasts.push(forecast);
            actuals.push(norm[t]);
        } else if selector.runs_full_pool() {
            model_executions += per_observe;
        }
        selector.observe(history, norm[t]);
    }
    let mse = timeseries::metrics::mse(&forecasts, &actuals)?;
    Ok(SelectorRun { name: selector.name(), chosen, forecasts, actuals, mse, model_executions })
}

/// The observed-best ("oracle") pass: runs the whole pool at every step and
/// records, per step, which model was best and what every model forecast.
///
/// `best` doubles as the ground truth for forecasting accuracy and, with
/// `oracle_mse`, as the paper's **P-LAR** upper bound; `per_model_mse` yields
/// the single-model columns of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct OraclePass {
    /// Observed best model per step (smallest absolute error).
    pub best: Vec<PredictorId>,
    /// Forecast of every pool member per step: `forecasts[step][model]`.
    pub forecasts: Vec<Vec<f64>>,
    /// The observed values per step.
    pub actuals: Vec<f64>,
    /// MSE of the perfect selector (always picks `best`).
    pub oracle_mse: f64,
    /// MSE of each model run alone, in pool order.
    pub per_model_mse: Vec<f64>,
}

/// Runs the oracle pass over a normalised series.
///
/// # Errors
///
/// Returns [`LarpError::InsufficientData`] if `norm.len() <= window`.
pub fn observed_best(pool: &PredictorPool, window: usize, norm: &[f64]) -> Result<OraclePass> {
    observed_best_scored(pool, window, norm, window)
}

/// [`observed_best`] over the whole series, scoring only steps
/// `t >= score_from` — the twin of [`run_selector_scored`].
///
/// # Errors
///
/// Returns [`LarpError::InsufficientData`] if no scoreable step exists.
pub fn observed_best_scored(
    pool: &PredictorPool,
    window: usize,
    norm: &[f64],
    score_from: usize,
) -> Result<OraclePass> {
    let start = score_from.max(window);
    if norm.len() <= start {
        return Err(LarpError::InsufficientData(format!(
            "series of length {} has no step beyond {start}",
            norm.len()
        )));
    }
    let steps = norm.len() - start;
    let mut best = Vec::with_capacity(steps);
    let mut forecasts = Vec::with_capacity(steps);
    let mut actuals = Vec::with_capacity(steps);
    let mut oracle_sq = 0.0;
    let mut model_sq = vec![0.0; pool.len()];

    for t in start..norm.len() {
        let history = &norm[..t];
        let actual = norm[t];
        let (id, all) = pool.best_for(history, actual);
        oracle_sq += (all[id.0] - actual).powi(2);
        for (i, f) in all.iter().enumerate() {
            model_sq[i] += (f - actual).powi(2);
        }
        best.push(id);
        forecasts.push(all);
        actuals.push(actual);
    }
    let n = steps as f64;
    Ok(OraclePass {
        best,
        forecasts,
        actuals,
        oracle_mse: oracle_sq / n,
        per_model_mse: model_sq.into_iter().map(|s| s / n).collect(),
    })
}

/// Fraction of steps where a selector's choice matched the observed best —
/// the paper's "best predictor forecasting accuracy".
///
/// # Errors
///
/// Returns [`LarpError::InvalidConfig`] if the runs have different lengths.
pub fn forecasting_accuracy(run: &SelectorRun, oracle: &OraclePass) -> Result<f64> {
    if run.chosen.len() != oracle.best.len() {
        return Err(LarpError::InvalidConfig(format!(
            "selector run has {} steps, oracle has {}",
            run.chosen.len(),
            oracle.best.len()
        )));
    }
    let hits = run.chosen.iter().zip(&oracle.best).filter(|(a, b)| a == b).count();
    Ok(hits as f64 / run.chosen.len() as f64)
}

/// Per-trace evaluation following the paper's protocol: `folds` random
/// contiguous ~50/50 splits, with every metric averaged across folds.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Trace identifier (e.g. `"VM1/CPU_usedsec"`).
    pub trace: String,
    /// Number of completed folds.
    pub folds: usize,
    /// Mean normalised MSE of the perfect selector (paper "P-LAR").
    pub mse_plar: f64,
    /// Mean normalised MSE of the k-NN LARPredictor (paper "LAR").
    pub mse_lar: f64,
    /// Mean normalised MSE of the NWS cumulative-MSE selector.
    pub mse_nws: f64,
    /// Mean normalised MSE of the windowed (2) cumulative-MSE selector.
    pub mse_wnws: f64,
    /// Pool model names, in pool order.
    pub model_names: Vec<&'static str>,
    /// Mean normalised MSE of each model run alone, in pool order.
    pub mse_models: Vec<f64>,
    /// Mean best-predictor forecasting accuracy of the k-NN selector.
    pub acc_lar: f64,
    /// Mean best-predictor forecasting accuracy of the NWS selector.
    pub acc_nws: f64,
    /// Mean best-predictor forecasting accuracy of the windowed selector.
    pub acc_wnws: f64,
}

impl TraceReport {
    /// Runs the full protocol on one raw trace.
    ///
    /// `folds` random splits are drawn from a deterministic stream seeded by
    /// `seed` (so reports are reproducible); each fold trains a fresh
    /// LARPredictor on the head and scores every selector on the tail.
    ///
    /// # Errors
    ///
    /// * [`LarpError::InsufficientData`] if the trace is too short to yield
    ///   even one valid fold;
    /// * propagated training errors.
    pub fn evaluate(
        trace: impl Into<String>,
        values: &[f64],
        config: &LarpConfig,
        folds: usize,
        seed: u64,
    ) -> Result<Self> {
        config.validate()?;
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        // Both halves must support training (window + k windows) and testing
        // (window + 1 step).
        let min_each = config.window + config.k.max(2) + 1;
        let splits = learn::split::repeated_splits(values.len(), min_each, folds, &mut rng);
        if splits.is_empty() {
            return Err(LarpError::InsufficientData(format!(
                "trace of length {} cannot be split with {min_each} points per side",
                values.len()
            )));
        }

        let mut acc = FoldAccumulator::default();
        let mut model_names: Vec<&'static str> = Vec::new();
        for split in &splits {
            let train = &values[split.train.clone()];
            let split_at = split.test.start;
            let model = TrainedLarp::train(train, config)?;
            // The whole trace is normalised with the *train-derived*
            // coefficients (paper §6.2); selectors replay the full series
            // and are scored on the test half only. This gives the NWS
            // baselines their paper semantics: cumulative MSE "of all
            // history", warmed over the training half.
            let norm = model.zscore().apply_slice(values);
            let window = config.window;
            let pool = model.pool();
            if model_names.is_empty() {
                model_names = pool.names();
            }

            let oracle = observed_best_scored(pool, window, &norm, split_at)?;
            let lar = run_selector_scored(&mut model.selector(), pool, window, &norm, split_at)?;
            let mut nws_sel = NwsCumMse::new(pool);
            let nws = run_selector_scored(&mut nws_sel, pool, window, &norm, split_at)?;
            let mut wnws_sel = WindowedCumMse::new(pool, 2)?;
            let wnws = run_selector_scored(&mut wnws_sel, pool, window, &norm, split_at)?;

            acc.plar += oracle.oracle_mse;
            acc.lar += lar.mse;
            acc.nws += nws.mse;
            acc.wnws += wnws.mse;
            if acc.models.is_empty() {
                acc.models = vec![0.0; oracle.per_model_mse.len()];
            }
            for (a, m) in acc.models.iter_mut().zip(&oracle.per_model_mse) {
                *a += m;
            }
            acc.acc_lar += forecasting_accuracy(&lar, &oracle)?;
            acc.acc_nws += forecasting_accuracy(&nws, &oracle)?;
            acc.acc_wnws += forecasting_accuracy(&wnws, &oracle)?;
        }

        let n = splits.len() as f64;
        Ok(Self {
            trace: trace.into(),
            folds: splits.len(),
            mse_plar: acc.plar / n,
            mse_lar: acc.lar / n,
            mse_nws: acc.nws / n,
            mse_wnws: acc.wnws / n,
            model_names,
            mse_models: acc.models.into_iter().map(|m| m / n).collect(),
            acc_lar: acc.acc_lar / n,
            acc_nws: acc.acc_nws / n,
            acc_wnws: acc.acc_wnws / n,
        })
    }

    /// MSE of the best single model in the pool.
    pub fn best_single_mse(&self) -> f64 {
        self.mse_models.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Name of the best single model (lowest standalone MSE).
    pub fn best_single_name(&self) -> &'static str {
        let (i, _) = self
            .mse_models
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("MSEs are finite"))
            .expect("pool is non-empty");
        self.model_names[i]
    }

    /// Whether the LARPredictor matched or beat the observed best single model
    /// (the condition the paper marks with `*` in Table 3: "equal or higher
    /// prediction accuracy"). Equality is judged at a 0.5% relative
    /// tolerance — the paper reports MSEs at 4-decimal table precision and
    /// counts exact ties (e.g. its NIC1 rows where LAR == AR) as stars.
    pub fn lar_beats_best_single(&self) -> bool {
        self.mse_lar <= self.best_single_mse() * 1.005 + 1e-12
    }

    /// Whether the LARPredictor beat the NWS cumulative-MSE selector.
    pub fn lar_beats_nws(&self) -> bool {
        self.mse_lar < self.mse_nws - 1e-12
    }
}

#[derive(Default)]
struct FoldAccumulator {
    plar: f64,
    lar: f64,
    nws: f64,
    wnws: f64,
    models: Vec<f64>,
    acc_lar: f64,
    acc_nws: f64,
    acc_wnws: f64,
}

/// Cross-trace aggregate of the paper's headline numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// Number of traces aggregated.
    pub traces: usize,
    /// Mean k-NN forecasting accuracy (paper: 55.98%).
    pub mean_acc_lar: f64,
    /// Mean NWS forecasting accuracy (paper: LAR is +20.18 points over this).
    pub mean_acc_nws: f64,
    /// Fraction of traces where LAR ≥ the best single model (paper: 44.23%).
    pub frac_lar_beats_best_single: f64,
    /// Fraction of traces where LAR beats NWS (paper: 66.67%).
    pub frac_lar_beats_nws: f64,
    /// Mean of P-LAR MSE / NWS MSE − 1 (paper: P-LAR is 18.6% lower).
    pub plar_mse_reduction_vs_nws: f64,
    /// Mean of LAR MSE / NWS MSE − 1.
    pub lar_mse_reduction_vs_nws: f64,
}

impl Aggregate {
    /// Aggregates trace reports.
    ///
    /// # Errors
    ///
    /// Returns [`LarpError::InsufficientData`] for an empty report list.
    pub fn from_reports(reports: &[TraceReport]) -> Result<Self> {
        if reports.is_empty() {
            return Err(LarpError::InsufficientData("no trace reports".into()));
        }
        let n = reports.len() as f64;
        let mean = |f: &dyn Fn(&TraceReport) -> f64| reports.iter().map(f).sum::<f64>() / n;
        // Ratio metrics: only over traces where the NWS MSE is nonzero.
        let ratio = |num: &dyn Fn(&TraceReport) -> f64| {
            let mut total = 0.0;
            let mut count = 0usize;
            for r in reports {
                if r.mse_nws > 1e-12 {
                    total += num(r) / r.mse_nws - 1.0;
                    count += 1;
                }
            }
            if count == 0 {
                0.0
            } else {
                total / count as f64
            }
        };
        Ok(Self {
            traces: reports.len(),
            mean_acc_lar: mean(&|r| r.acc_lar),
            mean_acc_nws: mean(&|r| r.acc_nws),
            frac_lar_beats_best_single: reports.iter().filter(|r| r.lar_beats_best_single()).count()
                as f64
                / n,
            frac_lar_beats_nws: reports.iter().filter(|r| r.lar_beats_nws()).count() as f64 / n,
            plar_mse_reduction_vs_nws: ratio(&|r| r.mse_plar),
            lar_mse_reduction_vs_nws: ratio(&|r| r.mse_lar),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LarpConfig;
    use crate::selector::Static;

    /// A regime-switching trace: ramps alternate with noisy plateaus, so the
    /// best predictor changes over time.
    fn regime_trace(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| {
                let phase = (t / 60) % 2;
                if phase == 0 {
                    (t % 60) as f64 * 0.1
                } else {
                    3.0 + if t % 2 == 0 { 1.0 } else { -1.0 }
                }
            })
            .collect()
    }

    #[test]
    fn oracle_is_lower_bound_for_every_selector() {
        let values = regime_trace(400);
        let config = LarpConfig::default();
        let model = TrainedLarp::train(&values[..200], &config).unwrap();
        let norm = model.zscore().apply_slice(&values[200..]);
        let pool = model.pool();
        let oracle = observed_best(pool, 5, &norm).unwrap();
        let lar = run_selector_normalized(&mut model.selector(), pool, 5, &norm).unwrap();
        let mut nws = NwsCumMse::new(pool);
        let nws_run = run_selector_normalized(&mut nws, pool, 5, &norm).unwrap();
        assert!(oracle.oracle_mse <= lar.mse + 1e-12);
        assert!(oracle.oracle_mse <= nws_run.mse + 1e-12);
        for m in &oracle.per_model_mse {
            assert!(oracle.oracle_mse <= m + 1e-12);
        }
    }

    #[test]
    fn static_selector_run_equals_per_model_mse() {
        let values = regime_trace(300);
        let config = LarpConfig::default();
        let model = TrainedLarp::train(&values[..150], &config).unwrap();
        let norm = model.zscore().apply_slice(&values[150..]);
        let pool = model.pool();
        let oracle = observed_best(pool, 5, &norm).unwrap();
        for id in pool.ids() {
            let mut s = Static::new(id, pool.name(id));
            let run = run_selector_normalized(&mut s, pool, 5, &norm).unwrap();
            assert!((run.mse - oracle.per_model_mse[id.0]).abs() < 1e-12);
        }
    }

    #[test]
    fn knn_selector_is_cheaper_than_nws() {
        let values = regime_trace(300);
        let config = LarpConfig::default();
        let model = TrainedLarp::train(&values[..150], &config).unwrap();
        let norm = model.zscore().apply_slice(&values[150..]);
        let pool = model.pool();
        let lar = run_selector_normalized(&mut model.selector(), pool, 5, &norm).unwrap();
        let mut nws = NwsCumMse::new(pool);
        let nws_run = run_selector_normalized(&mut nws, pool, 5, &norm).unwrap();
        // LAR: 1 execution per step. NWS: 1 + pool.len() per step.
        assert_eq!(lar.model_executions * (1 + pool.len()), nws_run.model_executions);
    }

    #[test]
    fn forecasting_accuracy_bounds() {
        let values = regime_trace(300);
        let config = LarpConfig::default();
        let model = TrainedLarp::train(&values[..150], &config).unwrap();
        let norm = model.zscore().apply_slice(&values[150..]);
        let pool = model.pool();
        let oracle = observed_best(pool, 5, &norm).unwrap();
        let lar = run_selector_normalized(&mut model.selector(), pool, 5, &norm).unwrap();
        let acc = forecasting_accuracy(&lar, &oracle).unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn trace_report_runs_ten_folds() {
        let values = regime_trace(400);
        let report =
            TraceReport::evaluate("synthetic", &values, &LarpConfig::default(), 10, 42).unwrap();
        assert_eq!(report.folds, 10);
        assert_eq!(report.model_names, vec!["LAST", "AR", "SW_AVG"]);
        assert!(report.mse_plar <= report.mse_lar + 1e-12);
        assert!(report.mse_plar <= report.best_single_mse() + 1e-12);
        assert!((0.0..=1.0).contains(&report.acc_lar));
    }

    #[test]
    fn trace_report_is_deterministic_per_seed() {
        let values = regime_trace(400);
        let a = TraceReport::evaluate("s", &values, &LarpConfig::default(), 5, 7).unwrap();
        let b = TraceReport::evaluate("s", &values, &LarpConfig::default(), 5, 7).unwrap();
        assert_eq!(a, b);
        let c = TraceReport::evaluate("s", &values, &LarpConfig::default(), 5, 8).unwrap();
        assert!(a.mse_lar != c.mse_lar || a.mse_nws != c.mse_nws || a.folds == c.folds);
    }

    #[test]
    fn trace_report_too_short_errors() {
        let values = regime_trace(12);
        assert!(matches!(
            TraceReport::evaluate("tiny", &values, &LarpConfig::default(), 10, 1),
            Err(LarpError::InsufficientData(_))
        ));
    }

    #[test]
    fn lar_adapts_better_than_any_single_model_on_regime_switches() {
        // The trace alternates LAST-friendly ramps and SW_AVG-friendly noise;
        // a selector that adapts should beat at least one of the static
        // models, and the oracle should beat everything by a margin.
        let values = regime_trace(600);
        let report =
            TraceReport::evaluate("regime", &values, &LarpConfig::default(), 5, 3).unwrap();
        assert!(report.mse_plar < report.best_single_mse() * 0.95);
        // LAR is better than the *worst* single model by a wide margin.
        let worst = report.mse_models.iter().copied().fold(0.0f64, f64::max);
        assert!(report.mse_lar < worst);
    }

    #[test]
    fn aggregate_counts_wins() {
        let values = regime_trace(400);
        let r1 = TraceReport::evaluate("a", &values, &LarpConfig::default(), 3, 1).unwrap();
        let r2 = TraceReport::evaluate("b", &values, &LarpConfig::default(), 3, 2).unwrap();
        let agg = Aggregate::from_reports(&[r1.clone(), r2.clone()]).unwrap();
        assert_eq!(agg.traces, 2);
        let expect_frac =
            [r1.lar_beats_nws(), r2.lar_beats_nws()].iter().filter(|&&b| b).count() as f64 / 2.0;
        assert!((agg.frac_lar_beats_nws - expect_frac).abs() < 1e-12);
        assert!(Aggregate::from_reports(&[]).is_err());
    }
}
