//! Training-phase labelling: the parallel mix-of-experts step.
//!
//! For every training window the full pool runs and the model with the
//! smallest absolute one-step error becomes the window's class label (paper
//! §6.1/§7.2.1). This is the only place the LARPredictor ever runs all
//! predictors — and it is embarrassingly parallel across windows, so
//! [`label_windows_parallel`] splits the window range over `std::thread`
//! scoped threads. A sequential twin exists both as the small-input fast path
//! and as the reference the tests and the PERF bench compare against.

use predictors::{PredictorId, PredictorPool};
use timeseries::Frames;

use crate::{LarpError, Result};

/// One labelled training window.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledWindow {
    /// Index of the window within the framed training series.
    pub index: usize,
    /// The window itself (length `m`), copied out of the training buffer.
    pub window: Vec<f64>,
    /// Class label: the pool member with the smallest absolute error.
    pub label: PredictorId,
    /// The target value the window was scored against.
    pub target: f64,
}

/// Labels every `(window, next-value)` pair of `train` sequentially.
///
/// # Errors
///
/// Returns [`LarpError::InsufficientData`] if `train` yields no
/// (window, target) pair (`train.len() <= window`), or if the pool needs more
/// history than one window provides.
pub fn label_windows(
    pool: &PredictorPool,
    train: &[f64],
    window: usize,
) -> Result<Vec<LabeledWindow>> {
    let frames = prepare(pool, train, window)?;
    Ok(frames
        .with_targets()
        .enumerate()
        .map(|(index, (w, target))| {
            let (label, _) = pool.best_for(w, target);
            LabeledWindow { index, window: w.to_vec(), label, target }
        })
        .collect())
}

/// Labels every `(window, next-value)` pair of `train`, fanning the window
/// range out over `threads` scoped worker threads. Produces exactly the same
/// labels as [`label_windows`] in the same order.
///
/// # Errors
///
/// * [`LarpError::InvalidConfig`] if `threads == 0`;
/// * the same data conditions as [`label_windows`].
pub fn label_windows_parallel(
    pool: &PredictorPool,
    train: &[f64],
    window: usize,
    threads: usize,
) -> Result<Vec<LabeledWindow>> {
    if threads == 0 {
        return Err(LarpError::InvalidConfig("threads must be >= 1".into()));
    }
    let frames = prepare(pool, train, window)?;
    let total = frames.count_with_targets();
    // Spawning a thread costs far more than labelling a few dozen tiny
    // windows: the online serving path retrains on ~40-sample tails, and
    // fanning those out ate the entire retrain budget in thread setup. Only
    // go wide when there is real work to split.
    if threads == 1 || total < 256 {
        return label_windows(pool, train, window);
    }
    let chunk = total.div_ceil(threads);
    let ranges: Vec<(usize, usize)> = (0..threads)
        .map(|t| (t * chunk, ((t + 1) * chunk).min(total)))
        .filter(|(s, e)| s < e)
        .collect();

    let results = std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(start, end)| {
                let frames = &frames;
                s.spawn(move || {
                    (start..end)
                        .map(|index| {
                            let w = frames.get(index);
                            let target = train[index + window];
                            let (label, _) = pool.best_for(w, target);
                            LabeledWindow { index, window: w.to_vec(), label, target }
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("labeler worker panicked"))
            .collect::<Vec<Vec<_>>>()
    });

    Ok(results.into_iter().flatten().collect())
}

/// Labels every `(window, next-value)` pair of `train` returning the class
/// indices only — no window copies, no per-window forecast vectors. Produces
/// exactly `label_windows_parallel(..).iter().map(|lw| lw.label.0)` (a test
/// pins this), but the only allocation is the returned label vector itself,
/// which the k-NN fit consumes. This is the path the online retrain loop
/// takes several thousand times per minute.
///
/// # Errors
///
/// Same conditions as [`label_windows_parallel`].
pub fn label_ids(
    pool: &PredictorPool,
    train: &[f64],
    window: usize,
    threads: usize,
) -> Result<Vec<usize>> {
    if threads == 0 {
        return Err(LarpError::InvalidConfig("threads must be >= 1".into()));
    }
    let frames = prepare(pool, train, window)?;
    let total = frames.count_with_targets();
    if threads == 1 || total < 256 {
        return Ok((0..total)
            .map(|index| pool.best_id(frames.get(index), train[index + window]).0)
            .collect());
    }
    let chunk = total.div_ceil(threads);
    let ranges: Vec<(usize, usize)> = (0..threads)
        .map(|t| (t * chunk, ((t + 1) * chunk).min(total)))
        .filter(|(s, e)| s < e)
        .collect();
    let results = std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(start, end)| {
                let frames = &frames;
                s.spawn(move || {
                    (start..end)
                        .map(|index| pool.best_id(frames.get(index), train[index + window]).0)
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("labeler worker panicked"))
            .collect::<Vec<Vec<_>>>()
    });
    Ok(results.into_iter().flatten().collect())
}

fn prepare<'a>(pool: &PredictorPool, train: &'a [f64], window: usize) -> Result<Frames<'a>> {
    if window < pool.min_history() {
        return Err(LarpError::InvalidConfig(format!(
            "window {window} is smaller than the pool's minimum history {}",
            pool.min_history()
        )));
    }
    let frames =
        Frames::new(train, window).map_err(|e| LarpError::InsufficientData(e.to_string()))?;
    if frames.count_with_targets() == 0 {
        return Err(LarpError::InsufficientData(format!(
            "training series of length {} yields no (window, target) pair for window {window}",
            train.len()
        )));
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.31).sin() * 3.0 + (i % 7) as f64 * 0.1).collect()
    }

    fn pool(train: &[f64], m: usize) -> PredictorPool {
        PredictorPool::standard(train, m).unwrap()
    }

    #[test]
    fn labels_cover_all_window_target_pairs() {
        let t = series(100);
        let p = pool(&t, 5);
        let labels = label_windows(&p, &t, 5).unwrap();
        assert_eq!(labels.len(), 95); // u - m
        for (i, lw) in labels.iter().enumerate() {
            assert_eq!(lw.index, i);
            assert_eq!(lw.window.len(), 5);
            assert!(lw.label.0 < p.len());
        }
    }

    #[test]
    fn label_is_argmin_absolute_error() {
        let t = series(60);
        let p = pool(&t, 5);
        for lw in label_windows(&p, &t, 5).unwrap() {
            let forecasts = p.predict_all(&lw.window);
            let best_err = (forecasts[lw.label.0] - lw.target).abs();
            for f in &forecasts {
                assert!(best_err <= (f - lw.target).abs() + 1e-15);
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_for_all_thread_counts() {
        let t = series(300);
        let p = pool(&t, 5);
        let seq = label_windows(&p, &t, 5).unwrap();
        for threads in [1, 2, 3, 4, 7] {
            let par = label_windows_parallel(&p, &t, 5, threads).unwrap();
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn label_ids_matches_labeled_windows_in_both_regimes() {
        // Small series takes the sequential path; 300 windows with 4 threads
        // takes the parallel fan-out. Both must agree with the window-copying
        // reference exactly.
        for (n, threads) in [(100, 1), (100, 4), (300, 1), (300, 4)] {
            let t = series(n);
            let p = pool(&t, 5);
            let reference: Vec<usize> =
                label_windows(&p, &t, 5).unwrap().iter().map(|lw| lw.label.0).collect();
            assert_eq!(
                label_ids(&p, &t, 5, threads).unwrap(),
                reference,
                "n={n} threads={threads}"
            );
        }
    }

    #[test]
    fn smooth_series_favors_last_peaky_series_mixes() {
        // A pure slow ramp: LAST (and AR) should dominate over SW_AVG,
        // which lags behind.
        let smooth: Vec<f64> = (0..100).map(|i| i as f64 * 0.01).collect();
        let p = pool(&smooth, 5);
        let labels = label_windows(&p, &smooth, 5).unwrap();
        let sw_share =
            labels.iter().filter(|l| l.label.0 == 2).count() as f64 / labels.len() as f64;
        assert!(sw_share < 0.2, "SW_AVG share {sw_share}");
    }

    #[test]
    fn validation_errors() {
        let t = series(50);
        let p = pool(&t, 5);
        // Window below the pool's min_history (AR needs 5).
        assert!(matches!(label_windows(&p, &t, 3), Err(LarpError::InvalidConfig(_))));
        // Series exactly window-long: one frame, no target.
        let tiny = series(5);
        assert!(matches!(label_windows(&p, &tiny, 5), Err(LarpError::InsufficientData(_))));
        assert!(matches!(label_windows_parallel(&p, &t, 5, 0), Err(LarpError::InvalidConfig(_))));
    }
}
