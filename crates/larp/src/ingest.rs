//! Ingestion sanitization in front of [`OnlineLarp`].
//!
//! Monitor streams arrive dirty: samples are dropped or duplicated, sensors
//! wedge, collectors emit NaN or out-of-band sentinel constants, and transport
//! glitches produce spike outliers (the fault model `vmsim::faults`
//! reproduces). [`Sanitizer`] repairs a `(minute, value)` stream into the
//! dense, finite per-minute series the online predictor expects:
//!
//! * **duplicates / reordering** — a reading at or before the last accepted
//!   minute is dropped;
//! * **gaps** — missing minutes are filled (up to a cap) by holding the last
//!   value or linearly interpolating toward the new one;
//! * **NaN and sentinels** — replaced with the last accepted value;
//! * **spike outliers** — clamped to a robust envelope (median ±
//!   `threshold · 1.4826 · MAD` over a recent window);
//! * **stuck sensors** — runs of byte-identical values beyond a threshold are
//!   counted for observability (the values themselves are plausible, so they
//!   pass through).
//!
//! [`GuardedLarp`] bundles a sanitizer with an [`OnlineLarp`] for one-call
//! serving of faulted streams.

use std::collections::VecDeque;

use timeseries::stats;

use crate::config::LarpConfig;
use crate::model::Scratch;
use crate::online::{OnlineLarp, OnlineStep};
use crate::qa::QualityAssuror;
use crate::{LarpError, Result};

/// How missing minutes inside a gap are reconstructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GapFill {
    /// Repeat the last accepted value across the gap.
    HoldLast,
    /// Linearly interpolate from the last accepted value to the new reading.
    Interpolate,
}

/// Outlier handling policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OutlierPolicy {
    /// Pass everything through (outliers reach the predictor).
    None,
    /// Clamp values outside `median ± threshold · 1.4826 · MAD` of the recent
    /// window to that envelope's edge.
    MadClamp {
        /// Envelope half-width in robust standard deviations (typical: 6–10).
        threshold: f64,
    },
}

/// Sanitizer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestConfig {
    /// Gap reconstruction policy.
    pub gap_fill: GapFill,
    /// Longest gap (in samples) that is filled; longer gaps are truncated to
    /// this many fill samples (the stream stays dense but the series skips
    /// ahead — better than fabricating hours of data after an outage).
    pub max_gap_fill: usize,
    /// Outlier handling.
    pub outlier: OutlierPolicy,
    /// Recent-window length for the robust (median/MAD) statistics.
    pub robust_window: usize,
    /// Exact out-of-band constants treated as failed reads (e.g. `-1.0`).
    pub sentinel_values: Vec<f64>,
    /// Runs of identical values at or beyond this length are counted as stuck
    /// sensors (`0` disables the detector).
    pub stuck_run_threshold: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            gap_fill: GapFill::Interpolate,
            max_gap_fill: 10,
            outlier: OutlierPolicy::MadClamp { threshold: 8.0 },
            robust_window: 32,
            sentinel_values: vec![-1.0],
            stuck_run_threshold: 10,
        }
    }
}

impl IngestConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`LarpError::InvalidConfig`] for a zero robust window, a
    /// non-positive/non-finite clamp threshold, or a non-finite sentinel.
    pub fn validate(&self) -> Result<()> {
        if self.robust_window < 4 {
            return Err(LarpError::InvalidConfig(
                "robust_window must be >= 4 for meaningful median/MAD".into(),
            ));
        }
        if let OutlierPolicy::MadClamp { threshold } = self.outlier {
            if !(threshold.is_finite() && threshold > 0.0) {
                return Err(LarpError::InvalidConfig(format!(
                    "MAD clamp threshold must be positive, got {threshold}"
                )));
            }
        }
        if self.sentinel_values.iter().any(|s| !s.is_finite()) {
            return Err(LarpError::InvalidConfig(
                "sentinel values must be finite (NaN is always repaired)".into(),
            ));
        }
        Ok(())
    }
}

/// Counters of repairs performed, for observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Raw readings received.
    pub received: usize,
    /// Clean samples emitted (gap fills included).
    pub emitted: usize,
    /// Readings dropped as duplicates or time reversals.
    pub duplicates_dropped: usize,
    /// Missing samples reconstructed inside gaps.
    pub gap_samples_filled: usize,
    /// Missing samples beyond `max_gap_fill` that were skipped, not filled.
    pub gap_samples_skipped: usize,
    /// Non-finite values replaced.
    pub nonfinite_replaced: usize,
    /// Sentinel values replaced.
    pub sentinels_replaced: usize,
    /// Values clamped by the outlier envelope.
    pub outliers_clamped: usize,
    /// Stuck-sensor runs detected (length ≥ threshold).
    pub stuck_runs: usize,
}

impl IngestStats {
    /// Total faults repaired (drops, fills, replacements, clamps).
    pub fn faults_sanitized(&self) -> usize {
        self.duplicates_dropped
            + self.gap_samples_filled
            + self.nonfinite_replaced
            + self.sentinels_replaced
            + self.outliers_clamped
    }
}

/// A streaming `(minute, value)` repair stage in front of [`OnlineLarp`].
#[derive(Debug)]
pub struct Sanitizer {
    pub(crate) config: IngestConfig,
    /// Minute of the last accepted sample.
    pub(crate) last_minute: Option<u64>,
    /// Value of the last emitted sample.
    pub(crate) last_value: Option<f64>,
    /// Raw (pre-repair) value of the last accepted reading, for stuck-sensor
    /// detection — repairs must not mask a wedged sensor.
    pub(crate) last_raw: Option<f64>,
    /// Recent emitted values, for the robust envelope.
    pub(crate) recent: VecDeque<f64>,
    /// Length of the current identical-value run.
    pub(crate) stuck_len: usize,
    /// Whether the current run has already been counted.
    pub(crate) stuck_counted: bool,
    pub(crate) stats: IngestStats,
    /// Sorted mirror of `recent`, maintained incrementally (binary-search
    /// insert/remove per sample — far cheaper than re-sorting the window for
    /// every median). Runtime-only, never snapshotted; rebuilt on restore.
    /// Kept empty when the outlier policy never reads it.
    pub(crate) robust_scratch: Vec<f64>,
    /// Absolute-deviation buffer for the MAD (runtime-only scratch).
    pub(crate) dev_scratch: Vec<f64>,
}

impl Sanitizer {
    /// Creates a sanitizer from a validated config.
    ///
    /// # Errors
    ///
    /// Returns [`LarpError::InvalidConfig`] if the config is invalid.
    pub fn new(config: IngestConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            recent: VecDeque::with_capacity(config.robust_window),
            config,
            last_minute: None,
            last_value: None,
            last_raw: None,
            stuck_len: 0,
            stuck_counted: false,
            stats: IngestStats::default(),
            robust_scratch: Vec::new(),
            dev_scratch: Vec::new(),
        })
    }

    /// Ingests one raw reading; returns the clean values to feed downstream,
    /// in time order (empty for a dropped duplicate, more than one when a gap
    /// is filled). Every returned value is finite.
    pub fn ingest(&mut self, minute: u64, value: f64) -> Vec<f64> {
        let mut out = Vec::new();
        self.ingest_into(minute, value, &mut out);
        out
    }

    /// [`Sanitizer::ingest`] writing the clean values into a caller-owned
    /// buffer (cleared first) instead of allocating a fresh `Vec` per
    /// reading.
    pub fn ingest_into(&mut self, minute: u64, value: f64, out: &mut Vec<f64>) {
        out.clear();
        self.stats.received += 1;

        // Duplicates and time reversals are transport artifacts: drop them.
        if let Some(last) = self.last_minute {
            if minute <= last {
                self.stats.duplicates_dropped += 1;
                return;
            }
        }

        let repaired = self.repair_value(value);
        let Some(repaired) = repaired else {
            // Nothing plausible to emit yet (first reading was unusable);
            // wait for a real value but advance time so a later reading at
            // this minute counts as a duplicate.
            self.last_minute = Some(minute);
            return;
        };

        if let (Some(last_minute), Some(last_value)) = (self.last_minute, self.last_value) {
            let missing = (minute - last_minute).saturating_sub(1) as usize;
            if missing > 0 {
                let fill = missing.min(self.config.max_gap_fill);
                self.stats.gap_samples_skipped += missing - fill;
                for i in 1..=fill {
                    let filled = match self.config.gap_fill {
                        GapFill::HoldLast => last_value,
                        GapFill::Interpolate => {
                            let frac = i as f64 / (fill + 1) as f64;
                            last_value + (repaired - last_value) * frac
                        }
                    };
                    self.stats.gap_samples_filled += 1;
                    out.push(filled);
                }
            }
        }
        out.push(repaired);

        self.track_stuck(value);
        self.last_minute = Some(minute);
        self.last_value = Some(repaired);
        self.last_raw = Some(value);
        let keep_mirror = matches!(self.config.outlier, OutlierPolicy::MadClamp { .. });
        for &v in out.iter() {
            self.recent.push_back(v);
            if keep_mirror {
                let at = self.robust_scratch.partition_point(|&x| x.total_cmp(&v).is_lt());
                self.robust_scratch.insert(at, v);
            }
            if self.recent.len() > self.config.robust_window {
                let evicted = self.recent.pop_front().expect("len > window >= 4");
                if keep_mirror {
                    let at =
                        self.robust_scratch.partition_point(|&x| x.total_cmp(&evicted).is_lt());
                    debug_assert!(self.robust_scratch[at].to_bits() == evicted.to_bits());
                    self.robust_scratch.remove(at);
                }
            }
        }
        self.stats.emitted += out.len();
    }

    /// Rebuilds the sorted mirror of `recent` after a snapshot restore (the
    /// mirror is runtime-only state and is never serialized).
    pub(crate) fn rebuild_robust_mirror(&mut self) {
        self.robust_scratch.clear();
        if matches!(self.config.outlier, OutlierPolicy::MadClamp { .. }) {
            self.robust_scratch.extend(self.recent.iter().copied());
            self.robust_scratch.sort_unstable_by(f64::total_cmp);
        }
    }

    /// Repairs one value: NaN/sentinel replacement, then outlier clamping.
    /// Returns `None` when the value is unusable and no replacement exists.
    fn repair_value(&mut self, value: f64) -> Option<f64> {
        let is_sentinel = self.config.sentinel_values.contains(&value);
        if !value.is_finite() || is_sentinel {
            if is_sentinel && value.is_finite() {
                self.stats.sentinels_replaced += 1;
            } else {
                self.stats.nonfinite_replaced += 1;
            }
            return self.last_value;
        }
        Some(self.clamp_outlier(value))
    }

    /// Clamps `value` to the robust envelope of the recent window.
    fn clamp_outlier(&mut self, value: f64) -> f64 {
        let OutlierPolicy::MadClamp { threshold } = self.config.outlier else {
            return value;
        };
        // Need a reasonably full window before the envelope means anything.
        if self.recent.len() < self.config.robust_window / 2 {
            return value;
        }
        // `robust_scratch` is a sorted mirror of the window, so the median is
        // a direct read; a median is invariant to input order, so the mirror
        // gives bit-identical answers to re-sorting the window each time. The
        // MAD goes through an O(n) selection rather than a sort — also
        // order-invariant, also bit-identical (see `stats::quantile_select`).
        debug_assert_eq!(self.robust_scratch.len(), self.recent.len());
        let Ok(med) = stats::quantile_sorted(&self.robust_scratch, 0.5) else {
            return value;
        };
        self.dev_scratch.clear();
        self.dev_scratch.extend(self.robust_scratch.iter().map(|x| (x - med).abs()));
        let Ok(mad) = stats::quantile_select(&mut self.dev_scratch, 0.5) else {
            return value;
        };
        // 1.4826 · MAD estimates sigma for Gaussian data; the floor keeps a
        // perfectly flat window (MAD = 0) from clamping every legitimate
        // level shift to the median — a few percent of the level always
        // passes.
        let scale = (1.4826 * mad).max(1e-2 * med.abs().max(1.0));
        let lo = med - threshold * scale;
        let hi = med + threshold * scale;
        if value < lo || value > hi {
            self.stats.outliers_clamped += 1;
            value.clamp(lo, hi)
        } else {
            value
        }
    }

    /// Counts runs of identical raw values (stuck sensor signature).
    fn track_stuck(&mut self, raw: f64) {
        if self.config.stuck_run_threshold == 0 {
            return;
        }
        if self.last_raw == Some(raw) {
            self.stuck_len += 1;
            if self.stuck_len + 1 >= self.config.stuck_run_threshold && !self.stuck_counted {
                self.stats.stuck_runs += 1;
                self.stuck_counted = true;
            }
        } else {
            self.stuck_len = 0;
            self.stuck_counted = false;
        }
    }

    /// Heap bytes held by the sanitizer's window, mirror, and config, for
    /// memory accounting.
    pub fn heap_bytes(&self) -> usize {
        (self.recent.capacity()
            + self.robust_scratch.capacity()
            + self.dev_scratch.capacity()
            + self.config.sentinel_values.capacity())
            * std::mem::size_of::<f64>()
    }

    /// Repair counters so far.
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    /// The configuration in force.
    pub fn config(&self) -> &IngestConfig {
        &self.config
    }
}

/// An [`OnlineLarp`] behind a [`Sanitizer`]: the one-call serving stack for
/// faulted `(minute, value)` monitor streams.
pub struct GuardedLarp {
    pub(crate) sanitizer: Sanitizer,
    pub(crate) online: OnlineLarp,
}

impl GuardedLarp {
    /// Creates the guarded stack.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from either layer.
    pub fn new(
        ingest: IngestConfig,
        config: LarpConfig,
        train_size: usize,
        qa: QualityAssuror,
    ) -> Result<Self> {
        Ok(Self {
            sanitizer: Sanitizer::new(ingest)?,
            online: OnlineLarp::new(config, train_size, qa)?,
        })
    }

    /// Wraps an existing [`OnlineLarp`] (e.g. one built with
    /// [`OnlineLarp::with_resilience`]).
    ///
    /// # Errors
    ///
    /// Returns [`LarpError::InvalidConfig`] if the ingest config is invalid.
    pub fn from_parts(ingest: IngestConfig, online: OnlineLarp) -> Result<Self> {
        Ok(Self { sanitizer: Sanitizer::new(ingest)?, online })
    }

    /// Attaches a registry-backed recorder to the stack (see
    /// [`OnlineLarp::attach_obs`]). Sanitizer repairs are recorded as
    /// `larp_faults_sanitized_total` deltas per ingested reading.
    pub fn attach_obs(&mut self, obs: crate::observe::LarpObs) {
        self.online.attach_obs(obs);
    }

    /// Ingests one raw reading; returns one [`OnlineStep`] per clean sample
    /// that reached the predictor (empty for dropped readings).
    pub fn ingest(&mut self, minute: u64, value: f64) -> Vec<OnlineStep> {
        // Reuse the online layer's internal scratch (moved out and back — a
        // pointer swap) so only the returned Vec allocates.
        let mut scratch = std::mem::take(&mut self.online.scratch);
        let mut out = Vec::new();
        self.ingest_into(minute, value, &mut scratch, &mut out);
        self.online.scratch = scratch;
        out
    }

    /// [`GuardedLarp::ingest`] with caller-owned buffers: the steps land in
    /// `out` (cleared first) and all sanitizer/predictor work runs in
    /// `scratch`. The fleet serving layer keeps one scratch and one step
    /// buffer per shard worker, making its steady-state feed allocation-free.
    pub fn ingest_into(
        &mut self,
        minute: u64,
        value: f64,
        scratch: &mut Scratch,
        out: &mut Vec<OnlineStep>,
    ) {
        out.clear();
        let before = self.sanitizer.stats.faults_sanitized();
        // The clean buffer moves out of the scratch so the rest of the
        // scratch can be lent to the per-value push below.
        let mut clean = std::mem::take(&mut scratch.clean);
        self.sanitizer.ingest_into(minute, value, &mut clean);
        let repairs = self.sanitizer.stats.faults_sanitized() - before;
        if repairs > 0 {
            if let Some(obs) = self.online.obs() {
                obs.record_sanitized(repairs as u64);
            }
        }
        for &v in &clean {
            out.push(self.online.push_with(v, scratch));
        }
        scratch.clean = clean;
    }

    /// Attaches a shared PCA interner to the online layer (see
    /// [`OnlineLarp::attach_interner`]).
    pub fn attach_interner(&mut self, interner: std::sync::Arc<learn::PcaInterner>) {
        self.online.attach_interner(interner);
    }

    /// The shared handle to the online layer's PCA basis, if any (see
    /// [`OnlineLarp::pca_shared`]).
    pub fn pca_shared(&self) -> Option<&std::sync::Arc<learn::Pca>> {
        self.online.pca_shared()
    }

    /// Measures the resident heap bytes of the whole guarded stack, by
    /// component (the sanitizer lands in
    /// [`crate::StreamMemReport::sanitizer_bytes`]).
    pub fn mem_report(&self) -> crate::StreamMemReport {
        let mut report = self.online.mem_report();
        report.sanitizer_bytes = self.sanitizer.heap_bytes();
        report
    }

    /// The sanitizer layer.
    pub fn sanitizer(&self) -> &Sanitizer {
        &self.sanitizer
    }

    /// The online predictor layer.
    pub fn online(&self) -> &OnlineLarp {
        &self.online
    }

    /// Mutable access to the online predictor (e.g. for manual quarantine).
    pub fn online_mut(&mut self) -> &mut OnlineLarp {
        &mut self.online
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sanitizer() -> Sanitizer {
        Sanitizer::new(IngestConfig::default()).unwrap()
    }

    #[test]
    fn clean_stream_passes_through_untouched() {
        let mut s = sanitizer();
        for t in 0..100u64 {
            let v = 10.0 + (t as f64 * 0.3).sin();
            assert_eq!(s.ingest(t, v), vec![v]);
        }
        assert_eq!(s.stats().faults_sanitized(), 0);
        assert_eq!(s.stats().received, 100);
        assert_eq!(s.stats().emitted, 100);
    }

    #[test]
    fn duplicates_and_reversals_are_dropped() {
        let mut s = sanitizer();
        assert_eq!(s.ingest(5, 1.0).len(), 1);
        assert!(s.ingest(5, 2.0).is_empty(), "same minute");
        assert!(s.ingest(3, 3.0).is_empty(), "time reversal");
        assert_eq!(s.ingest(6, 4.0).len(), 1);
        assert_eq!(s.stats().duplicates_dropped, 2);
    }

    #[test]
    fn nan_and_sentinel_replaced_with_last_value() {
        let mut s = sanitizer();
        s.ingest(0, 5.0);
        assert_eq!(s.ingest(1, f64::NAN), vec![5.0]);
        assert_eq!(s.ingest(2, -1.0), vec![5.0], "default sentinel");
        assert_eq!(s.ingest(3, f64::INFINITY), vec![5.0]);
        assert_eq!(s.stats().nonfinite_replaced, 2);
        assert_eq!(s.stats().sentinels_replaced, 1);
    }

    #[test]
    fn unusable_first_reading_is_skipped() {
        let mut s = sanitizer();
        assert!(s.ingest(0, f64::NAN).is_empty(), "no last value to repair with");
        let out = s.ingest(1, 2.0);
        assert_eq!(out, vec![2.0]);
    }

    #[test]
    fn gaps_interpolate_up_to_cap() {
        let mut s = Sanitizer::new(IngestConfig {
            gap_fill: GapFill::Interpolate,
            max_gap_fill: 10,
            ..IngestConfig::default()
        })
        .unwrap();
        s.ingest(0, 0.0);
        // Minutes 1..=3 missing; reading at 4 is 8.0 -> fills 2, 4, 6.
        let out = s.ingest(4, 8.0);
        assert_eq!(out, vec![2.0, 4.0, 6.0, 8.0]);
        assert_eq!(s.stats().gap_samples_filled, 3);
    }

    #[test]
    fn gaps_hold_last_when_configured() {
        let mut s =
            Sanitizer::new(IngestConfig { gap_fill: GapFill::HoldLast, ..IngestConfig::default() })
                .unwrap();
        s.ingest(0, 3.0);
        let out = s.ingest(3, 9.0);
        assert_eq!(out, vec![3.0, 3.0, 9.0]);
    }

    #[test]
    fn oversized_gaps_are_truncated_not_fabricated() {
        let mut s = Sanitizer::new(IngestConfig {
            max_gap_fill: 2,
            gap_fill: GapFill::HoldLast,
            ..IngestConfig::default()
        })
        .unwrap();
        s.ingest(0, 1.0);
        let out = s.ingest(100, 2.0);
        assert_eq!(out.len(), 3, "2 fills + the reading itself");
        assert_eq!(s.stats().gap_samples_filled, 2);
        assert_eq!(s.stats().gap_samples_skipped, 97);
    }

    #[test]
    fn spikes_are_clamped_by_the_mad_envelope() {
        let mut s = sanitizer();
        // Warm the window with a tame signal around 10.
        for t in 0..40u64 {
            s.ingest(t, 10.0 + (t as f64 * 0.4).sin());
        }
        let out = s.ingest(40, 500.0);
        assert_eq!(out.len(), 1);
        assert!(out[0] < 50.0, "spike must be clamped, got {}", out[0]);
        assert_eq!(s.stats().outliers_clamped, 1);
        // A negative spike clamps to the lower edge.
        let out = s.ingest(41, -500.0);
        assert!(out[0] > -50.0, "got {}", out[0]);
    }

    #[test]
    fn level_shifts_survive_on_flat_windows() {
        // A perfectly flat window has MAD 0; the scale floor must let a
        // legitimate regime change through (clamped toward it at worst).
        let mut s = sanitizer();
        for t in 0..40u64 {
            s.ingest(t, 100.0);
        }
        let out = s.ingest(40, 101.0);
        assert_eq!(out, vec![101.0], "a 1% shift is not an outlier");
    }

    #[test]
    fn stuck_runs_are_counted() {
        let mut s =
            Sanitizer::new(IngestConfig { stuck_run_threshold: 5, ..IngestConfig::default() })
                .unwrap();
        for t in 0..20u64 {
            s.ingest(t, 7.0);
        }
        assert_eq!(s.stats().stuck_runs, 1, "one run, counted once");
        for t in 20..25u64 {
            s.ingest(t, (t - 19) as f64);
        }
        for t in 25..35u64 {
            s.ingest(t, 42.0);
        }
        assert_eq!(s.stats().stuck_runs, 2);
    }

    #[test]
    fn config_validation() {
        assert!(IngestConfig { robust_window: 2, ..IngestConfig::default() }.validate().is_err());
        assert!(IngestConfig {
            outlier: OutlierPolicy::MadClamp { threshold: 0.0 },
            ..IngestConfig::default()
        }
        .validate()
        .is_err());
        assert!(IngestConfig { sentinel_values: vec![f64::NAN], ..IngestConfig::default() }
            .validate()
            .is_err());
        assert!(IngestConfig { outlier: OutlierPolicy::None, ..IngestConfig::default() }
            .validate()
            .is_ok());
    }

    #[test]
    fn guarded_larp_serves_through_faults() {
        let mut g = GuardedLarp::new(
            IngestConfig::default(),
            LarpConfig::default(),
            40,
            QualityAssuror::new(2.0, 8, 4).unwrap(),
        )
        .unwrap();
        let mut steps = 0;
        let mut forecasts = 0;
        for t in 0..200u64 {
            // Every 13th reading NaN, every 17th a duplicate of the previous
            // minute, every 29th a spike.
            let base = 50.0 + (t as f64 * 0.2).sin() * 5.0;
            let (minute, value) = if t % 17 == 0 && t > 0 {
                (t - 1, base)
            } else if t % 13 == 0 && t > 0 {
                (t, f64::NAN)
            } else if t % 29 == 0 && t > 0 {
                (t, base * 100.0)
            } else {
                (t, base)
            };
            for step in g.ingest(minute, value) {
                steps += 1;
                if let Some(f) = step.forecast {
                    assert!(f.is_finite());
                    forecasts += 1;
                }
            }
        }
        assert!(steps > 150, "{steps}");
        assert!(forecasts > 100, "{forecasts}");
        assert!(g.sanitizer().stats().faults_sanitized() > 10);
        assert!(g.online().is_trained());
    }
}
