//! Serializable snapshots of serving state — checkpoint/restore without
//! retraining.
//!
//! A fleet serving thousands of [`OnlineLarp`] streams cannot afford to refit
//! every model after a restart: training is the expensive phase (labelling,
//! PCA, k-NN indexing), and the QA history, quarantine clocks and fault
//! counters are operational state worth carrying across process boundaries.
//! This module encodes the *complete* serving state of an [`OnlineLarp`] (and
//! a [`GuardedLarp`], which adds the sanitizer) as a plain byte vector:
//!
//! * struct-of-vecs layout, little-endian `u64`/`f64` (bit-exact round trip,
//!   NaN payloads included), no external dependencies;
//! * an 8-byte magic (`LARPSNAP`), a format version and a kind byte up front,
//!   so foreign bytes fail fast with [`LarpError::Snapshot`] instead of
//!   misdecoding;
//! * the trained model is stored as (specs, fitted states) pairs — restore
//!   rebuilds each pool member via [`predictors::ModelSpec::rebuild`] and the
//!   k-NN index from its stored points, never touching training data.
//!
//! The only piece deliberately *not* serialized is the fallback
//! [`PoolErrorTracker`]: its windowed-error accounting is advisory (consulted
//! only while a predictor is quarantined) and restarts cold, exactly as it
//! does after a retrain.
//!
//! ```
//! use larp::{LarpConfig, OnlineLarp, QualityAssuror};
//!
//! let mut live = OnlineLarp::new(LarpConfig::default(), 40, QualityAssuror::new(2.0, 8, 4).unwrap()).unwrap();
//! for t in 0..60 {
//!     live.push((t as f64 * 0.2).sin());
//! }
//! let bytes = live.to_snapshot_bytes();
//! let mut restored = OnlineLarp::from_snapshot_bytes(&bytes).unwrap();
//! assert_eq!(restored.retrain_count(), live.retrain_count());
//! assert_eq!(restored.push(0.5), live.push(0.5));
//! ```

use std::collections::VecDeque;

use learn::{KnnBackend, KnnClassifier, Pca};
use linalg::Matrix;
use predictors::{ModelSpec, PredictorId, PredictorPool};
use timeseries::{RollingMoments, ZScore};

use crate::config::{FeatureReduction, LarpConfig, ResilienceConfig};
use crate::ingest::{GapFill, GuardedLarp, IngestConfig, IngestStats, OutlierPolicy, Sanitizer};
use crate::model::{Scratch, TrainedLarp};
use crate::online::{OnlineCounters, OnlineLarp, PredictorHealth};
use crate::qa::QualityAssuror;
use crate::ring::HistoryRing;
use crate::selector::PoolErrorTracker;
use crate::{LarpError, Result};

/// Leading magic of every snapshot produced by this module.
pub const MAGIC: [u8; 8] = *b"LARPSNAP";
/// Current snapshot format version. Writers always emit the current version;
/// the reader accepts every version listed in [`MIN_VERSION`]`..=VERSION`.
///
/// * **v1** — the original format.
/// * **v2** — appends [`ResilienceConfig::f32_history`] to the resilience
///   block (the memory-diet `f32` ring mode). History values are still
///   written as `f64` (an `f32`-quantized value is `f64`-lossless), so the
///   rest of the wire layout is unchanged and v1 snapshots restore
///   bit-identically as `f64`-ring streams.
pub const VERSION: u32 = 2;
/// Oldest snapshot version the reader still accepts.
pub const MIN_VERSION: u32 = 1;

/// Snapshot kind: a bare [`OnlineLarp`].
pub const KIND_ONLINE: u8 = 1;
/// Snapshot kind: a [`GuardedLarp`] (sanitizer + online predictor).
pub const KIND_GUARDED: u8 = 2;

fn err(msg: impl Into<String>) -> LarpError {
    LarpError::Snapshot(msg.into())
}

// ---------------------------------------------------------------------------
// Byte codec
// ---------------------------------------------------------------------------

/// Append-only little-endian encoder.
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new(kind: u8) -> Self {
        let mut w = Self { buf: Vec::with_capacity(256) };
        w.buf.extend_from_slice(&MAGIC);
        w.u32(VERSION);
        w.u8(kind);
        w
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub(crate) fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    pub(crate) fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
            None => self.u8(0),
        }
    }

    pub(crate) fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.f64(x);
            }
            None => self.u8(0),
        }
    }

    pub(crate) fn f64_seq<'a>(&mut self, v: impl ExactSizeIterator<Item = &'a f64>) {
        self.usize(v.len());
        for &x in v {
            self.f64(x);
        }
    }

    pub(crate) fn f64_iter(&mut self, v: impl ExactSizeIterator<Item = f64>) {
        self.usize(v.len());
        for x in v {
            self.f64(x);
        }
    }
}

/// Checked little-endian decoder over a snapshot byte slice.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Format version declared by the snapshot being read; fields appended in
    /// later versions are skipped (and defaulted) for older snapshots.
    pub(crate) version: u32,
}

impl<'a> Reader<'a> {
    /// Opens a snapshot, validating magic, version and kind.
    pub(crate) fn new(bytes: &'a [u8], expected_kind: u8) -> Result<Self> {
        let mut r = Self { buf: bytes, pos: 0, version: 0 };
        let magic = r.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err(err("not a LARPSNAP snapshot (bad magic)"));
        }
        let version = r.u32()?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(err(format!(
                "unsupported snapshot version {version} (expected {MIN_VERSION}..={VERSION})"
            )));
        }
        r.version = version;
        let kind = r.u8()?;
        if kind != expected_kind {
            return Err(err(format!(
                "snapshot kind {kind} does not match expected {expected_kind}"
            )));
        }
        Ok(r)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(err(format!(
                "truncated snapshot: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn usize(&mut self) -> Result<usize> {
        usize::try_from(self.u64()?).map_err(|_| err("length exceeds this platform's usize"))
    }

    pub(crate) fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(err(format!("invalid bool byte {b}"))),
        }
    }

    pub(crate) fn opt_u64(&mut self) -> Result<Option<u64>> {
        Ok(if self.bool()? { Some(self.u64()?) } else { None })
    }

    pub(crate) fn opt_f64(&mut self) -> Result<Option<f64>> {
        Ok(if self.bool()? { Some(self.f64()?) } else { None })
    }

    /// Reads a length-prefixed `f64` sequence, rejecting lengths the
    /// remaining bytes cannot possibly hold (corrupt-input OOM guard).
    pub(crate) fn f64_seq(&mut self) -> Result<Vec<f64>> {
        let n = self.checked_len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    /// Reads a sequence length and checks it against the remaining bytes
    /// assuming at least `min_item_bytes` per item.
    pub(crate) fn checked_len(&mut self, min_item_bytes: usize) -> Result<usize> {
        let n = self.usize()?;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(min_item_bytes) > remaining {
            return Err(err(format!(
                "corrupt snapshot: sequence of {n} items cannot fit in {remaining} remaining bytes"
            )));
        }
        Ok(n)
    }

    /// Asserts every byte was consumed (catches mismatched encodings early).
    pub(crate) fn finish(&self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(err(format!(
                "snapshot has {} trailing bytes after decoding",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Enum / config encodings
// ---------------------------------------------------------------------------

fn put_model_spec(w: &mut Writer, spec: &ModelSpec) {
    match spec {
        ModelSpec::Last => w.u8(0),
        ModelSpec::SwAvg { window } => {
            w.u8(1);
            w.usize(*window);
        }
        ModelSpec::Mean => w.u8(2),
        ModelSpec::Ewma { alpha } => {
            w.u8(3);
            w.f64(*alpha);
        }
        ModelSpec::Median { window } => {
            w.u8(4);
            w.usize(*window);
        }
        ModelSpec::TrimmedMean { window, alpha } => {
            w.u8(5);
            w.usize(*window);
            w.f64(*alpha);
        }
        ModelSpec::AdaptiveMean => w.u8(6),
        ModelSpec::AdaptiveMedian => w.u8(7),
        ModelSpec::Tendency { window } => {
            w.u8(8);
            w.usize(*window);
        }
        ModelSpec::PolyFit { window, degree } => {
            w.u8(9);
            w.usize(*window);
            w.usize(*degree);
        }
        ModelSpec::Ar { order } => {
            w.u8(10);
            w.usize(*order);
        }
        ModelSpec::Ari { order, diff } => {
            w.u8(11);
            w.usize(*order);
            w.usize(*diff);
        }
    }
}

fn get_model_spec(r: &mut Reader) -> Result<ModelSpec> {
    Ok(match r.u8()? {
        0 => ModelSpec::Last,
        1 => ModelSpec::SwAvg { window: r.usize()? },
        2 => ModelSpec::Mean,
        3 => ModelSpec::Ewma { alpha: r.f64()? },
        4 => ModelSpec::Median { window: r.usize()? },
        5 => ModelSpec::TrimmedMean { window: r.usize()?, alpha: r.f64()? },
        6 => ModelSpec::AdaptiveMean,
        7 => ModelSpec::AdaptiveMedian,
        8 => ModelSpec::Tendency { window: r.usize()? },
        9 => ModelSpec::PolyFit { window: r.usize()?, degree: r.usize()? },
        10 => ModelSpec::Ar { order: r.usize()? },
        11 => ModelSpec::Ari { order: r.usize()?, diff: r.usize()? },
        t => return Err(err(format!("unknown ModelSpec tag {t}"))),
    })
}

fn put_larp_config(w: &mut Writer, c: &LarpConfig) {
    w.usize(c.window);
    match &c.reduction {
        FeatureReduction::Pca { dims } => {
            w.u8(0);
            w.usize(*dims);
        }
        FeatureReduction::PcaFraction { min_fraction } => {
            w.u8(1);
            w.f64(*min_fraction);
        }
        FeatureReduction::None => w.u8(2),
    }
    w.usize(c.k);
    w.u8(match c.backend {
        KnnBackend::BruteForce => 0,
        KnnBackend::KdTree => 1,
    });
    w.usize(c.pool.len());
    for spec in &c.pool {
        put_model_spec(w, spec);
    }
}

fn get_larp_config(r: &mut Reader) -> Result<LarpConfig> {
    let window = r.usize()?;
    let reduction = match r.u8()? {
        0 => FeatureReduction::Pca { dims: r.usize()? },
        1 => FeatureReduction::PcaFraction { min_fraction: r.f64()? },
        2 => FeatureReduction::None,
        t => return Err(err(format!("unknown FeatureReduction tag {t}"))),
    };
    let k = r.usize()?;
    let backend = get_backend(r)?;
    let n = r.checked_len(1)?;
    let pool = (0..n).map(|_| get_model_spec(r)).collect::<Result<Vec<_>>>()?;
    let config = LarpConfig { window, reduction, k, backend, pool };
    config.validate()?;
    Ok(config)
}

fn get_backend(r: &mut Reader) -> Result<KnnBackend> {
    match r.u8()? {
        0 => Ok(KnnBackend::BruteForce),
        1 => Ok(KnnBackend::KdTree),
        t => Err(err(format!("unknown KnnBackend tag {t}"))),
    }
}

fn put_resilience(w: &mut Writer, c: &ResilienceConfig) {
    w.f64(c.divergence_factor);
    w.usize(c.max_strikes);
    w.usize(c.quarantine_base);
    w.usize(c.quarantine_cap);
    w.usize(c.retrain_backoff_base);
    w.usize(c.retrain_backoff_cap);
    w.usize(c.max_history);
    w.bool(c.f32_history); // appended in v2
}

fn get_resilience(r: &mut Reader) -> Result<ResilienceConfig> {
    let c = ResilienceConfig {
        divergence_factor: r.f64()?,
        max_strikes: r.usize()?,
        quarantine_base: r.usize()?,
        quarantine_cap: r.usize()?,
        retrain_backoff_base: r.usize()?,
        retrain_backoff_cap: r.usize()?,
        max_history: r.usize()?,
        // v1 snapshots predate the f32 ring mode: they were written by (and
        // restore as) f64-ring streams.
        f32_history: if r.version >= 2 { r.bool()? } else { false },
    };
    c.validate()?;
    Ok(c)
}

fn put_ingest_config(w: &mut Writer, c: &IngestConfig) {
    w.u8(match c.gap_fill {
        GapFill::HoldLast => 0,
        GapFill::Interpolate => 1,
    });
    w.usize(c.max_gap_fill);
    match c.outlier {
        OutlierPolicy::None => w.u8(0),
        OutlierPolicy::MadClamp { threshold } => {
            w.u8(1);
            w.f64(threshold);
        }
    }
    w.usize(c.robust_window);
    w.f64_seq(c.sentinel_values.iter());
    w.usize(c.stuck_run_threshold);
}

fn get_ingest_config(r: &mut Reader) -> Result<IngestConfig> {
    let gap_fill = match r.u8()? {
        0 => GapFill::HoldLast,
        1 => GapFill::Interpolate,
        t => return Err(err(format!("unknown GapFill tag {t}"))),
    };
    let max_gap_fill = r.usize()?;
    let outlier = match r.u8()? {
        0 => OutlierPolicy::None,
        1 => OutlierPolicy::MadClamp { threshold: r.f64()? },
        t => return Err(err(format!("unknown OutlierPolicy tag {t}"))),
    };
    let config = IngestConfig {
        gap_fill,
        max_gap_fill,
        outlier,
        robust_window: r.usize()?,
        sentinel_values: r.f64_seq()?,
        stuck_run_threshold: r.usize()?,
    };
    config.validate()?;
    Ok(config)
}

// ---------------------------------------------------------------------------
// Trained model
// ---------------------------------------------------------------------------

fn put_trained(w: &mut Writer, m: &TrainedLarp) {
    put_larp_config(w, &m.config);
    w.f64(m.zscore.mean());
    w.f64(m.zscore.std());
    let specs = m.pool.specs();
    w.usize(specs.len());
    for spec in specs {
        put_model_spec(w, spec);
    }
    for state in m.pool.fitted_states() {
        w.f64_seq(state.iter());
    }
    match &m.pca {
        None => w.u8(0),
        Some(p) => {
            w.u8(1);
            w.f64_seq(p.mean().iter());
            w.usize(p.components().rows());
            w.usize(p.components().cols());
            w.f64_seq(p.components().as_slice().iter());
            w.f64_seq(p.eigenvalues().iter());
            w.f64(p.total_variance());
        }
    }
    w.usize(m.knn.k());
    w.u8(match m.knn.backend() {
        KnnBackend::BruteForce => 0,
        KnnBackend::KdTree => 1,
    });
    // The k-NN index stores its points as one flat row-major buffer; emit
    // them point-by-point to keep the wire layout identical to the nested
    // representation this format was defined with.
    w.usize(m.knn.len());
    for p in m.knn.points_flat().chunks_exact(m.knn.dim()) {
        w.f64_seq(p.iter());
    }
    for &label in m.knn.labels() {
        w.usize(label);
    }
    w.usize(m.train_len);
}

fn get_trained(r: &mut Reader) -> Result<TrainedLarp> {
    let config = get_larp_config(r)?;
    let zscore = ZScore::from_coefficients(r.f64()?, r.f64()?)?;
    let n_specs = r.checked_len(1)?;
    let specs = (0..n_specs).map(|_| get_model_spec(r)).collect::<Result<Vec<_>>>()?;
    let states = (0..n_specs).map(|_| r.f64_seq()).collect::<Result<Vec<_>>>()?;
    let pool = PredictorPool::from_fitted(&specs, &states)?;
    let pca = match r.u8()? {
        0 => None,
        1 => {
            let mean = r.f64_seq()?;
            let rows = r.usize()?;
            let cols = r.usize()?;
            let data = r.f64_seq()?;
            if data.len() != rows.saturating_mul(cols) {
                return Err(err(format!(
                    "PCA projection data has {} values for a {rows}x{cols} matrix",
                    data.len()
                )));
            }
            let components = Matrix::from_vec(rows, cols, data)
                .map_err(|e| err(format!("PCA projection: {e}")))?;
            let eigenvalues = r.f64_seq()?;
            let total_variance = r.f64()?;
            Some(std::sync::Arc::new(Pca::from_parts(
                mean,
                components,
                eigenvalues,
                total_variance,
            )?))
        }
        t => return Err(err(format!("unknown PCA tag {t}"))),
    };
    let k = r.usize()?;
    let backend = get_backend(r)?;
    let n_points = r.checked_len(8)?;
    let points = (0..n_points).map(|_| r.f64_seq()).collect::<Result<Vec<_>>>()?;
    let labels = (0..n_points).map(|_| r.usize()).collect::<Result<Vec<_>>>()?;
    let knn = KnnClassifier::fit(points, labels, k, backend)?;
    let train_len = r.usize()?;
    Ok(TrainedLarp { config, zscore, pool, pca, knn, train_len })
}

// ---------------------------------------------------------------------------
// Online / guarded serving state
// ---------------------------------------------------------------------------

fn put_qa(w: &mut Writer, qa: &QualityAssuror) {
    w.f64(qa.threshold);
    w.usize(qa.audit_window);
    w.usize(qa.audit_period);
    w.f64_seq(qa.errors.iter());
    w.usize(qa.since_audit);
    w.usize(qa.audits);
    w.usize(qa.retrains_signalled);
}

fn get_qa(r: &mut Reader) -> Result<QualityAssuror> {
    let threshold = r.f64()?;
    let audit_window = r.usize()?;
    let audit_period = r.usize()?;
    // The constructor re-runs its parameter validation on the restored values.
    let mut qa = QualityAssuror::new(threshold, audit_window, audit_period)?;
    qa.errors = VecDeque::from(r.f64_seq()?);
    qa.since_audit = r.usize()?;
    qa.audits = r.usize()?;
    qa.retrains_signalled = r.usize()?;
    Ok(qa)
}

fn put_online(w: &mut Writer, o: &OnlineLarp) {
    put_larp_config(w, &o.config);
    put_resilience(w, &o.resilience);
    put_qa(w, &o.qa);
    // `f32`-ring values widen to `f64` losslessly, so one wire type serves
    // both modes; restore re-quantizes, which is exact for these values.
    w.f64_iter(o.history.iter64());
    w.usize(o.seen);
    w.usize(o.train_size);
    match &o.model {
        None => w.u8(0),
        Some(m) => {
            w.u8(1);
            put_trained(w, m);
        }
    }
    match o.pending {
        None => w.u8(0),
        Some((producer, forecast)) => {
            w.u8(1);
            w.opt_u64(producer.map(|id| id.0 as u64));
            w.f64(forecast);
        }
    }
    w.usize(o.retrain_count);
    w.u64(o.clock);
    w.usize(o.predictor_health.len());
    for h in &o.predictor_health {
        w.usize(h.strikes);
        w.opt_u64(h.quarantined_until);
        w.u64(u64::from(h.times_quarantined));
    }
    w.usize(o.counters.quarantines);
    w.usize(o.counters.retrain_failures);
    w.usize(o.counters.nonfinite_forecasts);
    w.usize(o.counters.degraded_steps);
    w.usize(o.counters.fallback_steps);
    w.u64(u64::from(o.consecutive_retrain_failures));
    w.u64(o.next_retrain_at);
    w.bool(o.retrain_pending);
}

fn get_online(r: &mut Reader) -> Result<OnlineLarp> {
    let config = get_larp_config(r)?;
    let resilience = get_resilience(r)?;
    let qa = get_qa(r)?;
    let history = r.f64_seq()?;
    let seen = r.usize()?;
    let train_size = r.usize()?;
    let model = match r.u8()? {
        0 => None,
        1 => Some(get_trained(r)?),
        t => return Err(err(format!("unknown model tag {t}"))),
    };
    let pending = match r.u8()? {
        0 => None,
        1 => {
            let producer = r.opt_u64()?.map(|id| PredictorId(id as usize));
            Some((producer, r.f64()?))
        }
        t => return Err(err(format!("unknown pending tag {t}"))),
    };
    let retrain_count = r.usize()?;
    let clock = r.u64()?;
    let n_health = r.checked_len(17)?;
    let predictor_health = (0..n_health)
        .map(|_| {
            Ok(PredictorHealth {
                strikes: r.usize()?,
                quarantined_until: r.opt_u64()?,
                times_quarantined: u32::try_from(r.u64()?)
                    .map_err(|_| err("times_quarantined exceeds u32"))?,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    let counters = OnlineCounters {
        quarantines: r.usize()?,
        retrain_failures: r.usize()?,
        nonfinite_forecasts: r.usize()?,
        degraded_steps: r.usize()?,
        fallback_steps: r.usize()?,
    };
    let consecutive_retrain_failures =
        u32::try_from(r.u64()?).map_err(|_| err("retrain failure count exceeds u32"))?;
    let next_retrain_at = r.u64()?;
    let retrain_pending = r.bool()?;
    if let Some(m) = &model {
        if predictor_health.len() != m.pool.len() {
            return Err(err(format!(
                "{} health slots for a pool of {} members",
                predictor_health.len(),
                m.pool.len()
            )));
        }
    }
    // The same integrity bounds the constructor enforces; a snapshot written
    // by a live instance always satisfies them.
    let min_train = config.window + config.k.max(2);
    if train_size < min_train {
        return Err(err(format!("train_size {train_size} below minimum {min_train}")));
    }
    if resilience.max_history != 0 && resilience.max_history < train_size {
        return Err(err(format!(
            "max_history {} cannot hold train_size {train_size}",
            resilience.max_history
        )));
    }
    // The fallback error tracker is advisory, windowed state; it restarts
    // cold exactly as it does after a retrain.
    let tracker =
        model.as_ref().and_then(|m| PoolErrorTracker::new(m.pool.len(), config.window.max(8)).ok());
    let mut online = OnlineLarp {
        config,
        qa,
        history: HistoryRing::from_vec_mode(
            history,
            resilience.max_history,
            resilience.f32_history,
        ),
        norm: HistoryRing::new_mode(resilience.max_history, resilience.f32_history),
        rolling: RollingMoments::new(train_size).expect("train_size validated above"),
        scratch: Scratch::new(),
        resilience,
        seen,
        train_size,
        model,
        pending,
        retrain_count,
        clock,
        predictor_health,
        tracker,
        counters,
        consecutive_retrain_failures,
        next_retrain_at,
        retrain_pending,
        // Deferred-retrain state is runtime-only: snapshot paths settle any
        // armed request before serializing, and `retrain_pending` re-arms on
        // the next push if a retrain was still owed.
        armed: None,
        deferred_external: false,
        generation: 0,
        obs: None,
        interner: None,
    };
    // Derived runtime state (normalised mirror, rolling moments) is not part
    // of the wire format; rebuild it from the restored fields.
    online.rebuild_runtime();
    Ok(online)
}

fn put_sanitizer(w: &mut Writer, s: &Sanitizer) {
    put_ingest_config(w, &s.config);
    w.opt_u64(s.last_minute);
    w.opt_f64(s.last_value);
    w.opt_f64(s.last_raw);
    w.f64_seq(s.recent.iter());
    w.usize(s.stuck_len);
    w.bool(s.stuck_counted);
    w.usize(s.stats.received);
    w.usize(s.stats.emitted);
    w.usize(s.stats.duplicates_dropped);
    w.usize(s.stats.gap_samples_filled);
    w.usize(s.stats.gap_samples_skipped);
    w.usize(s.stats.nonfinite_replaced);
    w.usize(s.stats.sentinels_replaced);
    w.usize(s.stats.outliers_clamped);
    w.usize(s.stats.stuck_runs);
}

fn get_sanitizer(r: &mut Reader) -> Result<Sanitizer> {
    let config = get_ingest_config(r)?;
    let mut sanitizer = Sanitizer {
        config,
        last_minute: r.opt_u64()?,
        last_value: r.opt_f64()?,
        last_raw: r.opt_f64()?,
        recent: VecDeque::from(r.f64_seq()?),
        stuck_len: r.usize()?,
        stuck_counted: r.bool()?,
        stats: IngestStats {
            received: r.usize()?,
            emitted: r.usize()?,
            duplicates_dropped: r.usize()?,
            gap_samples_filled: r.usize()?,
            gap_samples_skipped: r.usize()?,
            nonfinite_replaced: r.usize()?,
            sentinels_replaced: r.usize()?,
            outliers_clamped: r.usize()?,
            stuck_runs: r.usize()?,
        },
        robust_scratch: Vec::new(),
        dev_scratch: Vec::new(),
    };
    sanitizer.rebuild_robust_mirror();
    Ok(sanitizer)
}

impl OnlineLarp {
    /// Serializes the complete serving state (trained model, QA history,
    /// quarantine clocks, counters) as a self-describing byte vector.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new(KIND_ONLINE);
        put_online(&mut w, self);
        w.into_bytes()
    }

    /// Restores an [`OnlineLarp`] from [`OnlineLarp::to_snapshot_bytes`]
    /// output, without retraining: subsequent `push` calls behave exactly as
    /// they would have on the snapshotted instance.
    ///
    /// # Errors
    ///
    /// Returns [`LarpError::Snapshot`] for malformed bytes and propagates
    /// validation errors for inconsistent state.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes, KIND_ONLINE)?;
        let online = get_online(&mut r)?;
        r.finish()?;
        Ok(online)
    }
}

impl GuardedLarp {
    /// Serializes sanitizer plus online predictor state as one byte vector.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new(KIND_GUARDED);
        put_sanitizer(&mut w, &self.sanitizer);
        put_online(&mut w, &self.online);
        w.into_bytes()
    }

    /// Restores a [`GuardedLarp`] from [`GuardedLarp::to_snapshot_bytes`]
    /// output, without retraining.
    ///
    /// # Errors
    ///
    /// Returns [`LarpError::Snapshot`] for malformed bytes and propagates
    /// validation errors for inconsistent state.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes, KIND_GUARDED)?;
        let sanitizer = get_sanitizer(&mut r)?;
        let online = get_online(&mut r)?;
        r.finish()?;
        Ok(GuardedLarp { sanitizer, online })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::OnlineStep;

    fn qa() -> QualityAssuror {
        QualityAssuror::new(2.0, 8, 4).unwrap()
    }

    fn signal(t: usize) -> f64 {
        100.0 + (t as f64 * 0.2).sin() * 5.0 + ((t * 37) % 11) as f64 * 0.1
    }

    #[test]
    fn online_round_trip_is_bit_exact() {
        let mut live = OnlineLarp::new(LarpConfig::default(), 40, qa()).unwrap();
        for t in 0..90 {
            live.push(signal(t));
        }
        assert!(live.is_trained());

        let bytes = live.to_snapshot_bytes();
        let mut restored = OnlineLarp::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(restored.retrain_count(), live.retrain_count());
        assert_eq!(restored.seen(), live.seen());
        assert_eq!(restored.counters(), live.counters());
        assert_eq!(restored.qa().audits(), live.qa().audits());

        // The restored instance must continue *identically* — same forecasts,
        // same chosen predictors, same health — with no retraining.
        let retrains_before = restored.retrain_count();
        for t in 90..220 {
            let a: OnlineStep = live.push(signal(t));
            let b: OnlineStep = restored.push(signal(t));
            assert_eq!(a, b, "divergence at step {t}");
        }
        // A QA-triggered retrain may fire in both equally, but the initial
        // training must not have been redone at restore time.
        assert!(restored.retrain_count() >= retrains_before);
        assert_eq!(restored.retrain_count(), live.retrain_count());
    }

    #[test]
    fn untrained_online_round_trips() {
        let mut live = OnlineLarp::new(LarpConfig::default(), 40, qa()).unwrap();
        for t in 0..10 {
            live.push(signal(t));
        }
        let mut restored = OnlineLarp::from_snapshot_bytes(&live.to_snapshot_bytes()).unwrap();
        assert!(!restored.is_trained());
        for t in 10..60 {
            assert_eq!(live.push(signal(t)), restored.push(signal(t)));
        }
        assert!(restored.is_trained(), "initial training happens at the same step");
    }

    #[test]
    fn quarantine_state_survives_the_round_trip() {
        let mut live = OnlineLarp::new(LarpConfig::default(), 40, qa()).unwrap();
        for t in 0..60 {
            live.push(signal(t));
        }
        live.quarantine_predictor(PredictorId(1)).unwrap();
        let restored = OnlineLarp::from_snapshot_bytes(&live.to_snapshot_bytes()).unwrap();
        assert!(restored.is_quarantined(PredictorId(1)));
        assert_eq!(restored.quarantined(), live.quarantined());
        assert_eq!(restored.counters().quarantines, 1);
    }

    #[test]
    fn guarded_round_trip_with_faulty_tail() {
        let mut live = GuardedLarp::new(
            crate::ingest::IngestConfig::default(),
            LarpConfig::default(),
            40,
            qa(),
        )
        .unwrap();
        for t in 0..120u64 {
            let v = if t % 13 == 0 { f64::NAN } else { signal(t as usize) };
            live.ingest(t, v);
        }
        let bytes = live.to_snapshot_bytes();
        let mut restored = GuardedLarp::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(restored.sanitizer().stats(), live.sanitizer().stats());
        assert_eq!(restored.online().retrain_count(), live.online().retrain_count());

        for t in 120..260u64 {
            let v = match t % 11 {
                0 => f64::NAN,
                5 => -1.0, // sentinel
                _ => signal(t as usize),
            };
            let a = live.ingest(t, v);
            let b = restored.ingest(t, v);
            assert_eq!(a, b, "divergence at minute {t}");
        }
        assert_eq!(restored.sanitizer().stats(), live.sanitizer().stats());
    }

    #[test]
    fn extended_pool_with_fitted_ar_members_round_trips() {
        // The extended pool exercises every ModelSpec tag including the
        // fitted AR/ARI members whose coefficients must survive verbatim.
        let config = LarpConfig::extended(5);
        let mut live = OnlineLarp::new(config, 60, qa()).unwrap();
        for t in 0..120 {
            live.push(signal(t));
        }
        assert!(live.is_trained());
        let mut restored = OnlineLarp::from_snapshot_bytes(&live.to_snapshot_bytes()).unwrap();
        for t in 120..200 {
            assert_eq!(live.push(signal(t)), restored.push(signal(t)));
        }
    }

    #[test]
    fn malformed_bytes_error_instead_of_panicking() {
        assert!(matches!(
            OnlineLarp::from_snapshot_bytes(b"not a snapshot at all"),
            Err(LarpError::Snapshot(_))
        ));
        assert!(matches!(OnlineLarp::from_snapshot_bytes(&[]), Err(LarpError::Snapshot(_))));

        let mut live = OnlineLarp::new(LarpConfig::default(), 40, qa()).unwrap();
        for t in 0..60 {
            live.push(signal(t));
        }
        let bytes = live.to_snapshot_bytes();
        // Truncations at every prefix must fail cleanly, never panic.
        for cut in [9, 13, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                OnlineLarp::from_snapshot_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        // A guarded snapshot is not an online snapshot.
        let guarded = GuardedLarp::new(
            crate::ingest::IngestConfig::default(),
            LarpConfig::default(),
            40,
            qa(),
        )
        .unwrap();
        assert!(matches!(
            OnlineLarp::from_snapshot_bytes(&guarded.to_snapshot_bytes()),
            Err(LarpError::Snapshot(_))
        ));
    }

    #[test]
    fn snapshot_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<OnlineLarp>();
        assert_send::<GuardedLarp>();
    }
}
