//! Registry-backed observability for the online serving stack.
//!
//! [`LarpObs`] bundles the metric handles and (optionally) the event ring
//! one serving stack records into. It is label-free by design: every stream
//! of a fleet holds clones of the *same* named counters, so fleet-wide
//! rollups fall out of the registry with zero aggregation code, while
//! [`LarpObs::for_stream`] tags the *events* with the stream id so traces
//! stay attributable.
//!
//! Metric set (naming scheme in DESIGN.md §5):
//!
//! | name | kind | meaning |
//! |---|---|---|
//! | `larp_selections_total` | counter | healthy k-NN-selected forecasts |
//! | `larp_degraded_steps_total` | counter | forecasts by a fallback member |
//! | `larp_fallback_steps_total` | counter | last-value persistence forecasts |
//! | `larp_quarantines_total` | counter | pool members benched |
//! | `larp_quarantine_exits_total` | counter | quarantines expired |
//! | `larp_retrains_total` | counter | successful (re)trainings |
//! | `larp_retrain_failures_total` | counter | failed training attempts |
//! | `larp_nonfinite_forecasts_total` | counter | non-finite forecasts caught |
//! | `larp_faults_sanitized_total` | counter | ingestion repairs performed |
//! | `larp_retrain_us` | histogram | (re)training fit time, µs |
//! | `larp_retrain_queue_wait_us` | histogram | retrain queue wait, µs (0 inline) |
//! | `larp_slow_retrains_total` | counter | fits over the slow threshold |
//!
//! Hot-path budget: one counter increment per step plus one `Cell`
//! comparison; events fire only on *transitions* (the selector's choice or
//! the serving rung changed), never per sample.

use std::sync::atomic::{AtomicU64, Ordering};

use obs::{Counter, EventKind, EventRing, Histogram, Registry, ServingRung};

use crate::online::HealthState;

/// The serving ladder state an emitted event describes.
fn rung_of(health: HealthState) -> ServingRung {
    match health {
        HealthState::Healthy => ServingRung::Primary,
        HealthState::Degraded => ServingRung::Degraded,
        HealthState::Fallback => ServingRung::Persistence,
    }
}

/// Packs a `(chosen, rung)` serving choice into a non-zero u64 so the
/// previous choice fits in one atomic (0 = no step served yet). Layout:
/// bit 63 set, bit 62 = chosen is Some, bits 60–61 = rung, bits 0–59 = the
/// chosen pool index (pool sizes are single digits in practice).
fn pack_choice(chosen: Option<u64>, rung: ServingRung) -> u64 {
    let rung_bits = match rung {
        ServingRung::Primary => 0u64,
        ServingRung::Degraded => 1,
        ServingRung::Persistence => 2,
    };
    let (flag, idx) = match chosen {
        Some(i) => (1u64, i & ((1 << 60) - 1)),
        None => (0, 0),
    };
    (1 << 63) | (flag << 62) | (rung_bits << 60) | idx
}

/// The rung encoded by [`pack_choice`].
fn unpack_rung(packed: u64) -> ServingRung {
    match (packed >> 60) & 0b11 {
        0 => ServingRung::Primary,
        1 => ServingRung::Degraded,
        _ => ServingRung::Persistence,
    }
}

/// Metric handles (shared, label-free) plus per-stream event context for one
/// serving stack. Attach with [`crate::OnlineLarp::attach_obs`] or
/// [`crate::GuardedLarp::attach_obs`].
#[derive(Debug)]
pub struct LarpObs {
    stream: Option<u64>,
    selections: Counter,
    degraded_steps: Counter,
    fallback_steps: Counter,
    quarantines: Counter,
    quarantine_exits: Counter,
    retrains: Counter,
    retrain_failures: Counter,
    nonfinite: Counter,
    sanitized: Counter,
    retrain_us: Histogram,
    retrain_queue_wait_us: Histogram,
    slow_retrains: Counter,
    /// Fit-time threshold above which a retrain counts as *slow* (emits a
    /// [`EventKind::SlowRetrain`] event and bumps `larp_slow_retrains_total`).
    slow_retrain_threshold_us: u64,
    events: Option<EventRing>,
    /// Last `(chosen, rung)` served, packed via [`pack_choice`] (0 = none),
    /// for transition-only event emission. Runtime-only: deliberately not
    /// part of any snapshot.
    last_choice: AtomicU64,
}

impl LarpObs {
    /// Registers (or re-uses — registration is idempotent) the `larp_*`
    /// metric set on `registry`.
    pub fn register(registry: &Registry) -> Self {
        Self {
            stream: None,
            selections: registry.counter("larp_selections_total"),
            degraded_steps: registry.counter("larp_degraded_steps_total"),
            fallback_steps: registry.counter("larp_fallback_steps_total"),
            quarantines: registry.counter("larp_quarantines_total"),
            quarantine_exits: registry.counter("larp_quarantine_exits_total"),
            retrains: registry.counter("larp_retrains_total"),
            retrain_failures: registry.counter("larp_retrain_failures_total"),
            nonfinite: registry.counter("larp_nonfinite_forecasts_total"),
            sanitized: registry.counter("larp_faults_sanitized_total"),
            retrain_us: registry.histogram("larp_retrain_us"),
            retrain_queue_wait_us: registry.histogram("larp_retrain_queue_wait_us"),
            slow_retrains: registry.counter("larp_slow_retrains_total"),
            slow_retrain_threshold_us: Self::DEFAULT_SLOW_RETRAIN_US,
            events: None,
            last_choice: AtomicU64::new(0),
        }
    }

    /// Default slow-retrain threshold: 100 ms of fit time, ~3000× the
    /// steady-state per-sample serving budget.
    pub const DEFAULT_SLOW_RETRAIN_US: u64 = 100_000;

    /// Routes transition events into `ring` (metrics alone otherwise).
    #[must_use]
    pub fn with_events(mut self, ring: EventRing) -> Self {
        self.events = Some(ring);
        self
    }

    /// Overrides the slow-retrain threshold (µs of fit time; fits strictly
    /// above it count as slow).
    #[must_use]
    pub fn with_slow_retrain_threshold_us(mut self, threshold_us: u64) -> Self {
        self.slow_retrain_threshold_us = threshold_us;
        self
    }

    /// A recorder sharing these metric cells whose events carry `id` —
    /// what a fleet attaches to each of its streams.
    pub fn for_stream(&self, id: u64) -> Self {
        Self {
            stream: Some(id),
            events: self.events.clone(),
            last_choice: AtomicU64::new(0),
            selections: self.selections.clone(),
            degraded_steps: self.degraded_steps.clone(),
            fallback_steps: self.fallback_steps.clone(),
            quarantines: self.quarantines.clone(),
            quarantine_exits: self.quarantine_exits.clone(),
            retrains: self.retrains.clone(),
            retrain_failures: self.retrain_failures.clone(),
            nonfinite: self.nonfinite.clone(),
            sanitized: self.sanitized.clone(),
            retrain_us: self.retrain_us.clone(),
            retrain_queue_wait_us: self.retrain_queue_wait_us.clone(),
            slow_retrains: self.slow_retrains.clone(),
            slow_retrain_threshold_us: self.slow_retrain_threshold_us,
        }
    }

    fn emit(&self, kind: EventKind) {
        if let Some(ring) = &self.events {
            ring.push(self.stream, kind);
        }
    }

    /// Records one served step; emits events only when the selection or the
    /// serving rung changed since the previous step.
    pub(crate) fn record_step(&self, chosen: Option<u64>, health: HealthState) {
        let rung = rung_of(health);
        match health {
            HealthState::Healthy => self.selections.inc(),
            HealthState::Degraded => self.degraded_steps.inc(),
            HealthState::Fallback => self.fallback_steps.inc(),
        }
        let now = pack_choice(chosen, rung);
        let before = self.last_choice.swap(now, Ordering::Relaxed);
        if before != now {
            if before != 0 {
                let prev_rung = unpack_rung(before);
                if prev_rung != rung {
                    self.emit(EventKind::DegradationTransition { from: prev_rung, to: rung });
                }
            }
            self.emit(EventKind::SelectorDecision { predictor: chosen, rung });
        }
    }

    pub(crate) fn record_quarantine(&self, predictor: usize, until_step: u64) {
        self.quarantines.inc();
        self.emit(EventKind::QuarantineEnter { predictor: predictor as u64, until_step });
    }

    pub(crate) fn record_quarantine_exit(&self, predictor: usize) {
        self.quarantine_exits.inc();
        self.emit(EventKind::QuarantineExit { predictor: predictor as u64 });
    }

    /// Records one successful (re)train. Queue wait (time the request sat
    /// armed/enqueued before a worker started fitting) and the fit itself are
    /// tracked as separate histograms so a saturated retrain pool is
    /// distinguishable from genuinely slow fits.
    pub(crate) fn record_retrain_success(&self, fit_us: u64, queue_wait_us: u64) {
        self.retrains.inc();
        self.retrain_us.record(fit_us as f64);
        self.retrain_queue_wait_us.record(queue_wait_us as f64);
        self.emit(EventKind::RetrainSucceeded { duration_us: fit_us });
        if fit_us > self.slow_retrain_threshold_us {
            self.slow_retrains.inc();
            self.emit(EventKind::SlowRetrain {
                fit_us,
                threshold_us: self.slow_retrain_threshold_us,
            });
        }
    }

    pub(crate) fn record_retrain_failure(&self, consecutive: u64) {
        self.retrain_failures.inc();
        self.emit(EventKind::RetrainFailed { consecutive });
    }

    pub(crate) fn record_nonfinite(&self) {
        self.nonfinite.inc();
    }

    pub(crate) fn record_sanitized(&self, repairs: u64) {
        self.sanitized.add(repairs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_roll_up_across_streams() {
        let registry = Registry::new();
        let base = LarpObs::register(&registry);
        let a = base.for_stream(1);
        let b = base.for_stream(2);
        a.record_step(Some(0), HealthState::Healthy);
        b.record_step(Some(1), HealthState::Healthy);
        b.record_step(None, HealthState::Fallback);
        assert_eq!(a.selections.get(), 2, "streams share the fleet-wide cell");
        assert_eq!(b.fallback_steps.get(), 1);
    }

    #[test]
    fn events_fire_on_transitions_only() {
        let registry = Registry::new();
        let ring = EventRing::new(64);
        let o = LarpObs::register(&registry).with_events(ring.clone()).for_stream(7);
        for _ in 0..5 {
            o.record_step(Some(2), HealthState::Healthy);
        }
        assert_eq!(ring.recorded(), 1, "steady state is silent");
        o.record_step(Some(1), HealthState::Degraded);
        // A rung change emits both the transition and the new decision.
        assert_eq!(ring.recorded(), 3);
        let events = ring.recent();
        assert_eq!(events[1].kind.name(), "degradation_transition");
        assert_eq!(events[2].kind.name(), "selector_decision");
        assert_eq!(events[2].stream, Some(7));
    }

    #[test]
    fn registration_is_reentrant() {
        let registry = Registry::new();
        let a = LarpObs::register(&registry);
        let b = LarpObs::register(&registry);
        a.record_nonfinite();
        b.record_nonfinite();
        assert_eq!(a.nonfinite.get(), 2);
    }
}
