//! End-to-end fault drill: `vmsim`'s deterministic fault injector feeding the
//! guarded serving stack (`Sanitizer` → `OnlineLarp`).
//!
//! The invariants under test, at every fault rate up to 20%:
//!
//! * the stack never panics;
//! * every emitted forecast is finite;
//! * serving recovers to [`HealthState::Healthy`] once faults stop;
//! * a quarantined predictor is re-admitted after its backoff.

use larp::{
    GuardedLarp, HealthState, IngestConfig, LarpConfig, OnlineLarp, QualityAssuror,
    ResilienceConfig,
};
use vmsim::{FaultConfig, FaultInjector};

/// A regime-switching workload the predictor can learn, safely away from the
/// default sentinel value (-1.0).
fn workload(n: usize) -> Vec<f64> {
    (0..n)
        .map(|t| {
            let regime = (t / 120) % 2;
            let base = if regime == 0 { 55.0 } else { 70.0 };
            base + (t as f64 * 0.23).sin() * 6.0 + ((t * 37) % 11) as f64 * 0.4
        })
        .collect()
}

fn guarded() -> GuardedLarp {
    GuardedLarp::new(
        IngestConfig::default(),
        LarpConfig::default(),
        60,
        QualityAssuror::new(4.0, 8, 4).unwrap(),
    )
    .unwrap()
}

/// Drives a faulted stream through a guarded stack; returns
/// (steps served, finite forecasts, last health observed).
fn drive(g: &mut GuardedLarp, stream: &[(u64, f64)]) -> (usize, usize, Option<HealthState>) {
    let mut steps = 0;
    let mut forecasts = 0;
    let mut last_health = None;
    for &(minute, value) in stream {
        for step in g.ingest(minute, value) {
            steps += 1;
            if let Some(f) = step.forecast {
                assert!(f.is_finite(), "non-finite forecast escaped: {f}");
                forecasts += 1;
            }
            last_health = Some(step.health);
        }
    }
    (steps, forecasts, last_health)
}

#[test]
fn every_fault_type_alone_is_survivable() {
    let base = FaultConfig::default();
    let configs: Vec<(&str, FaultConfig)> = vec![
        ("drop", FaultConfig { drop_rate: 0.2, ..base.clone() }),
        ("gap", FaultConfig { gap_rate: 0.05, ..base.clone() }),
        ("nan", FaultConfig { nan_rate: 0.2, ..base.clone() }),
        ("sentinel", FaultConfig { sentinel_rate: 0.2, ..base.clone() }),
        ("stuck", FaultConfig { stuck_rate: 0.05, ..base.clone() }),
        ("spike", FaultConfig { spike_rate: 0.2, ..base.clone() }),
        ("duplicate", FaultConfig { duplicate_rate: 0.2, ..base.clone() }),
    ];
    let clean = workload(600);
    for (name, config) in configs {
        for seed in [1, 7, 42] {
            let mut injector = FaultInjector::new(config.clone(), seed).unwrap();
            let stream = injector.corrupt_series(&clean, 0);
            let mut g = guarded();
            let (steps, forecasts, _) = drive(&mut g, &stream);
            assert!(steps > 0, "{name}/{seed}: nothing served");
            assert!(
                forecasts > steps / 2,
                "{name}/{seed}: availability collapsed ({forecasts}/{steps})"
            );
            assert!(g.online().is_trained(), "{name}/{seed}: never trained");
        }
    }
}

#[test]
fn combined_faults_up_to_twenty_percent_are_survivable() {
    let clean = workload(800);
    for rate in [0.01, 0.05, 0.1, 0.2] {
        for seed in [3, 11] {
            let mut injector = FaultInjector::new(FaultConfig::uniform(rate), seed).unwrap();
            let stream = injector.corrupt_series(&clean, 0);
            assert!(injector.counts().total() > 0, "rate {rate} injected nothing");
            let mut g = guarded();
            let (steps, forecasts, _) = drive(&mut g, &stream);
            assert!(g.online().is_trained(), "rate {rate}/seed {seed}: never trained");
            // Warmup (60 samples) never forecasts; after that availability
            // must stay high even at 20% combined fault rate.
            let post_warmup = steps.saturating_sub(60);
            assert!(
                forecasts * 10 >= post_warmup * 8,
                "rate {rate}/seed {seed}: availability {forecasts}/{post_warmup}"
            );
            // The sanitizer, not the predictor, absorbs most of the damage.
            assert!(
                g.sanitizer().stats().faults_sanitized() > 0,
                "rate {rate}/seed {seed}: sanitizer saw nothing"
            );
        }
    }
}

#[test]
fn fault_injection_is_deterministic_per_seed() {
    let clean = workload(400);
    let run = |seed: u64| {
        let mut injector = FaultInjector::new(FaultConfig::uniform(0.1), seed).unwrap();
        let stream = injector.corrupt_series(&clean, 0);
        let mut g = guarded();
        let mut outputs = Vec::new();
        for &(minute, value) in &stream {
            for step in g.ingest(minute, value) {
                outputs.push((step.forecast.map(f64::to_bits), step.chosen, step.health));
            }
        }
        outputs
    };
    assert_eq!(run(99), run(99), "same seed must reproduce bit-identical serving");
    assert_ne!(run(99), run(100), "different seeds must differ");
}

#[test]
fn serving_recovers_to_healthy_after_a_fault_burst() {
    let clean = workload(700);
    let mut g = guarded();

    // Phase 1: clean warmup + serving.
    let clean_stream: Vec<(u64, f64)> =
        clean[..200].iter().enumerate().map(|(i, &v)| (i as u64, v)).collect();
    let (_, _, health) = drive(&mut g, &clean_stream);
    assert_eq!(health, Some(HealthState::Healthy), "clean serving must be healthy");

    // Phase 2: a heavy burst — every fault type at 30% for 150 samples.
    let mut injector = FaultInjector::new(FaultConfig::uniform(0.3), 5).unwrap();
    let burst = injector.corrupt_series(&clean[200..350], 200);
    drive(&mut g, &burst);

    // Phase 3: clean again; serving must settle back to Healthy.
    let tail: Vec<(u64, f64)> =
        clean[350..700].iter().enumerate().map(|(i, &v)| (350 + i as u64, v)).collect();
    let (_, forecasts, health) = drive(&mut g, &tail);
    assert!(forecasts > 300, "post-burst serving starved: {forecasts}");
    assert_eq!(health, Some(HealthState::Healthy), "must recover after the burst");
    assert!(g.online().quarantined().is_empty(), "quarantines must drain");
}

#[test]
fn quarantined_predictor_is_readmitted_after_backoff_end_to_end() {
    let resilience = ResilienceConfig { quarantine_base: 6, ..ResilienceConfig::default() };
    let online = OnlineLarp::with_resilience(
        LarpConfig::default(),
        60,
        QualityAssuror::new(4.0, 8, 4).unwrap(),
        resilience,
    )
    .unwrap();
    let mut g = GuardedLarp::from_parts(IngestConfig::default(), online).unwrap();

    let clean = workload(400);
    let mut minute = 0u64;
    let mut chosen = None;
    while chosen.is_none() {
        for step in g.ingest(minute, clean[minute as usize]) {
            chosen = chosen.or(step.chosen);
        }
        minute += 1;
    }
    let first_choice = chosen.unwrap();
    g.online_mut().quarantine_predictor(first_choice).unwrap();

    // While benched: serving continues, never from the benched member.
    let mut non_healthy = 0;
    for _ in 0..5 {
        for step in g.ingest(minute, clean[minute as usize]) {
            assert_ne!(step.chosen, Some(first_choice), "benched member must not serve");
            if step.health != HealthState::Healthy {
                non_healthy += 1;
            }
        }
        minute += 1;
    }
    assert!(non_healthy > 0, "quarantine never surfaced in health");

    // After the 6-step quarantine expires the member is eligible again.
    for _ in 0..6 {
        g.ingest(minute, clean[minute as usize]);
        minute += 1;
    }
    assert!(
        !g.online().is_quarantined(first_choice),
        "backoff elapsed but the member is still benched"
    );
    let mut served_again = false;
    for _ in 0..40 {
        for step in g.ingest(minute, clean[minute as usize]) {
            if step.chosen == Some(first_choice) {
                served_again = true;
            }
        }
        minute += 1;
    }
    assert!(served_again, "re-admitted member never chosen again");
}

#[test]
fn unsanitized_nan_stream_is_still_survivable() {
    // Bypass the sanitizer entirely: raw NaNs straight into OnlineLarp. The
    // ladder alone must keep every emitted forecast finite.
    let mut o = OnlineLarp::new(LarpConfig::default(), 60, QualityAssuror::new(4.0, 8, 4).unwrap())
        .unwrap();
    let mut injector = FaultInjector::new(
        FaultConfig { nan_rate: 0.2, spike_rate: 0.1, ..FaultConfig::default() },
        17,
    )
    .unwrap();
    let stream = injector.corrupt_series(&workload(500), 0);
    for &(_, value) in &stream {
        let step = o.push(value);
        if let Some(f) = step.forecast {
            assert!(f.is_finite(), "ladder leaked a non-finite forecast");
        }
    }
}
