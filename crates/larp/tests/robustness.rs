//! Robustness and failure-injection tests: degenerate inputs, outliers,
//! boundary sizes, and alternative configurations through the full pipeline.

use larp::config::FeatureReduction;
use larp::eval::{observed_best_scored, run_selector_scored, TraceReport};
use larp::{LarpConfig, TrainedLarp};
use learn::KnnBackend;

/// A well-behaved base trace.
fn base_trace(n: usize) -> Vec<f64> {
    (0..n)
        .map(|t| {
            let regime = (t / 30) % 2;
            if regime == 0 {
                (t % 30) as f64 * 0.1
            } else {
                5.0 + if t % 2 == 0 { 1.0 } else { -1.0 }
            }
        })
        .collect()
}

#[test]
fn constant_trace_trains_and_predicts_exactly() {
    // A completely flat trace: z-score degrades to centering, AR degrades to
    // persistence, and every forecast must be exactly the constant.
    let values = vec![7.5; 100];
    let model = TrainedLarp::train(&values[..50], &LarpConfig::default()).unwrap();
    let (_, f) = model.predict_next_raw(&values[50..80]).unwrap();
    assert_eq!(f, 7.5);
    let report = TraceReport::evaluate("flat", &values, &LarpConfig::default(), 3, 1).unwrap();
    assert_eq!(report.mse_lar, 0.0);
    assert_eq!(report.mse_plar, 0.0);
}

#[test]
fn single_outlier_does_not_poison_training() {
    let mut values = base_trace(300);
    values[75] = 1e6; // monitoring glitch in the training half
    let model = TrainedLarp::train(&values[..150], &LarpConfig::default()).unwrap();
    let norm = model.zscore().apply_slice(&values);
    let run = run_selector_scored(&mut model.selector(), model.pool(), 5, &norm, 150).unwrap();
    assert!(run.mse.is_finite());
    for f in &run.forecasts {
        assert!(f.is_finite());
    }
}

#[test]
fn outlier_in_test_half_only_inflates_errors_finitely() {
    let mut values = base_trace(300);
    values[225] = 1e6;
    let report = TraceReport::evaluate("spiked", &values, &LarpConfig::default(), 3, 2).unwrap();
    assert!(report.mse_lar.is_finite());
    assert!(report.mse_plar <= report.mse_lar + 1e-9);
}

#[test]
fn minimum_viable_training_length() {
    // window + max(k, 2) is the documented minimum.
    let config = LarpConfig::default(); // m = 5, k = 3
    let values = base_trace(60);
    // AR(5) needs 2*5 = 10 points, windows need m + k = 8: 10 is the binding
    // minimum here.
    for len in 5..10 {
        assert!(TrainedLarp::train(&values[..len], &config).is_err(), "len {len}");
    }
    assert!(TrainedLarp::train(&values[..10], &config).is_ok());
}

#[test]
fn kdtree_backend_matches_brute_force_through_full_pipeline() {
    let values = base_trace(400);
    let brute_cfg = LarpConfig { backend: KnnBackend::BruteForce, ..LarpConfig::default() };
    let tree_cfg = LarpConfig { backend: KnnBackend::KdTree, ..LarpConfig::default() };

    let brute = TrainedLarp::train(&values[..200], &brute_cfg).unwrap();
    let tree = TrainedLarp::train(&values[..200], &tree_cfg).unwrap();
    let norm = brute.zscore().apply_slice(&values);
    for t in 5..norm.len() {
        assert_eq!(brute.select(&norm[..t]).unwrap(), tree.select(&norm[..t]).unwrap(), "step {t}");
    }
}

#[test]
fn pca_fraction_and_none_reductions_run_end_to_end() {
    let values = base_trace(300);
    for reduction in [
        FeatureReduction::PcaFraction { min_fraction: 0.85 },
        FeatureReduction::None,
        FeatureReduction::Pca { dims: 1 },
        FeatureReduction::Pca { dims: 5 },
    ] {
        let config = LarpConfig { reduction: reduction.clone(), ..LarpConfig::default() };
        let report = TraceReport::evaluate("r", &values, &config, 2, 3)
            .unwrap_or_else(|e| panic!("{reduction:?}: {e}"));
        assert!(report.mse_lar.is_finite(), "{reduction:?}");
    }
}

#[test]
fn extended_pool_full_protocol() {
    let values = base_trace(400);
    let config = LarpConfig::extended(5);
    let report = TraceReport::evaluate("ext", &values, &config, 3, 4).unwrap();
    assert_eq!(report.model_names.len(), 11);
    assert!(report.mse_plar <= report.best_single_mse() + 1e-12);
    // All 11 per-model MSEs finite.
    for (name, mse) in report.model_names.iter().zip(&report.mse_models) {
        assert!(mse.is_finite(), "{name}");
    }
}

#[test]
fn oracle_pass_counts_are_consistent() {
    let values = base_trace(300);
    let config = LarpConfig::default();
    let model = TrainedLarp::train(&values[..150], &config).unwrap();
    let norm = model.zscore().apply_slice(&values);
    let oracle = observed_best_scored(model.pool(), 5, &norm, 150).unwrap();
    assert_eq!(oracle.best.len(), norm.len() - 150);
    assert_eq!(oracle.forecasts.len(), oracle.best.len());
    assert_eq!(oracle.actuals.len(), oracle.best.len());
    // Per-step best really is per-step argmin.
    for (i, all) in oracle.forecasts.iter().enumerate() {
        let actual = oracle.actuals[i];
        let best_err = (all[oracle.best[i].0] - actual).abs();
        for f in all {
            assert!(best_err <= (f - actual).abs() + 1e-12);
        }
    }
}

#[test]
fn alternating_series_prefers_averaging_models() {
    // Pathological persistence-hostile input: strict alternation. The
    // selector must not collapse onto LAST.
    let values: Vec<f64> = (0..300).map(|t| if t % 2 == 0 { 1.0 } else { -1.0 }).collect();
    let config = LarpConfig::default();
    let model = TrainedLarp::train(&values[..150], &config).unwrap();
    let norm = model.zscore().apply_slice(&values);
    let run = run_selector_scored(&mut model.selector(), model.pool(), 5, &norm, 150).unwrap();
    let last_picks = run.chosen.iter().filter(|c| c.0 == 0).count();
    assert!(
        last_picks < run.chosen.len() / 4,
        "picked LAST {last_picks}/{} times on pure alternation",
        run.chosen.len()
    );
    // And the achieved MSE must be far below LAST's (which is ~4x variance).
    let oracle = observed_best_scored(model.pool(), 5, &norm, 150).unwrap();
    assert!(run.mse < oracle.per_model_mse[0] * 0.5);
}

#[test]
fn report_handles_fold_count_of_one() {
    let values = base_trace(200);
    let report = TraceReport::evaluate("one", &values, &LarpConfig::default(), 1, 5).unwrap();
    assert_eq!(report.folds, 1);
}

#[test]
fn nan_in_training_data_errors_cleanly() {
    // NaN anywhere in the training half must produce a clean Err (the eigen
    // guard rejects a non-finite covariance), never a panic and never a
    // "trained" model that serves NaN.
    let mut values = base_trace(100);
    values[20] = f64::NAN;
    match TrainedLarp::train(&values[..50], &LarpConfig::default()) {
        Err(_) => {}
        Ok(model) => {
            // If some configuration ever trains through, it must still serve
            // finite forecasts.
            let (_, f) = model.predict_next_raw(&values[50..80]).unwrap();
            assert!(f.is_finite());
        }
    }
}

#[test]
fn sanitized_stream_matches_clean_training() {
    // A clean stream through the sanitizer is a no-op: the guarded stack and
    // a bare OnlineLarp must produce identical forecasts.
    use larp::{GuardedLarp, IngestConfig, OnlineLarp, QualityAssuror};
    let values = base_trace(200);
    let mut bare =
        OnlineLarp::new(LarpConfig::default(), 40, QualityAssuror::new(2.0, 8, 4).unwrap())
            .unwrap();
    let mut guarded = GuardedLarp::new(
        IngestConfig { outlier: larp::OutlierPolicy::None, ..IngestConfig::default() },
        LarpConfig::default(),
        40,
        QualityAssuror::new(2.0, 8, 4).unwrap(),
    )
    .unwrap();
    for (t, &v) in values.iter().enumerate() {
        let a = bare.push(v);
        let b = guarded.ingest(t as u64, v);
        assert_eq!(b.len(), 1, "clean sample must pass through 1:1");
        assert_eq!(a, b[0], "step {t}");
    }
    assert_eq!(guarded.sanitizer().stats().faults_sanitized(), 0);
}

#[test]
fn window_16_config_on_short_24h_geometry_errors_cleanly() {
    // m = 16 needs 2*16 = 32 training points minimum; a 40-point trace with a
    // ~50/50 split sits right at the edge and must either work or error
    // cleanly (never panic).
    let values = base_trace(40);
    let _ = TraceReport::evaluate("edge", &values, &LarpConfig::paper(16), 3, 6);
}
