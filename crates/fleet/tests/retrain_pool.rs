//! Off-worker retrain pool correctness (DESIGN.md §13).
//!
//! The retrain pool is a pure scheduling change: it moves the training fit
//! off the shard worker but pins the install point (before the stream's next
//! sample), so every serving outcome — forecasts, health, retrain counts,
//! checkpoint bytes — must be bit-identical with the pool on or off. These
//! tests drive a retrain-heavy workload through both arms and compare
//! exactly, including across a checkpoint cut taken while pool fits are in
//! flight.

use fleet::{BackpressurePolicy, FleetConfig, FleetEngine, StreamConfig, StreamInfo};

const STREAMS: u64 = 8;

fn config(retrain_threads: usize) -> FleetConfig {
    FleetConfig {
        shards: 2,
        backpressure: BackpressurePolicy::Block,
        retrain_threads,
        ..FleetConfig::default()
    }
}

/// A twitchy QA so the regime change below forces repeated retrains.
fn stream_config() -> StreamConfig {
    StreamConfig { qa_threshold: 0.5, qa_window: 4, qa_period: 2, ..StreamConfig::default() }
}

/// Minute `m` of stream `id`: a gentle sinusoid that turns violent at minute
/// 80, so trained models go stale and the QA orders refits.
fn sample(id: u64, m: u64) -> f64 {
    if m < 80 {
        ((m * 3 + id) as f64 * 0.21).sin() * 0.1
    } else {
        let swing = if (m + id).is_multiple_of(2) { 40.0 } else { -40.0 };
        swing + (id as f64) * 0.3
    }
}

fn feed(engine: &FleetEngine, minutes: std::ops::Range<u64>) {
    for m in minutes {
        let batch: Vec<(u64, f64)> = (0..STREAMS).map(|id| (id, sample(id, m))).collect();
        engine.push_batch(&batch);
    }
    engine.flush();
}

fn infos(engine: &FleetEngine) -> Vec<StreamInfo> {
    (0..STREAMS).map(|id| engine.stream_info(id).unwrap()).collect()
}

#[test]
fn pool_is_bit_identical_to_inline_retraining() {
    let run = |retrain_threads: usize| {
        let engine =
            FleetEngine::with_stream_defaults(config(retrain_threads), stream_config()).unwrap();
        for id in 0..STREAMS {
            engine.register(id).unwrap();
        }
        feed(&engine, 0..160);
        let snapshot = engine.checkpoint().unwrap();
        (infos(&engine), snapshot)
    };
    let (inline_infos, inline_ckp) = run(0);
    let (pooled_infos, pooled_ckp) = run(2);
    let retrains: usize = inline_infos.iter().map(|i| i.retrains).sum();
    assert!(
        retrains > STREAMS as usize,
        "workload must force re-training beyond the initial fit (got {retrains})"
    );
    assert_eq!(inline_infos, pooled_infos, "serving outcomes must not depend on the pool");
    assert_eq!(inline_ckp, pooled_ckp, "checkpoint bytes must not depend on the pool");
}

#[test]
fn checkpoint_fence_settles_inflight_retrains() {
    // Cut a checkpoint right at the regime change — the point of maximum
    // retrain traffic — restore it into an engine *without* a pool, and run
    // both engines forward. If the fence failed to settle an in-flight fit,
    // the restored arm would train on a different window and diverge.
    let pooled = FleetEngine::with_stream_defaults(config(2), stream_config()).unwrap();
    for id in 0..STREAMS {
        pooled.register(id).unwrap();
    }
    feed(&pooled, 0..90);
    let cut = pooled.checkpoint().unwrap();
    let restored = FleetEngine::restore(config(0), &cut).unwrap();
    feed(&pooled, 90..160);
    feed(&restored, 90..160);
    // Slot tallies (steps/forecasts) are engine-local and reset on restore;
    // the serving state itself must match bit-for-bit, so compare the
    // checkpoint payloads (serving snapshots) plus the serving-visible info.
    assert_eq!(
        pooled.checkpoint().unwrap(),
        restored.checkpoint().unwrap(),
        "restored arm's serving state diverged after the cut"
    );
    for (a, b) in infos(&pooled).into_iter().zip(infos(&restored)) {
        assert_eq!(a.last_forecast, b.last_forecast, "stream {}", a.id);
        assert_eq!(a.retrains, b.retrains, "stream {}", a.id);
        assert_eq!(a.health, b.health, "stream {}", a.id);
    }
}

#[test]
fn slow_retrain_threshold_counts_and_traces() {
    // With the threshold at zero every successful fit is "slow": the counter
    // must track retrains and the event ring must carry slow_retrain entries
    // with both the fit time and the threshold that flagged it.
    let cfg = FleetConfig { slow_retrain_us: 0, ..config(2) };
    let engine = FleetEngine::with_stream_defaults(cfg, stream_config()).unwrap();
    for id in 0..STREAMS {
        engine.register(id).unwrap();
    }
    feed(&engine, 0..160);
    let retrains: usize = infos(&engine).iter().map(|i| i.retrains).sum();
    let slow = engine.registry().counter("larp_slow_retrains_total").get();
    assert!(retrains > 0, "workload must retrain");
    assert_eq!(slow as usize, retrains, "threshold 0 must flag every successful fit");
    let json = engine.obs_json();
    assert!(json.contains("slow_retrain"), "event ring missing slow_retrain entries");
    assert!(json.contains("threshold_us"), "slow_retrain payload missing threshold");
}

#[test]
fn pool_counters_account_for_every_job() {
    let engine = FleetEngine::with_stream_defaults(config(2), stream_config()).unwrap();
    for id in 0..STREAMS {
        engine.register(id).unwrap();
    }
    feed(&engine, 0..160);
    let jobs = engine.registry().counter("fleet_retrain_jobs_total").get();
    let stale = engine.registry().counter("fleet_retrain_stale_total").get();
    let retrains: usize = infos(&engine).iter().map(|i| i.retrains).sum();
    // Every re-train beyond each stream's initial inline fit rode the pool,
    // and a settled queue leaves no unaccounted jobs.
    assert!(jobs as usize >= retrains - STREAMS as usize, "pool saw too few jobs");
    assert!(stale <= jobs, "more discards than jobs");
    assert_eq!(engine.registry().gauge("fleet_retrain_queue_depth").get(), 0.0);
}

#[test]
fn export_import_round_trip_with_pool_active() {
    // Stream migration (export → import) is another snapshot path that must
    // fence: exporting mid-retrain has to settle the fit first, and the
    // imported stream must continue identically on an inline-mode engine.
    let pooled = FleetEngine::with_stream_defaults(config(2), stream_config()).unwrap();
    let inline = FleetEngine::with_stream_defaults(config(0), stream_config()).unwrap();
    pooled.register(0).unwrap();
    for m in 0..90 {
        pooled.push(0, sample(0, m));
    }
    pooled.flush();
    let (next_minute, bytes) = pooled.export_stream(0).unwrap();
    inline.import_stream(0, next_minute, &bytes).unwrap();
    for m in 90..150 {
        pooled.push(0, sample(0, m));
        inline.push(0, sample(0, m));
    }
    pooled.flush();
    inline.flush();
    // Compare the exported serving state after continuation: slot tallies
    // reset at import, but the serving stack must evolve identically.
    let (minute_a, bytes_a) = pooled.export_stream(0).unwrap();
    let (minute_b, bytes_b) = inline.export_stream(0).unwrap();
    assert_eq!(minute_a, minute_b);
    assert_eq!(bytes_a, bytes_b, "migrated stream's serving state diverged from its source");
    let a = pooled.stream_info(0).unwrap();
    let b = inline.stream_info(0).unwrap();
    assert_eq!(a.last_forecast, b.last_forecast);
    assert_eq!(a.retrains, b.retrains);
}
