//! End-to-end resilience: 64 streams, every one fed through a deterministic
//! fault injector, served concurrently — no forecast is ever non-finite.

use fleet::{BackpressurePolicy, FleetConfig, FleetEngine};
use vmsim::{fleet_trace, FaultConfig, FaultInjector};

const STREAMS: u64 = 64;
const SAMPLES: usize = 240;

#[test]
fn sixty_four_faulty_streams_never_serve_nonfinite() {
    // Block backpressure: a sustained overload stalls the producer instead
    // of losing samples, so every corrupted reading reaches its sanitizer.
    let engine = FleetEngine::new(FleetConfig {
        shards: 4,
        fleet_seed: 2007,
        backpressure: BackpressurePolicy::Block,
        ..FleetConfig::default()
    })
    .unwrap();

    // Per-stream corrupted traces: drops, gaps, NaNs, sentinels, stuck
    // sensors, spikes and duplicates, deterministic per stream id.
    let mut corrupted: Vec<Vec<(u64, f64)>> = Vec::new();
    for id in 0..STREAMS {
        engine.register(id).unwrap();
        let clean = fleet_trace(2007, id, SAMPLES);
        let mut injector = FaultInjector::new(FaultConfig::uniform(0.08), 9000 + id).unwrap();
        corrupted.push(injector.corrupt_series(&clean, 0));
    }

    // Interleave pushes round-robin across streams — the realistic arrival
    // order of a fleet of monitors reporting in lockstep.
    let max_len = corrupted.iter().map(Vec::len).max().unwrap();
    for i in 0..max_len {
        for (id, trace) in corrupted.iter().enumerate() {
            if let Some(&(minute, value)) = trace.get(i) {
                let report = engine.push_at(id as u64, minute, value);
                assert_eq!(report.accepted, 1, "default queue must absorb this rate");
            }
        }
    }
    engine.flush();

    let health = engine.health();
    assert_eq!(health.streams, STREAMS as usize);
    assert_eq!(health.nonfinite_forecasts, 0, "a non-finite forecast escaped the serving stack");
    assert!(health.forecasts > 0, "fleet must actually be serving forecasts");

    // Every stream individually: forecasts were served and the last one is a
    // finite number despite the injected NaNs and sentinels.
    for id in 0..STREAMS {
        let info = engine.stream_info(id).unwrap();
        assert!(info.steps > 0, "stream {id} processed nothing");
        assert!(info.forecasts > 0, "stream {id} served no forecasts");
        if let Some(f) = info.last_forecast {
            assert!(f.is_finite(), "stream {id} last forecast is {f}");
        }
        assert!(info.retrains >= 1, "stream {id} never trained");
    }
}
