//! Cross-version FLEETCKP compatibility.
//!
//! `tests/fixtures/pr5_fleet.ckp` was checkpointed by the pre-ring-buffer
//! implementation. Restoring it onto the current engine and replaying the
//! recorded continuation must reproduce every stream's forecasts bit-exactly.
//!
//! Regenerate (on the checkpoint-producing implementation) with:
//! `cargo test -p fleet --test checkpoint_compat -- --ignored`

use std::fs;
use std::path::PathBuf;

use fleet::{FleetConfig, FleetEngine, StreamId};

const STREAMS: u64 = 12;
const SNAP_ROUNDS: u64 = 80;
const CONT_ROUNDS: u64 = 60;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn config() -> FleetConfig {
    FleetConfig { shards: 3, ..FleetConfig::default() }
}

/// Deterministic heterogeneous per-stream signal with NaN/sentinel faults.
fn sample(stream: StreamId, round: u64) -> f64 {
    let phase = stream as f64 * 0.7;
    let level = 50.0 + stream as f64 * 9.0;
    let t = round as f64;
    let v = level + (t * 0.2 + phase).sin() * 6.0 + ((round * 31 + stream * 7) % 13) as f64 * 0.2;
    match (round + stream) % 23 {
        0 => f64::NAN,
        11 => -1.0, // sentinel
        _ => v,
    }
}

fn push_rounds(engine: &FleetEngine, from: u64, to: u64) {
    let mut batch = Vec::with_capacity(STREAMS as usize);
    for round in from..to {
        batch.clear();
        for id in 0..STREAMS {
            batch.push((id, sample(id, round)));
        }
        engine.push_batch(&batch);
        // One flush per round keeps per-stream processing deterministic and
        // lets the continuation be recorded round by round.
        engine.flush();
    }
}

/// Records each stream's latest forecast after every continuation round.
fn continuation(engine: &FleetEngine) -> Vec<u8> {
    let mut out = Vec::new();
    for round in SNAP_ROUNDS..SNAP_ROUNDS + CONT_ROUNDS {
        push_rounds(engine, round, round + 1);
        for id in 0..STREAMS {
            let info = engine.stream_info(id).unwrap();
            match info.last_forecast {
                Some(f) => {
                    out.push(1);
                    out.extend_from_slice(&f.to_bits().to_le_bytes());
                }
                None => {
                    out.push(0);
                    out.extend_from_slice(&0u64.to_le_bytes());
                }
            }
        }
    }
    out
}

fn checkpointed_engine() -> (FleetEngine, Vec<u8>) {
    let engine = FleetEngine::new(config()).unwrap();
    for id in 0..STREAMS {
        engine.register(id).unwrap();
    }
    push_rounds(&engine, 0, SNAP_ROUNDS);
    let bytes = engine.checkpoint().expect("checkpoint");
    (engine, bytes)
}

#[test]
fn pre_change_fleet_checkpoint_restores_bit_identically() {
    let bytes = fs::read(fixture_path("pr5_fleet.ckp"))
        .expect("committed fixture pr5_fleet.ckp (regenerate test rebuilds it)");
    let expected = fs::read(fixture_path("pr5_fleet_expected.bin"))
        .expect("committed fixture pr5_fleet_expected.bin");
    // Restore onto a different shard count than the checkpointing engine to
    // prove the bytes are shard-topology independent as documented.
    let engine = FleetEngine::restore(FleetConfig { shards: 2, ..config() }, &bytes).unwrap();
    assert_eq!(engine.stream_count(), STREAMS as usize);
    let got = continuation(&engine);
    assert_eq!(got.len(), expected.len(), "continuation record length changed");
    assert!(got == expected, "restored fleet diverged from the pre-change recording");
}

/// A pre-change checkpoint must also survive the hibernation machinery that
/// did not exist when it was written: restore, spill every stream cold, and
/// the lazily woken fleet still replays the recorded continuation bit-exactly.
#[test]
fn pre_change_checkpoint_survives_a_hibernation_cycle() {
    let bytes = fs::read(fixture_path("pr5_fleet.ckp"))
        .expect("committed fixture pr5_fleet.ckp (regenerate test rebuilds it)");
    let expected = fs::read(fixture_path("pr5_fleet_expected.bin"))
        .expect("committed fixture pr5_fleet_expected.bin");
    let spill = std::env::temp_dir().join(format!("fleet-compat-hib-{}", std::process::id()));
    let _ = fs::remove_dir_all(&spill);
    let engine = FleetEngine::restore(
        FleetConfig { shards: 2, spill_dir: Some(spill.clone()), ..config() },
        &bytes,
    )
    .unwrap();
    // A sentinel stream advances the engine's push clock so the restored
    // streams (idle since restore) fall behind it and hibernate.
    engine.register(999).unwrap();
    engine.push(999, 50.0);
    engine.flush();
    let hibernated = engine.hibernate_idle(0).expect("spill configured");
    assert_eq!(hibernated.len(), STREAMS as usize, "every restored stream spills");
    let got = continuation(&engine);
    assert!(got == expected, "hibernate/wake changed a pre-change stream's forecasts");
    drop(engine);
    let _ = fs::remove_dir_all(&spill);
}

/// Fixture-independent sanity check on the current implementation.
#[test]
fn current_fleet_checkpoint_round_trip_is_bit_identical() {
    let (live, bytes) = checkpointed_engine();
    let restored = FleetEngine::restore(config(), &bytes).unwrap();
    assert_eq!(continuation(&live), continuation(&restored));
}

#[test]
#[ignore = "fixture generator: run on the checkpoint-producing implementation"]
fn regenerate_fleet_fixture() {
    fs::create_dir_all(fixture_path("")).unwrap();
    let (live, bytes) = checkpointed_engine();
    fs::write(fixture_path("pr5_fleet.ckp"), bytes).unwrap();
    fs::write(fixture_path("pr5_fleet_expected.bin"), continuation(&live)).unwrap();
}
