//! Cold-stream hibernation: spill idle serving state to the blob store,
//! keep a tombstone resident, restore bit-identically on the next sample.
//! Plus the eviction/recovery bugfix sweep regressions: surfaced WAL append
//! failures and read-refreshed idle clocks (DESIGN.md §11).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use fleet::{
    BackpressurePolicy, DurabilityConfig, FleetConfig, FleetEngine, StreamConfig, StreamInfo,
};

const STREAMS: u64 = 6;

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("fleet-hibernate-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spill_config(dir: &Path) -> FleetConfig {
    FleetConfig {
        shards: 2,
        fleet_seed: 2007,
        backpressure: BackpressurePolicy::Block,
        spill_dir: Some(dir.to_path_buf()),
        ..FleetConfig::default()
    }
}

fn batch_for(round: u64) -> Vec<(u64, f64)> {
    (0..STREAMS).map(|id| (id, 40.0 + ((round * STREAMS + id) as f64 * 0.13).sin() * 7.0)).collect()
}

/// What a hibernate/wake cycle must preserve exactly. `last_forecast`
/// compares by bits: restore is bit-identical, not approximately equal.
fn fingerprint(info: &StreamInfo) -> (u64, u64, u64, usize, Option<u64>) {
    (
        info.next_minute,
        info.steps,
        info.forecasts,
        info.retrains,
        info.last_forecast.map(f64::to_bits),
    )
}

fn drive(engine: &FleetEngine, rounds: std::ops::Range<u64>) {
    for round in rounds {
        let report = engine.push_batch(&batch_for(round));
        assert_eq!(report.accepted, STREAMS);
    }
    engine.flush();
}

#[test]
fn hibernate_and_wake_round_trip_is_bit_identical() {
    let dir = temp_dir("roundtrip");
    let hib = FleetEngine::new(spill_config(&dir)).expect("engine");
    let control = FleetEngine::new(FleetConfig { spill_dir: None, ..spill_config(&dir) })
        .expect("control engine");
    for id in 0..STREAMS {
        hib.register(id).expect("register");
        control.register(id).expect("register");
    }
    drive(&hib, 0..80);
    drive(&control, 0..80);

    // Everything idles long enough once a post-drive probe-free pause would;
    // max_idle 0 hibernates every stream except (at most) the one that took
    // the engine's newest sample.
    let hibernated = hib.hibernate_idle(0).expect("hibernation configured");
    assert!(hibernated.len() >= STREAMS as usize - 1, "got {hibernated:?}");
    let health = hib.health();
    assert_eq!(health.hibernated, hibernated.len());
    assert_eq!(health.streams, STREAMS as usize, "hibernated streams stay registered");
    assert_eq!(hib.stream_count(), STREAMS as usize);
    for id in 0..STREAMS {
        assert!(hib.contains(id));
    }

    // The health rollup still counts the cold streams' tallies.
    assert_eq!(health.steps, control.health().steps);

    // The next samples wake the cold streams; outcomes must match the
    // engine that never hibernated, bit for bit.
    drive(&hib, 80..140);
    drive(&control, 80..140);
    for id in 0..STREAMS {
        let woken = hib.stream_info(id).expect("woken stream");
        let reference = control.stream_info(id).expect("control stream");
        assert_eq!(fingerprint(&woken), fingerprint(&reference), "stream {id} diverged");
    }
    assert_eq!(hib.health().hibernated, 0, "all woken");

    // The lifecycle is obs-visible.
    let prom = hib.prometheus();
    assert!(prom.contains(&format!("fleet_hibernations_total {}", hibernated.len())));
    assert!(prom.contains(&format!("fleet_wakes_total {}", hibernated.len())));
    assert!(prom.contains("fleet_wake_failures_total 0"));
    let events = hib.events().recent();
    assert!(events.iter().any(|e| matches!(e.kind, obs::EventKind::StreamHibernated { .. })));
    assert!(events.iter().any(|e| matches!(e.kind, obs::EventKind::StreamWoken { .. })));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stream_info_answers_from_the_tombstone_without_waking() {
    let dir = temp_dir("tombstone");
    let engine = FleetEngine::new(spill_config(&dir)).expect("engine");
    for id in 0..STREAMS {
        engine.register(id).expect("register");
    }
    drive(&engine, 0..80);
    let before: Vec<_> =
        (0..STREAMS).map(|id| engine.stream_info(id).expect("live stream")).collect();

    let hibernated = engine.hibernate_idle(0).expect("hibernate");
    for &id in &hibernated {
        let cold = engine.stream_info(id).expect("tombstone answers");
        assert_eq!(cold, before[id as usize], "tombstone must mirror the live view");
    }
    // Info probes never wake: the spilled streams are still cold.
    assert_eq!(engine.health().hibernated, hibernated.len());
    assert!(engine.prometheus().contains("fleet_wakes_total 0"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The S3 regression: predict-only consumers read forecasts via
/// `stream_info` without ever pushing. Reads must refresh the idle clock,
/// or the sweep evicts a stream that is actively being consumed.
#[test]
fn info_probes_refresh_the_idle_clock() {
    let engine = FleetEngine::new(FleetConfig {
        shards: 2,
        fleet_seed: 2007,
        backpressure: BackpressurePolicy::Block,
        ..FleetConfig::default()
    })
    .expect("engine");
    engine.register(1).expect("register");
    engine.register(2).expect("register");
    // Stream 2 is warmed once, then only ever *read* while stream 1 takes
    // all the pushes.
    for round in 0..10u64 {
        engine.push(2, 50.0 + round as f64);
    }
    for round in 0..100u64 {
        engine.push(1, 30.0 + (round as f64 * 0.2).sin());
        let _ = engine.stream_info(2).expect("predict-only read");
    }
    let evicted = engine.sweep_idle(20);
    assert!(evicted.is_empty(), "a stream being read is not idle: evicted {evicted:?}");
    assert!(engine.contains(2));

    // Without reads the same stream does expire — the refresh is what kept
    // it alive above, not a broken sweep.
    for round in 0..50u64 {
        engine.push(1, 30.0 + round as f64);
    }
    assert_eq!(engine.sweep_idle(20), vec![2]);
}

/// The S1 regression: a WAL eviction append that fails during `sweep_idle`
/// must be counted and traced, not swallowed — recovery will resurrect the
/// stream, and the operator needs to know the fleet disagrees with its log.
#[test]
fn sweep_idle_surfaces_wal_append_failures() {
    let dir = temp_dir("wal-fail");
    let store_dir = dir.join("store");
    let engine = FleetEngine::new(FleetConfig {
        durability: Some(DurabilityConfig::new(&store_dir)),
        ..spill_config(&dir.join("spill"))
    })
    .expect("durable engine");
    engine.register(1).expect("register");
    engine.register(2).expect("register");
    for round in 0..50u64 {
        engine.push(1, 30.0 + round as f64 * 0.1);
    }

    assert!(engine.debug_fail_next_wal_append(), "durability is on");
    let evicted = engine.sweep_idle(20);
    assert_eq!(evicted, vec![2], "the in-memory eviction proceeds");
    assert!(!engine.contains(2));

    // The failure is counted and traced, with the record kind.
    assert!(engine.prometheus().contains("fleet_wal_failures_total 1"));
    let events = engine.events().recent();
    assert!(
        events.iter().any(|e| e.stream == Some(2)
            && matches!(e.kind, obs::EventKind::WalAppendFailed { kind: 2 })),
        "missing wal_append_failed event: {events:?}"
    );

    // And the documented consequence is real: recovery resurrects the
    // stream whose eviction never reached the log.
    engine.flush_durable().expect("drain");
    drop(engine);
    let (recovered, summary) = FleetEngine::recover(
        FleetConfig {
            durability: Some(DurabilityConfig::new(&store_dir)),
            ..spill_config(&dir.join("spill"))
        },
        StreamConfig::default(),
    )
    .expect("recover");
    assert_eq!(summary.replayed_evicts, 0, "the eviction never made the log");
    assert!(recovered.contains(2), "unlogged eviction resurrects on recovery");
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_inlines_hibernated_streams() {
    let dir = temp_dir("ckpt");
    let hib = FleetEngine::new(spill_config(&dir)).expect("engine");
    let control = FleetEngine::new(FleetConfig { spill_dir: None, ..spill_config(&dir) })
        .expect("control engine");
    for id in 0..STREAMS {
        hib.register(id).expect("register");
        control.register(id).expect("register");
    }
    drive(&hib, 0..80);
    drive(&control, 0..80);
    let hibernated = hib.hibernate_idle(0).expect("hibernate");
    assert!(!hibernated.is_empty());

    // The checkpoint bytes are independent of which streams are cold: the
    // spill blob *is* the stream's snapshot, inlined verbatim.
    let bytes = hib.checkpoint().expect("checkpoint with cold streams");
    assert_eq!(bytes, control.checkpoint().expect("control checkpoint"));

    // And the restored fleet serves all streams live again.
    let restored =
        FleetEngine::restore(FleetConfig { spill_dir: None, ..spill_config(&dir) }, &bytes)
            .expect("restore");
    assert_eq!(restored.stream_count(), STREAMS as usize);
    assert_eq!(restored.health().hibernated, 0);
    drive(&restored, 80..90);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_idle_evicts_cold_streams_and_drops_their_blobs() {
    let dir = temp_dir("sweep-cold");
    let engine = FleetEngine::new(spill_config(&dir)).expect("engine");
    for id in 0..STREAMS {
        engine.register(id).expect("register");
    }
    drive(&engine, 0..40);
    let hibernated = engine.hibernate_idle(0).expect("hibernate");
    assert!(!hibernated.is_empty());
    assert!(engine.mem_report().spill_live_bytes > 0);

    // Idle applies to cold streams on the same clock; their blobs go too.
    let evicted = engine.sweep_idle(0);
    for id in &hibernated {
        assert!(evicted.contains(id), "hibernated stream {id} must expire");
        assert!(!engine.contains(*id));
    }
    assert_eq!(engine.mem_report().spill_live_bytes, 0, "evicted blobs are dead");
    assert_eq!(engine.health().hibernated, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A spill blob that rots on disk must not serve: the wake fails, the
/// stream is dropped (counted), and its samples count as unknown — never a
/// panic, never a half-reset serving stack.
#[test]
fn corrupt_spill_blob_drops_the_stream_on_wake() {
    let dir = temp_dir("rot");
    let engine = FleetEngine::new(spill_config(&dir)).expect("engine");
    for id in 0..STREAMS {
        engine.register(id).expect("register");
    }
    drive(&engine, 0..40);
    let hibernated = engine.hibernate_idle(0).expect("hibernate");
    assert!(!hibernated.is_empty());

    // Rot every payload byte region: flip one byte per KiB across the file,
    // skipping nothing — at least each blob's CRC check must notice.
    let blob_path = dir.join("HIBERNATE.blob");
    let mut data = std::fs::read(&blob_path).expect("spill file exists");
    assert!(!data.is_empty());
    for at in (20..data.len()).step_by(64) {
        data[at] ^= 0xFF;
    }
    std::fs::write(&blob_path, data).expect("rot");

    let woken: u64 = hibernated.len() as u64;
    for &id in &hibernated {
        engine.push(id, 42.0);
    }
    engine.flush();
    for &id in &hibernated {
        assert!(!engine.contains(id), "unwakeable stream {id} must drop, not serve");
    }
    assert!(engine.prometheus().contains(&format!("fleet_wake_failures_total {woken}")));
    assert_eq!(engine.health().unknown_dropped(), woken);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mem_report_accounts_the_diet() {
    let dir = temp_dir("mem");
    let engine = FleetEngine::new(spill_config(&dir)).expect("engine");
    for id in 0..STREAMS {
        engine.register(id).expect("register");
    }
    drive(&engine, 0..80);
    let warm = engine.mem_report();
    assert_eq!(warm.live_streams, STREAMS as usize);
    assert_eq!(warm.hibernated_streams, 0);
    assert!(warm.stream.history_bytes > 0);
    assert!(warm.stream.model_bytes > 0, "trained streams hold model state");
    assert!(warm.table_bytes > 0);
    assert!(warm.heap_total() > 0);
    assert!(warm.bytes_per_stream() > 0.0);
    // Identical configs training on identical windows intern to shared
    // bases: the deduplicated footprint cannot exceed the per-handle sum.
    assert!(warm.pca_unique_bytes <= warm.stream.pca_bytes);
    assert!(warm.resident_bytes.is_some(), "statm is readable on Linux");

    let hibernated = engine.hibernate_idle(0).expect("hibernate");
    let cold = engine.mem_report();
    assert_eq!(cold.hibernated_streams, hibernated.len());
    assert_eq!(cold.live_streams + cold.hibernated_streams, STREAMS as usize);
    assert!(cold.spill_live_bytes > 0, "spilled snapshots live in the blob file");
    assert!(
        cold.heap_total() < warm.heap_total(),
        "hibernation must shrink the resident footprint: {} -> {}",
        warm.heap_total(),
        cold.heap_total()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The automatic policy: `auto_hibernate_idle` drives `hibernate_idle`
/// from the engine's background maintenance thread — no application calls.
#[test]
fn auto_hibernate_policy_spills_idle_streams_on_its_own() {
    use std::time::{Duration, Instant};
    let dir = temp_dir("auto");
    let engine = FleetEngine::new(FleetConfig {
        auto_hibernate_idle: Some(Duration::from_millis(200)),
        ..spill_config(&dir)
    })
    .expect("engine");
    for id in 0..STREAMS {
        engine.register(id).expect("register");
    }
    drive(&engine, 0..40);

    // Keep stream 0 hot; everything else idles past the policy window and
    // must be spilled by the maintenance thread, not by any call here.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        engine.push(0, 42.0);
        engine.flush();
        if engine.health().hibernated >= STREAMS as usize - 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "auto-hibernate never fired: hibernated={}",
            engine.health().hibernated
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(engine.contains(0), "the hot stream survives");
    for id in 1..STREAMS {
        assert!(engine.contains(id), "hibernated stream {id} stays registered");
    }

    // The policy is obs-visible: sweep cycles counted, the batch traced.
    let prom = engine.prometheus();
    assert!(prom.contains("fleet_auto_hibernate_cycles_total"));
    assert!(!prom.contains("fleet_auto_hibernate_cycles_total 0\n"), "at least one cycle ran");
    let events = engine.events().recent();
    assert!(
        events.iter().any(
            |e| matches!(e.kind, obs::EventKind::AutoHibernate { hibernated } if hibernated > 0)
        ),
        "missing auto_hibernate event: {events:?}"
    );

    // The spilled streams still serve: the next sample wakes them.
    drive(&engine, 40..50);
    assert_eq!(engine.health().hibernated, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hibernation_requires_a_spill_dir() {
    let engine = FleetEngine::new(FleetConfig::default()).expect("engine");
    engine.register(1).expect("register");
    assert!(engine.hibernate_idle(0).is_err(), "no spill_dir, no hibernation");
}
