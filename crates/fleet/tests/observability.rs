//! End-to-end observability: a fault-injected fleet must expose a coherent
//! metric registry and event trace through both exposition formats.

use fleet::{BackpressurePolicy, FleetConfig, FleetEngine};
use obs::expo::validate_json;
use vmsim::{fleet_trace, FaultConfig, FaultInjector};

const STREAMS: u64 = 12;
const SAMPLES: usize = 200;

fn faulted_fleet() -> FleetEngine {
    let engine = FleetEngine::new(FleetConfig {
        shards: 2,
        fleet_seed: 2007,
        backpressure: BackpressurePolicy::Block,
        ..FleetConfig::default()
    })
    .unwrap();
    let mut corrupted: Vec<Vec<(u64, f64)>> = Vec::new();
    for id in 0..STREAMS {
        engine.register(id).unwrap();
        let clean = fleet_trace(2007, id, SAMPLES);
        let mut injector = FaultInjector::new(FaultConfig::uniform(0.1), 7000 + id).unwrap();
        corrupted.push(injector.corrupt_series(&clean, 0));
    }
    let max_len = corrupted.iter().map(Vec::len).max().unwrap();
    for i in 0..max_len {
        for (id, trace) in corrupted.iter().enumerate() {
            if let Some(&(minute, value)) = trace.get(i) {
                engine.push_at(id as u64, minute, value);
            }
        }
    }
    engine.flush();
    engine
}

#[test]
fn registry_metrics_agree_with_the_health_rollup() {
    let engine = faulted_fleet();
    let health = engine.health();
    let metrics = engine.registry().snapshot();
    let counter = |name: &str| {
        metrics
            .iter()
            .find_map(|m| match m {
                obs::MetricValue::Counter { name: n, value } if n == name => Some(*value),
                _ => None,
            })
            .unwrap_or_else(|| panic!("missing counter {name}"))
    };
    assert_eq!(counter("fleet_push_accepted_total"), health.pushes.accepted);
    assert_eq!(counter("fleet_push_rejected_total"), health.pushes.rejected);
    assert_eq!(counter("fleet_push_dropped_total"), health.pushes.dropped);
    // The registry-backed larp rollup must match the legacy per-stream
    // counter aggregation the health endpoint performs.
    assert_eq!(counter("larp_quarantines_total"), health.counters.quarantines as u64);
    assert_eq!(counter("larp_degraded_steps_total"), health.counters.degraded_steps as u64);
    assert_eq!(counter("larp_fallback_steps_total"), health.counters.fallback_steps as u64);
    assert_eq!(
        counter("larp_nonfinite_forecasts_total"),
        health.counters.nonfinite_forecasts as u64
    );
    // Fault injection at 10% must have produced sanitizer repairs, and every
    // selection outcome lands in exactly one rung counter.
    assert!(counter("larp_faults_sanitized_total") > 0, "no sanitizer activity recorded");
    let selections = counter("larp_selections_total")
        + counter("larp_degraded_steps_total")
        + counter("larp_fallback_steps_total");
    assert!(selections > 0 && selections <= health.forecasts, "{selections} selections");
}

#[test]
fn prometheus_exposition_is_wellformed_and_complete() {
    let engine = faulted_fleet();
    let text = engine.prometheus();
    for metric in [
        "fleet_push_accepted_total",
        "fleet_push_enqueue_us_count",
        "fleet_shard0_queue_depth",
        "fleet_shard1_unknown_dropped_total",
        "larp_selections_total",
        "larp_retrains_total",
        "larp_retrain_us_sum",
        "obs_events_recorded_total",
    ] {
        assert!(text.contains(metric), "missing {metric} in exposition");
    }
    // Every sample line carries a finite, non-negative value.
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        let value: f64 = line.rsplit(' ').next().unwrap().parse().expect("value parses");
        assert!(value.is_finite() && value >= 0.0, "bad sample line: {line}");
    }
    // Histogram buckets are cumulative (non-decreasing up to +Inf).
    let mut last = 0u64;
    for line in text.lines().filter(|l| l.starts_with("fleet_push_enqueue_us_bucket")) {
        let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(v >= last, "cumulative bucket decreased: {line}");
        last = v;
    }
}

#[test]
fn json_exposition_validates_and_carries_events() {
    let engine = faulted_fleet();
    let bytes = engine.checkpoint().expect("checkpoint");
    assert!(!bytes.is_empty());
    let dump = engine.obs_json();
    validate_json(&dump).expect("JSON exposition must parse");
    for key in [
        "\"counters\"",
        "\"gauges\"",
        "\"histograms\"",
        "\"events\"",
        "fleet_push_enqueue_us",
        "larp_retrain_us",
        "\"p99\"",
        "checkpoint_save",
    ] {
        assert!(dump.contains(key), "missing {key} in JSON dump");
    }
    assert!(!dump.contains("NaN") && !dump.contains("Infinity"), "non-finite leaked");
    // Event ring meta-counters line up with the ring itself.
    assert!(engine.events().recorded() >= engine.events().recent().len() as u64);
}

#[test]
fn restored_fleet_keeps_recording_into_its_own_registry() {
    let engine = faulted_fleet();
    let bytes = engine.checkpoint().expect("checkpoint");
    let before = engine.registry().snapshot().len();
    drop(engine);

    let restored = FleetEngine::restore(
        FleetConfig { shards: 3, fleet_seed: 2007, ..FleetConfig::default() },
        &bytes,
    )
    .unwrap();
    // The restore event is traced and counted.
    assert!(restored.events().recent().iter().any(|e| e.kind.name() == "checkpoint_restore"));
    // Streams restored from a checkpoint are re-attached to the new
    // engine's recorder: serving must keep counting.
    for minute in 1000..1100u64 {
        for id in 0..STREAMS {
            restored.push_at(id, minute, 40.0 + (minute as f64 * 0.2).sin());
        }
    }
    restored.flush();
    let metrics = restored.registry().snapshot();
    assert!(metrics.len() >= before.saturating_sub(2), "registry lost metric families");
    let steps: u64 = metrics
        .iter()
        .filter_map(|m| match m {
            obs::MetricValue::Counter { name, value }
                if name == "larp_selections_total"
                    || name == "larp_degraded_steps_total"
                    || name == "larp_fallback_steps_total" =>
            {
                Some(*value)
            }
            _ => None,
        })
        .sum();
    assert!(steps > 0, "restored streams recorded no selection outcomes");
    validate_json(&restored.obs_json()).unwrap();
}
