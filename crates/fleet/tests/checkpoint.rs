//! Kill/restore acceptance: a checkpointed fleet resumes with identical
//! forecasts and no retraining, even onto a different shard count.

use fleet::{FleetConfig, FleetEngine, StreamId};
use vmsim::fleet_trace;

const STREAMS: u64 = 12;
const WARM: usize = 150;
const TAIL: usize = 90;

fn config(shards: usize) -> FleetConfig {
    // Capacity covers the whole warmup unflushed, so no samples are rejected
    // even if every stream lands on one shard — losslessness is a
    // precondition for the determinism this test asserts.
    FleetConfig { shards, fleet_seed: 77, queue_capacity: 4096, ..FleetConfig::default() }
}

/// One fleet-wide batch: every stream's sample for `minute`.
fn batch_at(traces: &[Vec<f64>], minute: usize) -> Vec<(StreamId, f64)> {
    traces.iter().enumerate().map(|(id, t)| (id as StreamId, t[minute])).collect()
}

fn build_warm_fleet(shards: usize) -> (FleetEngine, Vec<Vec<f64>>) {
    let engine = FleetEngine::new(config(shards)).unwrap();
    let traces: Vec<Vec<f64>> = (0..STREAMS).map(|id| fleet_trace(77, id, WARM + TAIL)).collect();
    for id in 0..STREAMS {
        engine.register(id).unwrap();
    }
    for minute in 0..WARM {
        engine.push_batch(&batch_at(&traces, minute));
    }
    engine.flush();
    (engine, traces)
}

/// Feeds the tail of each trace one batch at a time, recording every stream's
/// forecast after each batch.
fn serve_tail(engine: &FleetEngine, traces: &[Vec<f64>]) -> Vec<Vec<Option<f64>>> {
    let mut forecasts = vec![Vec::with_capacity(TAIL); STREAMS as usize];
    for minute in WARM..WARM + TAIL {
        engine.push_batch(&batch_at(traces, minute));
        engine.flush();
        for id in 0..STREAMS {
            forecasts[id as usize].push(engine.stream_info(id).unwrap().last_forecast);
        }
    }
    forecasts
}

#[test]
fn restore_resumes_identically_without_retraining() {
    let (original, traces) = build_warm_fleet(4);
    let retrains_before: Vec<usize> =
        (0..STREAMS).map(|id| original.stream_info(id).unwrap().retrains).collect();
    assert!(retrains_before.iter().all(|&r| r >= 1), "warmup must train every stream");

    let bytes = original.checkpoint().expect("checkpoint");

    // The original fleet keeps serving: the reference future.
    let expected = serve_tail(&original, &traces);
    drop(original);

    // "Kill" and restore onto a DIFFERENT shard count.
    let restored = FleetEngine::restore(config(2), &bytes).unwrap();
    assert_eq!(restored.stream_count(), STREAMS as usize);

    // No retraining happened at restore: the counts carried over bit-exact.
    for id in 0..STREAMS {
        assert_eq!(
            restored.stream_info(id).unwrap().retrains,
            retrains_before[id as usize],
            "stream {id} retrained during restore"
        );
        assert_eq!(restored.stream_info(id).unwrap().next_minute, WARM as u64);
    }

    // The restored fleet forecasts the identical future.
    let actual = serve_tail(&restored, &traces);
    for id in 0..STREAMS as usize {
        assert_eq!(
            actual[id], expected[id],
            "stream {id}: restored fleet diverged from the original"
        );
    }
}

#[test]
fn checkpoint_bytes_are_shard_count_independent() {
    let (a, _) = build_warm_fleet(4);
    let (b, _) = build_warm_fleet(2);
    assert_eq!(
        a.checkpoint().expect("checkpoint"),
        b.checkpoint().expect("checkpoint"),
        "checkpoint must not leak shard layout"
    );
}

#[test]
fn restore_rejects_garbage() {
    let cfg = config(4);
    assert!(FleetEngine::restore(cfg.clone(), b"not a checkpoint").is_err());
    let (engine, _) = build_warm_fleet(2);
    let mut bytes = engine.checkpoint().expect("checkpoint");
    bytes.truncate(bytes.len() / 2);
    assert!(FleetEngine::restore(cfg, &bytes).is_err());
}
