//! Property tests for the shard-assignment hash: stability across runs and
//! balance across shards.

use fleet::shard_of;

/// The assignment is a pure function: two independent evaluations (and any
/// future run of this test binary) agree sample for sample. The expected
/// values below pin the hash itself, so an accidental algorithm change fails
/// loudly instead of silently re-sharding every deployed fleet.
#[test]
fn assignment_is_stable_across_runs() {
    let golden: Vec<usize> = (0..32u64).map(|id| shard_of(2007, id, 4)).collect();
    for (id, &expect) in golden.iter().enumerate() {
        assert_eq!(shard_of(2007, id as u64, 4), expect);
    }
    // Pinned prefix computed once and hard-coded: the contract that
    // checkpoints and traces stay valid across releases.
    assert_eq!(&golden[..8], &[2, 0, 1, 2, 1, 2, 1, 2]);
}

fn max_deviation(seed: u64, shards: usize, ids: u64) -> f64 {
    let mut counts = vec![0usize; shards];
    for id in 0..ids {
        counts[shard_of(seed, id, shards)] += 1;
    }
    let ideal = ids as f64 / shards as f64;
    counts.iter().map(|&n| (n as f64 - ideal).abs() / ideal).fold(0.0, f64::max)
}

/// 1,000 consecutive stream ids spread over deployment-sized shard counts
/// within 20% of the ideal share — consecutive ids being the worst realistic
/// case (fleets number their VMs densely).
#[test]
fn consecutive_ids_balance_within_twenty_percent() {
    for shards in [2usize, 3, 4, 8] {
        for seed in [1u64, 42, 2007, 7777, 0xDEAD_BEEF] {
            let dev = max_deviation(seed, shards, 1000);
            assert!(
                dev <= 0.20,
                "seed {seed}, {shards} shards: worst shard is {:.1}% off its ideal share",
                dev * 100.0
            );
        }
    }
}

/// At higher shard counts the per-shard bins are small enough that binomial
/// noise alone exceeds 20%; hold those to 4σ of the binomial relative
/// deviation, `σ ≈ sqrt((shards − 1) / ids)` — what an ideal uniform hash
/// would satisfy.
#[test]
fn high_shard_counts_stay_statistically_balanced() {
    for shards in [7usize, 16, 32] {
        let sigma = ((shards as f64 - 1.0) / 1000.0).sqrt();
        for seed in [1u64, 42, 2007, 7777, 0xDEAD_BEEF] {
            let dev = max_deviation(seed, shards, 1000);
            assert!(
                dev <= 4.0 * sigma,
                "seed {seed}, {shards} shards: worst shard is {:.1}% off its ideal share \
                 (4σ bound {:.1}%)",
                dev * 100.0,
                4.0 * sigma * 100.0
            );
        }
    }
}

/// Sparse and adversarial id patterns (strided, high-bit, hashed-looking)
/// still land in range and stay deterministic.
#[test]
fn arbitrary_id_patterns_stay_in_range() {
    let ids: Vec<u64> = (0..500u64)
        .flat_map(|i| [i * 4096, i.wrapping_mul(0x9E37_79B9_7F4A_7C15), u64::MAX - i])
        .collect();
    for &id in &ids {
        let s = shard_of(42, id, 5);
        assert!(s < 5);
        assert_eq!(s, shard_of(42, id, 5));
    }
}
