//! Corruption corpus for durable-engine recovery: torn tails, mid-segment
//! bit flips, missing segments, corrupt checkpoint/archive/manifest files,
//! and random multi-file damage. Every scenario must recover into a serving
//! engine — losses degrade to counted, obs-visible gaps, never a panic.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use fleet::{
    BackpressurePolicy, DurabilityConfig, FleetConfig, FleetEngine, FleetHealth, StreamConfig,
    StreamInfo,
};
use simrng::{Rng64, Xoshiro256pp};

const STREAMS: u64 = 4;

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("fleet-recovery-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &Path, retain_segments: bool) -> FleetConfig {
    FleetConfig {
        shards: 1, // one WAL record per pushed batch: exact record accounting
        fleet_seed: 2007,
        backpressure: BackpressurePolicy::Block,
        durability: Some(DurabilityConfig {
            segment_bytes: 2 << 10, // force many segments from a short log
            retain_segments,
            ..DurabilityConfig::new(dir.to_path_buf())
        }),
        ..FleetConfig::default()
    }
}

fn batch_for(round: u64) -> Vec<(u64, f64)> {
    (0..STREAMS)
        .map(|id| {
            // Wrapping: assert_serves probes with far-future round numbers.
            (id, 40.0 + ((round.wrapping_mul(STREAMS).wrapping_add(id)) as f64 * 0.1).sin() * 5.0)
        })
        .collect()
}

/// Builds a durable engine, pushes `batches` deterministic batches, drains,
/// and drops it — leaving `STREAMS + batches` records on disk.
fn seed_log(dir: &Path, batches: u64, retain_segments: bool) {
    let engine =
        FleetEngine::new(durable_config(dir, retain_segments)).expect("durable engine starts");
    for id in 0..STREAMS {
        engine.register(id).expect("register");
    }
    for round in 0..batches {
        let report = engine.push_batch(&batch_for(round));
        assert_eq!(report.accepted, STREAMS);
        assert!(!report.wal_failed);
    }
    engine.flush_durable().expect("drain to disk");
}

/// The serving state a durable restart must reproduce. Slot `steps` and
/// `forecasts` are since-restore counters (checkpoints intentionally do not
/// carry them), so they are excluded.
fn fingerprint(info: &StreamInfo) -> (u64, usize, Option<u64>, larp::HealthState) {
    (info.next_minute, info.retrains, info.last_forecast.map(f64::to_bits), info.health)
}

/// Reference state: an in-memory engine fed the identical input sequence.
fn reference_fingerprints(batches: u64) -> Vec<(u64, usize, Option<u64>, larp::HealthState)> {
    let engine = FleetEngine::new(FleetConfig {
        shards: 1,
        fleet_seed: 2007,
        backpressure: BackpressurePolicy::Block,
        ..FleetConfig::default()
    })
    .expect("reference engine");
    for id in 0..STREAMS {
        engine.register(id).expect("register");
    }
    for round in 0..batches {
        engine.push_batch(&batch_for(round));
    }
    engine.flush();
    (0..STREAMS).map(|id| fingerprint(&engine.stream_info(id).expect("live stream"))).collect()
}

fn segment_files(dir: &Path) -> Vec<PathBuf> {
    let mut segs: Vec<_> = std::fs::read_dir(dir)
        .expect("readdir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "seg"))
        .collect();
    segs.sort();
    segs
}

/// A recovered engine must still be a serving engine: it accepts pushes,
/// advances clocks, and reports healthy.
fn assert_serves(engine: &FleetEngine) {
    let before = engine.stream_info(0).expect("stream 0 recovered").next_minute;
    let report = engine.push_batch(&batch_for(u64::MAX / 2));
    assert_eq!(report.accepted, STREAMS);
    assert!(!report.wal_failed);
    engine.flush();
    assert_eq!(engine.stream_info(0).expect("stream 0 serves").next_minute, before + 1);
    assert!(matches!(engine.health(), FleetHealth { .. }));
}

#[test]
fn torn_tail_loses_only_the_interrupted_record() {
    let dir = temp_dir("torn");
    seed_log(&dir, 60, false);
    let segs = segment_files(&dir);
    let last = segs.last().expect("segments exist");
    let len = std::fs::metadata(last).expect("meta").len();
    let file = std::fs::OpenOptions::new().write(true).open(last).expect("open");
    file.set_len(len - 5).expect("tear the tail");
    drop(file);

    let (engine, summary) =
        FleetEngine::recover(durable_config(&dir, false), StreamConfig::default())
            .expect("torn tail recovers");
    assert!(summary.torn_tail, "{summary:?}");
    assert_eq!(summary.gap_records, 0);
    assert_eq!(summary.corrupt_segments, 0);
    assert_eq!(summary.replayed_records, STREAMS + 60 - 1, "exactly the torn record lost");
    // A torn tail is the expected artifact of a crash mid-write — by design
    // it still counts as a clean recovery (no *acked* record was lost).
    assert!(summary.clean());
    assert_serves(&engine);
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_segment_bit_flip_becomes_a_counted_visible_gap() {
    let dir = temp_dir("bitflip");
    seed_log(&dir, 80, false);
    let segs = segment_files(&dir);
    assert!(segs.len() >= 3, "expected a multi-segment log, got {}", segs.len());
    // Flip one bit in the record area of a middle segment: its scan stops
    // there, and the next segment's first seq exposes the loss as a gap.
    let victim = &segs[1];
    let mut data = std::fs::read(victim).expect("read");
    data[40] ^= 0x10;
    std::fs::write(victim, data).expect("write");

    let (engine, summary) =
        FleetEngine::recover(durable_config(&dir, false), StreamConfig::default())
            .expect("bit flip recovers");
    assert!(summary.corrupt_segments >= 1, "{summary:?}");
    assert!(summary.gap_records > 0, "{summary:?}");
    assert_eq!(summary.replayed_records + summary.gap_records, STREAMS + 80);
    // The loss is obs-visible, not silent.
    let prom = engine.prometheus();
    assert!(
        prom.contains(&format!("fleet_wal_gap_records_total {}", summary.gap_records)),
        "gap counter missing from metrics"
    );
    assert!(prom.contains("fleet_wal_recoveries_total 1"));
    assert_serves(&engine);
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_segment_gap_equals_its_record_span() {
    let dir = temp_dir("missing");
    seed_log(&dir, 80, false);
    let segs = segment_files(&dir);
    assert!(segs.len() >= 3);
    // Segment files are named <first_seq:016x>.seg: the span of segs[1] is
    // segs[2]'s first seq minus its own.
    let first_seq = |p: &PathBuf| {
        u64::from_str_radix(p.file_stem().unwrap().to_str().unwrap(), 16).expect("hex name")
    };
    let span = first_seq(&segs[2]) - first_seq(&segs[1]);
    std::fs::remove_file(&segs[1]).expect("drop a middle segment");

    let (engine, summary) =
        FleetEngine::recover(durable_config(&dir, false), StreamConfig::default())
            .expect("missing segment recovers");
    assert_eq!(summary.missing_segments, 1, "{summary:?}");
    assert_eq!(summary.gap_records, span);
    assert_eq!(summary.replayed_records, STREAMS + 80 - span);
    assert_serves(&engine);
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checkpoint_falls_back_to_full_replay_bit_identically() {
    let dir = temp_dir("ckpt");
    // retain_segments keeps the checkpointed prefix on disk, so a discarded
    // checkpoint can be compensated by replaying history from seq 1.
    let engine = FleetEngine::new(durable_config(&dir, true)).expect("engine");
    for id in 0..STREAMS {
        engine.register(id).expect("register");
    }
    for round in 0..50 {
        engine.push_batch(&batch_for(round));
    }
    engine.checkpoint_durable().expect("durable checkpoint");
    for round in 50..70 {
        engine.push_batch(&batch_for(round));
    }
    engine.flush_durable().expect("drain");
    drop(engine);
    // Corrupt the checkpoint payload (past the magic, so it reads as a
    // damaged file rather than a missing one).
    let ckpt = dir.join("CHECKPOINT");
    let mut data = std::fs::read(&ckpt).expect("checkpoint exists");
    let mid = data.len() / 2;
    data[mid] ^= 0xFF;
    std::fs::write(&ckpt, data).expect("write");

    let (recovered, summary) =
        FleetEngine::recover(durable_config(&dir, true), StreamConfig::default())
            .expect("corrupt checkpoint recovers");
    assert!(summary.checkpoint_corrupt, "{summary:?}");
    assert_eq!(summary.checkpoint_streams, 0);
    assert_eq!(summary.gap_records, 0);
    assert_eq!(summary.replayed_records, STREAMS + 70, "full history replayed");
    let expected = reference_fingerprints(70);
    for id in 0..STREAMS {
        let info = recovered.stream_info(id).expect("recovered stream");
        assert_eq!(
            fingerprint(&info),
            expected[id as usize],
            "stream {id} diverged from the uninterrupted reference"
        );
    }
    assert_serves(&recovered);
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_archive_sidecar_degrades_without_losing_serving_state() {
    let dir = temp_dir("archive");
    let engine = FleetEngine::new(durable_config(&dir, true)).expect("engine");
    for id in 0..STREAMS {
        engine.register(id).expect("register");
    }
    for round in 0..50 {
        engine.push_batch(&batch_for(round));
    }
    engine.checkpoint_durable().expect("durable checkpoint");
    // A post-checkpoint tail: checkpoint frames restore predictor state but
    // not the last served forecast, which only tail replay repopulates — so
    // keep some records past the checkpoint for a full fingerprint match.
    for round in 50..60 {
        engine.push_batch(&batch_for(round));
    }
    engine.flush_durable().expect("drain");
    drop(engine);
    let archive = dir.join("ARCHIVE");
    let mut data = std::fs::read(&archive).expect("archive sidecar exists");
    let mid = data.len() / 2;
    data[mid] ^= 0xFF;
    std::fs::write(&archive, data).expect("write");

    let (recovered, summary) =
        FleetEngine::recover(durable_config(&dir, true), StreamConfig::default())
            .expect("corrupt archive recovers");
    assert!(summary.archive_corrupt, "{summary:?}");
    assert!(!summary.checkpoint_corrupt, "checkpoint is independent of the sidecar");
    assert_eq!(summary.gap_records, 0);
    // Serving state comes from checkpoint + tail, not the sidecar: intact.
    let expected = reference_fingerprints(60);
    for id in 0..STREAMS {
        let info = recovered.stream_info(id).expect("recovered stream");
        assert_eq!(fingerprint(&info), expected[id as usize], "stream {id} diverged");
    }
    // The trace query path must answer (possibly with less history), not panic.
    let _ = recovered.trace_raw(0, 0, 50);
    assert_serves(&recovered);
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_manifest_recovers_from_directory_scan() {
    let dir = temp_dir("manifest");
    seed_log(&dir, 60, false);
    std::fs::write(dir.join("MANIFEST"), b"not a manifest").expect("write");

    let (engine, summary) =
        FleetEngine::recover(durable_config(&dir, false), StreamConfig::default())
            .expect("corrupt manifest recovers");
    assert_eq!(summary.gap_records, 0, "{summary:?}");
    assert_eq!(summary.replayed_records, STREAMS + 60);
    let expected = reference_fingerprints(60);
    for id in 0..STREAMS {
        let info = engine.stream_info(id).expect("recovered stream");
        assert_eq!(fingerprint(&info), expected[id as usize], "stream {id} diverged");
    }
    assert_serves(&engine);
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A WAL tail that interleaves `Samples` after `Evict` for the same id must
/// neither panic nor resurrect the evicted stream. The interleave is easy to
/// produce live: pushes for an unregistered stream are still accepted (and
/// WAL-logged) — the worker drops them — so samples for an already-evicted
/// stream land in the log after its eviction record.
#[test]
fn samples_after_evict_replay_without_resurrecting_the_stream() {
    let dir = temp_dir("evict-interleave");
    {
        let engine = FleetEngine::new(durable_config(&dir, false)).expect("engine");
        for id in 0..STREAMS {
            engine.register(id).expect("register");
        }
        for round in 0..30 {
            engine.push_batch(&batch_for(round));
        }
        engine.evict(2).expect("evict");
        // Post-evict samples for stream 2: accepted, logged, dropped by the
        // worker as unknown.
        for round in 30..40 {
            engine.push_batch(&batch_for(round));
        }
        engine.flush_durable().expect("drain");
    }

    let (recovered, summary) =
        FleetEngine::recover(durable_config(&dir, false), StreamConfig::default())
            .expect("evict interleave recovers");
    assert_eq!(summary.replayed_evicts, 1, "{summary:?}");
    assert!(!recovered.contains(2), "evicted stream must stay evicted");
    assert_eq!(summary.unknown_replayed, 10, "post-evict samples drop, exactly as they did live");
    // The surviving streams replay the full log.
    for id in [0u64, 1, 3] {
        let info = recovered.stream_info(id).expect("recovered stream");
        assert_eq!(info.next_minute, 40, "stream {id}");
    }
    assert_serves(&recovered);
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Evict → re-register → samples for the same id: the re-registration builds
/// a fresh serving stack and the tail samples feed it, reproducing the live
/// outcome exactly.
#[test]
fn evict_then_reregister_replays_into_a_fresh_stream() {
    let dir = temp_dir("evict-rereg");
    let live_fp = {
        let engine = FleetEngine::new(durable_config(&dir, false)).expect("engine");
        for id in 0..STREAMS {
            engine.register(id).expect("register");
        }
        for round in 0..30 {
            engine.push_batch(&batch_for(round));
        }
        // Quiesce before evicting: an evict that races queued samples drops
        // them live (acked but unroutable) while replay feeds them first —
        // the comparison below needs the deterministic, drained ordering.
        engine.flush();
        engine.evict(2).expect("evict");
        engine.register(2).expect("re-register");
        for round in 30..80 {
            engine.push_batch(&batch_for(round));
        }
        engine.flush_durable().expect("drain");
        fingerprint(&engine.stream_info(2).expect("live stream"))
    };

    let (recovered, summary) =
        FleetEngine::recover(durable_config(&dir, false), StreamConfig::default())
            .expect("re-register interleave recovers");
    assert_eq!(summary.replayed_evicts, 1, "{summary:?}");
    assert!(summary.clean(), "no sample was ever unroutable: {summary:?}");
    let info = recovered.stream_info(2).expect("re-registered stream recovered");
    assert_eq!(fingerprint(&info), live_fp, "replay must rebuild the fresh stack identically");
    assert_serves(&recovered);
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Random multi-file damage: whatever combination of flips lands on the
/// store's files, recovery returns a serving engine — the one invariant
/// corruption may never break.
#[test]
fn random_damage_always_yields_a_serving_engine() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xDA0A6E);
    for round in 0..12u64 {
        let dir = temp_dir(&format!("fuzz{round}"));
        let checkpoint = round % 3 == 0;
        {
            let engine = FleetEngine::new(durable_config(&dir, false)).expect("engine");
            for id in 0..STREAMS {
                engine.register(id).expect("register");
            }
            for r in 0..40 + rng.next_u64() % 40 {
                engine.push_batch(&batch_for(r));
            }
            if checkpoint {
                engine.checkpoint_durable().expect("checkpoint");
            }
            engine.flush_durable().expect("drain");
        }
        let mut files: Vec<_> = std::fs::read_dir(&dir)
            .expect("readdir")
            .map(|e| e.expect("entry").path())
            .filter(|p| p.is_file())
            .collect();
        files.sort();
        for _ in 0..=(rng.next_u64() % 8) {
            let path = &files[(rng.next_u64() % files.len() as u64) as usize];
            let mut data = std::fs::read(path).expect("read");
            if data.is_empty() {
                continue;
            }
            match rng.next_u64() % 3 {
                0 => {
                    let at = (rng.next_u64() % data.len() as u64) as usize;
                    data[at] ^= (1 << (rng.next_u64() % 8)) as u8;
                }
                1 => data.truncate((rng.next_u64() % data.len() as u64) as usize),
                _ => data.extend_from_slice(&rng.next_u64().to_le_bytes()),
            }
            std::fs::write(path, data).expect("write");
        }

        let (engine, summary) =
            FleetEngine::recover(durable_config(&dir, false), StreamConfig::default())
                .expect("recovery survives random damage");
        // Whatever was lost is accounted, and the engine still serves the
        // streams it recovered (possibly none, if the register records died).
        for id in 0..STREAMS {
            if engine.contains(id) {
                engine.stream_info(id).expect("recovered stream answers");
            }
        }
        let report = engine.push_batch(&batch_for(1 << 40));
        assert!(report.accepted <= STREAMS);
        assert!(
            engine.prometheus().contains("fleet_wal_recoveries_total 1"),
            "round {round}: recovery not obs-visible ({summary:?})"
        );
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
