//! Single-stream export/import — the cluster tier's migration primitive
//! (DESIGN.md §12): a stream exported from one engine and imported into
//! another must serve bit-identically to one that never moved, f32-history
//! streams included. Plus the warm-standby delta export (`export_dirty`).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use fleet::{
    BackpressurePolicy, DurabilityConfig, FleetConfig, FleetEngine, FleetError, StreamConfig,
    StreamInfo,
};
use larp::ResilienceConfig;

const STREAMS: u64 = 6;
/// Streams with f32 history rings (LARPSNAP v2 f32 mode) — migration must
/// carry the mode, not silently widen back to f64.
const F32_STREAMS: [u64; 2] = [2, 5];

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("fleet-migration-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> FleetConfig {
    FleetConfig {
        shards: 2,
        fleet_seed: 2007,
        backpressure: BackpressurePolicy::Block,
        ..FleetConfig::default()
    }
}

fn register_all(engine: &FleetEngine) {
    for id in 0..STREAMS {
        if F32_STREAMS.contains(&id) {
            let cfg = StreamConfig {
                resilience: ResilienceConfig { f32_history: true, ..ResilienceConfig::default() },
                ..StreamConfig::default()
            };
            engine.register_with(id, &cfg).expect("register f32 stream");
        } else {
            engine.register(id).expect("register");
        }
    }
}

fn drive(engine: &FleetEngine, rounds: std::ops::Range<u64>) {
    for round in rounds {
        let batch: Vec<(u64, f64)> = (0..STREAMS)
            .map(|id| (id, 40.0 + ((round * STREAMS + id) as f64 * 0.13).sin() * 7.0))
            .collect();
        let report = engine.push_batch(&batch);
        assert_eq!(report.accepted, STREAMS);
    }
    engine.flush();
}

/// What migration must preserve exactly. Serving tallies (steps/forecasts)
/// reset on import by design — model state, clock, and forecasts must not.
fn fingerprint(info: &StreamInfo) -> (u64, usize, Option<u64>) {
    (info.next_minute, info.retrains, info.last_forecast.map(f64::to_bits))
}

#[test]
fn export_import_round_trip_is_bit_identical() {
    let source = FleetEngine::new(config()).expect("source");
    let control = FleetEngine::new(config()).expect("control");
    register_all(&source);
    register_all(&control);
    drive(&source, 0..80);
    drive(&control, 0..80);

    // Migrate every stream into a fresh engine, one export/import at a time.
    let dest = FleetEngine::new(config()).expect("dest");
    for id in 0..STREAMS {
        let (next_minute, bytes) = source.export_stream(id).expect("export");
        dest.import_stream(id, next_minute, &bytes).expect("import");
    }
    assert_eq!(dest.stream_count(), STREAMS as usize);

    // The source keeps serving until the caller evicts: export is a copy.
    for id in 0..STREAMS {
        assert!(source.contains(id));
    }

    // Post-migration traffic must land bit-identically to never-migrated.
    drive(&dest, 80..140);
    drive(&control, 80..140);
    for id in 0..STREAMS {
        let migrated = dest.stream_info(id).expect("migrated stream");
        let reference = control.stream_info(id).expect("control stream");
        assert_eq!(fingerprint(&migrated), fingerprint(&reference), "stream {id} diverged");
    }

    // The lifecycle is obs-visible on both sides.
    assert!(source.prometheus().contains(&format!("fleet_stream_exports_total {STREAMS}")));
    assert!(dest.prometheus().contains(&format!("fleet_stream_imports_total {STREAMS}")));
    let exported = source.events().recent();
    assert!(exported.iter().any(|e| matches!(e.kind, obs::EventKind::StreamExported { .. })));
    let imported = dest.events().recent();
    assert!(imported.iter().any(|e| matches!(e.kind, obs::EventKind::StreamImported { .. })));
}

#[test]
fn export_covers_hibernated_streams_and_errors_are_typed() {
    let dir = temp_dir("cold");
    let source =
        FleetEngine::new(FleetConfig { spill_dir: Some(dir.clone()), ..config() }).expect("source");
    let control = FleetEngine::new(config()).expect("control");
    register_all(&source);
    register_all(&control);
    drive(&source, 0..60);
    drive(&control, 0..60);
    let hibernated = source.hibernate_idle(0).expect("hibernate");
    assert!(!hibernated.is_empty());

    // A cold stream exports its spill blob without waking.
    let dest = FleetEngine::new(config()).expect("dest");
    for id in 0..STREAMS {
        let (next_minute, bytes) = source.export_stream(id).expect("export cold or warm");
        dest.import_stream(id, next_minute, &bytes).expect("import");
    }
    assert_eq!(source.health().hibernated, hibernated.len(), "export never wakes");
    drive(&dest, 60..100);
    drive(&control, 60..100);
    for id in 0..STREAMS {
        let migrated = dest.stream_info(id).expect("migrated");
        let reference = control.stream_info(id).expect("control");
        assert_eq!(fingerprint(&migrated), fingerprint(&reference), "stream {id} diverged");
    }

    // Typed errors: unknown export, duplicate import, garbage bytes.
    assert_eq!(source.export_stream(99).unwrap_err(), FleetError::UnknownStream(99));
    let (nm, bytes) = source.export_stream(0).expect("export");
    assert_eq!(dest.import_stream(0, nm, &bytes).unwrap_err(), FleetError::DuplicateStream(0));
    assert!(matches!(dest.import_stream(77, 0, b"not a snapshot"), Err(FleetError::Checkpoint(_))));
    assert!(!dest.contains(77), "failed import leaves nothing behind");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `export_dirty` is the warm-standby feed: the first cut covers every
/// stream, later cuts only what advanced, and with durability the returned
/// WAL sequence tells the standby where its tail must begin.
#[test]
fn export_dirty_sends_deltas_with_a_consistent_wal_cut() {
    let dir = temp_dir("dirty");
    let engine = FleetEngine::new(FleetConfig {
        durability: Some(DurabilityConfig::new(dir.join("store"))),
        ..config()
    })
    .expect("durable engine");
    register_all(&engine);
    drive(&engine, 0..30);

    let mut seen: HashMap<u64, u64> = HashMap::new();
    let (covered, deltas) = engine.export_dirty(&mut seen).expect("first cut");
    assert_eq!(deltas.len(), STREAMS as usize, "first cut covers everything");
    assert_eq!(covered, engine.wal_last_seq());
    assert!(covered > 0, "registrations and pushes are in the log");
    // Sorted by id, cursor updated.
    assert!(deltas.windows(2).all(|w| w[0].0 < w[1].0));
    assert_eq!(seen.len(), STREAMS as usize);

    // Nothing moved: nothing to send.
    let (_, idle) = engine.export_dirty(&mut seen).expect("idle cut");
    assert!(idle.is_empty(), "clean cursor sends nothing, got {} streams", idle.len());

    // Only streams 0 and 3 advance; only they ship.
    for round in 0..5u64 {
        engine.push_batch(&[(0, 41.0 + round as f64), (3, 39.0 - round as f64)]);
    }
    engine.flush();
    let before = covered;
    let (covered, deltas) = engine.export_dirty(&mut seen).expect("delta cut");
    let ids: Vec<u64> = deltas.iter().map(|d| d.0).collect();
    assert_eq!(ids, vec![0, 3]);
    assert!(covered >= before + 5, "the cut advances with the log");

    // An evicted stream falls out of the cursor.
    engine.evict(5).expect("evict");
    let (_, after_evict) = engine.export_dirty(&mut seen).expect("cut after evict");
    assert!(after_evict.is_empty());
    assert!(!seen.contains_key(&5), "cursor pruned");
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The f32 flag survives the WAL: recovery rebuilds an f32 stream as f32.
/// (The flag is a trailing byte on the Register record — pre-flag logs
/// decode as f64, new logs carry the mode.)
#[test]
fn f32_mode_survives_wal_recovery() {
    let dir = temp_dir("f32wal");
    let store_dir = dir.join("store");
    let durable = FleetConfig { durability: Some(DurabilityConfig::new(&store_dir)), ..config() };
    let engine = FleetEngine::new(durable.clone()).expect("engine");
    register_all(&engine);
    drive(&engine, 0..80);
    engine.flush_durable().expect("drain");
    let reference: Vec<_> =
        (0..STREAMS).map(|id| fingerprint(&engine.stream_info(id).expect("info"))).collect();
    drop(engine);

    let (recovered, summary) =
        FleetEngine::recover(durable, StreamConfig::default()).expect("recover");
    assert!(summary.clean(), "contiguous log: {summary:?}");
    for id in 0..STREAMS {
        let info = recovered.stream_info(id).expect("recovered stream");
        assert_eq!(fingerprint(&info), reference[id as usize], "stream {id} diverged");
    }
    // The mode itself is preserved, not just the forecasts: an f32 stream
    // recovered as f64 would diverge on the next retrain, so drive past one.
    drive(&recovered, 80..140);
    let control = FleetEngine::new(config()).expect("control");
    register_all(&control);
    drive(&control, 0..140);
    for id in 0..STREAMS {
        let a = recovered.stream_info(id).expect("recovered");
        let b = control.stream_info(id).expect("control");
        assert_eq!(fingerprint(&a), fingerprint(&b), "stream {id} diverged post-recovery");
    }
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
}
