//! Durable-ingestion plumbing: the checkpoint file wrapper, the per-engine
//! durability state, and the recovery summary.
//!
//! The engine's durable state is three files in one directory (the
//! [`crate::DurabilityConfig::dir`]):
//!
//! * **WAL segments + `MANIFEST`** — every accepted push, appended before
//!   the ack (owned by [`store::TraceStore`]).
//! * **`ARCHIVE`** — the store's memtable + RRD tier sidecar.
//! * **`CHECKPOINT`** — the fleet checkpoint (`FLEETCKP` bytes) wrapped in a
//!   `STORCKP1` frame carrying the WAL sequence it covers and a CRC:
//!
//! ```text
//! magic   8B  "STORCKP1"
//! seq     u64 highest WAL sequence the checkpoint covers
//! len     u64 payload length
//! payload     FLEETCKP bytes (see crate::checkpoint)
//! crc     u32 CRC-32/IEEE over everything above
//! ```
//!
//! Writes are atomic (tmp + rename + directory fsync). A corrupt checkpoint
//! degrades to WAL-only recovery — counted, never a panic.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64};
use std::sync::RwLock;

use store::{crc32, TraceStore};

use crate::config::DurabilityConfig;

pub(crate) const CHECKPOINT_FILE: &str = "CHECKPOINT";
const CKPT_MAGIC: &[u8; 8] = b"STORCKP1";

/// What [`crate::FleetEngine::recover`] found and rebuilt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoverySummary {
    /// WAL sequence the loaded checkpoint covered (0 = none).
    pub checkpoint_seq: u64,
    /// Streams restored from the checkpoint.
    pub checkpoint_streams: u64,
    /// The checkpoint file existed but failed validation and was discarded
    /// (recovery degraded to WAL-only replay).
    pub checkpoint_corrupt: bool,
    /// The store's archive sidecar was corrupt and discarded.
    pub archive_corrupt: bool,
    /// WAL records replayed past the checkpoint.
    pub replayed_records: u64,
    /// Samples fed back into the serving engine from the replayed records.
    pub replayed_samples: u64,
    /// Records lost to sequence gaps (corruption, missing segments).
    pub gap_records: u64,
    /// The final segment ended in a partial record (normal after a crash).
    pub torn_tail: bool,
    /// Segments abandoned mid-scan due to corruption.
    pub corrupt_segments: u64,
    /// Segments named by the manifest but absent on disk.
    pub missing_segments: u64,
    /// Replayed samples addressed to streams unknown at that point in the
    /// log (only possible downstream of a gap).
    pub unknown_replayed: u64,
    /// Eviction records replayed from the WAL tail. An eviction whose WAL
    /// append failed live (`fleet_wal_failures_total`, `wal_append_failed`
    /// event) is missing here — the recovered fleet resurrects that stream.
    pub replayed_evicts: u64,
}

impl RecoverySummary {
    /// True when the log was contiguous: nothing lost, nothing unroutable.
    pub fn clean(&self) -> bool {
        !self.checkpoint_corrupt
            && !self.archive_corrupt
            && self.gap_records == 0
            && self.corrupt_segments == 0
            && self.missing_segments == 0
            && self.unknown_replayed == 0
    }
}

/// Per-engine durable state, held inside the engine's shared block.
pub(crate) struct DurabilityState {
    pub(crate) store: TraceStore,
    /// Push/register/evict hold `read()` across enqueue + WAL append;
    /// durable checkpoints hold `write()` so the checkpoint bytes and the
    /// covered WAL sequence describe the same quiesced state.
    pub(crate) gate: RwLock<()>,
    pub(crate) config: DurabilityConfig,
    pub(crate) ckpt_path: PathBuf,
    /// WAL records appended since the last durable checkpoint; the
    /// background maintenance thread's checkpoint trigger.
    pub(crate) records_since_ckpt: AtomicU64,
    /// Test hook: fail the next WAL append (register/evict paths) as if the
    /// underlying store errored. Set via
    /// `FleetEngine::debug_fail_next_wal_append`; consumed on first use.
    pub(crate) fail_next_append: AtomicBool,
}

impl DurabilityState {
    pub(crate) fn new(store: TraceStore, config: DurabilityConfig) -> Self {
        let ckpt_path = config.dir.join(CHECKPOINT_FILE);
        Self {
            store,
            gate: RwLock::new(()),
            config,
            ckpt_path,
            records_since_ckpt: AtomicU64::new(0),
            fail_next_append: AtomicBool::new(false),
        }
    }

    /// Appends an eviction record, honoring the injected-failure hook.
    pub(crate) fn append_evict(&self, id: u64) -> store::Result<store::AppendInfo> {
        if self.fail_next_append.swap(false, std::sync::atomic::Ordering::Relaxed) {
            return Err(store::StoreError::Io(std::io::Error::other(
                "injected WAL append failure",
            )));
        }
        self.store.append_evict(id)
    }
}

/// Outcome of reading the checkpoint file.
pub(crate) enum CheckpointFile {
    /// No checkpoint yet (fresh store, or crash before the first one).
    Missing,
    /// The file exists but fails validation; recovery degrades to WAL-only.
    Corrupt,
    /// A valid checkpoint covering WAL records `1..=seq`.
    Loaded { seq: u64, payload: Vec<u8> },
}

/// Atomically writes the `STORCKP1`-wrapped checkpoint.
pub(crate) fn write_checkpoint_file(path: &Path, seq: u64, payload: &[u8]) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(28 + payload.len());
    buf.extend_from_slice(CKPT_MAGIC);
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(payload);
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());

    let tmp = path.with_extension("tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(&buf)?;
    f.sync_data()?;
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Reads and validates the checkpoint file. Corruption is a recoverable
/// outcome, not an error — only real I/O failures propagate.
pub(crate) fn read_checkpoint_file(path: &Path) -> std::io::Result<CheckpointFile> {
    let buf = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(CheckpointFile::Missing),
        Err(e) => return Err(e),
    };
    if buf.len() < 28 || &buf[..8] != CKPT_MAGIC {
        return Ok(CheckpointFile::Corrupt);
    }
    let body = &buf[..buf.len() - 4];
    let carried = u32::from_le_bytes(buf[buf.len() - 4..].try_into().expect("4 bytes"));
    if crc32(body) != carried {
        return Ok(CheckpointFile::Corrupt);
    }
    let seq = u64::from_le_bytes(body[8..16].try_into().expect("8 bytes"));
    let len = u64::from_le_bytes(body[16..24].try_into().expect("8 bytes")) as usize;
    if body.len() - 24 != len {
        return Ok(CheckpointFile::Corrupt);
    }
    Ok(CheckpointFile::Loaded { seq, payload: body[24..].to_vec() })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("fleet-ckpt-{tag}-{}", std::process::id()))
    }

    #[test]
    fn checkpoint_file_round_trips() {
        let path = temp_path("roundtrip");
        write_checkpoint_file(&path, 77, b"fleet checkpoint bytes").unwrap();
        match read_checkpoint_file(&path).unwrap() {
            CheckpointFile::Loaded { seq, payload } => {
                assert_eq!(seq, 77);
                assert_eq!(payload, b"fleet checkpoint bytes");
            }
            _ => panic!("expected a loaded checkpoint"),
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_and_corrupt_are_recoverable_outcomes() {
        let path = temp_path("corrupt");
        let _ = fs::remove_file(&path);
        assert!(matches!(read_checkpoint_file(&path).unwrap(), CheckpointFile::Missing));
        write_checkpoint_file(&path, 5, b"payload").unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_checkpoint_file(&path).unwrap(), CheckpointFile::Corrupt));
        // Every truncation is Corrupt or Missing, never a panic.
        write_checkpoint_file(&path, 5, b"payload").unwrap();
        let good = fs::read(&path).unwrap();
        for cut in 0..good.len() {
            fs::write(&path, &good[..cut]).unwrap();
            assert!(matches!(read_checkpoint_file(&path).unwrap(), CheckpointFile::Corrupt));
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn summary_clean_flags_any_damage() {
        assert!(RecoverySummary::default().clean());
        let dirty = RecoverySummary { gap_records: 1, ..RecoverySummary::default() };
        assert!(!dirty.clean());
        let dirty = RecoverySummary { checkpoint_corrupt: true, ..RecoverySummary::default() };
        assert!(!dirty.clean());
    }
}
