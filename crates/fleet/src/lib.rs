//! Fleet serving engine: sharded multi-stream online prediction.
//!
//! The paper's prototype serves *one* VM metric stream; a production resource
//! manager watches thousands (every VM × every metric). This crate scales the
//! serving layer out: a [`FleetEngine`] owns N independent
//! [`larp::GuardedLarp`] instances behind stable [`StreamId`]s, sharded
//! across a fixed pool of worker threads.
//!
//! Design properties:
//!
//! * **Deterministic sharding** — a stream's shard is a pure hash of
//!   `(fleet_seed, stream_id)` ([`shard::shard_of`]); no work stealing, so
//!   per-stream sample order is exactly enqueue order and fleet results are
//!   reproducible given seed + shard count.
//! * **Batched ingestion with backpressure** — [`FleetEngine::push_batch`]
//!   fans samples out to per-shard bounded queues; a full queue rejects new
//!   samples, drops the oldest, or blocks, per [`BackpressurePolicy`].
//! * **Stream lifecycle** — register / evict / idle-expiry sweep
//!   ([`FleetEngine::sweep_idle`]).
//! * **Checkpointing** — [`FleetEngine::checkpoint`] serializes every
//!   stream's full serving state (via `larp::snapshot`);
//!   [`FleetEngine::restore`] warm-starts a fleet from those bytes without
//!   retraining a single model, even onto a different shard count.
//! * **Durability** — with [`DurabilityConfig`] set, every accepted push is
//!   appended to a crash-safe write-ahead log *before* the call returns;
//!   [`FleetEngine::checkpoint_durable`] persists checkpoint + archive
//!   sidecar and truncates the log, and [`FleetEngine::recover`] rebuilds
//!   the fleet bit-identically from checkpoint + WAL tail after a crash
//!   (DESIGN.md §8).
//! * **Health surface** — [`FleetEngine::health`] aggregates per-shard queue
//!   depths, degraded/quarantined stream counts and rolled-up
//!   [`larp::OnlineCounters`] into one [`FleetHealth`].
//! * **Observability** — every engine owns an [`obs::Registry`] and event
//!   ring: larp serving outcomes, backpressure accounting, enqueue latency,
//!   per-shard queue depth and checkpoint traffic are recorded continuously
//!   and exposed via [`FleetEngine::prometheus`] / [`FleetEngine::obs_json`]
//!   (metric naming scheme: DESIGN.md §5).
//!
//! The `fleet_throughput` binary drives a synthetic multi-VM fleet
//! (`vmsim::fleet`) through the engine and reports streams/sec and push
//! latency percentiles as JSON (including the registry snapshot); `obs_dump`
//! dumps a fault-injected fleet's full observability surface in either
//! exposition format.
#![warn(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod durability;
pub mod engine;
pub mod health;
mod observe;
mod retrain;
pub mod shard;

pub use config::{BackpressurePolicy, DurabilityConfig, FleetConfig, StreamConfig};
pub use durability::RecoverySummary;
pub use engine::{process_resident_bytes, FleetEngine, FleetMemReport, StreamInfo};
pub use health::{FleetHealth, PushReport, ShardHealth};
pub use shard::shard_of;
pub use store::FsyncPolicy;

/// Stable identifier of one prediction stream within a fleet.
pub type StreamId = u64;

/// Errors from fleet configuration, lifecycle and checkpointing.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// An invalid engine or stream configuration value.
    InvalidConfig(String),
    /// The stream id is not registered.
    UnknownStream(StreamId),
    /// The stream id is already registered.
    DuplicateStream(StreamId),
    /// A malformed or incompatible checkpoint.
    Checkpoint(String),
    /// Propagated failure from the serving substrate.
    Serving(String),
    /// A durable-store failure (WAL append, checkpoint persistence, or
    /// recovery).
    Durability(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
            FleetError::UnknownStream(id) => write!(f, "unknown stream {id}"),
            FleetError::DuplicateStream(id) => write!(f, "stream {id} already registered"),
            FleetError::Checkpoint(m) => write!(f, "checkpoint failure: {m}"),
            FleetError::Serving(m) => write!(f, "serving failure: {m}"),
            FleetError::Durability(m) => write!(f, "durability failure: {m}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<store::StoreError> for FleetError {
    fn from(e: store::StoreError) -> Self {
        FleetError::Durability(e.to_string())
    }
}

impl From<larp::LarpError> for FleetError {
    fn from(e: larp::LarpError) -> Self {
        match e {
            larp::LarpError::InvalidConfig(m) => FleetError::InvalidConfig(m),
            larp::LarpError::Snapshot(m) => FleetError::Checkpoint(m),
            other => FleetError::Serving(other.to_string()),
        }
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, FleetError>;
