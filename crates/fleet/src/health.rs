//! Aggregate observability: push outcomes and fleet-wide health rollups.

use larp::OnlineCounters;

/// Outcome of one [`crate::FleetEngine::push_batch`] call.
///
/// Accounting is exactly-once per sample *decision*: every sample of the
/// batch lands in `accepted` or `rejected` (never both), and `dropped`
/// counts queued samples evicted by `DropOldest` — which may include samples
/// accepted by an earlier call, so `accepted` means "enqueued", not
/// "retained until processing".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PushReport {
    /// Samples enqueued for processing (under `DropOldest` some may later be
    /// evicted before a worker serves them; see [`PushReport::dropped`]).
    pub accepted: u64,
    /// Samples refused because a queue was full
    /// ([`crate::BackpressurePolicy::RejectNew`]), or pushed during engine
    /// shutdown under `Block`.
    pub rejected: u64,
    /// Older queued samples evicted to make room
    /// ([`crate::BackpressurePolicy::DropOldest`]). Attributed to the call
    /// that forced the eviction, not the one that enqueued the victim.
    pub dropped: u64,
    /// The write-ahead log append for this call failed: the accepted samples
    /// are being served from memory but are *not* durable — a crash before
    /// the next successful checkpoint loses them. Always `false` when the
    /// engine runs without durability.
    pub wal_failed: bool,
}

impl PushReport {
    /// Accumulates another report into this one.
    pub fn merge(&mut self, other: PushReport) {
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.dropped += other.dropped;
        self.wal_failed |= other.wal_failed;
    }
}

/// Health of one shard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardHealth {
    /// Shard index.
    pub shard: usize,
    /// Samples currently waiting in the shard's queue.
    pub queue_depth: usize,
    /// Streams assigned to this shard (live + hibernated).
    pub streams: usize,
    /// Streams of this shard currently hibernated (serving state spilled;
    /// only a tombstone resident).
    pub hibernated: usize,
    /// Streams whose most recent step was served degraded (a fallback pool
    /// member) or by last-value persistence.
    pub degraded_streams: usize,
    /// Streams with at least one currently-quarantined pool member.
    pub quarantined_streams: usize,
    /// Samples addressed to unregistered streams, dropped by the worker.
    pub unknown_dropped: u64,
}

/// Fleet-wide health rollup, from [`crate::FleetEngine::health`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetHealth {
    /// Per-shard breakdown, indexed by shard.
    pub shards: Vec<ShardHealth>,
    /// Registered streams across all shards (live + hibernated).
    pub streams: usize,
    /// Hibernated streams across all shards. Their step/forecast tallies are
    /// included in the rollup below; their fault counters rejoin
    /// [`FleetHealth::counters`] when they wake (the live values travel
    /// inside the spilled snapshot).
    pub hibernated: usize,
    /// Cumulative push outcomes since engine start.
    pub pushes: PushReport,
    /// Clean samples that reached a predictor.
    pub steps: u64,
    /// Forecasts served across the fleet.
    pub forecasts: u64,
    /// Non-finite forecasts that escaped a serving stack (should be 0; the
    /// fleet counts rather than trusts).
    pub nonfinite_forecasts: u64,
    /// Retrainings performed across the fleet (including initial trainings).
    pub retrains: u64,
    /// Rolled-up fault-handling counters from every stream's online layer.
    pub counters: OnlineCounters,
}

impl FleetHealth {
    /// Streams currently degraded, fleet-wide.
    pub fn degraded_streams(&self) -> usize {
        self.shards.iter().map(|s| s.degraded_streams).sum()
    }

    /// Streams with quarantined pool members, fleet-wide.
    pub fn quarantined_streams(&self) -> usize {
        self.shards.iter().map(|s| s.quarantined_streams).sum()
    }

    /// Total samples currently queued, fleet-wide.
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.queue_depth).sum()
    }

    /// Total unknown-stream samples dropped by workers.
    pub fn unknown_dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.unknown_dropped).sum()
    }
}

/// Accumulates one stream's online counters into a fleet rollup.
pub(crate) fn merge_counters(total: &mut OnlineCounters, one: &OnlineCounters) {
    total.quarantines += one.quarantines;
    total.retrain_failures += one.retrain_failures;
    total.nonfinite_forecasts += one.nonfinite_forecasts;
    total.degraded_steps += one.degraded_steps;
    total.fallback_steps += one.fallback_steps;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_report_merges() {
        let mut a = PushReport { accepted: 3, rejected: 1, ..PushReport::default() };
        a.merge(PushReport { accepted: 2, dropped: 5, wal_failed: true, ..PushReport::default() });
        assert_eq!(a, PushReport { accepted: 5, rejected: 1, dropped: 5, wal_failed: true });
    }

    #[test]
    fn fleet_health_sums_over_shards() {
        let h = FleetHealth {
            shards: vec![
                ShardHealth {
                    shard: 0,
                    queue_depth: 2,
                    streams: 3,
                    degraded_streams: 1,
                    quarantined_streams: 0,
                    unknown_dropped: 4,
                    ..ShardHealth::default()
                },
                ShardHealth {
                    shard: 1,
                    queue_depth: 5,
                    streams: 2,
                    degraded_streams: 1,
                    quarantined_streams: 2,
                    unknown_dropped: 0,
                    ..ShardHealth::default()
                },
            ],
            ..FleetHealth::default()
        };
        assert_eq!(h.queue_depth(), 7);
        assert_eq!(h.degraded_streams(), 2);
        assert_eq!(h.quarantined_streams(), 2);
        assert_eq!(h.unknown_dropped(), 4);
    }
}
