//! Fleet-level observability: the engine's metric registry and event ring.
//!
//! One [`FleetObs`] is built per engine. It owns the [`Registry`] every
//! metric handle is registered on, the bounded [`EventRing`] transitions are
//! traced into, and the base [`larp::LarpObs`] whose per-stream clones
//! (`for_stream`) every registered stream records through — so the `larp_*`
//! metric set rolls up fleet-wide with zero aggregation code.
//!
//! Metric set (naming scheme in DESIGN.md §5):
//!
//! | name | kind | meaning |
//! |---|---|---|
//! | `fleet_push_accepted_total` | counter | samples enqueued |
//! | `fleet_push_rejected_total` | counter | samples refused (queue full) |
//! | `fleet_push_dropped_total` | counter | queued samples evicted for room |
//! | `fleet_stream_evictions_total` | counter | streams evicted (any cause) |
//! | `fleet_checkpoints_total` | counter | checkpoints serialized |
//! | `fleet_restores_total` | counter | engines restored from bytes |
//! | `fleet_push_enqueue_us` | histogram | enqueue wall-clock per push call |
//! | `fleet_shard<i>_queue_depth` | gauge | samples waiting on shard *i* |
//! | `fleet_shard<i>_unknown_dropped_total` | counter | unroutable samples |
//!
//! With durability enabled the engine additionally mirrors its trace store:
//!
//! | name | kind | meaning |
//! |---|---|---|
//! | `fleet_wal_records_total` | counter | WAL records appended |
//! | `fleet_wal_failures_total` | counter | WAL appends that failed (ack carried `wal_failed`) |
//! | `fleet_wal_fsyncs_total` | counter | appends that fsynced the segment |
//! | `fleet_wal_rotations_total` | counter | segment rotations |
//! | `fleet_wal_recoveries_total` | counter | successful `recover` calls |
//! | `fleet_wal_gap_records_total` | counter | records lost to WAL gaps at recovery |
//! | `fleet_wal_append_us` | histogram | WAL append wall-clock per push call |
//!
//! Hibernation (DESIGN.md §11):
//!
//! | name | kind | meaning |
//! |---|---|---|
//! | `fleet_hibernations_total` | counter | streams spilled to the blob store |
//! | `fleet_wakes_total` | counter | hibernated streams restored on demand |
//! | `fleet_wake_failures_total` | counter | spilled state unreadable; stream dropped |
//!
//! Cluster support (DESIGN.md §12):
//!
//! | name | kind | meaning |
//! |---|---|---|
//! | `fleet_auto_hibernate_cycles_total` | counter | automatic hibernation sweeps run |
//! | `fleet_stream_exports_total` | counter | single streams exported (migration / standby) |
//! | `fleet_stream_imports_total` | counter | single streams imported bit-identically |
//!
//! Off-worker retrain pool (DESIGN.md §13, `FleetConfig::retrain_threads`):
//!
//! | name | kind | meaning |
//! |---|---|---|
//! | `fleet_retrain_jobs_total` | counter | retrain fits handed to the pool |
//! | `fleet_retrain_stale_total` | counter | fitted outcomes discarded (generation moved on) |
//! | `fleet_retrain_queue_depth` | gauge | fits queued, not yet picked up |
//!
//! plus, stream-side, `larp_retrain_queue_wait_us` / `larp_retrain_us`
//! histograms and the `larp_slow_retrains_total` threshold counter (see
//! `larp::observe`).

use larp::LarpObs;
use obs::{Counter, EventRing, Histogram, Registry};

/// The engine's observability bundle: registry, event ring, and the metric
/// handles the engine itself records into.
pub(crate) struct FleetObs {
    pub(crate) registry: Registry,
    pub(crate) events: EventRing,
    /// Base recorder for the shared `larp_*` metric set; streams attach
    /// `larp.for_stream(id)` clones.
    pub(crate) larp: LarpObs,
    pub(crate) push_accepted: Counter,
    pub(crate) push_rejected: Counter,
    pub(crate) push_dropped: Counter,
    pub(crate) evictions: Counter,
    pub(crate) checkpoints: Counter,
    pub(crate) restores: Counter,
    pub(crate) enqueue_us: Histogram,
    pub(crate) wal_records: Counter,
    pub(crate) wal_failures: Counter,
    pub(crate) wal_fsyncs: Counter,
    pub(crate) wal_rotations: Counter,
    pub(crate) wal_recoveries: Counter,
    pub(crate) wal_gap_records: Counter,
    pub(crate) wal_append_us: Histogram,
    pub(crate) hibernations: Counter,
    pub(crate) wakes: Counter,
    pub(crate) wake_failures: Counter,
    pub(crate) auto_hibernate_cycles: Counter,
    pub(crate) stream_exports: Counter,
    pub(crate) stream_imports: Counter,
}

impl FleetObs {
    pub(crate) fn new(event_capacity: usize, slow_retrain_us: u64) -> Self {
        let registry = Registry::new();
        let events = EventRing::new(event_capacity);
        let larp = LarpObs::register(&registry)
            .with_events(events.clone())
            .with_slow_retrain_threshold_us(slow_retrain_us);
        Self {
            larp,
            push_accepted: registry.counter("fleet_push_accepted_total"),
            push_rejected: registry.counter("fleet_push_rejected_total"),
            push_dropped: registry.counter("fleet_push_dropped_total"),
            evictions: registry.counter("fleet_stream_evictions_total"),
            checkpoints: registry.counter("fleet_checkpoints_total"),
            restores: registry.counter("fleet_restores_total"),
            enqueue_us: registry.histogram("fleet_push_enqueue_us"),
            wal_records: registry.counter("fleet_wal_records_total"),
            wal_failures: registry.counter("fleet_wal_failures_total"),
            wal_fsyncs: registry.counter("fleet_wal_fsyncs_total"),
            wal_rotations: registry.counter("fleet_wal_rotations_total"),
            wal_recoveries: registry.counter("fleet_wal_recoveries_total"),
            wal_gap_records: registry.counter("fleet_wal_gap_records_total"),
            wal_append_us: registry.histogram("fleet_wal_append_us"),
            hibernations: registry.counter("fleet_hibernations_total"),
            wakes: registry.counter("fleet_wakes_total"),
            wake_failures: registry.counter("fleet_wake_failures_total"),
            auto_hibernate_cycles: registry.counter("fleet_auto_hibernate_cycles_total"),
            stream_exports: registry.counter("fleet_stream_exports_total"),
            stream_imports: registry.counter("fleet_stream_imports_total"),
            registry,
            events,
        }
    }
}
